"""End-to-end smoke test for the design-space service (CI gate).

Builds the quick serving grid into a scratch cache, starts
``repro serve`` as a real stdio subprocess, drives three canned
queries through it, and diffs the **normalised** responses against
the committed goldens in ``tests/data/service_goldens.json``.

Normalisation keeps what the contract promises — response structure,
provenance source, error codes, null-vs-number distinctions — and
masks what legitimately drifts: every float becomes ``"<num>"`` (the
physics values move whenever the model is recalibrated; their
accuracy is covered by the surrogate bound tests, not by goldens) and
the schema hash becomes ``"<schema>"`` (it changes with any model
source edit by design).

Usage::

    python tools/service_smoke.py            # run + diff vs goldens
    python tools/service_smoke.py --update   # regenerate the goldens
    python tools/service_smoke.py --jobs 4   # parallel grid fill
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
GOLDENS = REPO_ROOT / "tests" / "data" / "service_goldens.json"

#: The canned conversation: a warm surrogate answer, a shifted-corner
#: exact answer, and a contract violation.
QUERIES = [
    {"query": "metrics", "node": "65nm", "l_poly_nm": 80.5,
     "ioff_target_a_per_um": 5e-11, "vdd_v": 0.28,
     "id": "smoke-1"},
    {"query": "snm_vmin", "node": "65nm", "l_poly_nm": 80.5,
     "ioff_target_a_per_um": 5e-11, "vdd_v": 0.28,
     "corner": "ss", "id": "smoke-2"},
    {"query": "metrics", "node": "65nm", "l_poly_nm": 80.5,
     "ioff_target_a_per_um": 5e-11, "vdd_v": 0.28,
     "metrics": ["iddq"], "id": "smoke-3"},
]


def normalise(value):
    """Mask run-varying content, keep the contract-visible structure."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return "<num>"
    if isinstance(value, list):
        return [normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: ("<schema>" if k == "schema_hash" and
                    isinstance(v, str) else normalise(v))
                for k, v in value.items()}
    return value


def run_conversation(jobs: int) -> list[dict]:
    """Grid build + server round trip inside a scratch cache."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as scratch:
        env["REPRO_CACHE_DIR"] = scratch
        subprocess.run(
            [sys.executable, "-m", "repro", "grid", "build", "--quick",
             "--jobs", str(jobs)],
            cwd=REPO_ROOT, env=env, check=True)
        lines = "".join(json.dumps(q) + "\n" for q in QUERIES)
        served = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--quick"],
            cwd=REPO_ROOT, env=env, input=lines, text=True,
            capture_output=True, check=True, timeout=600)
    responses = [json.loads(line) for line in
                 served.stdout.strip().splitlines()]
    if len(responses) != len(QUERIES):
        raise SystemExit(f"expected {len(QUERIES)} responses, got "
                         f"{len(responses)}: {served.stdout!r}")
    return responses


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed goldens")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the grid fill")
    args = parser.parse_args(argv)

    responses = run_conversation(args.jobs)

    # Un-normalised sanity: the canned conversation must exercise both
    # tiers and the error taxonomy, whatever the physics says.
    assert responses[0]["ok"] and \
        responses[0]["provenance"]["source"] == "surrogate", responses[0]
    assert responses[1]["ok"] and \
        responses[1]["provenance"]["source"] == "exact", responses[1]
    assert responses[2] == dict(responses[2], ok=False,
                                error="unknown_metric"), responses[2]

    normalised = [normalise(r) for r in responses]
    if args.update:
        GOLDENS.parent.mkdir(parents=True, exist_ok=True)
        GOLDENS.write_text(json.dumps(normalised, indent=2,
                                      sort_keys=True) + "\n")
        print(f"wrote {GOLDENS}")
        return 0
    expected = json.loads(GOLDENS.read_text())
    if normalised != expected:
        print("service responses drifted from tests/data/"
              "service_goldens.json:", file=sys.stderr)
        print(json.dumps(normalised, indent=2, sort_keys=True),
              file=sys.stderr)
        print("regenerate with: python tools/service_smoke.py --update",
              file=sys.stderr)
        return 1
    print(f"service smoke OK: {len(responses)} canned queries match "
          "the goldens")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
