"""Record the kernel benchmark suite into ``BENCH_kernels.json``.

Runs the hot-kernel benches (``benchmarks/test_bench_kernels.py`` plus
the raw super-V_th optimiser bench) under pytest-benchmark and distils
the machine-readable results into a small summary at the repository
root.  Committing the summary after perf-relevant PRs builds up the
performance trajectory of the project; CI runs the same script to make
sure the suite keeps executing.

Usage (from the repository root)::

    python tools/bench_record.py            # writes BENCH_kernels.json
    python tools/bench_record.py --check    # run benches, don't write
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_kernels.json"

#: Bench selection: every kernel bench plus the uncached optimiser flow.
BENCH_TARGETS = (
    "benchmarks/test_bench_kernels.py",
    "benchmarks/test_bench_table2.py::test_bench_supervth_optimizer",
)


def run_benches(json_path: pathlib.Path) -> None:
    """Run the bench selection, writing pytest-benchmark JSON."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    cmd = [
        sys.executable, "-m", "pytest", *BENCH_TARGETS,
        "-q", "--benchmark-only", f"--benchmark-json={json_path}",
    ]
    subprocess.run(cmd, cwd=REPO_ROOT, check=True, env=env)


def summarise(raw: dict) -> dict:
    """Distil pytest-benchmark output to one stats record per bench."""
    benches = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        benches[bench["name"]] = {
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
    return {
        "schema": 1,
        "generated_by": "tools/bench_record.py",
        "recorded_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "node": platform.node(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "benchmarks": benches,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the kernel benches and record BENCH_kernels.json")
    parser.add_argument("--check", action="store_true",
                        help="run the benches without writing the summary")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        json_path = pathlib.Path(tmp) / "bench.json"
        run_benches(json_path)
        summary = summarise(json.loads(json_path.read_text()))

    if not summary["benchmarks"]:
        print("error: no benchmarks were collected", file=sys.stderr)
        return 1
    if args.check:
        print(f"ok: {len(summary['benchmarks'])} benches ran "
              "(summary not written)")
        return 0
    OUTPUT.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    slowest = max(summary["benchmarks"].items(),
                  key=lambda kv: kv[1]["mean_s"])
    print(f"wrote {OUTPUT.name}: {len(summary['benchmarks'])} benches, "
          f"slowest {slowest[0]} at {1e3 * slowest[1]['mean_s']:.1f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
