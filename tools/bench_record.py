"""Record the benchmark suites into ``BENCH_*.json`` summaries.

Runs a bench suite under pytest-benchmark and distils the
machine-readable results into a small summary at the repository root.
The suites:

* ``kernels`` — the hot device/TCAD kernels
  (``benchmarks/test_bench_kernels.py`` plus the raw super-V_th
  optimiser bench) -> ``BENCH_kernels.json``;
* ``circuits`` — the vectorised circuit-evaluation layer
  (``benchmarks/test_bench_circuits.py``: batched VTC/SNM, array-native
  Monte Carlo, and their sequential oracles) -> ``BENCH_circuits.json``;
* ``flows`` — the batched design-space engine
  (``benchmarks/test_bench_flows.py``: cold-cache super/sub-V_th family
  builds, the multi-V_th menu, the calibration-sensitivity rebuild, and
  their sequential oracles) -> ``BENCH_flows.json``;
* ``service`` — the design-space query server tiers
  (``benchmarks/test_bench_service.py``) -> ``BENCH_service.json``;
* ``variability`` — the rare-event yield engine
  (``benchmarks/test_bench_variability.py``: QMC-IS pipeline, shift
  search, the >= 100x equal-accuracy speedup gate vs brute force, and
  the ``ext_yield`` experiment) -> ``BENCH_variability.json``;
* ``arrays`` — the compiled batched MNA engine
  (``benchmarks/test_bench_arrays.py``: the 512-lane SRAM-column DC
  workload, its >= 10x per-lane speedup gate vs the looped
  NodalSolver oracle, the binary-searched write pulse, and the
  ``ext_array`` experiment) -> ``BENCH_arrays.json``.

Committing the summary after perf-relevant PRs builds up the
performance trajectory of the project; CI runs the same script with
``--compare`` to fail on >2x mean regressions against the committed
summary.  Set ``REPRO_BENCH_QUICK=1`` to skip the slow sequential-oracle
benches (the CI quick mode).

Beyond the per-suite snapshots, ``--history`` appends one compact
JSONL record (suite, timestamp, git SHA, per-bench means) to
``BENCH_history.jsonl``; committed over time, the file is the
machine-readable performance trajectory the snapshots only sample.
CI uploads it as the ``bench-trajectory`` artifact.

Usage (from the repository root)::

    python tools/bench_record.py                      # BENCH_kernels.json
    python tools/bench_record.py --suite circuits     # BENCH_circuits.json
    python tools/bench_record.py --check              # run, don't write
    python tools/bench_record.py --suite circuits --compare
    python tools/bench_record.py --suite flows --history
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Per-suite bench selection and summary file.
SUITES = {
    "kernels": {
        "targets": (
            "benchmarks/test_bench_kernels.py",
            "benchmarks/test_bench_table2.py::test_bench_supervth_optimizer",
        ),
        "output": "BENCH_kernels.json",
    },
    "circuits": {
        "targets": ("benchmarks/test_bench_circuits.py",),
        "output": "BENCH_circuits.json",
    },
    "flows": {
        "targets": ("benchmarks/test_bench_flows.py",),
        "output": "BENCH_flows.json",
    },
    "service": {
        "targets": ("benchmarks/test_bench_service.py",),
        "output": "BENCH_service.json",
    },
    "variability": {
        "targets": ("benchmarks/test_bench_variability.py",),
        "output": "BENCH_variability.json",
    },
    "arrays": {
        "targets": ("benchmarks/test_bench_arrays.py",),
        "output": "BENCH_arrays.json",
    },
}

#: --compare fails when a bench's fresh mean exceeds committed mean * this.
REGRESSION_FACTOR = 2.0

#: Rolling trajectory log appended to by ``--history``.
HISTORY_FILE = "BENCH_history.jsonl"


def run_benches(json_path: pathlib.Path, targets: tuple[str, ...]) -> None:
    """Run the bench selection, writing pytest-benchmark JSON."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    cmd = [
        sys.executable, "-m", "pytest", *targets,
        "-q", "--benchmark-only", f"--benchmark-json={json_path}",
    ]
    subprocess.run(cmd, cwd=REPO_ROOT, check=True, env=env)


def summarise(raw: dict) -> dict:
    """Distil pytest-benchmark output to one stats record per bench."""
    benches = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        benches[bench["name"]] = {
            "mean_s": stats["mean"],
            "min_s": stats["min"],
            "stddev_s": stats["stddev"],
            "rounds": stats["rounds"],
        }
        # Benches may attach quality facts (equivalence vs the paired
        # oracle, measured active-lane fraction) via benchmark.extra_info;
        # keep them next to the timings they qualify.
        if bench.get("extra_info"):
            benches[bench["name"]]["extra_info"] = bench["extra_info"]
    return {
        "schema": 1,
        "generated_by": "tools/bench_record.py",
        "recorded_utc": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "machine": {
            "node": platform.node(),
            "machine": platform.machine(),
            "python": platform.python_version(),
        },
        "benchmarks": benches,
    }


def compare(summary: dict, committed_path: pathlib.Path) -> int:
    """Fail (non-zero) on >2x mean regressions vs the committed summary.

    Only benches present in both summaries are compared, so quick-mode
    runs (which skip the slow sequential oracles) and newly added
    benches don't trip the gate.
    """
    if not committed_path.exists():
        print(f"compare: no committed {committed_path.name}; skipping "
              "regression gate")
        return 0
    committed = json.loads(committed_path.read_text())["benchmarks"]
    regressions = []
    compared = 0
    for name, stats in summary["benchmarks"].items():
        base = committed.get(name)
        if base is None:
            continue
        compared += 1
        if stats["mean_s"] > REGRESSION_FACTOR * base["mean_s"]:
            regressions.append(
                f"  {name}: {1e3 * stats['mean_s']:.1f} ms vs committed "
                f"{1e3 * base['mean_s']:.1f} ms "
                f"(> {REGRESSION_FACTOR:g}x)")
    if regressions:
        print(f"compare: {len(regressions)} regression(s) vs "
              f"{committed_path.name}:", file=sys.stderr)
        print("\n".join(regressions), file=sys.stderr)
        return 1
    print(f"compare: {compared} benches within {REGRESSION_FACTOR:g}x of "
          f"{committed_path.name}")
    return 0


def git_sha() -> str | None:
    """Current commit SHA, or None outside a git checkout."""
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                             cwd=REPO_ROOT, check=True,
                             capture_output=True, text=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    return out.stdout.strip() or None


def append_history(summary: dict, suite_name: str,
                   path: pathlib.Path) -> dict:
    """Append one trajectory record to ``BENCH_history.jsonl``.

    The record is a flat, diff-friendly line — suite, timestamp, git
    SHA, and the per-bench mean — so the file stays greppable and a
    plotting script can reconstruct the trajectory without touching
    the full snapshots.
    """
    record = {
        "schema": 1,
        "suite": suite_name,
        "recorded_utc": summary["recorded_utc"],
        "git_sha": git_sha(),
        "machine": summary["machine"]["node"],
        "mean_s": {name: stats["mean_s"]
                   for name, stats in sorted(summary["benchmarks"].items())},
    }
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="run a bench suite and record its BENCH_*.json summary")
    parser.add_argument("--suite", choices=sorted(SUITES),
                        default="kernels",
                        help="bench suite to run (default: kernels)")
    parser.add_argument("--check", action="store_true",
                        help="run the benches without writing the summary")
    parser.add_argument("--compare", action="store_true",
                        help="fail on >2x mean regression vs the committed "
                             "summary (implies --check)")
    parser.add_argument("--history", action="store_true",
                        help=f"also append a trajectory record to "
                             f"{HISTORY_FILE}")
    args = parser.parse_args(argv)
    suite = SUITES[args.suite]
    output = REPO_ROOT / suite["output"]

    with tempfile.TemporaryDirectory() as tmp:
        json_path = pathlib.Path(tmp) / "bench.json"
        run_benches(json_path, suite["targets"])
        summary = summarise(json.loads(json_path.read_text()))

    if not summary["benchmarks"]:
        print("error: no benchmarks were collected", file=sys.stderr)
        return 1
    if args.history:
        history_path = REPO_ROOT / HISTORY_FILE
        record = append_history(summary, args.suite, history_path)
        print(f"appended {args.suite} trajectory record "
              f"({len(record['mean_s'])} benches) to {history_path.name}")
    if args.compare:
        return compare(summary, output)
    if args.check:
        print(f"ok: {len(summary['benchmarks'])} benches ran "
              "(summary not written)")
        return 0
    output.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    slowest = max(summary["benchmarks"].items(),
                  key=lambda kv: kv[1]["mean_s"])
    print(f"wrote {output.name}: {len(summary['benchmarks'])} benches, "
          f"slowest {slowest[0]} at {1e3 * slowest[1]['mean_s']:.1f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
