"""Regenerate the golden regression baseline.

Collects the key physical metrics of both device families and writes
``tests/golden_baseline.json``.  Run deliberately — after an
*intentional* model change — and review the diff; the regression test
``tests/test_regression_golden.py`` pins the library to these values
within tolerance so accidental physics drift is caught immediately.

    python tools/generate_golden.py
"""

from __future__ import annotations

import json
import pathlib

from repro.circuit import InverterChain, noise_margins
from repro.scaling import build_sub_vth_family, build_super_vth_family


def family_metrics(family) -> dict:
    out: dict[str, dict[str, float]] = {}
    for design in family.designs:
        dev = design.nfet
        chain = InverterChain(design.inverter(0.3))
        mep = chain.minimum_energy_point()
        out[design.node.name] = {
            "l_poly_nm": dev.geometry.l_poly_nm,
            "ss_mv_per_dec": dev.ss_mv_per_dec,
            "n_sub_cm3": dev.profile.n_sub_cm3,
            "n_halo_cm3": dev.profile.n_halo_net_cm3,
            "vth_sat_mv": 1000.0 * dev.vth_sat_cc(design.node.vdd_nominal),
            "ioff_pa_per_um": 1e12 * dev.i_off_per_um(
                design.node.vdd_nominal),
            "snm_250mv_mv": 1000.0 * noise_margins(
                design.inverter(0.25)).snm,
            "vmin_mv": 1000.0 * mep.vmin,
            "energy_aj": 1e18 * mep.energy.total_j,
        }
    return out


def main() -> None:
    payload = {
        "super-vth": family_metrics(build_super_vth_family()),
        "sub-vth": family_metrics(build_sub_vth_family()),
    }
    path = (pathlib.Path(__file__).resolve().parent.parent
            / "tests" / "golden_baseline.json")
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
