"""Regenerate EXPERIMENTS.md from the live experiment registry.

Kept as a compatibility alias: the results pipeline now regenerates
EXPERIMENTS.md, docs/RESULTS.md and results.json together so the
documents cannot drift from each other.  This forwards to
``tools/generate_results_md.py`` / ``python -m repro report``.  Run
from the repository root::

    python tools/generate_experiments_md.py
"""

from __future__ import annotations

import sys

from generate_results_md import main

if __name__ == "__main__":
    sys.exit(main())
