"""Regenerate the provenance-tracked results docs from live runs.

Thin wrapper over ``python -m repro report``: runs every registered
experiment and rewrites EXPERIMENTS.md, docs/RESULTS.md and
results.json at the repository root.  Run from the repository root
(with ``src`` on PYTHONPATH or the package installed)::

    python tools/generate_results_md.py             # regenerate
    python tools/generate_results_md.py --check     # exit 2 on drift
    python tools/generate_results_md.py --jobs 4    # parallel workers
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="don't write; exit 2 if committed docs "
                             "are stale")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    args = parser.parse_args(argv)

    from repro.cli import main as repro_main
    forwarded = ["report", "--root", str(REPO_ROOT),
                 "--jobs", str(args.jobs)]
    if args.check:
        forwarded.append("--check")
    return repro_main(forwarded)


if __name__ == "__main__":
    sys.exit(main())
