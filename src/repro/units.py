"""Engineering-notation helpers.

Device papers quote quantities like ``100pA/um``, ``2.1nm`` and
``80mV/dec``.  This module provides a tiny, dependency-free parser and
formatter for SI-prefixed magnitudes so that the experiment layer can
echo numbers exactly the way the paper prints them.
"""

from __future__ import annotations

import math
import re

from .errors import ParameterError

#: SI prefixes, prefix -> multiplier.
SI_PREFIXES: dict[str, float] = {
    "y": 1e-24, "z": 1e-21, "a": 1e-18, "f": 1e-15, "p": 1e-12,
    "n": 1e-9, "u": 1e-6, "µ": 1e-6, "m": 1e-3, "": 1.0,
    "k": 1e3, "M": 1e6, "G": 1e9, "T": 1e12, "P": 1e15,
}

#: Multiplier -> canonical prefix, for formatting.
_PREFIX_BY_EXP: dict[int, str] = {
    -24: "y", -21: "z", -18: "a", -15: "f", -12: "p", -9: "n",
    -6: "u", -3: "m", 0: "", 3: "k", 6: "M", 9: "G", 12: "T", 15: "P",
}

_QUANTITY_RE = re.compile(
    r"^\s*([+-]?\d+(?:\.\d*)?(?:[eE][+-]?\d+)?)\s*"
    r"(y|z|a|f|p|n|u|µ|m|k|M|G|T|P)?"
    r"([A-Za-zΩ%/.^\-0-9]*)\s*$"
)


def parse_quantity(text: str, expected_unit: str | None = None) -> float:
    """Parse ``"100pA"`` / ``"2.1nm"`` / ``"250mV"`` into a base-unit float.

    Parameters
    ----------
    text:
        Engineering-notation string.  The unit suffix is free-form
        (``A``, ``V``, ``A/um`` ...).
    expected_unit:
        When given, the parsed unit must match exactly (after stripping
        the SI prefix), otherwise :class:`ParameterError` is raised.

    >>> parse_quantity("100pA", "A")
    1e-10
    >>> parse_quantity("250mV", "V")
    0.25
    """
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise ParameterError(f"cannot parse quantity {text!r}")
    mantissa_text, prefix, unit = match.groups()
    prefix = prefix or ""
    # Heuristic: "m" is ambiguous between metre and milli.  We treat a
    # bare trailing "m" with no unit as metres only when no prefix fits,
    # but in this library every call passes an explicit unit, so the
    # ambiguity collapses: if the unit is empty and the prefix equals the
    # expected unit, reinterpret the prefix as the unit.
    if expected_unit is not None and unit == "" and prefix == expected_unit:
        prefix, unit = "", expected_unit
    # "2.1nm" with expected "nm": the regex reads prefix "n" + unit "m";
    # when the concatenation equals the expected unit there is no prefix.
    if (expected_unit is not None and unit != expected_unit
            and prefix + unit == expected_unit):
        prefix, unit = "", expected_unit
    if expected_unit is not None and unit != expected_unit:
        raise ParameterError(
            f"expected unit {expected_unit!r} but got {unit!r} in {text!r}"
        )
    value = float(mantissa_text) * SI_PREFIXES[prefix]
    return value


def format_quantity(value: float, unit: str = "", digits: int = 3) -> str:
    """Format a float with an SI prefix, e.g. ``1e-10 -> "100pA"``.

    >>> format_quantity(1e-10, "A")
    '100pA'
    >>> format_quantity(0.25, "V")
    '250mV'
    """
    if value == 0:
        return f"0{unit}"
    if math.isnan(value) or math.isinf(value):
        return f"{value}{unit}"
    exponent = int(math.floor(math.log10(abs(value)) / 3.0) * 3)
    exponent = max(-24, min(15, exponent))
    prefix = _PREFIX_BY_EXP[exponent]
    scaled = value / (10.0 ** exponent)
    text = f"{scaled:.{digits}g}"
    return f"{text}{prefix}{unit}"


def per_micron(value_per_cm: float) -> float:
    """Convert a per-cm-of-width quantity to per-µm (e.g. A/cm -> A/µm)."""
    return value_per_cm * 1.0e-4


def per_cm(value_per_um: float) -> float:
    """Convert a per-µm-of-width quantity to per-cm (e.g. A/µm -> A/cm)."""
    return value_per_um * 1.0e4
