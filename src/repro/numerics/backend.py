"""Array-namespace resolution and gather/scatter primitives.

The root-solve core is written against the small intersection of the
array API standard that numpy, cupy and jax.numpy all provide.  The
namespace is resolved per call — ``array_namespace`` duck-types the
operands via ``__array_namespace__`` and falls back to numpy — so the
backend is chosen by the arrays the caller passes in, never by global
state.

``scatter`` hides the one real divergence between backends: in-place
assignment (numpy, cupy) vs functional ``.at[idx].set`` updates (jax).
Callers must treat the input array as consumed and use the return
value, which makes the same code correct under both disciplines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["array_namespace", "as_float_copy", "flatnonzero", "gather",
           "scatter"]


def array_namespace(*arrays, xp=None):
    """The array module the solver should compute with.

    An explicit ``xp`` wins; otherwise the first operand exposing
    ``__array_namespace__`` chooses (numpy >= 2, cupy >= 13, jax all
    report themselves); plain scalars and lists fall back to numpy.
    """
    if xp is not None:
        return xp
    for arr in arrays:
        probe = getattr(arr, "__array_namespace__", None)
        if probe is not None:
            return probe()
    return np


def as_float_copy(xp, values):
    """A float64, definitely-owned copy of ``values`` under ``xp``.

    The solvers mutate their bracket arrays through :func:`scatter`,
    so they must never alias caller memory.
    """
    if xp is np:
        return np.array(values, dtype=float, copy=True)
    return xp.asarray(values, dtype=xp.float64, copy=True)


def flatnonzero(xp, mask):
    """Indices of the true lanes of a 1-D boolean mask."""
    fn = getattr(xp, "flatnonzero", None)
    if fn is not None:
        return fn(mask)
    return xp.nonzero(xp.reshape(mask, (-1,)))[0]


def gather(arr, idx):
    """The lanes ``idx`` of ``arr`` (integer take; works on every backend)."""
    return arr[idx]


def scatter(arr, idx, values):
    """``arr`` with lanes ``idx`` replaced by ``values``.

    In-place under numpy/cupy, functional under jax (``.at`` update);
    either way the caller must keep using the *returned* array.
    """
    at = getattr(arr, "at", None)
    if at is not None:
        return at[idx].set(values)
    arr[idx] = values
    return arr
