"""The masked root-solve core: gathered bisection, Illinois, Newton.

Every solver here shares the same skeleton: a 1-D stack of independent
scalar root problems, an index array of unconverged lanes, and one
residual evaluation per sweep over *only* those lanes.  The residual
callback signature is ``residual(x, idx)`` — ``x`` holds the gathered
abscissae and ``idx`` the lane indices they belong to — so callers
slice their per-lane parameters to match (``targets[idx]``).

Conventions
-----------
* Residuals are monotone **increasing** per lane; a bracket is feasible
  iff ``residual(lo) <= 0 <= residual(hi)``.  (Decreasing residuals
  negate at the call site; IEEE negation is exact, so the iterate
  sequence is bitwise unchanged.)
* Lanes whose initial bracket is already at or below ``xtol`` never
  enter the active set: their root is the bracket midpoint.  Warm
  starts exploit this — a sign-verified bracket of width <= ``xtol``
  (e.g. replayed from the disk spill) retires instantly with the same
  midpoint a cold solve would have produced.
* Equivalence: for lanes present in both, the gathered iteration
  reproduces the retired masked loops bitwise, because all residuals
  are elementwise and gather/scatter only re-indexes them.

Counters: each sweep bumps ``numerics.total_lanes`` by the stack width
and ``numerics.active_lanes`` by the lanes actually evaluated; their
ratio is the measured active-set compression.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import perf
from .backend import array_namespace, as_float_copy, flatnonzero, scatter

__all__ = ["BracketResult", "WarmStarts", "bisect_masked",
           "bisect_illinois", "newton_safeguarded"]

#: Hard sweep cap of :func:`bisect_illinois` (bisection alone would
#: need ~45 sweeps to cross typical bounds; Illinois converges sooner).
MAX_SWEEPS_DEFAULT: int = 80


@dataclass(frozen=True)
class WarmStarts:
    """Per-lane warm-start brackets for :func:`bisect_illinois`.

    ``mask`` selects the lanes with a candidate bracket; ``lo`` /
    ``hi`` are read only where it is set.  Brackets are sign-verified
    before use and fall back to the full bounds when stale, so warm
    starts can only cost performance, never correctness.
    """

    lo: object
    hi: object
    mask: object


@dataclass(frozen=True)
class BracketResult:
    """Outcome of one :func:`bisect_illinois` stack solve.

    ``root`` is meaningful only where ``feasible``.  ``r_lo`` /
    ``r_hi`` are the residuals at the *full* bounds; lanes whose
    sign-verified warm bracket already straddled report ``-inf`` /
    ``+inf`` sentinels instead (monotonicity proves the full bounds
    straddle too).  ``warm_used`` marks the lanes whose warm bracket
    survived verification; ``sweeps`` counts executed sweeps.
    """

    root: object
    lo: object
    hi: object
    feasible: object
    r_lo: object
    r_hi: object
    warm_used: object
    sweeps: int


def _lane_count(idx) -> int:
    return int(idx.shape[0])


def bisect_masked(residual, lo, hi, *, xtol: float,
                  max_sweeps: int | None = None, sweep_counter: str | None = None,
                  xp=None):
    """Gathered bisection on monotone-increasing per-lane residuals.

    ``lo`` / ``hi`` are 1-D bracket arrays; each bracket must contain
    its lane's sign change (lanes pinned by the caller arrive with a
    collapsed bracket and never activate).  Returns bracket midpoints.

    ``sweep_counter`` names an optional perf counter bumped once per
    executed sweep, preserving the retired callers' counter semantics.
    """
    xp = array_namespace(lo, hi, xp=xp)
    lo = as_float_copy(xp, lo)
    hi = as_float_copy(xp, hi)
    n = _lane_count(lo)
    if max_sweeps is None:
        max_width = float(xp.max(hi - lo)) if n else 0.0
        max_sweeps = max(int(math.ceil(math.log2(
            max(max_width, xtol) / xtol))) + 2, 1)
    idx = flatnonzero(xp, (hi - lo) > xtol)
    for _ in range(max_sweeps):
        live = _lane_count(idx)
        if not live:
            break
        mid = 0.5 * (lo[idx] + hi[idx])
        neg = residual(mid, idx) < 0.0
        neg_i = flatnonzero(xp, neg)
        pos_i = flatnonzero(xp, ~neg)
        lo = scatter(lo, idx[neg_i], mid[neg_i])
        hi = scatter(hi, idx[pos_i], mid[pos_i])
        idx = idx[flatnonzero(xp, (hi[idx] - lo[idx]) > xtol)]
        perf.bump("numerics.total_lanes", n)
        perf.bump("numerics.active_lanes", live)
        if sweep_counter is not None:
            perf.bump(sweep_counter)  # repro: noqa[RPR006] caller passes a registered name
    return 0.5 * (lo + hi)


def bisect_illinois(residual, lo, hi, *, xtol: float,
                    warm_starts: WarmStarts | None = None,
                    warmup_sweeps: int = 0,
                    max_sweeps: int = MAX_SWEEPS_DEFAULT,
                    sweep_counter: str | None = None, xp=None
                    ) -> BracketResult:
    """Warm-started bracketing solve: bisection, then Illinois polish.

    ``lo`` / ``hi`` are the *full* per-lane bounds; ``warm_starts``
    optionally narrows lanes to cached brackets, which are
    sign-verified here (stale lanes fall back to the full bounds at
    the cost of one gathered residual pass).  The first
    ``warmup_sweeps`` sweeps are pure bisection — false position is
    badly skewed while the bracket still spans the residual's
    exponential tails — after which the Illinois (modified false
    position) proposal is used whenever it lands strictly inside the
    bracket, falling back to the midpoint otherwise, so the bracket
    shrinks every sweep and the result is never worse than bisection.
    """
    xp = array_namespace(lo, hi, xp=xp)
    lo_full = as_float_copy(xp, lo)
    hi_full = as_float_copy(xp, hi)
    n = _lane_count(lo_full)
    if warm_starts is None:
        warm = xp.zeros(n, dtype=xp.bool)
        lo = as_float_copy(xp, lo_full)
        hi = as_float_copy(xp, hi_full)
    else:
        warm = xp.asarray(warm_starts.mask, dtype=xp.bool)
        lo = xp.where(warm, xp.asarray(warm_starts.lo, dtype=xp.float64),
                      lo_full)
        hi = xp.where(warm, xp.asarray(warm_starts.hi, dtype=xp.float64),
                      hi_full)
    all_lanes = xp.arange(n)
    rl = residual(lo, all_lanes)
    rh = residual(hi, all_lanes)
    # Stale warm brackets (no longer straddling) fall back to the full
    # bounds: one extra gathered residual pass, never a wrong root.
    stale = warm & ~((rl <= 0.0) & (rh >= 0.0))
    sidx = flatnonzero(xp, stale)
    if _lane_count(sidx):
        lo = scatter(lo, sidx, lo_full[sidx])
        hi = scatter(hi, sidx, hi_full[sidx])
        rl = scatter(rl, sidx, residual(lo_full[sidx], sidx))
        rh = scatter(rh, sidx, residual(hi_full[sidx], sidx))
        warm = warm & ~stale
    # Reported bound residuals: a sign-verified warm bracket proves the
    # full bounds straddle too (the residual is monotone), so warm
    # lanes report sentinels rather than re-evaluating the bounds.
    ret_r_lo = xp.where(warm, -xp.inf, rl)
    ret_r_hi = xp.where(warm, xp.inf, rh)

    feasible = (rl <= 0.0) & (rh >= 0.0)
    # Illinois side memory: +1 / -1 when the last two updates replaced
    # the same bracket end, which triggers the residual-halving trick.
    side = xp.zeros(n, dtype=xp.int8)
    idx = flatnonzero(xp, feasible & ((hi - lo) > xtol))
    sweeps = 0
    while _lane_count(idx) and sweeps < max_sweeps:
        live = _lane_count(idx)
        lo_a, hi_a = lo[idx], hi[idx]
        rl_a, rh_a = rl[idx], rh[idx]
        side_a = side[idx]
        mid = 0.5 * (lo_a + hi_a)
        x = mid
        if sweeps >= warmup_sweeps:
            denom = rh_a - rl_a
            falsi = ((lo_a * rh_a - hi_a * rl_a)
                     / xp.where(denom == 0, 1.0, denom))
            use = ((denom != 0) & xp.isfinite(falsi)
                   & (falsi > lo_a) & (falsi < hi_a))
            x = xp.where(use, falsi, mid)
        r = residual(x, idx)
        move_lo = r < 0.0
        move_hi = ~move_lo
        # Illinois: halve the retained end's residual when the same end
        # survives twice in a row, preventing false-position stagnation.
        rh_a = xp.where(move_lo & (side_a == 1), 0.5 * rh_a, rh_a)
        rl_a = xp.where(move_hi & (side_a == -1), 0.5 * rl_a, rl_a)
        side_a = xp.astype(xp.where(move_lo, 1, -1), xp.int8)
        lo_a = xp.where(move_lo, x, lo_a)
        rl_a = xp.where(move_lo, r, rl_a)
        hi_a = xp.where(move_hi, x, hi_a)
        rh_a = xp.where(move_hi, r, rh_a)
        lo = scatter(lo, idx, lo_a)
        hi = scatter(hi, idx, hi_a)
        rl = scatter(rl, idx, rl_a)
        rh = scatter(rh, idx, rh_a)
        side = scatter(side, idx, side_a)
        idx = idx[flatnonzero(xp, (hi_a - lo_a) > xtol)]
        sweeps += 1
        perf.bump("numerics.total_lanes", n)
        perf.bump("numerics.active_lanes", live)
        if sweep_counter is not None:
            perf.bump(sweep_counter)  # repro: noqa[RPR006] caller passes a registered name
    return BracketResult(root=0.5 * (lo + hi), lo=lo, hi=hi,
                         feasible=feasible, r_lo=ret_r_lo, r_hi=ret_r_hi,
                         warm_used=warm, sweeps=sweeps)


def newton_safeguarded(residual_jacobian, lo, hi, *, xtol: float,
                       max_sweeps: int = MAX_SWEEPS_DEFAULT,
                       sweep_counter: str | None = None, xp=None):
    """Bracketed Newton with bisection fallback over a stack of lanes.

    ``residual_jacobian(x, idx)`` returns ``(r, dr)`` for the gathered
    lanes.  Each sweep proposes a Newton step from the current bracket
    midpoint and keeps it only when it lands strictly inside the lane's
    bracket (and the derivative is finite and nonzero); otherwise the
    lane bisects.  Either way the evaluated point's residual sign
    shrinks the bracket, so convergence is at worst bisection and the
    usual quadratic rate near simple roots.  Returns bracket midpoints.

    This is the derivative-bearing variant of :func:`bisect_masked`
    for residuals with a cheap analytic Jacobian (the batched Poisson
    outer loop is the canonical shape); the bisection solvers remain
    the right tool for the derivative-free leakage residuals.
    """
    xp = array_namespace(lo, hi, xp=xp)
    lo = as_float_copy(xp, lo)
    hi = as_float_copy(xp, hi)
    n = _lane_count(lo)
    idx = flatnonzero(xp, (hi - lo) > xtol)
    for _ in range(max_sweeps):
        live = _lane_count(idx)
        if not live:
            break
        lo_a, hi_a = lo[idx], hi[idx]
        mid = 0.5 * (lo_a + hi_a)
        r, dr = residual_jacobian(mid, idx)
        step_ok = xp.isfinite(dr) & (dr != 0)
        newton = mid - r / xp.where(step_ok, dr, 1.0)
        use = step_ok & xp.isfinite(newton) & (newton > lo_a) & (newton < hi_a)
        x = xp.where(use, newton, mid)
        r_x, _ = residual_jacobian(x, idx)
        move_lo = r_x < 0.0
        lo_a = xp.where(move_lo, x, lo_a)
        hi_a = xp.where(~move_lo, x, hi_a)
        lo = scatter(lo, idx, lo_a)
        hi = scatter(hi, idx, hi_a)
        idx = idx[flatnonzero(xp, (hi_a - lo_a) > xtol)]
        perf.bump("numerics.total_lanes", n)
        perf.bump("numerics.active_lanes", live)
        if sweep_counter is not None:
            perf.bump(sweep_counter)  # repro: noqa[RPR006] caller passes a registered name
    return 0.5 * (lo + hi)
