"""Shared masked root-solve core with active-set compression.

PRs 1, 3 and 4 each hand-rolled the same masked vectorised
bisection/Newton idiom (the batched Poisson outer loop, the circuit
current-balance bisection, the doping bisection+Illinois).  This
package is the single implementation all batched engines now call:

* :func:`bisect_masked` — pure masked bisection (the circuit balance
  and constant-current V_th solves),
* :func:`bisect_illinois` — bisection warm-up plus safeguarded
  Illinois polish with warm-start brackets (the doping solves),
* :func:`newton_safeguarded` — bracketed Newton with bisection
  fallback (the seam for derivative-bearing residuals).

Two properties distinguish it from the loops it replaced:

1. **Active-set compression**: each sweep *gathers* the unconverged
   lanes (``numpy.flatnonzero``) and hands the residual callback only
   the live subset, instead of evaluating every lane under a mask.
   On tail-heavy stacks most lanes retire early and stop costing
   device physics.  Per-lane arithmetic is unchanged — every residual
   in this repository is elementwise — so gathered and masked paths
   agree bitwise.
2. **Array-namespace seam**: the solvers resolve their array module
   from the operands (``__array_namespace__`` duck typing, numpy
   default) so a cupy/jax backend drops in without touching callers.

Residual callbacks receive ``(x, idx)``: the gathered abscissae and
the integer indices of the lanes they belong to, so closures can slice
their per-lane parameters (``targets[idx]``) to match.

Perf counters ``numerics.active_lanes`` / ``numerics.total_lanes``
record lanes evaluated vs lanes carried per sweep; their ratio is the
measured compression (see the provenance footers in docs/RESULTS.md).
"""

from .backend import array_namespace, gather, scatter
from .rootsolve import (
    BracketResult,
    WarmStarts,
    bisect_illinois,
    bisect_masked,
    newton_safeguarded,
)

__all__ = [
    "array_namespace",
    "gather",
    "scatter",
    "BracketResult",
    "WarmStarts",
    "bisect_illinois",
    "bisect_masked",
    "newton_safeguarded",
]
