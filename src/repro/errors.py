"""Exception hierarchy for the reproduction library.

A narrow set of exception types lets callers distinguish between user
error (bad parameters), physics-domain violations (a model evaluated
outside its validity range), and numerical failures (a solver that did
not converge).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ParameterError(ReproError, ValueError):
    """A user-supplied parameter is invalid (wrong sign, out of range)."""


class ModelDomainError(ReproError, ValueError):
    """A physical model was evaluated outside its domain of validity."""


class LostRegenerationError(ParameterError):
    """An inverter VTC has lost regeneration (no usable noise margin).

    Deep-subthreshold supplies (or large V_th perturbations) can
    degenerate the VTC until no gain = -1 noise margin exists; callers
    such as the Monte Carlo and service layers treat this as a
    meaningful "zero margin" outcome rather than a defect, so they
    need to recognise it *structurally* instead of matching message
    strings.  Construct instances through
    :func:`repro.circuit.batch.lost_regeneration_error`, which pairs
    each code with its canonical message.

    Attributes
    ----------
    code:
        Structured failure code, aligned with the batched kernel's
        ``BatchNoiseMargins.lost_code``: ``1`` — the VTC never
        reaches gain -1; ``2`` — the gain = -1 crossing hits the
        sweep boundary.
    """

    def __init__(self, message: str, *, code: int) -> None:
        super().__init__(message)
        self.code = code


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Final residual norm, if available.
    """

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class OptimizationError(ReproError, RuntimeError):
    """A design-space optimisation could not satisfy its constraints."""


class ExperimentError(ReproError, RuntimeError):
    """An experiment could not be assembled or executed."""
