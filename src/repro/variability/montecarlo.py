"""Monte Carlo circuit variability under RDF V_th fluctuations.

Each trial perturbs the NFET and PFET thresholds of an inverter by
independent Gaussian offsets with the RDF sigma of each device, then
evaluates delay or SNM.  Deep in subthreshold the drive current is
exponential in V_th, so delay distributions become log-normal-like
with large spreads — the variability pressure the paper's introduction
describes.

Both distributions default to the array-native kernels of
:mod:`repro.circuit.batch` (``solver="batch"``): the full trial
population is evaluated as one batched solve, with no per-trial
``Inverter`` reconstruction.  ``solver="sequential"`` keeps the
original trial-loop implementations as correctness oracles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.batch import noise_margins_batch, validate_solver
from ..circuit.delay import analytic_delay, analytic_delay_batch
from ..circuit.inverter import Inverter
from ..circuit.snm import noise_margins
from ..errors import LostRegenerationError, ParameterError
from .rdf import rdf_sigma_vth


@dataclass(frozen=True)
class MonteCarloResult:
    """Summary of a Monte Carlo metric distribution.

    Attributes
    ----------
    samples:
        Raw per-trial metric values.
    mean / std / p05 / p50 / p95:
        Distribution summary statistics.
    """

    samples: np.ndarray
    mean: float
    std: float
    p05: float
    p50: float
    p95: float

    @property
    def sigma_over_mean(self) -> float:
        """Relative spread sigma/mu — the paper's variability currency."""
        return self.std / self.mean

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "MonteCarloResult":
        """Build the summary from raw samples."""
        arr = np.asarray(samples, dtype=float)
        if arr.size < 2:
            raise ParameterError("need at least 2 Monte Carlo samples")
        return cls(
            samples=arr,
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)),
            p05=float(np.percentile(arr, 5)),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
        )


def sample_vth_offsets(inverter: Inverter, n_trials: int,
                       seed: int = 2007) -> tuple[np.ndarray, np.ndarray]:
    """Draw (NFET, PFET) V_th offset pairs for ``n_trials`` trials.

    The NFET and PFET draws come from two *spawned* child streams of
    the seed, so the PFET population is stable when ``n_trials``
    changes (with a single shared stream, growing the NFET draw would
    shift every PFET sample).  Compatibility note: the split changes
    the values drawn for any given seed relative to the earlier
    single-stream implementation.
    """
    if n_trials < 1:
        raise ParameterError("need at least one trial")
    seq_n, seq_p = np.random.SeedSequence(seed).spawn(2)
    rng_n = np.random.default_rng(seq_n)
    rng_p = np.random.default_rng(seq_p)
    sigma_n = rdf_sigma_vth(inverter.nfet)
    sigma_p = rdf_sigma_vth(inverter.pfet)
    return (rng_n.normal(0.0, sigma_n, n_trials),
            rng_p.normal(0.0, sigma_p, n_trials))


def _perturbed(inverter: Inverter, dn: float, dp: float) -> Inverter:
    return Inverter(
        nfet=inverter.nfet.with_vth_offset(float(dn)),
        pfet=inverter.pfet.with_vth_offset(float(dp)),
        vdd=inverter.vdd,
    )


def delay_distribution(inverter: Inverter, n_trials: int = 200,
                       seed: int = 2007,
                       solver: str = "batch") -> MonteCarloResult:
    """FO1 analytic-delay distribution under RDF [s]."""
    validate_solver(solver)
    offs_n, offs_p = sample_vth_offsets(inverter, n_trials, seed)
    c_load = inverter.load_capacitance(fanout=1)
    if solver == "batch":
        samples = analytic_delay_batch(inverter, offs_n, offs_p, c_load)
        return MonteCarloResult.from_samples(samples)
    samples = np.empty(n_trials)
    for i, (dn, dp) in enumerate(zip(offs_n, offs_p)):
        samples[i] = analytic_delay(_perturbed(inverter, dn, dp), c_load)
    return MonteCarloResult.from_samples(samples)


def snm_distribution(inverter: Inverter, n_trials: int = 100,
                     seed: int = 2007,
                     solver: str = "batch") -> MonteCarloResult:
    """Inverter SNM distribution under RDF [V].

    Trials where the perturbed inverter loses regeneration — the
    scalar path raises the structured
    :class:`repro.errors.LostRegenerationError`, whose ``code``
    mirrors the batch kernel's ``lost_code`` — are recorded as zero
    noise margin; any other :class:`ParameterError` is a genuine
    defect and propagates.
    """
    validate_solver(solver)
    offs_n, offs_p = sample_vth_offsets(inverter, n_trials, seed)
    if solver == "batch":
        nm = noise_margins_batch(inverter, offs_n, offs_p)
        samples = np.where(nm.lost, 0.0, nm.snm)
        return MonteCarloResult.from_samples(samples)
    samples = np.empty(n_trials)
    for i, (dn, dp) in enumerate(zip(offs_n, offs_p)):
        try:
            samples[i] = noise_margins(
                _perturbed(inverter, dn, dp), solver="sequential").snm
        except LostRegenerationError:
            samples[i] = 0.0
    return MonteCarloResult.from_samples(samples)
