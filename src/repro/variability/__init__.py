"""Variability extension: random dopant fluctuation and Monte Carlo.

The paper's introduction notes that "timing variability grows
dramatically as V_dd reduces, forcing the adoption of pessimistic
design practices".  This extension quantifies that observation for
both scaling strategies: RDF-induced sigma(V_th) per device, and Monte
Carlo distributions of sub-V_th delay and SNM.
"""

from .rdf import rdf_sigma_vth, avt_coefficient
from .montecarlo import (
    MonteCarloResult,
    sample_vth_offsets,
    delay_distribution,
    snm_distribution,
)
from .yield_model import (
    TimingMarginReport,
    timing_margin,
    gate_log_delay_sigma,
    path_log_delay_sigma,
)
from .sampler import (
    SobolNormalStream,
    PseudoNormalStream,
    qmc_vth_offsets,
)
from .importance import (
    FailurePoint,
    YieldEstimate,
    estimate_failure_probability,
    failure_probability,
    find_failure_shift,
    sigma_level,
)
from .tails import (
    TailCurve,
    cell_failure_rate,
    failure_indicator,
    failure_rate_curve,
)

__all__ = [
    "rdf_sigma_vth",
    "avt_coefficient",
    "MonteCarloResult",
    "sample_vth_offsets",
    "delay_distribution",
    "snm_distribution",
    "TimingMarginReport",
    "timing_margin",
    "gate_log_delay_sigma",
    "path_log_delay_sigma",
    "SobolNormalStream",
    "PseudoNormalStream",
    "qmc_vth_offsets",
    "FailurePoint",
    "YieldEstimate",
    "estimate_failure_probability",
    "failure_probability",
    "find_failure_shift",
    "sigma_level",
    "TailCurve",
    "cell_failure_rate",
    "failure_indicator",
    "failure_rate_curve",
]
