"""Variability extension: random dopant fluctuation and Monte Carlo.

The paper's introduction notes that "timing variability grows
dramatically as V_dd reduces, forcing the adoption of pessimistic
design practices".  This extension quantifies that observation for
both scaling strategies: RDF-induced sigma(V_th) per device, and Monte
Carlo distributions of sub-V_th delay and SNM.
"""

from .rdf import rdf_sigma_vth, avt_coefficient
from .montecarlo import (
    MonteCarloResult,
    sample_vth_offsets,
    delay_distribution,
    snm_distribution,
)
from .yield_model import (
    TimingMarginReport,
    timing_margin,
    gate_log_delay_sigma,
    path_log_delay_sigma,
)

__all__ = [
    "rdf_sigma_vth",
    "avt_coefficient",
    "MonteCarloResult",
    "sample_vth_offsets",
    "delay_distribution",
    "snm_distribution",
    "TimingMarginReport",
    "timing_margin",
    "gate_log_delay_sigma",
    "path_log_delay_sigma",
]
