"""Cell failure rates at 5-6 sigma: tail curves over supply voltage.

This is the product-facing face of the rare-event engine: a
million-cell subthreshold memory ships on its *per-cell* failure
probability at 5-6 sigma, far beyond what the brute-force Monte Carlo
of :mod:`repro.variability.montecarlo` can resolve.  The module wires
the two physical failure modes of the paper's variability story into
the importance-sampling estimator of
:mod:`repro.variability.importance`:

* **SNM collapse** — the perturbed inverter's static noise margin
  falls below a required margin (or regeneration is lost outright),
  evaluated with the batched VTC kernel ``noise_margins_batch``; and
* **delay exceedance** — the perturbed cell misses its timing window,
  ``t_p > t_max``, evaluated with ``analytic_delay_batch`` (deep in
  subthreshold the delay is exponential in ΔV_th, so this tail is
  heavy and V_dd-sensitive).

Both indicators operate on *standardised* offsets ``u`` (units of each
device's RDF sigma), which is the space the mean-shift search and the
likelihood-ratio weights live in.  :func:`failure_rate_curve` sweeps
V_dd and returns sigma-level failure-rate curves with confidence
intervals — the data behind the ``ext_yield`` experiment and the
``repro yield`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import perf
from ..circuit.batch import noise_margins_batch
from ..circuit.delay import analytic_delay, analytic_delay_batch
from ..circuit.inverter import Inverter
from ..errors import ParameterError
from .importance import METHODS, YieldEstimate, estimate_failure_probability
from .rdf import rdf_sigma_vth

#: Supported failure modes of the tail estimator.
TAIL_MODES = ("snm", "delay")

#: Default SNM-mode scan resolution / tolerance.  The batched VTC
#: kernel at its documentation-grade defaults (101-point scan, 1e-10
#: bracket) is accurate far beyond what a failure *indicator* needs;
#: these coarser settings change the extracted SNM by < 1e-4 V while
#: making the indicator ~30x cheaper per trial.
SNM_SCAN_DEFAULT = 21
SNM_XTOL_DEFAULT = 1e-5


def _sigmas(inverter: Inverter) -> tuple[float, float]:
    return rdf_sigma_vth(inverter.nfet), rdf_sigma_vth(inverter.pfet)


def snm_failure_indicator(inverter: Inverter, snm_min_v: float = 0.0,
                          n_scan: int = SNM_SCAN_DEFAULT,
                          xtol: float = SNM_XTOL_DEFAULT
                          ) -> Callable[[np.ndarray], np.ndarray]:
    """SNM-collapse failure indicator over standardised offsets.

    Returns a callable mapping an ``(n, 2)`` array of standardised
    (NFET, PFET) V_th offsets to a boolean mask that is True where the
    perturbed inverter either loses regeneration entirely or extracts
    an SNM below ``snm_min_v`` [V].  Each call is one batched VTC
    solve (``noise_margins_batch`` with ``n_scan`` scan points and
    bracket tolerance ``xtol``).
    """
    if snm_min_v < 0.0:
        raise ParameterError("snm_min_v cannot be negative")
    sigma_n, sigma_p = _sigmas(inverter)

    def indicator(u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        nm = noise_margins_batch(inverter, sigma_n * u[:, 0],
                                 sigma_p * u[:, 1], n_scan=n_scan,
                                 xtol=xtol)
        return nm.lost | np.where(nm.lost, False, nm.snm < snm_min_v)

    return indicator


def delay_failure_indicator(inverter: Inverter,
                            t_max_s: float | None = None,
                            slowdown: float = 10.0
                            ) -> Callable[[np.ndarray], np.ndarray]:
    """Delay-exceedance failure indicator over standardised offsets.

    True where the perturbed cell's Eq. 4 delay exceeds ``t_max_s``
    [s]; when ``t_max_s`` is ``None`` the window defaults to
    ``slowdown`` times the unperturbed cell's delay — "the cell is
    10x slower than nominal" is the timing-failure currency of the
    paper's margin discussion.  Each call is one vectorised
    ``analytic_delay_batch`` evaluation.
    """
    if t_max_s is None:
        if slowdown <= 1.0:
            raise ParameterError("slowdown must exceed 1")
        t_max_s = slowdown * analytic_delay(inverter)
    if t_max_s <= 0.0:
        raise ParameterError("t_max_s must be positive")
    sigma_n, sigma_p = _sigmas(inverter)
    c_load = inverter.load_capacitance(fanout=1)
    t_max = float(t_max_s)

    def indicator(u: np.ndarray) -> np.ndarray:
        u = np.asarray(u, dtype=float)
        delays = analytic_delay_batch(inverter, sigma_n * u[:, 0],
                                      sigma_p * u[:, 1], c_load)
        return delays > t_max

    return indicator


def failure_indicator(inverter: Inverter, mode: str = "delay",
                      snm_min_v: float = 0.0,
                      t_max_s: float | None = None,
                      slowdown: float = 10.0,
                      n_scan: int = SNM_SCAN_DEFAULT,
                      xtol: float = SNM_XTOL_DEFAULT
                      ) -> Callable[[np.ndarray], np.ndarray]:
    """Build the failure indicator for one of :data:`TAIL_MODES`.

    ``snm_min_v`` [V] parameterises the ``"snm"`` mode; ``t_max_s``
    [s] (or the ``slowdown`` fallback) parameterises ``"delay"``.
    """
    if mode == "snm":
        return snm_failure_indicator(inverter, snm_min_v=snm_min_v,
                                     n_scan=n_scan, xtol=xtol)
    if mode == "delay":
        return delay_failure_indicator(inverter, t_max_s=t_max_s,
                                       slowdown=slowdown)
    raise ParameterError(f"unknown tail mode {mode!r}; "
                         f"choose one of {TAIL_MODES}")


def cell_failure_rate(inverter: Inverter, mode: str = "delay",
                      method: str = "qmc-is", n_trials: int = 2048,
                      seed: int = 2007, snm_min_v: float = 0.0,
                      t_max_s: float | None = None,
                      slowdown: float = 10.0,
                      n_scan: int = SNM_SCAN_DEFAULT,
                      xtol: float = SNM_XTOL_DEFAULT,
                      chunk_trials: int = 4096,
                      n_replicates: int = 8,
                      target_rel_err: float | None = None,
                      min_trials: int = 1024,
                      n_directions: int = 16,
                      r_max_sigma: float = 8.0) -> YieldEstimate:
    """Per-cell failure probability of one inverter at its supply.

    Convenience wrapper: builds the ``mode`` failure indicator
    (``snm_min_v`` [V] / ``t_max_s`` [s] as in
    :func:`failure_indicator`) and runs
    :func:`repro.variability.importance.estimate_failure_probability`
    with the given estimator ``method`` (:data:`METHODS`).
    """
    if method not in METHODS:
        raise ParameterError(f"unknown method {method!r}; "
                             f"choose one of {METHODS}")
    indicator = failure_indicator(inverter, mode=mode,
                                  snm_min_v=snm_min_v, t_max_s=t_max_s,
                                  slowdown=slowdown, n_scan=n_scan,
                                  xtol=xtol)
    return estimate_failure_probability(
        indicator, method=method, n_trials=n_trials, seed=seed,
        chunk_trials=chunk_trials, n_replicates=n_replicates,
        target_rel_err=target_rel_err, min_trials=min_trials,
        n_directions=n_directions, r_max_sigma=r_max_sigma)


@dataclass(frozen=True)
class TailCurve:
    """Failure-rate-vs-V_dd curve of one design and failure mode.

    Attributes
    ----------
    label:
        Human-readable flow/design tag (e.g. ``"sub-vth 32nm"``).
    mode:
        One of :data:`TAIL_MODES`.
    vdd_v:
        Supply grid [V].
    p_fail:
        Estimated per-cell failure probability at each supply.
    sigma:
        One-sided sigma equivalents (``inf`` where no failure was
        reachable).
    ci_lo / ci_hi:
        95 % confidence bounds on ``p_fail``.
    estimates:
        The full per-point :class:`YieldEstimate` records.
    """

    label: str
    mode: str
    vdd_v: np.ndarray
    p_fail: np.ndarray
    sigma: np.ndarray
    ci_lo: np.ndarray
    ci_hi: np.ndarray
    estimates: tuple[YieldEstimate, ...]


def failure_rate_curve(make_inverter: Callable[[float], Inverter],
                       vdd_grid_v: Sequence[float] | np.ndarray,
                       label: str, mode: str = "delay",
                       **kwargs) -> TailCurve:
    """Sweep V_dd and estimate the per-cell failure rate at each point.

    ``make_inverter`` maps a supply voltage to the design's inverter
    (scaling-flow designs expose exactly this as ``design.inverter``);
    ``vdd_grid_v`` [V] is the supply grid.  Remaining keyword
    arguments are forwarded to :func:`cell_failure_rate` — mode,
    estimator method, trial budget, thresholds.  Each grid point is an
    independent estimate from the same root seed, so the curve is
    byte-deterministic regardless of evaluation order.
    """
    grid = np.asarray(vdd_grid_v, dtype=float)
    if grid.ndim != 1 or grid.size < 1:
        raise ParameterError("need a 1-D, non-empty V_dd grid")
    estimates = []
    for vdd in grid:
        estimates.append(cell_failure_rate(make_inverter(float(vdd)),
                                           mode=mode, **kwargs))
        perf.bump("variability.tail_points")
    return TailCurve(
        label=label,
        mode=mode,
        vdd_v=grid,
        p_fail=np.array([e.p_fail for e in estimates]),
        sigma=np.array([e.sigma for e in estimates]),
        ci_lo=np.array([e.ci_lo for e in estimates]),
        ci_hi=np.array([e.ci_hi for e in estimates]),
        estimates=tuple(estimates),
    )
