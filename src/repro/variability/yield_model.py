"""Timing-margin and yield budgeting under sub-V_th variability.

The paper's introduction: variability "forces the adoption of
pessimistic design practices and large timing margins".  This module
turns the Monte-Carlo delay distributions into the designer-facing
number: the clock-margin multiplier needed for a target timing yield
across many critical paths.

In subthreshold, per-gate delay is exponential in a Gaussian V_th, so
path delay is (approximately) log-normal; for an N-gate path the
log-domain variance averages down as 1/N, and the chip-level margin is
set by the *maximum* of many such paths — both effects are modelled
here with standard normal statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import norm

from ..constants import thermal_voltage
from ..circuit.inverter import Inverter
from ..errors import ParameterError
from .rdf import rdf_sigma_vth


@dataclass(frozen=True)
class TimingMarginReport:
    """Margin budget for one technology/supply point.

    Attributes
    ----------
    sigma_ln_gate:
        Log-domain delay sigma of a single gate.
    sigma_ln_path:
        Log-domain sigma of an ``n_gates`` path (averages as 1/sqrt(N)).
    margin_multiplier:
        Clock period multiplier (vs the nominal path delay) for the
        target yield over ``n_paths`` independent critical paths.
    """

    sigma_ln_gate: float
    sigma_ln_path: float
    margin_multiplier: float
    n_gates: int
    n_paths: int
    yield_target: float


def gate_log_delay_sigma(inverter: Inverter) -> float:
    """Log-domain delay sigma of one gate under RDF.

    Subthreshold delay ~ exp(-V_th/(m v_T)) per device; with the NFET
    and PFET each driving one edge, the average-edge log-sigma is the
    RMS of the two devices' ``sigma_Vth/(m v_T)`` halved.
    """
    vt = thermal_voltage(inverter.nfet.temperature_k)
    s_n = rdf_sigma_vth(inverter.nfet) / (inverter.nfet.slope_factor * vt)
    s_p = rdf_sigma_vth(inverter.pfet) / (inverter.pfet.slope_factor * vt)
    return 0.5 * math.sqrt(s_n ** 2 + s_p ** 2)


def path_log_delay_sigma(inverter: Inverter, n_gates: int) -> float:
    """Log-domain sigma of an ``n_gates`` path (independent gates)."""
    if n_gates < 1:
        raise ParameterError("path needs at least one gate")
    return gate_log_delay_sigma(inverter) / math.sqrt(n_gates)


def timing_margin(inverter: Inverter, n_gates: int = 30,
                  n_paths: int = 1000,
                  yield_target: float = 0.999) -> TimingMarginReport:
    """Clock-margin multiplier for a target chip timing yield.

    The slowest of ``n_paths`` i.i.d. log-normal paths must meet
    timing with probability ``yield_target``; per-path quantile
    ``q = yield_target^(1/n_paths)`` gives the margin
    ``exp(z_q * sigma_ln_path)``.

    >>> # more paths or tighter yield -> more margin (see tests)
    """
    if not 0.5 < yield_target < 1.0:
        raise ParameterError("yield target must be in (0.5, 1)")
    if n_paths < 1:
        raise ParameterError("need at least one path")
    sigma_gate = gate_log_delay_sigma(inverter)
    sigma_path = path_log_delay_sigma(inverter, n_gates)
    per_path_quantile = yield_target ** (1.0 / n_paths)
    z = float(norm.ppf(per_path_quantile))
    multiplier = math.exp(z * sigma_path)
    return TimingMarginReport(
        sigma_ln_gate=sigma_gate,
        sigma_ln_path=sigma_path,
        margin_multiplier=multiplier,
        n_gates=n_gates,
        n_paths=n_paths,
        yield_target=yield_target,
    )


def margin_vs_supply(inverter: Inverter, vdd_values: list[float],
                     n_gates: int = 30, n_paths: int = 1000,
                     yield_target: float = 0.999) -> list[float]:
    """Margin multipliers across supplies (V_th sigma is bias-free, so
    in this first-order model the multiplier is supply-independent —
    the *absolute* margin still explodes with the exponential nominal
    delay, which is the paper's point)."""
    return [
        timing_margin(inverter.with_vdd(v), n_gates, n_paths,
                      yield_target).margin_multiplier
        for v in vdd_values
    ]
