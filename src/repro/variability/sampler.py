"""Seeded, chunk-invariant V_th offset sample streams (MC and QMC).

The rare-event estimator needs two properties the ad-hoc
``sample_vth_offsets`` helper cannot give it:

* **index addressing** — trial ``i`` of a stream must be the same
  numbers whether the stream is evaluated in one array of 10^5 trials
  or in 64 chunks of 2^11, so chunked (memory-flat) evaluation is
  byte-for-byte reproducible; and
* **low discrepancy** — a scrambled Sobol' sequence fills the
  (ΔV_th,n, ΔV_th,p) plane far more evenly than pseudo-random pairs,
  which tightens the tail estimator's confidence interval at equal
  trial count (the QMC half of the QMC+IS engine).

Both stream flavours address trials by absolute index: ``take(start,
count)`` always returns trials ``start .. start+count-1`` of the same
conceptual infinite stream.  The Sobol' stream fast-forwards a freshly
seeded generator; the pseudo-random stream derives one child
``SeedSequence`` per fixed-size block, so block ``k`` is independent
of how many trials were drawn before it.

Scrambling/entropy flows are all spawned from one root seed
(``np.random.SeedSequence(seed).spawn(...)``), mirroring the
per-device split of :func:`repro.variability.montecarlo.sample_vth_offsets`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np
from scipy.special import ndtri
from scipy.stats import qmc

from .. import perf
from ..circuit.inverter import Inverter
from ..errors import ParameterError
from .rdf import rdf_sigma_vth

#: Trials per pseudo-random block; block ``k`` of a stream is drawn
#: from child ``k`` of the stream's root ``SeedSequence``, making the
#: stream a pure function of (seed, trial index).
MC_BLOCK_TRIALS: int = 4096

#: Uniform clip bound before the normal inverse-CDF: keeps ndtri
#: finite (|z| <= ~8.2 sigma) without measurably biasing the stream.
_UNIFORM_EPS: float = 1e-16


def _clip_uniforms(u: np.ndarray) -> np.ndarray:
    return np.clip(u, _UNIFORM_EPS, 1.0 - _UNIFORM_EPS)


@dataclass(frozen=True)
class SobolNormalStream:
    """Scrambled-Sobol' stream of standard-normal trial pairs.

    Parameters
    ----------
    seed:
        Root seed; the scrambling entropy is spawn child
        ``replicate`` of ``SeedSequence(seed)``.
    replicate:
        Which independent re-scrambling of the sequence this stream
        is.  Randomised-QMC error estimation averages a handful of
        replicates and reads the spread between them.
    dim:
        Number of coordinates per trial (one per perturbed device).
    """

    seed: int = 2007
    replicate: int = 0
    dim: int = 2

    def __post_init__(self) -> None:
        if self.replicate < 0:
            raise ParameterError("replicate must be >= 0")
        if self.dim < 1:
            raise ParameterError("need at least one dimension")

    def _engine(self) -> qmc.Sobol:
        children = np.random.SeedSequence(self.seed).spawn(
            self.replicate + 1)
        rng = np.random.default_rng(children[self.replicate])
        return qmc.Sobol(d=self.dim, scramble=True, seed=rng)

    def take(self, start: int, count: int) -> np.ndarray:
        """Standard-normal trials ``start .. start+count-1``, shape
        ``(count, dim)``.

        Identical for any chunking: a fresh engine is fast-forwarded
        to ``start``, so the values depend only on (seed, replicate,
        index).
        """
        if start < 0 or count < 1:
            raise ParameterError("need start >= 0 and count >= 1")
        engine = self._engine()
        if start:
            engine.fast_forward(start)
        with warnings.catch_warnings():
            # Arbitrary chunk sizes trip Sobol's power-of-two balance
            # warning; balance is a property of the *total* draw,
            # which the callers keep a power of two.
            warnings.simplefilter("ignore", UserWarning)
            u = engine.random(count)
        perf.bump("variability.qmc_points", count)
        return ndtri(_clip_uniforms(u))


@dataclass(frozen=True)
class PseudoNormalStream:
    """Block-seeded pseudo-random stream of standard-normal pairs.

    The brute-force counterpart of :class:`SobolNormalStream` with the
    same index-addressed contract: trial ``i`` lives in block
    ``i // MC_BLOCK_TRIALS``, and each block is drawn whole from its
    own spawned child stream, so chunked evaluation reproduces the
    one-shot stream bitwise.
    """

    seed: int = 2007
    replicate: int = 0
    dim: int = 2

    def __post_init__(self) -> None:
        if self.replicate < 0:
            raise ParameterError("replicate must be >= 0")
        if self.dim < 1:
            raise ParameterError("need at least one dimension")

    def _block(self, index: int) -> np.ndarray:
        root = np.random.SeedSequence(
            self.seed, spawn_key=(self.replicate, index))
        rng = np.random.default_rng(root)
        return rng.standard_normal((MC_BLOCK_TRIALS, self.dim))

    def take(self, start: int, count: int) -> np.ndarray:
        """Standard-normal trials ``start .. start+count-1``, shape
        ``(count, dim)`` (chunk-invariant, see class docstring)."""
        if start < 0 or count < 1:
            raise ParameterError("need start >= 0 and count >= 1")
        first = start // MC_BLOCK_TRIALS
        last = (start + count - 1) // MC_BLOCK_TRIALS
        blocks = [self._block(b) for b in range(first, last + 1)]
        stacked = np.concatenate(blocks, axis=0)
        offset = start - first * MC_BLOCK_TRIALS
        perf.bump("variability.mc_points", count)
        return stacked[offset:offset + count]


def qmc_vth_offsets(inverter: Inverter, n_trials: int, seed: int = 2007,
                    replicate: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Scrambled-Sobol' (NFET, PFET) V_th offset pairs [V].

    Drop-in alternative to
    :func:`repro.variability.montecarlo.sample_vth_offsets`: the same
    ``(offs_n, offs_p)`` contract, but the pairs are a low-discrepancy
    set, so Monte Carlo summaries converge faster in ``n_trials``
    (keep it a power of two for the Sobol' balance guarantee).  The
    offsets scale the devices' RDF sigmas; the underlying
    standard-normal stream is :class:`SobolNormalStream`.
    """
    if n_trials < 1:
        raise ParameterError("need at least one trial")
    z = SobolNormalStream(seed=seed, replicate=replicate).take(0, n_trials)
    sigma_n = rdf_sigma_vth(inverter.nfet)
    sigma_p = rdf_sigma_vth(inverter.pfet)
    return sigma_n * z[:, 0], sigma_p * z[:, 1]
