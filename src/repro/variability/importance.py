"""Mean-shift importance sampling for 5-6 sigma failure probabilities.

Brute-force Monte Carlo needs ~1/p trials to *see* one failure, so a
6 sigma cell failure rate (p ~ 1e-9) is out of reach even for the
array-native kernels.  This module implements the standard rare-event
workaround in the standardised offset space ``u = ΔV_th / sigma``:

1. **Minimum-norm failure point.**  A batched radial search over the
   failure indicator (itself built on ``noise_margins_batch`` /
   ``analytic_delay_batch``) finds the failure-boundary point closest
   to the origin — the dominant failure mode, at distance ``beta``
   sigmas.  Every bisection step probes all live directions in one
   batched kernel call.
2. **Mean-shift sampling.**  Trials are drawn from ``N(u*, I)``
   centred on that point, so failures are common instead of
   astronomically rare, and each trial is reweighted by the exact
   likelihood ratio ``w(u) = phi(u)/phi(u - u*)``.  The estimator
   ``p = mean(w * 1[fail])`` is unbiased for *any* failure set
   because the shifted Gaussian keeps full support.
3. **QMC option.**  The shifted trials can come from replicated
   scrambled-Sobol' streams (:mod:`repro.variability.sampler`); the
   spread between replicate estimates gives the confidence interval.

Evaluation is chunked so memory stays flat at 10^5+ trials, yet the
result is byte-deterministic for any chunk size: the streams address
trials by absolute index and all reductions run over one preallocated
per-trial array.  The optional relative-error stopping rule only
examines the estimator at power-of-two milestones, which keeps early
stopping chunk-invariant too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy.special import ndtr, ndtri

from .. import perf
from ..errors import ParameterError
from .sampler import PseudoNormalStream, SobolNormalStream

#: Estimator flavours: pseudo-random or replicated-QMC draws, with or
#: without the mean shift ("mc" is the brute-force baseline).
METHODS = ("mc", "qmc", "is", "qmc-is")

#: Two-sided 95 % normal quantile used for the confidence intervals.
_Z95 = 1.959963984540054


def sigma_level(p_fail: float) -> float:
    """One-sided sigma equivalent of a failure probability.

    ``sigma_level(9.87e-10) ~ 6.0`` — the "6 sigma" currency of memory
    yield.  Returns ``inf`` for ``p_fail <= 0``.
    """
    if p_fail < 0.0:
        raise ParameterError("failure probability cannot be negative")
    if p_fail == 0:
        return math.inf
    if p_fail >= 1.0:
        return -math.inf
    return float(-ndtri(p_fail))


def failure_probability(sigma: float) -> float:
    """Inverse of :func:`sigma_level`: the one-sided tail mass beyond
    ``sigma`` standard deviations (``6 -> 9.87e-10``)."""
    return float(ndtr(-sigma))


@dataclass(frozen=True)
class FailurePoint:
    """Minimum-norm failure-boundary point found by the radial search.

    Attributes
    ----------
    u_star:
        Standardised shift vector (units of per-device sigma).
    beta_sigma:
        Its norm — the design point's sigma distance, a first-order
        (FORM) estimate of the failure rate's sigma level.
    n_probes:
        Failure-indicator evaluations the search spent.
    """

    u_star: np.ndarray
    beta_sigma: float
    n_probes: int


def find_failure_shift(failure: Callable[[np.ndarray], np.ndarray],
                       dim: int = 2, n_directions: int = 16,
                       r_max_sigma: float = 8.0,
                       n_bisections: int = 16) -> FailurePoint | None:
    """Batched minimum-norm failure-point search.

    Probes ``n_directions`` unit rays from the origin of the
    standardised space; every ray that fails at radius ``r_max_sigma``
    [sigma] is bisected to its first failing radius, all rays per step
    in **one** call of ``failure`` (one batched kernel solve).  A
    second fan around the winning ray refines the direction.  Returns
    ``None`` when no probed ray fails within ``r_max_sigma`` — the
    failure set is beyond the search horizon (or empty).

    ``failure`` maps an ``(n, dim)`` array of standardised offsets to
    a boolean failure mask; only ``dim == 2`` directions fans are
    implemented (the inverter's two perturbed devices).
    """
    if dim != 2:
        raise ParameterError("direction fans are implemented for dim == 2")
    if n_directions < 4:
        raise ParameterError("need at least 4 search directions")
    if r_max_sigma <= 0.0:
        raise ParameterError("r_max_sigma must be positive")
    n_probes = 0

    def fail_at(points: np.ndarray) -> np.ndarray:
        nonlocal n_probes
        n_probes += points.shape[0]
        perf.bump("variability.shift_probes", points.shape[0])
        return np.asarray(failure(points), dtype=bool)

    def bisect_fan(angles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rays = np.stack([np.cos(angles), np.sin(angles)], axis=1)
        alive = fail_at(r_max_sigma * rays)
        radii = np.full(angles.shape, np.inf)
        if not alive.any():
            return radii, rays
        rays_live = rays[alive]
        lo = np.zeros(rays_live.shape[0])
        hi = np.full(rays_live.shape[0], r_max_sigma)
        for _ in range(n_bisections):
            mid = 0.5 * (lo + hi)
            failed = fail_at(mid[:, None] * rays_live)
            hi = np.where(failed, mid, hi)
            lo = np.where(failed, lo, mid)
        radii[alive] = hi   # first radius verified to fail
        return radii, rays

    coarse = np.linspace(0.0, 2.0 * math.pi, n_directions, endpoint=False)
    radii, rays = bisect_fan(coarse)
    best = int(np.argmin(radii))
    if not np.isfinite(radii[best]):
        return None
    # Refine the direction: a narrow fan spanning the winning ray's
    # neighbours, then keep the overall minimum-norm point.
    span = 2.0 * math.pi / n_directions
    fine = coarse[best] + np.linspace(-span, span, n_directions)
    fine_radii, fine_rays = bisect_fan(fine)
    all_radii = np.concatenate([radii, fine_radii])
    all_rays = np.concatenate([rays, fine_rays])
    best = int(np.argmin(all_radii))
    beta = float(all_radii[best])
    return FailurePoint(u_star=beta * all_rays[best], beta_sigma=beta,
                        n_probes=n_probes)


@dataclass(frozen=True)
class YieldEstimate:
    """One rare-event failure-probability estimate.

    Attributes
    ----------
    p_fail:
        Estimated per-cell failure probability.
    rel_err:
        Standard error over the estimate (``inf`` when no failures
        were observed).
    ci_lo / ci_hi:
        Two-sided 95 % confidence bounds (clipped at 0).
    sigma:
        One-sided sigma equivalent of ``p_fail``.
    ess:
        Effective sample size of the failure-weighted trials,
        ``(sum w)^2 / sum w^2``.
    n_trials:
        Trials actually evaluated (early stopping may use fewer than
        requested).
    method:
        One of :data:`METHODS`.
    shift:
        The importance shift used (``None`` for the unshifted
        methods).
    n_replicates:
        Independent scrambles averaged by the QMC methods (1 for the
        pseudo-random methods).
    seed:
        Root seed of the trial streams.
    """

    p_fail: float
    rel_err: float
    ci_lo: float
    ci_hi: float
    sigma: float
    ess: float
    n_trials: int
    method: str
    shift: FailurePoint | None
    n_replicates: int
    seed: int

    def agrees_with(self, other: "YieldEstimate") -> bool:
        """Whether the two estimates' 95 % intervals overlap."""
        return self.ci_lo <= other.ci_hi and other.ci_lo <= self.ci_hi


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def _stats(terms: np.ndarray, n_replicates: int
           ) -> tuple[float, float, float]:
    """(p_hat, standard error, ESS) of a filled per-trial prefix.

    Pseudo-random methods use the classic sample variance of the
    weighted terms; QMC methods read the spread between replicate
    means instead (within one scramble the trials are *not*
    independent, so the classic formula would lie).  Trials are
    interleaved round-robin across replicates, so a prefix holds
    equally many trials of each.
    """
    n = terms.size
    if n_replicates > 1:
        means = terms.reshape(n // n_replicates, n_replicates).mean(axis=0)
        p_hat = float(means.mean())
        se = float(means.std(ddof=1) / math.sqrt(n_replicates))
    else:
        p_hat = float(terms.mean())
        se = float(terms.std(ddof=1) / math.sqrt(n))
    failing = terms[terms > 0.0]
    ess = (float(failing.sum()) ** 2 / float((failing ** 2).sum())
           if failing.size else 0.0)
    return p_hat, se, ess


def estimate_failure_probability(
        failure: Callable[[np.ndarray], np.ndarray],
        method: str = "qmc-is",
        n_trials: int = 4096,
        seed: int = 2007,
        chunk_trials: int = 4096,
        n_replicates: int = 8,
        shift: FailurePoint | None = None,
        target_rel_err: float | None = None,
        min_trials: int = 1024,
        n_directions: int = 16,
        r_max_sigma: float = 8.0) -> YieldEstimate:
    """Unbiased likelihood-ratio estimate of ``P(failure)``.

    ``failure`` maps an ``(n, 2)`` array of standardised V_th offsets
    (units of each device's RDF sigma) to a boolean failure mask; it
    is evaluated in chunks of ``chunk_trials`` so peak memory does not
    grow with ``n_trials``, and the result is byte-identical for any
    chunk size.

    ``method`` selects the trial stream (:data:`METHODS`): plain
    brute force (``"mc"``), replicated scrambled-Sobol' QMC
    (``"qmc"``), and their mean-shifted importance-sampling versions
    (``"is"``, ``"qmc-is"``).  The shifted methods locate the shift
    with :func:`find_failure_shift` unless one is passed in; when no
    failure point exists within ``r_max_sigma`` [sigma] the estimate
    degenerates to "no failures observed" (``p_fail = 0`` with an
    infinite relative error) without spending the trial budget.

    With ``target_rel_err`` set, evaluation stops early at the first
    power-of-two milestone (>= ``min_trials``) where the estimate's
    relative standard error falls below the target — the
    effective-sample-size / relative-error stopping rule.  Milestones
    are independent of ``chunk_trials``, so early stopping is as
    chunk-invariant as the full run.
    """
    if method not in METHODS:
        raise ParameterError(f"unknown method {method!r}; "
                             f"choose one of {METHODS}")
    if n_trials < 2:
        raise ParameterError("need at least 2 trials")
    if chunk_trials < 1:
        raise ParameterError("chunk_trials must be >= 1")
    if n_replicates < 2 and method.startswith("qmc"):
        raise ParameterError("QMC error estimation needs >= 2 replicates")
    if target_rel_err is not None and target_rel_err <= 0.0:
        raise ParameterError("target_rel_err must be positive")

    use_qmc = method.startswith("qmc")
    use_shift = method.endswith("is")
    replicates = n_replicates if use_qmc else 1
    n_total = _round_up(n_trials, replicates)

    if use_shift and shift is None:
        shift = find_failure_shift(failure, n_directions=n_directions,
                                   r_max_sigma=r_max_sigma)
        if shift is None:
            # Nothing fails within the search horizon: report the
            # no-failure outcome explicitly instead of burning trials.
            return YieldEstimate(
                p_fail=0.0, rel_err=math.inf, ci_lo=0.0, ci_hi=0.0,
                sigma=math.inf, ess=0.0, n_trials=0, method=method,
                shift=None, n_replicates=replicates, seed=seed)
    u_star = shift.u_star if use_shift and shift is not None else None

    if use_qmc:
        streams = [SobolNormalStream(seed=seed, replicate=r)
                   for r in range(replicates)]
    else:
        streams = [PseudoNormalStream(seed=seed)]

    # Per-trial likelihood-ratio terms w * 1[fail]; global trial g is
    # trial g // R of replicate g % R, so any prefix balances the
    # replicates and any chunking fills identical values.
    terms = np.empty(n_total)

    def fill(a: int, b: int) -> None:
        for r, stream in enumerate(streams):
            # Intra-replicate index range of global trials in [a, b)
            # with g % R == r.
            j0 = (a - r + replicates - 1) // replicates
            j1 = (b - r + replicates - 1) // replicates
            if j1 <= j0:
                continue
            z = stream.take(j0, j1 - j0)
            if u_star is None:
                w = np.ones(z.shape[0])
                u = z
            else:
                u = z + u_star
                w = np.exp(-z @ u_star - 0.5 * float(u_star @ u_star))
            fail = np.asarray(failure(u), dtype=bool)
            g0 = j0 * replicates + r
            terms[g0:b:replicates] = np.where(fail, w, 0.0)
        perf.bump("variability.estimator_trials", b - a)

    milestone = _round_up(max(min(min_trials, n_total), 2), replicates)
    filled = 0
    n_used = n_total
    while filled < n_total:
        target = n_total if target_rel_err is None else min(milestone,
                                                            n_total)
        while filled < target:
            step = min(chunk_trials, target - filled)
            fill(filled, filled + step)
            filled += step
        if target_rel_err is not None:
            p_hat, se, _ess = _stats(terms[:filled], replicates)
            if p_hat > 0.0 and se / p_hat <= target_rel_err:
                n_used = filled
                break
            milestone = min(milestone * 2, n_total)
        if filled >= n_total:
            n_used = n_total

    p_hat, se, ess = _stats(terms[:n_used], replicates)
    rel = se / p_hat if p_hat > 0.0 else math.inf
    return YieldEstimate(
        p_fail=p_hat,
        rel_err=rel,
        ci_lo=max(p_hat - _Z95 * se, 0.0),
        ci_hi=p_hat + _Z95 * se,
        sigma=sigma_level(p_hat),
        ess=ess,
        n_trials=n_used,
        method=method,
        shift=shift if use_shift else None,
        n_replicates=replicates,
        seed=seed,
    )
