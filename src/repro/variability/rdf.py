"""Random dopant fluctuation (RDF) threshold-voltage variability.

The standard Mizuno/Stolk result: the stochastic count of dopants in
the channel depletion region gives

``sigma(V_th) = (q T_ox / eps_ox) * sqrt(N_eff W_dep / (4 W L_eff))``

— growing with oxide thickness and doping, shrinking with device area.
Since both scaling strategies raise doping while shrinking area, RDF
worsens with scaling; the sub-V_th strategy's larger gate area and
lighter doping buy it a variability advantage on top of its slope
advantage, which the Monte Carlo module quantifies at circuit level.
"""

from __future__ import annotations

import math

from ..constants import EPS_OX, Q
from ..device.mosfet import MOSFET
from ..errors import ParameterError


def rdf_sigma_vth(device: MOSFET) -> float:
    """RDF sigma(V_th) [V] of one device.

    >>> from repro.device import nfet
    >>> 0.002 < rdf_sigma_vth(nfet(65, 2.1, 1.5e18, 2e18)) < 0.08
    True
    """
    n_eff = device.iv.n_eff_cm3
    w_dep = device.iv.w_dep_cm
    area = device.geometry.width_cm * device.geometry.l_eff_cm
    if area <= 0.0:
        raise ParameterError("device area must be positive")
    t_ox = device.stack.eot_cm
    return (Q * t_ox / EPS_OX) * math.sqrt(n_eff * w_dep / (4.0 * area))


def avt_coefficient(device: MOSFET) -> float:
    """Pelgrom mismatch coefficient A_Vt [V * cm] of the technology.

    ``sigma(V_th) = A_Vt / sqrt(W L)``; conventionally quoted in
    mV*um (multiply by 1e7).
    """
    area = device.geometry.width_cm * device.geometry.l_eff_cm
    return rdf_sigma_vth(device) * math.sqrt(area)


def avt_mv_um(device: MOSFET) -> float:
    """A_Vt in the conventional mV*µm unit."""
    return avt_coefficient(device) * 1.0e3 * 1.0e4
