"""Caching layers: in-process construction memos and an on-disk store.

Two independent layers, both instrumented through :mod:`repro.perf`:

**Device memo** (always on unless ``REPRO_DEVICE_CACHE=0``): the
scaling optimisers root-solve leakage by rebuilding a
:class:`~repro.device.mosfet.MOSFET` at every residual evaluation, and
sweeps/benchmarks rebuild the same devices again afterwards.  Devices
are immutable (frozen dataclasses), so construction is memoised on the
full parameter tuple in a bounded LRU table and identical rebuilds are
free.

**Family disk cache** (opt-in): optimising a Table 2/3
:class:`~repro.scaling.strategy.DeviceFamily` costs seconds of
root-solving but is a pure function of the model source code.  When
enabled, optimised families are persisted as JSON through
:mod:`repro.io.serialize` and reloaded on the next run.  Enable it by
either::

    export REPRO_CACHE_DIR=/path/to/cache   # explicit location
    export REPRO_CACHE=1                    # default ~/.cache/repro

Entries are versioned by :func:`model_schema_hash`, a digest of the
physics/optimiser source files — any model change changes the hash and
silently invalidates old entries.  To invalidate manually, delete the
cache directory (or call :func:`clear_disk_cache`).

The cache directory has three tenants, all keyed by the same schema
hash (see ``docs/TUTORIAL.md`` for the full layout):

* family entries — ``{tag}-{hash}.json``, optimised
  :class:`~repro.scaling.strategy.DeviceFamily` JSON;
* the bracket spill — ``brackets-{hash}.json``, the doping solver's
  warm-start table (:func:`load_brackets` / :func:`store_brackets`);
* grid tensors — ``grid-{grid_id}-{hash}.npz``, the design-space
  service's precomputed metric grids (:func:`grid_path`; built by
  ``repro grid build``, written/read by :mod:`repro.service.grid`).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
from collections import OrderedDict
from typing import Any, Hashable

from . import perf

#: Packages/modules whose source defines the numerical results that the
#: disk cache stores.  Editing any of these invalidates the cache.
_SCHEMA_SOURCES = (
    "constants.py",
    "units.py",
    "materials",
    "device",
    "scaling",
    "circuit",
    "io/serialize.py",
)


class LRUMemo:
    """A bounded, thread-safe memo table with perf-counter reporting.

    Parameters
    ----------
    name:
        Counter namespace: hits/misses appear as ``cache.<name>.hits``
        and ``cache.<name>.misses``.
    maxsize:
        Entry cap; least-recently-used entries are evicted beyond it.
    """

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        self.name = name
        self.maxsize = maxsize
        self._table: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any | None:
        """Look up ``key``; returns None (and counts a miss) if absent."""
        with self._lock:
            try:
                value = self._table[key]
            except KeyError:
                perf.bump(f"cache.{self.name}.misses")
                return None
            self._table.move_to_end(key)
        perf.bump(f"cache.{self.name}.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key -> value``, evicting the LRU entry if full."""
        with self._lock:
            self._table[key] = value
            self._table.move_to_end(key)
            while len(self._table) > self.maxsize:
                self._table.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are left alone)."""
        with self._lock:
            self._table.clear()

    def __len__(self) -> int:
        return len(self._table)


#: Memo for :func:`repro.device.mosfet.nfet` / ``pfet`` construction.
device_memo = LRUMemo("device", maxsize=8192)


def device_cache_enabled() -> bool:
    """Whether the in-process device memo is active (default yes)."""
    return os.environ.get("REPRO_DEVICE_CACHE", "1") != "0"


# -- on-disk family cache -----------------------------------------------------

def cache_dir() -> pathlib.Path | None:
    """The on-disk cache directory, or None when the cache is disabled.

    ``$REPRO_CACHE_DIR`` names an explicit directory; otherwise setting
    ``$REPRO_CACHE`` to a truthy value opts in at ``~/.cache/repro``.
    """
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return pathlib.Path(explicit).expanduser()
    flag = os.environ.get("REPRO_CACHE", "").lower()
    if flag in ("1", "true", "yes", "on"):
        return pathlib.Path("~/.cache/repro").expanduser()
    return None


_SCHEMA_HASH: str | None = None
_SCHEMA_LOCK = threading.Lock()


def model_schema_hash() -> str:
    """Digest of the model source files that determine cached results."""
    global _SCHEMA_HASH
    with _SCHEMA_LOCK:
        if _SCHEMA_HASH is None:
            root = pathlib.Path(__file__).parent
            digest = hashlib.sha256()
            for entry in _SCHEMA_SOURCES:
                path = root / entry
                files = (sorted(path.glob("*.py")) if path.is_dir()
                         else [path])
                for source in files:
                    digest.update(str(source.relative_to(root)).encode())
                    digest.update(source.read_bytes())
            _SCHEMA_HASH = digest.hexdigest()[:16]
    return _SCHEMA_HASH


def _entry_path(tag: str, directory: pathlib.Path) -> pathlib.Path:
    return directory / f"{tag}-{model_schema_hash()}.json"


def load_family(tag: str):
    """Load a cached :class:`DeviceFamily`, or None on miss/disabled.

    Any unreadable or schema-mismatched entry counts as a miss; the
    caller recomputes and overwrites it.
    """
    directory = cache_dir()
    if directory is None:
        return None
    path = _entry_path(tag, directory)
    # Imported lazily: io.serialize imports the device layer, which
    # imports this module for the construction memo.
    from .io.serialize import family_from_dict, load_json
    try:
        family = family_from_dict(load_json(path))
    except (OSError, ValueError, KeyError, TypeError):
        perf.bump("cache.family.misses")
        return None
    perf.bump("cache.family.hits")
    return family


def store_family(tag: str, family) -> None:
    """Persist an optimised family (no-op when the cache is disabled)."""
    directory = cache_dir()
    if directory is None:
        return
    from .io.serialize import family_to_dict, save_json
    directory.mkdir(parents=True, exist_ok=True)
    path = _entry_path(tag, directory)
    tmp = path.with_suffix(".json.tmp")
    save_json(family_to_dict(family), tmp)
    tmp.replace(path)
    perf.bump("cache.family.stores")


# -- on-disk bracket spill ----------------------------------------------------
#
# The scaling doping solver's warm-start brackets (repro.scaling.batch)
# are scoped to one flow invocation, so cold invocations re-derive every
# root from the full doping bounds.  When the disk cache is enabled the
# solver spills each cold-converged final bracket here — keyed by the
# same model schema hash as the family cache, so model edits silently
# invalidate old brackets — and replays it on the next invocation.
# Replayed brackets are already below the solver tolerance, which makes
# replay byte-deterministic: the lane retires before its first sweep
# with exactly the midpoint a cold solve would return.

_BRACKET_TAG = "brackets"
_BRACKET_TABLES: dict[pathlib.Path, dict[str, list[float]]] = {}
_BRACKET_LOCK = threading.Lock()


def load_brackets() -> dict[str, list[float]] | None:
    """The on-disk bracket table, or None when the cache is disabled.

    The table maps the solver's exact string keys to ``[lo, hi]``
    bracket pairs.  It is read once per process per cache directory and
    shared with :func:`store_brackets`, which mutates and persists it.
    """
    directory = cache_dir()
    if directory is None:
        return None
    path = _entry_path(_BRACKET_TAG, directory)
    with _BRACKET_LOCK:
        table = _BRACKET_TABLES.get(path)
        if table is None:
            try:
                payload = json.loads(path.read_text())
                entries = (payload.get("entries", {})
                           if payload.get("schema") == 1 else {})
            except (OSError, ValueError, AttributeError):
                entries = {}
            table = {str(key): [float(pair[0]), float(pair[1])]
                     for key, pair in entries.items()
                     if isinstance(pair, (list, tuple)) and len(pair) == 2}
            _BRACKET_TABLES[path] = table
    return table


def store_brackets(entries: dict[str, tuple[float, float]]) -> None:
    """Merge solved brackets into the table and persist it atomically.

    No-op when the cache is disabled or ``entries`` is empty.  JSON
    serialises floats via ``repr`` (shortest round-trip), so replayed
    brackets are bitwise the ones that were spilled.

    Safe under concurrent writers: the temp file is per-process, so
    parallel shard workers (``repro grid build --jobs N``) cannot
    replace each other's temp out from underneath the rename.  A
    concurrent writer can still win the final rename — the spill is a
    warm-start accelerator, and losing entries never changes results
    (replayed and cold brackets retire to bitwise-identical roots).
    """
    table = load_brackets()
    if table is None or not entries:
        return
    directory = cache_dir()
    assert directory is not None
    with _BRACKET_LOCK:
        for key, (lo, hi) in entries.items():
            table[str(key)] = [float(lo), float(hi)]
        directory.mkdir(parents=True, exist_ok=True)
        path = _entry_path(_BRACKET_TAG, directory)
        tmp = path.with_suffix(f".json.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(
            {"schema": 1, "entries": table}, sort_keys=True))
        tmp.replace(path)


# -- design-space grid tensors ------------------------------------------------

def grid_path(grid_id: str) -> pathlib.Path | None:
    """Cache path for a precomputed design-space grid, or None.

    ``grid_id`` is the :meth:`repro.service.grid.GridSpec.grid_id` axes
    digest; the filename also carries :func:`model_schema_hash`, so a
    model edit orphans old tensors exactly like stale family entries
    (the service then reports a cache miss and rebuilds or falls back
    to the exact tier).  Returns None when the disk cache is disabled.
    """
    directory = cache_dir()
    if directory is None:
        return None
    return directory / f"grid-{grid_id}-{model_schema_hash()}.npz"


def clear_disk_cache() -> int:
    """Delete every entry in the disk cache; returns the count removed.

    Covers all three tenants: family JSON, the bracket spill, and the
    design-space grid tensors (``*.npz``).
    """
    directory = cache_dir()
    if directory is None or not directory.is_dir():
        return 0
    removed = 0
    for pattern in ("*.json", "*.npz"):
        for path in directory.glob(pattern):
            path.unlink(missing_ok=True)
            removed += 1
    with _BRACKET_LOCK:
        _BRACKET_TABLES.clear()
    return removed
