"""Caching layers: in-process construction memos and an on-disk store.

Two independent layers, both instrumented through :mod:`repro.perf`:

**Device memo** (always on unless ``REPRO_DEVICE_CACHE=0``): the
scaling optimisers root-solve leakage by rebuilding a
:class:`~repro.device.mosfet.MOSFET` at every residual evaluation, and
sweeps/benchmarks rebuild the same devices again afterwards.  Devices
are immutable (frozen dataclasses), so construction is memoised on the
full parameter tuple in a bounded LRU table and identical rebuilds are
free.

**Family disk cache** (opt-in): optimising a Table 2/3
:class:`~repro.scaling.strategy.DeviceFamily` costs seconds of
root-solving but is a pure function of the model source code.  When
enabled, optimised families are persisted as JSON through
:mod:`repro.io.serialize` and reloaded on the next run.  Enable it by
either::

    export REPRO_CACHE_DIR=/path/to/cache   # explicit location
    export REPRO_CACHE=1                    # default ~/.cache/repro

Entries are versioned by :func:`model_schema_hash`, a digest of the
physics/optimiser source files — any model change changes the hash and
silently invalidates old entries.  To invalidate manually, delete the
cache directory (or call :func:`clear_disk_cache`).
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import threading
from collections import OrderedDict
from typing import Any, Hashable

from . import perf

#: Packages/modules whose source defines the numerical results that the
#: disk cache stores.  Editing any of these invalidates the cache.
_SCHEMA_SOURCES = (
    "constants.py",
    "units.py",
    "materials",
    "device",
    "scaling",
    "circuit",
    "io/serialize.py",
)


class LRUMemo:
    """A bounded, thread-safe memo table with perf-counter reporting.

    Parameters
    ----------
    name:
        Counter namespace: hits/misses appear as ``cache.<name>.hits``
        and ``cache.<name>.misses``.
    maxsize:
        Entry cap; least-recently-used entries are evicted beyond it.
    """

    def __init__(self, name: str, maxsize: int = 4096) -> None:
        self.name = name
        self.maxsize = maxsize
        self._table: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any | None:
        """Look up ``key``; returns None (and counts a miss) if absent."""
        with self._lock:
            try:
                value = self._table[key]
            except KeyError:
                perf.bump(f"cache.{self.name}.misses")
                return None
            self._table.move_to_end(key)
        perf.bump(f"cache.{self.name}.hits")
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key -> value``, evicting the LRU entry if full."""
        with self._lock:
            self._table[key] = value
            self._table.move_to_end(key)
            while len(self._table) > self.maxsize:
                self._table.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (counters are left alone)."""
        with self._lock:
            self._table.clear()

    def __len__(self) -> int:
        return len(self._table)


#: Memo for :func:`repro.device.mosfet.nfet` / ``pfet`` construction.
device_memo = LRUMemo("device", maxsize=8192)


def device_cache_enabled() -> bool:
    """Whether the in-process device memo is active (default yes)."""
    return os.environ.get("REPRO_DEVICE_CACHE", "1") != "0"


# -- on-disk family cache -----------------------------------------------------

def cache_dir() -> pathlib.Path | None:
    """The on-disk cache directory, or None when the cache is disabled.

    ``$REPRO_CACHE_DIR`` names an explicit directory; otherwise setting
    ``$REPRO_CACHE`` to a truthy value opts in at ``~/.cache/repro``.
    """
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return pathlib.Path(explicit).expanduser()
    flag = os.environ.get("REPRO_CACHE", "").lower()
    if flag in ("1", "true", "yes", "on"):
        return pathlib.Path("~/.cache/repro").expanduser()
    return None


_SCHEMA_HASH: str | None = None
_SCHEMA_LOCK = threading.Lock()


def model_schema_hash() -> str:
    """Digest of the model source files that determine cached results."""
    global _SCHEMA_HASH
    with _SCHEMA_LOCK:
        if _SCHEMA_HASH is None:
            root = pathlib.Path(__file__).parent
            digest = hashlib.sha256()
            for entry in _SCHEMA_SOURCES:
                path = root / entry
                files = (sorted(path.glob("*.py")) if path.is_dir()
                         else [path])
                for source in files:
                    digest.update(str(source.relative_to(root)).encode())
                    digest.update(source.read_bytes())
            _SCHEMA_HASH = digest.hexdigest()[:16]
    return _SCHEMA_HASH


def _entry_path(tag: str, directory: pathlib.Path) -> pathlib.Path:
    return directory / f"{tag}-{model_schema_hash()}.json"


def load_family(tag: str):
    """Load a cached :class:`DeviceFamily`, or None on miss/disabled.

    Any unreadable or schema-mismatched entry counts as a miss; the
    caller recomputes and overwrites it.
    """
    directory = cache_dir()
    if directory is None:
        return None
    path = _entry_path(tag, directory)
    # Imported lazily: io.serialize imports the device layer, which
    # imports this module for the construction memo.
    from .io.serialize import family_from_dict, load_json
    try:
        family = family_from_dict(load_json(path))
    except (OSError, ValueError, KeyError, TypeError):
        perf.bump("cache.family.misses")
        return None
    perf.bump("cache.family.hits")
    return family


def store_family(tag: str, family) -> None:
    """Persist an optimised family (no-op when the cache is disabled)."""
    directory = cache_dir()
    if directory is None:
        return
    from .io.serialize import family_to_dict, save_json
    directory.mkdir(parents=True, exist_ok=True)
    path = _entry_path(tag, directory)
    tmp = path.with_suffix(".json.tmp")
    save_json(family_to_dict(family), tmp)
    tmp.replace(path)
    perf.bump("cache.family.stores")


def clear_disk_cache() -> int:
    """Delete every entry in the disk cache; returns the count removed."""
    directory = cache_dir()
    if directory is None or not directory.is_dir():
        return 0
    removed = 0
    for path in directory.glob("*.json"):
        path.unlink(missing_ok=True)
        removed += 1
    return removed
