"""Finding records produced by the invariant checker.

A :class:`Finding` pins a rule violation to a source location and
carries a *fingerprint* — a digest of the rule id, the file path and
the offending source line text — that stays stable when unrelated
edits shift line numbers.  The checked-in baseline file stores
fingerprints, so grandfathered findings survive refactors that do not
touch the offending line itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule_id:
        Rule identifier, e.g. ``"RPR001"``.
    path:
        File path relative to the repository root (POSIX separators).
    line / col:
        1-based line and 0-based column of the violation.
    message:
        Human-readable description of what is wrong and how to fix it.
    line_text:
        The stripped source line, used for fingerprinting and display.
    suppressed:
        True when an inline ``# repro: noqa[RULE]`` covers this line.
    baselined:
        True when the checked-in baseline grandfathers this finding.
    explanation:
        Optional derivation trace (one step per line) attached by
        rules that infer facts — the unit chains of RPR011/RPR012 —
        printed by ``repro lint --explain``.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    line_text: str = ""
    suppressed: bool = field(default=False, compare=False)
    baselined: bool = field(default=False, compare=False)
    explanation: tuple[str, ...] = field(default=(), compare=False)

    @property
    def fingerprint(self) -> str:
        """Location-stable digest used by the baseline file."""
        payload = f"{self.rule_id}|{self.path}|{self.line_text.strip()}"
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def active(self) -> bool:
        """True when the finding counts against the exit code."""
        return not (self.suppressed or self.baselined)

    def render(self) -> str:
        """``path:line:col: RPRnnn message`` single-line form."""
        tag = ""
        if self.suppressed:
            tag = " (suppressed)"
        elif self.baselined:
            tag = " (baselined)"
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.rule_id} {self.message}{tag}")

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable form for ``--format json``."""
        payload: dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
        }
        if self.explanation:
            payload["explanation"] = list(self.explanation)
        return payload
