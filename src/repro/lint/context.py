"""Repository-level context shared by all lint rules.

Per-file AST visitors can enforce purely local invariants, but half of
this repo's conventions are *cross-file*: a ``solver=`` parameter is
only compliant if an equivalence test exercises it, a perf-counter
name is only valid if :data:`repro.perf.KNOWN_COUNTERS` documents it,
an experiment id is only covered if a benchmark references it.
:class:`ProjectContext` computes those repo-level facts once (lazily)
and hands them to every rule.

Everything is derived *statically* from the working tree — the context
never imports the modules it checks, so the linter cannot be fooled by
import-time side effects and runs on code that does not import.
"""

from __future__ import annotations

import ast
import functools
import pathlib
import re

from ..units import SI_PREFIXES

#: Sub-packages whose numerics are "engine code" for RPR008 purposes.
ENGINE_PACKAGES = ("device", "tcad", "circuit", "scaling", "materials",
                  "variability")

#: Sub-packages whose float parameters must carry unit suffixes (RPR005).
UNIT_SUFFIX_PACKAGES = ("device", "tcad", "circuit")

#: Sub-packages the unit-dataflow rules (RPR011/RPR012) check.
DATAFLOW_PACKAGES = ("device", "tcad", "circuit", "scaling",
                     "variability", "service")

#: Voltage names in the paper's notation (volts by repo convention):
#: a ``v``-rooted base (``vdd``, ``vgs``, ``v_il``, ``vfb`` ...) with an
#: optional polarity/range/regime modifier (``vth_n``, ``vdd_lo``,
#: ``vds_lin``), plus the surface-potential symbols.  Shared by RPR005
#: (naming compliance) and the RPR011/RPR012 dataflow seeds.
VOLTAGE_NAME_RE = re.compile(
    r"^v_?(dd|in|out|gs|ds|bs|sb|gb|th|fb|g|d|s|b|min|max|il|ih|ol|oh)?"
    r"(_(n|p|lo|hi|low|high|lin|sat|il|ih|ol|oh))?$"
)


class ModuleUnit:
    """One parsed source file handed to the rules.

    Attributes
    ----------
    path:
        Absolute path of the file.
    rel_path:
        POSIX path relative to the repository root
        (``src/repro/device/mosfet.py``).
    package_rel:
        Dotted path relative to the ``repro`` package
        (``device.mosfet``), or ``""`` for files outside it.
    source / lines / tree:
        Raw text, split lines, and the parsed :mod:`ast` tree.
    """

    def __init__(self, path: pathlib.Path, root: pathlib.Path) -> None:
        self.path = path
        self.rel_path = path.relative_to(root).as_posix()
        self.source = path.read_text()
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        prefix = "src/repro/"
        if self.rel_path.startswith(prefix):
            dotted = self.rel_path[len(prefix):]
            dotted = dotted.removesuffix(".py").removesuffix("/__init__")
            self.package_rel = dotted.replace("/", ".")
        else:
            self.package_rel = ""

    def line_text(self, lineno: int) -> str:
        """Source text of 1-based ``lineno`` (empty when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    @property
    def top_package(self) -> str:
        """First dotted component (``"device"`` for ``device.mosfet``)."""
        return self.package_rel.split(".", 1)[0] if self.package_rel else ""


def _base_unit_tokens() -> frozenset[str]:
    """Unprefixed unit tokens as they appear in identifier suffixes."""
    return frozenset({
        # electrical
        "v", "a", "f", "ohm", "s", "hz", "j", "w", "c",
        "ohms", "farads", "volts", "amps",
        # lengths / areas / volumes (the cgs-flavoured device set)
        "m", "cm", "um", "nm", "cm2", "um2", "nm2", "cm3",
        # misc physics; "sq" is the per-square width normalisation,
        # "dec"/"decade" the subthreshold-slope decade
        "k", "ev", "dec", "decade", "pct", "x", "sq",
    })


@functools.lru_cache(maxsize=1)
def unit_suffix_vocabulary() -> frozenset[str]:
    """Legal identifier unit suffixes, cross-checked against repro.units.

    The vocabulary is the cartesian product of the lower-case SI
    prefixes from :data:`repro.units.SI_PREFIXES` with the base unit
    tokens (``mv``, ``na``, ``ff``, ``ps`` ...), plus the unprefixed
    tokens themselves.  Length tokens like ``nm``/``um``/``cm`` arise
    naturally as prefix+``m``.
    """
    prefixes = {p for p in SI_PREFIXES if p == p.lower() and p.isascii()}
    vocab: set[str] = set()
    for base in _base_unit_tokens():
        vocab.add(base)
        # Prefixes only compose with the simple one-letter electrical
        # units; "mcm2" or "upct" are not things anyone writes.
        if base in {"v", "a", "f", "s", "j", "w", "m", "hz", "ev", "ohm"}:
            for prefix in prefixes:
                if prefix:
                    vocab.add(prefix + base)
    return frozenset(vocab)


def is_unit_suffixed(name: str) -> bool:
    """Whether identifier ``name`` ends in a recognised unit suffix.

    Accepts plain suffixes (``c_load_f``, ``l_poly_nm``) and ``per``
    compounds (``ss_v_per_dec``, ``i_off_a_per_um``,
    ``c_ox_f_per_cm2``) whose numerator and denominator are both in
    the vocabulary.
    """
    tokens = name.lower().split("_")
    vocab = unit_suffix_vocabulary()
    if len(tokens) >= 3 and tokens[-2] == "per":
        return tokens[-3] in vocab and tokens[-1] in vocab
    return tokens[-1] in vocab


class ProjectContext:
    """Lazily computed repo-level facts for the cross-file rules."""

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)

    # -- file discovery ------------------------------------------------

    def source_files(self) -> list[pathlib.Path]:
        """All library sources under ``src/repro`` (sorted, no eggs)."""
        src = self.root / "src" / "repro"
        return sorted(p for p in src.rglob("*.py")
                      if "egg-info" not in p.parts)

    # -- cross-file facts ----------------------------------------------

    @functools.cached_property
    def equivalence_test_text(self) -> str:
        """Concatenated text of the scalar/batch equivalence suites."""
        tests = self.root / "tests"
        chunks = [p.read_text()
                  for p in sorted(tests.glob("test_*equivalence*.py"))]
        return "\n".join(chunks)

    def covered_by_equivalence_tests(self, name: str) -> bool:
        """Whether ``name`` appears (word-bounded) in those suites."""
        return re.search(rf"\b{re.escape(name)}\b",
                         self.equivalence_test_text) is not None

    @functools.cached_property
    def benchmark_string_literals(self) -> frozenset[str]:
        """Every string literal in ``benchmarks/test_bench_*.py``."""
        bench_dir = self.root / "benchmarks"
        literals: set[str] = set()
        for path in sorted(bench_dir.glob("test_bench_*.py")):
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError:
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.Constant) and isinstance(node.value,
                                                                 str):
                    literals.add(node.value)
        return frozenset(literals)

    @functools.cached_property
    def perf_registry(self) -> tuple[frozenset[str], tuple[str, ...]]:
        """``(KNOWN_COUNTERS, DYNAMIC_COUNTER_PREFIXES)`` from perf.py.

        Parsed statically out of ``src/repro/perf.py`` so the linter
        checks the same registry the docs document, without importing
        the package under test.  Missing registry assignments yield an
        empty set — RPR006 then flags every counter, which is the
        loud-failure mode we want if the registry is deleted.
        """
        perf_path = self.root / "src" / "repro" / "perf.py"
        known: frozenset[str] = frozenset()
        prefixes: tuple[str, ...] = ()
        if not perf_path.exists():
            return known, prefixes
        tree = ast.parse(perf_path.read_text(), filename=str(perf_path))
        for node in tree.body:
            target = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if target.id == "KNOWN_COUNTERS":
                known = frozenset(self._string_elements(value))
            elif target.id == "DYNAMIC_COUNTER_PREFIXES":
                prefixes = tuple(self._string_elements(value))
        return known, prefixes

    @functools.cached_property
    def function_unit_facts(self) -> dict[str, object]:
        """Merged cross-file unit facts for every repro callable.

        Maps bare callable names to
        :class:`repro.lint.units_dataflow.FunctionFact` records holding
        parameter and return units harvested from signatures and
        docstring ``[unit]`` brackets.  Same-named callables that
        disagree are merged conservatively (agreeing params only, no
        positional mapping), so RPR012 never checks a guess.
        """
        from .units_dataflow import harvest_module_facts, merge_facts
        facts = []
        for path in self.source_files():
            try:
                tree = ast.parse(path.read_text(), filename=str(path))
            except SyntaxError:
                continue
            rel = path.relative_to(self.root).as_posix()
            dotted = rel.removeprefix("src/").removesuffix(".py")
            dotted = dotted.removesuffix("/__init__").replace("/", ".")
            facts.extend(harvest_module_facts(tree, dotted))
        return dict(merge_facts(facts))

    @staticmethod
    def _string_elements(node: ast.expr) -> list[str]:
        """String literals inside a (possibly wrapped) set/tuple/list."""
        if (isinstance(node, ast.Call) and node.args
                and isinstance(node.func, ast.Name)
                and node.func.id == "frozenset"):
            node = node.args[0]
        if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
            return [elt.value for elt in node.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)]
        return []
