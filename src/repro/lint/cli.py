"""Implementation of the ``repro lint`` subcommand.

Exit codes follow the repo convention: 0 clean (inline suppressions
and baselined findings do not count), 1 active findings or stale
baseline entries, 2 usage errors (bad paths, unreadable baseline).
"""

from __future__ import annotations

import json
import pathlib
import sys

from ..errors import ParameterError
from .baseline import Baseline, DEFAULT_BASELINE_NAME
from .context import ProjectContext
from .engine import LintReport, lint_paths
from .findings import Finding


def default_root() -> pathlib.Path:
    """Repository root inferred from the installed package location.

    The source tree layout is ``<root>/src/repro/lint/cli.py``; when
    the package runs from somewhere else (a wheel), fall back to the
    current directory and let ``--root`` override.
    """
    here = pathlib.Path(__file__).resolve()
    candidate = here.parents[3]
    if (candidate / "src" / "repro").is_dir():
        return candidate
    return pathlib.Path.cwd()


def _resolve_files(root: pathlib.Path, context: ProjectContext,
                   paths: list[str] | None) -> list[pathlib.Path] | None:
    """Expand CLI path arguments; None signals a usage error."""
    if not paths:
        return context.source_files()
    files: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
        else:
            print(f"error: no such file or directory: {raw}",
                  file=sys.stderr)
            return None
    return [p for p in files if "egg-info" not in p.parts]


def run_lint_command(paths: list[str] | None = None,
                     output_format: str = "text",
                     root: str | None = None,
                     baseline_path: str | None = None,
                     update_baseline: bool = False,
                     explain: str | None = None) -> int:
    """Body of ``repro lint``; returns the process exit code."""
    root_dir = pathlib.Path(root).resolve() if root else default_root()
    if not (root_dir / "src" / "repro").is_dir():
        print(f"error: {root_dir} does not look like the repository "
              "root (no src/repro)", file=sys.stderr)
        return 2
    context = ProjectContext(root_dir)
    if explain is not None:
        # In explain mode the positional arguments select findings
        # (fingerprint prefix or path[:line]), not files to lint.
        return _explain(explain, paths or [], context)
    files = _resolve_files(root_dir, context, paths)
    if files is None:
        return 2
    baseline_file = (pathlib.Path(baseline_path) if baseline_path
                     else root_dir / DEFAULT_BASELINE_NAME)
    try:
        baseline = Baseline.load(baseline_file)
    except ParameterError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    report = lint_paths(files, context, baseline)

    if update_baseline:
        fresh = Baseline.from_findings(report.findings, previous=baseline)
        fresh.save(baseline_file)
        print(f"wrote {baseline_file} ({len(fresh)} grandfathered "
              f"finding(s)); fill in any 'TODO: justify' entries")
        return 0

    _emit(report, output_format)
    return 0 if report.clean else 1


def _matches_selector(finding: "Finding", selector: str) -> bool:
    """Selector forms: fingerprint prefix (>= 6 hex), path, path:line."""
    if len(selector) >= 6 and all(c in "0123456789abcdef"
                                  for c in selector):
        if finding.fingerprint.startswith(selector):
            return True
    path, _, line_text = selector.partition(":")
    if line_text:
        try:
            return (finding.path.endswith(path)
                    and finding.line == int(line_text))
        except ValueError:
            return False
    return finding.path.endswith(path)


def _explain(rule_id: str, selectors: list[str],
             context: ProjectContext) -> int:
    """``repro lint --explain RULE [SELECTOR ...]``.

    Prints the rule's catalogue entry, then every matching finding —
    *including* suppressed and baselined ones — with its derivation
    chain (the inferred unit chain for RPR011/RPR012).  Exit 0 when at
    least one finding matched, 1 otherwise, 2 for an unknown rule.
    """
    from .engine import all_rules
    rule_id = rule_id.upper()
    by_id = {rule.rule_id: rule for rule in all_rules()}
    rule = by_id.get(rule_id)
    if rule is None:
        print(f"error: unknown rule {rule_id!r}; known: "
              + ", ".join(sorted(by_id)), file=sys.stderr)
        return 2
    print(f"{rule.rule_id}: {rule.title}")
    print(f"  rationale: {rule.rationale}")
    report = lint_paths(context.source_files(), context, Baseline(),
                        rules=[rule])
    shown = 0
    for finding in sorted(report.findings,
                          key=lambda f: (f.path, f.line, f.col)):
        if selectors and not any(_matches_selector(finding, s)
                                 for s in selectors):
            continue
        shown += 1
        print()
        print(finding.render())
        print(f"  fingerprint: {finding.fingerprint}")
        for step in finding.explanation:
            print(f"    {step}")
    if not shown:
        target = " matching " + " ".join(selectors) if selectors else ""
        print(f"\nno {rule_id} findings{target} in the repository")
        return 1
    return 0


def _emit(report: LintReport, output_format: str) -> None:
    if output_format == "json":
        print(json.dumps(report.to_json(), indent=2))
    elif output_format == "sarif":
        print(json.dumps(report.to_sarif(), indent=2))
    else:
        print(report.render_text())
