"""Checked-in baseline of grandfathered findings.

The baseline file (``lint-baseline.json`` at the repository root)
records findings that predate a rule and were reviewed rather than
fixed.  Every entry must carry a ``justification`` string — the
reviewer's reason the finding is acceptable — so a baseline entry is
an explicit decision, not a silent mute.

Schema 2 tightens what counts as a justification: it must *cite a
reviewable artefact* — a file path, a named docstring, a paper anchor
(``Eq. 9``, ``Fig. 5``, ``Table 2``), or a test — so the next reader
can check the claim instead of taking it on faith.  ``load`` rejects
entries whose justification cites nothing (including the
``TODO: justify`` placeholder ``--update-baseline`` writes), which is
what keeps a placeholder from quietly shipping.

Entries are keyed by :attr:`repro.lint.findings.Finding.fingerprint`
(rule id + path + offending line text), which survives line-number
drift; when the offending line itself changes, the entry stops
matching and the finding resurfaces for a fresh decision.
"""

from __future__ import annotations

import json
import pathlib
import re

from ..errors import ParameterError
from .findings import Finding

#: Default baseline location relative to the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_SCHEMA = 2

#: What counts as a citation of a reviewable artefact inside a
#: justification.  Alternatives, in order: a repo file path
#: (``src/repro/circuit/netlist.py``, ``DESIGN.md``, ``docs/...``), a
#: paper anchor (``Eq. 9``, ``Fig. 5``, ``Table 2``, ``Sec. 3``), the
#: word ``docstring`` (the contract text of the flagged callable or
#: class), or a named test (``test_lint_rules.py``, ``test_snm...``).
_ARTEFACT_RE = re.compile(
    r"(?:"
    r"[\w./-]+\.(?:py|md|rst|json|yml|yaml|toml)\b"
    r"|\b(?:eq|fig|figure|table|sec|section)\.?\s*[0-9]"
    r"|\bdocstring\b"
    r"|\btest_\w+"
    r")",
    re.IGNORECASE)


def artefact_reference(justification: str) -> str | None:
    """The first artefact citation in a justification, or None.

    This is the schema-2 admission test for baseline entries; it is
    exposed for tests and for error messages that want to show what
    *would* have counted.
    """
    match = _ARTEFACT_RE.search(justification)
    return match.group(0) if match else None


class Baseline:
    """In-memory view of the baseline file."""

    def __init__(self, entries: dict[str, dict[str, str]] | None = None
                 ) -> None:
        #: fingerprint -> {"rule", "path", "line_text", "justification"}
        self.entries: dict[str, dict[str, str]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered by this baseline."""
        return finding.fingerprint in self.entries

    def unmatched(self, findings: list[Finding]) -> list[dict[str, str]]:
        """Entries that no current finding matches (stale, fixable)."""
        seen = {f.fingerprint for f in findings}
        return [dict(entry, fingerprint=fp)
                for fp, entry in sorted(self.entries.items())
                if fp not in seen]

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            raise ParameterError(
                f"unparseable baseline {path}: {err}") from err
        if payload.get("schema") != _SCHEMA:
            raise ParameterError(
                f"baseline {path} has schema {payload.get('schema')!r}; "
                f"this checker reads schema {_SCHEMA} (schema 1 files "
                "migrate by adding an artefact citation — a file path, "
                "docstring, Eq./Fig./Table anchor, or test — to every "
                "justification and bumping the schema field)")
        entries: dict[str, dict[str, str]] = {}
        for entry in payload.get("findings", []):
            fingerprint = entry.get("fingerprint")
            if not fingerprint:
                raise ParameterError(
                    f"baseline {path}: entry without fingerprint: {entry}")
            if not entry.get("justification"):
                raise ParameterError(
                    f"baseline {path}: entry {fingerprint} has no "
                    "justification; baselined findings must say why")
            if artefact_reference(entry["justification"]) is None:
                raise ParameterError(
                    f"baseline {path}: entry {fingerprint} "
                    f"({entry.get('rule', '?')} in "
                    f"{entry.get('path', '?')}) has a justification that "
                    "cites no reviewable artefact; reference a file "
                    "path, a docstring, a paper anchor (Eq./Fig./Table "
                    "n), or a test")
            entries[fingerprint] = {
                "rule": entry.get("rule", ""),
                "path": entry.get("path", ""),
                "line_text": entry.get("line_text", ""),
                "justification": entry["justification"],
            }
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        """Baseline covering ``findings``, keeping prior justifications.

        New entries get a ``"TODO: justify"`` placeholder the reviewer
        must replace with an artefact-citing justification before the
        next lint run — :meth:`load` rejects the placeholder (it cites
        no artefact), so an unreviewed entry cannot quietly ship.
        """
        previous = previous or cls()
        entries: dict[str, dict[str, str]] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            old = previous.entries.get(finding.fingerprint, {})
            entries[finding.fingerprint] = {
                "rule": finding.rule_id,
                "path": finding.path,
                "line_text": finding.line_text.strip(),
                "justification": old.get("justification",
                                         "TODO: justify"),
            }
        return cls(entries)

    def save(self, path: pathlib.Path) -> None:
        """Write the baseline file (sorted, newline-terminated)."""
        payload = {
            "schema": _SCHEMA,
            "comment": "Grandfathered `repro lint` findings. Entries are "
                       "keyed by fingerprint (rule|path|line text); each "
                       "must carry a justification citing a reviewable "
                       "artefact (file path, docstring, Eq./Fig./Table "
                       "anchor, or test). Fix the code instead of adding "
                       "entries whenever possible.",
            "findings": [
                dict(fingerprint=fp, **entry)
                for fp, entry in sorted(self.entries.items(),
                                        key=lambda kv: (kv[1]["path"],
                                                        kv[1]["rule"],
                                                        kv[0]))
            ],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                        + "\n")
