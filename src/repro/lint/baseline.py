"""Checked-in baseline of grandfathered findings.

The baseline file (``lint-baseline.json`` at the repository root)
records findings that predate a rule and were reviewed rather than
fixed.  Every entry must carry a ``justification`` string — the
reviewer's reason the finding is acceptable — so a baseline entry is
an explicit decision, not a silent mute.

Entries are keyed by :attr:`repro.lint.findings.Finding.fingerprint`
(rule id + path + offending line text), which survives line-number
drift; when the offending line itself changes, the entry stops
matching and the finding resurfaces for a fresh decision.
"""

from __future__ import annotations

import json
import pathlib

from ..errors import ParameterError
from .findings import Finding

#: Default baseline location relative to the repository root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

_SCHEMA = 1


class Baseline:
    """In-memory view of the baseline file."""

    def __init__(self, entries: dict[str, dict[str, str]] | None = None
                 ) -> None:
        #: fingerprint -> {"rule", "path", "line_text", "justification"}
        self.entries: dict[str, dict[str, str]] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, finding: Finding) -> bool:
        """Whether ``finding`` is grandfathered by this baseline."""
        return finding.fingerprint in self.entries

    def unmatched(self, findings: list[Finding]) -> list[dict[str, str]]:
        """Entries that no current finding matches (stale, fixable)."""
        seen = {f.fingerprint for f in findings}
        return [dict(entry, fingerprint=fp)
                for fp, entry in sorted(self.entries.items())
                if fp not in seen]

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as err:
            raise ParameterError(
                f"unparseable baseline {path}: {err}") from err
        if payload.get("schema") != _SCHEMA:
            raise ParameterError(
                f"baseline {path} has schema {payload.get('schema')!r}; "
                f"this checker reads schema {_SCHEMA}")
        entries: dict[str, dict[str, str]] = {}
        for entry in payload.get("findings", []):
            fingerprint = entry.get("fingerprint")
            if not fingerprint:
                raise ParameterError(
                    f"baseline {path}: entry without fingerprint: {entry}")
            if not entry.get("justification"):
                raise ParameterError(
                    f"baseline {path}: entry {fingerprint} has no "
                    "justification; baselined findings must say why")
            entries[fingerprint] = {
                "rule": entry.get("rule", ""),
                "path": entry.get("path", ""),
                "line_text": entry.get("line_text", ""),
                "justification": entry["justification"],
            }
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: list[Finding],
                      previous: "Baseline | None" = None) -> "Baseline":
        """Baseline covering ``findings``, keeping prior justifications.

        New entries get a ``"TODO: justify"`` placeholder the reviewer
        must replace — :meth:`load` accepts it (it is non-empty) but
        code review should not.
        """
        previous = previous or cls()
        entries: dict[str, dict[str, str]] = {}
        for finding in findings:
            if finding.suppressed:
                continue
            old = previous.entries.get(finding.fingerprint, {})
            entries[finding.fingerprint] = {
                "rule": finding.rule_id,
                "path": finding.path,
                "line_text": finding.line_text.strip(),
                "justification": old.get("justification",
                                         "TODO: justify"),
            }
        return cls(entries)

    def save(self, path: pathlib.Path) -> None:
        """Write the baseline file (sorted, newline-terminated)."""
        payload = {
            "schema": _SCHEMA,
            "comment": "Grandfathered `repro lint` findings. Entries are "
                       "keyed by fingerprint (rule|path|line text); each "
                       "must carry a justification. Fix the code instead "
                       "of adding entries whenever possible.",
            "findings": [
                dict(fingerprint=fp, **entry)
                for fp, entry in sorted(self.entries.items(),
                                        key=lambda kv: (kv[1]["path"],
                                                        kv[1]["rule"],
                                                        kv[0]))
            ],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                        + "\n")
