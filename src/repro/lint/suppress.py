"""Inline suppression comments: ``# repro: noqa[RULE, ...] reason``.

A finding is suppressed when the physical line it points at (or the
line a multi-line statement starts on) carries a marker naming its
rule id.  Bare ``# repro: noqa`` without a rule list is *not*
honoured — suppressions must say what they suppress, and by repo
convention should state why::

    bracket_memo = LRUMemo("bracket")  # repro: noqa[RPR008] reset per flow

The marker grammar is deliberately rigid (``repro: noqa`` followed by
a bracketed, comma-separated rule list) so a typo fails loudly as an
unsuppressed finding rather than silently suppressing everything.
"""

from __future__ import annotations

import re

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Z0-9,\s]+)\]"
)


def suppressed_rules(source_line: str) -> frozenset[str]:
    """Rule ids suppressed by inline markers on ``source_line``."""
    rules: set[str] = set()
    for match in _NOQA_RE.finditer(source_line):
        for rule in match.group("rules").split(","):
            rule = rule.strip()
            if rule:
                rules.add(rule)
    return frozenset(rules)


def build_suppression_map(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    table: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "noqa" not in line:
            continue
        rules = suppressed_rules(line)
        if rules:
            table[lineno] = rules
    return table
