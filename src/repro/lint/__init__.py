"""``repro lint`` — AST-based checker for this repo's own invariants.

PRs 1-4 built fast batched engines whose correctness rests on
repo-wide conventions that used to live only in review comments:
scalar/batch ``solver=`` parity, byte-deterministic reporting, no
float-equality selection, narrow exception handling, SI-unit suffix
naming.  This package machine-checks them on every commit.

Rule catalogue
--------------
========  ======================================================
RPR001    float-literal ``==`` / ``!=`` comparisons
RPR002    bare/broad ``except`` without re-raise
RPR003    nondeterminism hazards (wall clock, global RNG)
RPR004    ``solver=`` switch outside the batch/sequential contract
RPR005    float parameters/fields without SI-unit suffixes
RPR006    perf-counter names outside ``repro.perf.KNOWN_COUNTERS``
RPR007    experiments without benchmark coverage
RPR008    mutable defaults / loose module-level mutable state
========  ======================================================

Findings are suppressed inline with ``# repro: noqa[RPR00n] reason``
or grandfathered in ``lint-baseline.json`` (every entry carries a
justification).  See :mod:`repro.lint.engine` for the framework and
``repro lint --help`` for the CLI.
"""

from __future__ import annotations

from .baseline import Baseline
from .cli import run_lint_command
from .context import ModuleUnit, ProjectContext
from .engine import (LintReport, Rule, all_rules, lint_paths,
                     lint_repository, rule_catalogue)
from .findings import Finding

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleUnit",
    "ProjectContext",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_repository",
    "rule_catalogue",
    "run_lint_command",
]
