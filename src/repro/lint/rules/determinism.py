"""RPR003 — no nondeterminism hazards in library code.

``repro report --jobs N`` must be byte-deterministic (PR 4 reset the
scaling warm-start cache at every flow entry for exactly this), and
Monte Carlo results must be a pure function of their ``seed``
argument.  Wall-clock reads and global RNG state break both.

Flagged: ``time.time`` / ``time.time_ns``, ``datetime.now`` /
``datetime.utcnow``, the ``random`` stdlib module, ``os.urandom``,
``uuid.uuid1``/``uuid4``, ``secrets``, and the *global* legacy
``np.random.*`` API (``np.random.seed``, ``np.random.normal``, ...).

Allowed: the explicitly seeded generator flow —
``np.random.SeedSequence`` / ``default_rng`` / ``Generator`` and the
bit generators — plus monotonic timing (``time.perf_counter``) which
measures duration without entering any result.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding

#: np.random attributes that are part of the seeded-Generator flow.
_NP_RANDOM_ALLOWED = {
    "Generator", "SeedSequence", "default_rng", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

#: (module, attribute) pairs that read wall clocks or entropy pools.
_BANNED_ATTRS = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
}

#: Whole modules whose use is a hazard in library code.
_BANNED_MODULES = {"random", "secrets"}


@register
class NondeterminismRule(Rule):
    rule_id = "RPR003"
    title = "nondeterminism hazard (wall clock / global RNG)"
    rationale = ("PR 4: byte-deterministic `repro report --jobs N` "
                 "requires results independent of run order, wall "
                 "clock, and hidden RNG state; only seeded "
                 "numpy.random.Generator/SeedSequence flows are allowed")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_attribute(module, node)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(module, node)

    def _check_attribute(self, module: ModuleUnit,
                         node: ast.Attribute) -> Iterator[Finding]:
        # np.random.<attr> / numpy.random.<attr> outside the allowed set.
        value = node.value
        if (isinstance(value, ast.Attribute) and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in ("np", "numpy")):
            if node.attr not in _NP_RANDOM_ALLOWED:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"legacy global-RNG call np.random.{node.attr}; use "
                    f"a seeded np.random.Generator "
                    f"(default_rng/SeedSequence)")
            return
        if isinstance(value, ast.Name):
            if (value.id, node.attr) in _BANNED_ATTRS:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{value.id}.{node.attr} is wall-clock/entropy "
                    f"nondeterminism; library results must be pure "
                    f"functions of their inputs (time.perf_counter is "
                    f"fine for durations)")
            elif value.id in _BANNED_MODULES:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"stdlib {value.id}.{node.attr} uses hidden global "
                    f"RNG state; use a seeded np.random.Generator")

    def _check_import(self, module: ModuleUnit,
                      node: ast.Import | ast.ImportFrom) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in _BANNED_MODULES:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"import of stdlib {alias.name!r} (hidden global "
                        f"RNG state); use seeded np.random.Generator "
                        f"flows instead")
        elif node.module in _BANNED_MODULES:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"import from stdlib {node.module!r} (hidden global RNG "
                f"state); use seeded np.random.Generator flows instead")
