"""Bundled rule set — importing this package registers every rule.

One module per invariant family:

================  ==========================================  =============
module            rules                                       motivated by
================  ==========================================  =============
``numerics``      RPR001 float-literal equality               PR 4
``exceptions``    RPR002 broad except without re-raise        PR 3
``determinism``   RPR003 wall clock / global RNG hazards      PR 4
``parity``        RPR004 solver= contract, RPR007 bench gaps  PRs 1-4
``naming``        RPR005 SI-unit suffixes                     PR 0
``perf_counters`` RPR006 counter registry                     PRs 1-4
``state``         RPR008 mutable defaults / module state      PR 4
``rootsolve``     RPR009 hand-rolled masked solve loops       PR 6
``docstrings``    RPR010 service docstring unit declarations  PR 7
``units_flow``    RPR011 mixed-unit arithmetic/rebinds,       PR 10
                  RPR012 call-site unit conflicts
================  ==========================================  =============
"""

from __future__ import annotations

from . import (determinism, docstrings, exceptions, naming, numerics,
               parity, perf_counters, rootsolve, state, units_flow)

__all__ = ["determinism", "docstrings", "exceptions", "naming",
           "numerics", "parity", "perf_counters", "rootsolve", "state",
           "units_flow"]
