"""RPR001 — no float-literal equality comparisons in library code.

``x == 0.1`` is almost always a tolerance bug in numerical code: the
comparison silently depends on the rounding history of ``x``.  PR 4
removed exactly such a bug (a float-equality re-find of an optimiser's
winning row).  The sanctioned forms are:

* exact-sentinel checks against the *integer* literal ``0`` (IEEE-754
  represents it exactly and the int literal signals "exact" intent):
  ``if ref == 0: ...``;
* tolerance checks through :func:`math.isclose` / :func:`numpy.isclose`;
* restructuring so the sentinel is carried alongside the value instead
  of being re-derived (what PR 4 did).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding


@register
class FloatEqualityRule(Rule):
    rule_id = "RPR001"
    title = "float-literal == / != comparison"
    rationale = ("PR 4: a float-equality re-find selected the wrong "
                 "optimiser row; equality on floats encodes a hidden "
                 "zero-tolerance assumption")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            comparands = [node.left, *node.comparators]
            for op, (lhs, rhs) in zip(node.ops,
                                      zip(comparands, comparands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                literal = next(
                    (c for c in (lhs, rhs)
                     if isinstance(c, ast.Constant)
                     and isinstance(c.value, float)), None)
                if literal is None:
                    continue
                kind = "==" if isinstance(op, ast.Eq) else "!="
                yield self.finding(
                    module, literal.lineno, literal.col_offset,
                    f"float literal compared with {kind}; use the int "
                    f"sentinel 0 for exact checks or math.isclose/"
                    f"np.isclose for tolerances")
