"""RPR004 / RPR007 — parity and coverage contracts.

RPR004 (solver parity): every public callable exposing a ``solver=``
switch is part of the repo-wide contract introduced in PRs 1-4: the
default must be one of the two canonical backends (``"batch"`` /
``"sequential"``) and the callable must be exercised by one of the
scalar/batch equivalence suites (``tests/test_*equivalence*.py``), so
the fast path always has a correctness oracle.

RPR007 (benchmark coverage): every id registered with
``@experiment(...)`` must be referenced by a
``benchmarks/test_bench_*.py`` module (the bench suites double as the
perf-regression gate), or carry an explicit waiver in
:data:`BENCH_WAIVERS` naming the reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding

#: Canonical backend names every ``solver=`` switch must accept.
SOLVER_BACKENDS = ("batch", "sequential")

#: Experiment ids exempt from benchmark coverage, with the reason.
#: Additions need the same review a baseline entry gets.
BENCH_WAIVERS: dict[str, str] = {}


def _iter_functions(tree: ast.Module):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _solver_default(func: ast.FunctionDef | ast.AsyncFunctionDef):
    """``(arg, default_node_or_None)`` for a ``solver`` parameter."""
    args = func.args
    positional = args.posonlyargs + args.args
    defaults = [None] * (len(positional) - len(args.defaults))
    defaults += list(args.defaults)
    for arg, default in zip(positional, defaults):
        if arg.arg == "solver":
            return arg, default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if arg.arg == "solver":
            return arg, default
    return None, None


@register
class SolverParityRule(Rule):
    rule_id = "RPR004"
    title = "solver= switch without batch/sequential parity contract"
    rationale = ("PRs 1-4: every batched fast path keeps its scalar "
                 "oracle behind solver='sequential' and is pinned by an "
                 "equivalence test; a solver= parameter outside that "
                 "contract is an unverified fork")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if not module.package_rel:
            return
        for func in _iter_functions(module.tree):
            if func.name.startswith("_"):
                continue
            arg, default = _solver_default(func)
            if arg is None:
                continue
            if not (isinstance(default, ast.Constant)
                    and default.value in SOLVER_BACKENDS):
                yield self.finding(
                    module, func.lineno, func.col_offset,
                    f"public callable {func.name}() has a solver= "
                    f"parameter whose default is not one of "
                    f"{SOLVER_BACKENDS}; the switch must expose both "
                    f"canonical backends")
                continue
            if not context.covered_by_equivalence_tests(func.name):
                yield self.finding(
                    module, func.lineno, func.col_offset,
                    f"public callable {func.name}() takes solver= but "
                    f"is not referenced by any tests/test_*equivalence*"
                    f".py suite; add it to the scalar/batch equivalence "
                    f"coverage")


@register
class BenchCoverageRule(Rule):
    rule_id = "RPR007"
    title = "experiment without benchmark coverage"
    rationale = ("PRs 1, 3, 4: the bench suites are the perf-regression "
                 "gate; an experiment outside them can silently regress "
                 "the flows the paper's tables time")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if module.top_package != "experiments":
            return
        for func in _iter_functions(module.tree):
            for deco in func.decorator_list:
                if not (isinstance(deco, ast.Call)
                        and isinstance(deco.func, ast.Name)
                        and deco.func.id == "experiment"
                        and deco.args
                        and isinstance(deco.args[0], ast.Constant)
                        and isinstance(deco.args[0].value, str)):
                    continue
                experiment_id = deco.args[0].value
                if experiment_id in BENCH_WAIVERS:
                    continue
                if experiment_id in context.benchmark_string_literals:
                    continue
                yield self.finding(
                    module, deco.lineno, deco.col_offset,
                    f"experiment {experiment_id!r} is not referenced by "
                    f"any benchmarks/test_bench_*.py module; add a bench "
                    f"or a BENCH_WAIVERS entry with a reason")
