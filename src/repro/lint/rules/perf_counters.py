"""RPR006 — perf-counter names must come from the documented registry.

:mod:`repro.perf` documents every counter the ``--profile`` flag and
the provenance footers can render.  A ``perf.bump("tyop.name")`` would
silently create a new counter nobody reports on; this rule pins every
name passed to ``perf.bump`` / ``perf.get`` to
:data:`repro.perf.KNOWN_COUNTERS` (parsed statically out of perf.py,
so the registry, its docstring, and the check cannot drift apart).

Dynamically built names (f-strings, ``"prefix" + tail``) are allowed
only when their literal head matches one of the registered
:data:`repro.perf.DYNAMIC_COUNTER_PREFIXES` families (``cache.*``,
``scaling.family.*``); a fully dynamic name needs an inline noqa with
its reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding


def _is_perf_call(node: ast.Call) -> bool:
    func = node.func
    return (isinstance(func, ast.Attribute)
            and func.attr in ("bump", "get")
            and isinstance(func.value, ast.Name)
            and func.value.id == "perf")


def _literal_head(node: ast.expr) -> str | None:
    """Leading literal text of a counter-name expression, if any."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _literal_head(node.left)
    return None


@register
class PerfCounterRegistryRule(Rule):
    rule_id = "RPR006"
    title = "perf counter name outside the documented registry"
    rationale = ("PRs 1-4 wired the counters into --profile and the "
                 "docs/RESULTS.md provenance footers; an unregistered "
                 "name is invisible to both and usually a typo")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if module.package_rel in ("perf", "lint") \
                or module.top_package == "lint":
            return
        known, prefixes = context.perf_registry
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_perf_call(node)
                    and node.args):
                continue
            name_node = node.args[0]
            if (isinstance(name_node, ast.Constant)
                    and isinstance(name_node.value, str)):
                if name_node.value not in known:
                    yield self.finding(
                        module, name_node.lineno, name_node.col_offset,
                        f"perf counter {name_node.value!r} is not in "
                        f"repro.perf.KNOWN_COUNTERS; register and "
                        f"document it there")
                continue
            head = _literal_head(name_node)
            if head is not None and any(
                    head.startswith(p) or p.startswith(head)
                    for p in prefixes):
                continue
            yield self.finding(
                module, name_node.lineno, name_node.col_offset,
                "dynamically built perf counter name does not start "
                "with a registered DYNAMIC_COUNTER_PREFIXES family; "
                "use a literal registered name or a known prefix")
