"""RPR002 — no broad exception swallowing in library code.

``except Exception`` (or a bare ``except:``) that never re-raises
turns solver bugs into silently wrong numbers.  PR 3 hand-fixed one:
``snm_distribution`` caught every exception where it meant "this trial
lost regeneration", masking genuine convergence failures until the
handler was narrowed to the known message list.

A broad handler is allowed only when its body contains a ``raise``
(conditional re-raise firewalls like the sweep recorders), otherwise
catch the narrow :mod:`repro.errors` type the call can actually throw.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _BROAD:
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise)
               for node in ast.walk(handler))


@register
class BroadExceptRule(Rule):
    rule_id = "RPR002"
    title = "broad except without re-raise"
    rationale = ("PR 3: snm_distribution's bare except masked solver "
                 "failures as lost-regeneration trials until narrowed")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node) or _reraises(node):
                continue
            what = ("bare except" if node.type is None
                    else "broad except")
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"{what} swallows all errors; catch a narrow "
                f"repro.errors type or re-raise unexpected exceptions")
