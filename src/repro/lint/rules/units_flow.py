"""RPR011 / RPR012 — unit-dimension dataflow checks.

RPR005 makes units visible in names; these rules make the *arithmetic*
honour them.  Both are thin wrappers over
:mod:`repro.lint.units_dataflow`, which infers a unit for every name
from the suffix vocabulary and propagates it through assignments,
tuple unpacking and arithmetic on a small dimension lattice.

RPR011 (intraprocedural) flags

* mixed-unit ``+`` / ``-`` / ``%`` / order comparisons
  (``vdd_v + t_stop_s``, ``l_nm < l_um``),
* rebinding a unit-suffixed name to a value whose inferred unit
  conflicts with the suffix (including unit-less results such as a
  ratio bound to ``*_v``), and
* returning a conflicting unit from a unit-suffixed function.

RPR012 (cross-file) flags call sites that pass an argument with a
confidently inferred unit to a parameter whose declared unit (suffix
or docstring bracket, via
:attr:`repro.lint.context.ProjectContext.function_unit_facts`)
conflicts — ``c_f_per_um`` passed where ``r_ohm_per_um`` is expected.

The analysis is gradual: unknown units silence every downstream check,
so findings are contradictions between two confident inferences, each
carrying the derivation chain ``repro lint --explain`` prints.
"""

from __future__ import annotations

from typing import Iterator

from ..context import DATAFLOW_PACKAGES, ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding
from ..units_dataflow import FunctionFact, UnitIssue, analyse_module

#: Issue categories each rule owns.
_RPR011_CATEGORIES = frozenset({"mix", "rebind", "return"})
_RPR012_CATEGORIES = frozenset({"call"})


def _module_issues(module: ModuleUnit,
                   context: ProjectContext) -> list[UnitIssue]:
    """Dataflow issues for one module (cached on the ModuleUnit)."""
    cached = getattr(module, "_unit_issues", None)
    if cached is None:
        facts: dict[str, FunctionFact] = (
            context.function_unit_facts)  # type: ignore[assignment]
        cached = analyse_module(module.tree, facts)
        module._unit_issues = cached  # type: ignore[attr-defined]
    return cached


class _UnitFlowRule(Rule):
    """Shared driver: run the inference once, split issues by rule."""

    categories: frozenset[str] = frozenset()

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if module.top_package not in DATAFLOW_PACKAGES:
            return
        for issue in _module_issues(module, context):
            if issue.category not in self.categories:
                continue
            yield self.finding(module, issue.lineno, issue.col,
                               issue.message, explanation=issue.chain)


@register
class MixedUnitArithmeticRule(_UnitFlowRule):
    rule_id = "RPR011"
    title = "mixed-unit arithmetic or conflicting rebind"
    rationale = ("the paper's claims are dimensional bookkeeping — "
                 "V_th in volts, I_off in A/um, energy in J; RPR005 "
                 "puts the unit in the name, this rule checks the "
                 "arithmetic honours it (vdd_v + t_stop_s is a bug the "
                 "suffix linter cannot see)")
    categories = _RPR011_CATEGORIES


@register
class CallSiteUnitRule(_UnitFlowRule):
    rule_id = "RPR012"
    title = "argument unit conflicts with parameter's declared unit"
    rationale = ("mixed-unit calibration constants crossing call "
                 "boundaries are the classic failure mode the roadmap "
                 "registry and second device backend will be exposed "
                 "to; the parameter suffix is a contract, so passing "
                 "c_f_per_um where r_ohm_per_um is expected must fail "
                 "the build")
    categories = _RPR012_CATEGORIES
