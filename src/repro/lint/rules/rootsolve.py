"""RPR009 — no hand-rolled masked root-solve loops outside the core.

Before PR 6 the library carried three independent copies of the same
masked-iteration idiom — ``while np.any(active): ... active &= ...`` —
in the device, circuit and scaling engines.  They agreed only
approximately: warm-start handling, counter semantics and termination
rules drifted per copy, and every fix had to be applied three times.
The shared core in :mod:`repro.numerics` is now the single sanctioned
implementation (gathered active set, warm-start contract, compression
counters); engine code states its problem as a ``residual(x, idx)``
callback instead of iterating masks by hand.

The rule flags ``while`` loops whose test consumes a mask derived from
a comparison in the same scope — ``while np.any(active)``,
``while active.any()``, or a bool-op containing either — anywhere
under ``src/repro`` except the :mod:`repro.numerics` package itself.
Genuinely novel iteration patterns belong in the core next to the
existing solvers (or carry an inline noqa naming why they cannot).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding


def _contains_compare(node: ast.expr) -> bool:
    return any(isinstance(sub, ast.Compare) for sub in ast.walk(node))


def _mask_names_in_test(test: ast.expr) -> set[str]:
    """Names consumed as ``<ns>.any(NAME)`` / ``NAME.any()`` in a test."""
    names: set[str] = set()
    for node in ast.walk(test):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "any":
            continue
        first = node.args[0] if node.args else None
        if isinstance(first, ast.Name):
            names.add(first.id)                # np.any(mask)
        elif first is None and isinstance(func.value, ast.Name):
            names.add(func.value.id)           # mask.any()
    return names


def _comparison_assigned(scope: ast.AST) -> set[str]:
    """Names bound to comparison-bearing expressions within ``scope``."""
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and _contains_compare(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AugAssign):
            target = node.target
            if isinstance(target, ast.Name) and _contains_compare(node.value):
                names.add(target.id)
    return names


@register
class MaskedRootSolveLoopRule(Rule):
    rule_id = "RPR009"
    title = "hand-rolled masked iteration loop outside repro/numerics"
    rationale = ("PR 6: the device/circuit/scaling engines each carried "
                 "their own `while np.any(active)` bisection loop and "
                 "the copies drifted; masked iteration now lives once in "
                 "repro/numerics behind the residual(x, idx) contract")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if not module.package_rel or module.top_package == "numerics":
            return
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(node for node in ast.walk(module.tree)
                      if isinstance(node, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)))
        # Scopes nest (module ⊃ function ⊃ closure) and ast.walk sees
        # through them, so the same loop is visited once per enclosing
        # scope; report each site once.
        seen: set[tuple[int, int]] = set()
        for scope in scopes:
            mask_names = _comparison_assigned(scope)
            if not mask_names:
                continue
            for node in ast.walk(scope):
                if not isinstance(node, ast.While):
                    continue
                site = (node.lineno, node.col_offset)
                if site in seen:
                    continue
                if _mask_names_in_test(node.test) & mask_names:
                    seen.add(site)
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "masked while-loop iterates a comparison-derived "
                        "mask by hand; state the problem as a "
                        "residual(x, idx) and call the shared solvers in "
                        "repro/numerics (bisect_masked / bisect_illinois "
                        "/ newton_safeguarded)")
