"""RPR005 — SI-unit suffix convention in the physics packages.

The device/TCAD/circuit layers pass raw floats around; the *name* is
the only place the unit lives (``c_load_f``, ``l_poly_nm``,
``ss_v_per_dec``, ``n_sub_cm3``).  A dimensioned parameter without a
unit suffix invites the classic cm-vs-um slip the paper's own Eq. 3
calibration is sensitive to.

The rule checks float-annotated parameters and dataclass fields of
public callables/classes in ``repro.device`` / ``repro.tcad`` /
``repro.circuit``:

* the name must end in a unit suffix validated against
  :mod:`repro.units` (SI prefix x base unit, or an ``X_per_Y``
  compound), or
* be a recognised dimensionless quantity: a canonical terminal
  voltage (``vdd``, ``vgs``, ... — volts by repo-wide convention), a
  model coefficient (``k_*``, ``n_*``), a ``*_factor`` / ``*_ratio`` /
  ``*_fraction`` / ``rel_*`` name, or a solver knob (``xtol`` ...).

Functions whose own name carries a unit suffix must also annotate a
float-typed return — a unit-suffixed name returning a non-float is a
contract violation.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import (ModuleUnit, ProjectContext, UNIT_SUFFIX_PACKAGES,
                       VOLTAGE_NAME_RE, is_unit_suffixed)
from ..engine import Rule, register
from ..findings import Finding

#: Shared with the RPR011/RPR012 dataflow seeds — see context.py.
_VOLTAGE_RE = VOLTAGE_NAME_RE

#: Bare names that are genuinely dimensionless or solver plumbing.
#: ``margin`` is dimensionless at both call sites (a current ratio in
#: sram, a fraction of the rail in level_shifter); ``m`` is the paper's
#: body-effect/slope coefficient.
DIMENSIONLESS = frozenset({
    "activity", "fanout", "fanin", "gain", "xtol", "rtol", "atol", "tol",
    "alpha", "beta", "gamma", "eta", "weight", "q", "u",
    "margin", "prefactor", "duty_cycle", "decade_low", "decade_high",
})

#: Name shapes that are dimensionless by construction.
_DIMENSIONLESS_RE = re.compile(
    r"(?:^(?:k|n|num|m)_)"                  # coefficients and counts
    r"|(?:^m$)"                             # slope factor m
    r"|(?:^(?:rel|normalized)_)"            # relative / normalised
    r"|(?:(?:^|_)(?:factor|ratio|fraction|pct|exponent|sigmas|effort"
    r"|efforts|sizes|taus)$)"
)


def _is_float_annotation(node: ast.expr | None) -> bool:
    """True for ``float`` and optional/union spellings containing it."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return "float" in node.value
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        return (_is_float_annotation(node.left)
                or _is_float_annotation(node.right))
    if isinstance(node, ast.Subscript):
        # Only optional/union wrappers count; dict[str, float] or
        # Callable[[float], float] are not "a float parameter".
        if (isinstance(node.value, ast.Name)
                and node.value.id in ("Optional", "Union")):
            return any(_is_float_annotation(child)
                       for child in ast.walk(node.slice)
                       if isinstance(child, (ast.Name, ast.BinOp)))
    return False


def name_is_compliant(name: str) -> bool:
    """Whether a float-valued identifier satisfies the convention."""
    lowered = name.lower()
    if is_unit_suffixed(lowered):
        return True
    if lowered in DIMENSIONLESS or _VOLTAGE_RE.match(lowered):
        return True
    return _DIMENSIONLESS_RE.search(lowered) is not None


@register
class UnitSuffixRule(Rule):
    rule_id = "RPR005"
    title = "float parameter/field without SI-unit suffix"
    rationale = ("repo-wide convention since PR 0: units live in the "
                 "identifier (cross-checked against repro.units), so a "
                 "cm-vs-um slip is visible at the call site")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if module.top_package not in UNIT_SUFFIX_PACKAGES:
            return
        # Only module-level callables and classes form the public
        # surface; nested closures (integrator right-hand sides, local
        # residual lambdas) name their variables after the maths.
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                yield from self._check_signature(module, node)
            elif isinstance(node, ast.ClassDef):
                if node.name.startswith("_"):
                    continue
                yield from self._check_fields(module, node)
                for stmt in node.body:
                    if (isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                            and not stmt.name.startswith("_")):
                        yield from self._check_signature(module, stmt)

    def _check_signature(self, module: ModuleUnit,
                         func: ast.FunctionDef | ast.AsyncFunctionDef
                         ) -> Iterator[Finding]:
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg in ("self", "cls") or arg.arg.startswith("_"):
                continue
            if not _is_float_annotation(arg.annotation):
                continue
            if name_is_compliant(arg.arg):
                continue
            yield self.finding(
                module, arg.lineno, arg.col_offset,
                f"float parameter {arg.arg!r} of {func.name}() has no "
                f"recognised unit suffix (e.g. _v, _nm, _a_per_um) and "
                f"is not a known dimensionless name")
        if (is_unit_suffixed(func.name.lower())
                and not func.name.startswith(("from_", "with_"))
                and func.returns is not None
                and not _is_float_annotation(func.returns)
                and "ndarray" not in ast.unparse(func.returns)):
            # from_*/with_* are alternate constructors named after their
            # *input* unit; ndarray returns are unit-suffixed element-wise.
            yield self.finding(
                module, func.lineno, func.col_offset,
                f"{func.name}() carries a unit suffix but is not "
                f"annotated to return a float")

    def _check_fields(self, module: ModuleUnit,
                      cls: ast.ClassDef) -> Iterator[Finding]:
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign):
                continue
            if not isinstance(stmt.target, ast.Name):
                continue
            name = stmt.target.id
            if name.startswith("_"):
                continue
            if not _is_float_annotation(stmt.annotation):
                continue
            if name_is_compliant(name):
                continue
            yield self.finding(
                module, stmt.lineno, stmt.col_offset,
                f"float field {name!r} of {cls.name} has no recognised "
                f"unit suffix (e.g. _v, _nm, _a_per_um) and is not a "
                f"known dimensionless name")
