"""RPR008 — no mutable defaults, no loose module-level mutable state.

Mutable default arguments alias across calls — in a library whose
optimisers are memoised and forked into worker processes, that is a
correctness bug waiting for its second caller.  Flagged everywhere
under ``src/repro``.

Module-level mutable containers in *engine* code (``device``,
``tcad``, ``circuit``, ``scaling``, ``materials``, ``variability``)
are flagged too: PR 4's warm-start cache taught us that process-level
state in the numerics must be deliberate — keyed, resettable, and
run-order independent — so any such cache must either be spelled
ALL_CAPS (a frozen constant table) or carry an inline noqa naming its
reset discipline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ENGINE_PACKAGES, ModuleUnit, ProjectContext
from ..engine import Rule, register
from ..findings import Finding

#: Calls that construct a mutable container.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                  "Counter", "OrderedDict", "defaultdict", "LRUMemo"}


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else "")
        return name in _MUTABLE_CALLS
    return False


def _is_constant_style(name: str) -> bool:
    """ALL_CAPS (optionally underscore-prefixed) names are constants."""
    stripped = name.lstrip("_")
    return stripped.isupper() if stripped else False


@register
class MutableStateRule(Rule):
    rule_id = "RPR008"
    title = "mutable default argument / loose module-level mutable state"
    rationale = ("PR 4: the bracket warm-start cache had to be reset at "
                 "every flow entry to keep `repro report --jobs N` "
                 "byte-deterministic; undisciplined shared state in "
                 "engine code breaks that guarantee silently")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if not module.package_rel:
            return
        yield from self._check_defaults(module)
        if module.top_package in ENGINE_PACKAGES:
            yield from self._check_module_state(module)

    def _check_defaults(self, module: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults,
                        *(d for d in node.args.kw_defaults
                          if d is not None)]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield self.finding(
                        module, default.lineno, default.col_offset,
                        f"mutable default argument in {node.name}(); "
                        f"default to None and create the container "
                        f"inside the function")

    def _check_module_state(self, module: ModuleUnit) -> Iterator[Finding]:
        for node in module.tree.body:
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if (not isinstance(target, ast.Name) or value is None
                    or not _is_mutable_literal(value)):
                continue
            if _is_constant_style(target.id):
                continue
            if target.id.startswith("__") and target.id.endswith("__"):
                continue  # __all__ and friends are interpreter contracts

            yield self.finding(
                module, node.lineno, node.col_offset,
                f"module-level mutable state {target.id!r} in engine "
                f"code; make it an ALL_CAPS frozen table, or document "
                f"its reset discipline with an inline noqa")
