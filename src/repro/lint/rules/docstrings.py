"""RPR010 — service docstrings must declare the units on the wire.

The service package is the repo's outward-facing surface: its public
functions are what ``docs/SERVICE.md`` documents and what remote
clients program against, so "the unit lives in the identifier" is not
enough there — the docstring is the contract text, and it must spell
the unit out.

The rule checks every public function (module-level, or a public
method of a public class) in ``repro.service``, ``repro.variability``
(the rare-event yield engine is a served surface too: ``repro yield``
and the ``ext_yield`` experiment are driven straight off its
docstrings), ``repro.circuit`` (the netlist/solver layer the
batched array characterisations build on), and — since the RPR011/012
unit-dataflow rules started harvesting docstring brackets as
cross-file facts — ``repro.device`` and ``repro.tcad``, whose
compact-model and solver signatures those facts are read from: each
parameter whose
name carries a unit suffix from the :mod:`repro.units` vocabulary
(``l_poly_nm``, ``ioff_target_a_per_um``, ``vdd_v`` ...) must be
mentioned in the function's docstring together with its bracketed
unit — ``l_poly_nm ... [nm]``, ``... [A/um]`` — matched
case-insensitively, with ``_per_`` compounds written as a slash.
A function with unit-suffixed parameters and no docstring at all is
a finding per parameter.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnit, ProjectContext, is_unit_suffixed
from ..engine import Rule, register
from ..findings import Finding

#: The packages whose public surface is a served contract.
SERVICE_PACKAGES = frozenset({"service", "variability", "circuit",
                              "device", "tcad"})


def unit_bracket(name: str) -> str:
    """The bracketed unit text a docstring must carry for ``name``
    (lower-cased; ``_per_`` compounds render as a slash):
    ``l_poly_nm`` -> ``[nm]``, ``ioff_target_a_per_um`` -> ``[a/um]``.
    """
    tokens = name.lower().split("_")
    if len(tokens) >= 3 and tokens[-2] == "per":
        return f"[{tokens[-3]}/{tokens[-1]}]"
    return f"[{tokens[-1]}]"


@register
class ServiceDocstringUnitsRule(Rule):
    rule_id = "RPR010"
    title = "service docstring missing a parameter's unit"
    rationale = ("repro.service, repro.variability, repro.circuit, "
                 "repro.device and repro.tcad are contract surfaces — "
                 "clients (and the RPR011/012 fact harvester) read the "
                 "docstring, not the call site, so unit-suffixed "
                 "parameters must be documented with their bracketed unit")

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        if module.top_package not in SERVICE_PACKAGES:
            return
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield from self._check_function(module, node)
            elif (isinstance(node, ast.ClassDef)
                  and not node.name.startswith("_")):
                for stmt in node.body:
                    if (isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                            and not stmt.name.startswith("_")):
                        yield from self._check_function(module, stmt)

    def _check_function(self, module: ModuleUnit,
                        func: ast.FunctionDef | ast.AsyncFunctionDef
                        ) -> Iterator[Finding]:
        args = func.args
        # Bare single-token names (`m`, `s`) are the paper's
        # dimensionless symbols, not unit-suffixed quantities.
        suffixed = [arg for arg in (*args.posonlyargs, *args.args,
                                    *args.kwonlyargs)
                    if arg.arg not in ("self", "cls")
                    and not arg.arg.startswith("_")
                    and "_" in arg.arg
                    and is_unit_suffixed(arg.arg)]
        if not suffixed:
            return
        doc = (ast.get_docstring(func) or "").lower()
        for arg in suffixed:
            bracket = unit_bracket(arg.arg)
            if not doc:
                yield self.finding(
                    module, arg.lineno, arg.col_offset,
                    f"{func.name}() has the unit-carrying parameter "
                    f"{arg.arg!r} but no docstring declaring its unit "
                    f"{bracket}")
            elif arg.arg.lower() not in doc or bracket not in doc:
                yield self.finding(
                    module, arg.lineno, arg.col_offset,
                    f"docstring of {func.name}() must mention "
                    f"{arg.arg!r} with its bracketed unit {bracket}")
