"""Unit-dimension dataflow analysis backing RPR011 / RPR012.

RPR005 checks that float names *carry* a unit suffix; this module
checks that the suffixes *compose*: it assigns each name a
:class:`Unit` drawn from the RPR005 suffix vocabulary (seeded from
:data:`repro.units.SI_PREFIXES`) and propagates units through
assignments, augmented assignments, tuple unpacking and arithmetic
with algebraic rules over a small dimension lattice —

* products/quotients compose dimensions and scales
  (``_v * _a -> _w``, ``_f * _v / _a -> _s``, ``_a / _um ->
  _a_per_um``),
* ``+`` / ``-`` / ``%`` and order comparisons require *matching* units
  (same dimension **and** same scale, so ``l_nm + l_um`` is flagged
  even though both are lengths),
* power-of-ten literals shift the scale (``t_ox_nm * 1e-9`` infers
  metres — the conversion idiom stays clean), other literals are
  unit-neutral,
* ``float()`` / ``np.asarray()`` / reductions are transparent,
  ``np.sqrt`` halves exponents, ``np.exp``-family results are neutral.

The analysis is deliberately *gradual*: an unknown unit silences every
check downstream, so only contradictions between two confidently
inferred units are reported.  Three inference seeds are trusted as
"strong": an identifier unit suffix (``vdd_v``, ``i_off_a_per_um``),
the repo's voltage-name convention (``vdd``, ``vth_n`` — volts per
RPR005), and a harvested cross-file function fact (parameter/return
units read off signatures and docstring ``[unit]`` brackets).
Conventionally dimensionless names (``xtol``, ``margin`` ...) stay
*unknown* — the baseline shows several of them are secretly volts.

Every inferred value carries a human-readable derivation chain; the
rules attach it to their findings so ``repro lint --explain RPR011``
can print why the checker believes a unit.
"""

from __future__ import annotations

import ast
import dataclasses
import functools
import math
from typing import Iterable, Iterator, Mapping

from .context import VOLTAGE_NAME_RE, unit_suffix_vocabulary

# ---------------------------------------------------------------------------
# The dimension lattice
# ---------------------------------------------------------------------------

#: Base dimensions: mass, length, time, current, temperature, plus the
#: repo's pseudo-dimensions (subthreshold-slope decade, per-square
#: sheet normalisation).  Scales are symbol -> integer exponent maps;
#: ``"10"`` is the power-of-ten prefix axis and ``"q"`` the electron
#: charge separating eV from J.
_DIMS = ("M", "L", "T", "I", "K", "dec", "sq")


@dataclasses.dataclass(frozen=True)
class Unit:
    """A point on the dimension lattice: dimensions plus scale.

    ``dims`` and ``scale`` are sorted ``(symbol, exponent)`` tuples so
    units hash and compare structurally.  Two quantities may be added
    only when their *full* units match; products and quotients compose
    exponents.
    """

    dims: tuple[tuple[str, int], ...] = ()
    scale: tuple[tuple[str, int], ...] = ()

    @staticmethod
    def _merge(a: tuple[tuple[str, int], ...],
               b: tuple[tuple[str, int], ...],
               sign: int) -> tuple[tuple[str, int], ...]:
        acc = dict(a)
        for sym, exp in b:
            acc[sym] = acc.get(sym, 0) + sign * exp
        return tuple(sorted((s, e) for s, e in acc.items() if e != 0))

    def mul(self, other: "Unit") -> "Unit":
        return Unit(self._merge(self.dims, other.dims, +1),
                    self._merge(self.scale, other.scale, +1))

    def div(self, other: "Unit") -> "Unit":
        return Unit(self._merge(self.dims, other.dims, -1),
                    self._merge(self.scale, other.scale, -1))

    def pow_int(self, n: int) -> "Unit":
        return Unit(tuple(sorted((s, e * n) for s, e in self.dims)),
                    tuple(sorted((s, e * n) for s, e in self.scale)))

    def root(self, n: int) -> "Unit | None":
        """Exact n-th root, or None when an exponent does not divide."""
        if any(e % n for _, e in self.dims) or any(e % n
                                                   for _, e in self.scale):
            return None
        return Unit(tuple((s, e // n) for s, e in self.dims),
                    tuple((s, e // n) for s, e in self.scale))

    def shift_scale(self, pow10: int) -> "Unit":
        """Unit after the stored *number* is multiplied by 10**pow10."""
        return Unit(self.dims, self._merge(self.scale, (("10", pow10),), -1))

    @property
    def is_dimensionless(self) -> bool:
        return not self.dims and not self.scale


DIMENSIONLESS = Unit()


def _u(dims: Mapping[str, int], pow10: int = 0,
       q: int = 0) -> Unit:
    scale: dict[str, int] = {}
    if pow10:
        scale["10"] = pow10
    if q:
        scale["q"] = q
    return Unit(tuple(sorted((d, e) for d, e in dims.items() if e)),
                tuple(sorted(scale.items())))


#: Unprefixed base tokens of the RPR005 vocabulary -> their unit.
_BASE_UNITS: dict[str, Unit] = {
    "v": _u({"M": 1, "L": 2, "T": -3, "I": -1}),
    "a": _u({"I": 1}),
    "f": _u({"M": -1, "L": -2, "T": 4, "I": 2}),
    "ohm": _u({"M": 1, "L": 2, "T": -3, "I": -2}),
    "s": _u({"T": 1}),
    "hz": _u({"T": -1}),
    "j": _u({"M": 1, "L": 2, "T": -2}),
    "w": _u({"M": 1, "L": 2, "T": -3}),
    "c": _u({"T": 1, "I": 1}),
    "m": _u({"L": 1}),
    "cm": _u({"L": 1}, pow10=-2),
    "um": _u({"L": 1}, pow10=-6),
    "nm": _u({"L": 1}, pow10=-9),
    "cm2": _u({"L": 2}, pow10=-4),
    "um2": _u({"L": 2}, pow10=-12),
    "nm2": _u({"L": 2}, pow10=-18),
    "cm3": _u({"L": 3}, pow10=-6),
    "k": _u({"K": 1}),
    "ev": _u({"M": 1, "L": 2, "T": -2}, q=1),
    "dec": _u({"dec": 1}),
    "decade": _u({"dec": 1}),
    "sq": _u({"sq": 1}),
    # Bare multipliers and percentage points are dimensionless for the
    # lattice; RPR005 already polices where they may appear.
    "x": DIMENSIONLESS,
    "pct": DIMENSIONLESS,
    # plural spellings
    "ohms": _u({"M": 1, "L": 2, "T": -3, "I": -2}),
    "farads": _u({"M": -1, "L": -2, "T": 4, "I": 2}),
    "volts": _u({"M": 1, "L": 2, "T": -3, "I": -1}),
    "amps": _u({"I": 1}),
}

#: SI prefix letter -> power-of-ten exponent (lower-case ASCII only,
#: matching the identifier-suffix vocabulary in repro.lint.context).
_PREFIX_POW10: dict[str, int] = {
    "y": -24, "z": -21, "a": -18, "f": -15, "p": -12, "n": -9,
    "u": -6, "m": -3, "k": 3,
}


@functools.lru_cache(maxsize=1)
def token_units() -> dict[str, Unit]:
    """Every vocabulary token (``mv``, ``na``, ``nm`` ...) -> its unit.

    Built against :func:`repro.lint.context.unit_suffix_vocabulary`
    (itself seeded from :data:`repro.units.SI_PREFIXES`) so the lattice
    and RPR005 agree on what a legal suffix is.
    """
    vocab = unit_suffix_vocabulary()
    table: dict[str, Unit] = {}
    for token in vocab:
        if token in _BASE_UNITS:
            table[token] = _BASE_UNITS[token]
            continue
        prefix, base = token[:1], token[1:]
        if base in _BASE_UNITS and prefix in _PREFIX_POW10:
            table[token] = Unit(
                _BASE_UNITS[base].dims,
                Unit._merge(_BASE_UNITS[base].scale,
                            (("10", _PREFIX_POW10[prefix]),), +1))
    return table


#: Render preference: common electrical tokens first, then the rest.
_RENDER_PREFERENCE = (
    "v", "a", "s", "w", "j", "f", "ohm", "hz", "c", "m", "k", "ev",
    "dec", "sq", "nm", "um", "cm", "mv", "mv2", "nm2", "um2", "cm2",
    "cm3",
)


@functools.lru_cache(maxsize=1)
def _unit_to_token() -> dict[Unit, str]:
    table: dict[Unit, str] = {}
    ordered = list(_RENDER_PREFERENCE) + sorted(token_units())
    for token in ordered:
        unit = token_units().get(token)
        if unit is not None and unit not in table:
            table[unit] = token
    return table


_QUOTIENT_DENOMS = ("um", "cm", "nm", "m", "dec", "s", "v", "k", "sq",
                    "um2", "cm2", "nm2", "cm3", "hz")


@functools.lru_cache(maxsize=4096)
def render_unit(unit: Unit) -> str:
    """Human-readable ``[token]`` text for a lattice point.

    Prefers an exact vocabulary token (``[w]``), then an ``X/Y``
    quotient of tokens (``[a/um]``), then a raw dimension string.
    """
    if unit.is_dimensionless:
        return "[1]"
    token = _unit_to_token().get(unit)
    if token is not None:
        return f"[{token}]"
    for den in _QUOTIENT_DENOMS:
        den_unit = token_units().get(den)
        if den_unit is None:
            continue
        num = _unit_to_token().get(unit.mul(den_unit))
        if num is not None:
            return f"[{num}/{den}]"
        inv = _unit_to_token().get(den_unit.div(unit))
        if inv is not None:
            return f"[{den}/{inv}]"
    parts = [f"{d}^{e}" if e != 1 else d for d, e in unit.dims]
    tail = "".join(
        f"*10^{e}" if s == "10" else f"*{s}^{e}" for s, e in unit.scale)
    return "[" + "*".join(parts) + tail + "]"


# ---------------------------------------------------------------------------
# Suffix / docstring-bracket parsing
# ---------------------------------------------------------------------------


def parse_token(token: str) -> Unit | None:
    """Unit of one vocabulary token, or None when unrecognised."""
    return token_units().get(token.lower())


#: Stems whose trailing letter is a *paper symbol subscript*, not a
#: unit: ``phi_f`` / ``phi_t`` (Fermi/thermal potential), ``psi_s`` /
#: ``psi_a`` (surface potential), ``n_a`` / ``p_h`` (carrier
#: concentrations).  Names with exactly these stems are never seeded.
_SYMBOL_STEMS = frozenset({"phi", "psi", "n", "p"})


@functools.lru_cache(maxsize=65536)
def parse_name_unit(name: str) -> Unit | None:
    """Unit declared by an identifier, or None.

    Recognises the RPR005 voltage-name convention (``vdd``, ``vth_n``
    -> volts), plain suffixes (``c_load_f``, ``l_poly_nm``) and
    ``X_per_Y`` compounds (``i_off_a_per_um``).  A bare token with no
    underscore (``m``, ``s``) is *not* unit-typed — those are the
    paper's dimensionless symbols and loop temporaries — and neither
    are private names (``_m``) or Greek-symbol subscripts
    (``phi_f``, ``psi_s``: see :data:`_SYMBOL_STEMS`).
    """
    lowered = name.lower()
    if VOLTAGE_NAME_RE.match(lowered):
        return _BASE_UNITS["v"]
    tokens = lowered.split("_")
    if len(tokens) < 2 or "" in tokens:
        return None
    table = token_units()
    if len(tokens) >= 3 and tokens[-2] == "per":
        num = table.get(tokens[-3])
        den = table.get(tokens[-1])
        if num is not None and den is not None:
            return num.div(den)
        return None
    if "_".join(tokens[:-1]) in _SYMBOL_STEMS:
        return None
    return table.get(tokens[-1])


def is_conversion_name(name: str) -> bool:
    """True for ``X_to_Y`` conversion helpers (``nm_to_cm``).

    Their *value* is a scale factor, so the suffix names the target
    unit of the conversion, not the unit of the return value as used in
    expressions (``l_cm / nm_to_cm(1.0)`` is nanometres, not [1]).
    They are left out of return-unit inference entirely.
    """
    return "_to_" in name.lower()


def parse_bracket_unit(text: str) -> Unit | None:
    """Unit of a docstring bracket body (``"nm"``, ``"a/um"``, ``"V"``)."""
    body = text.strip().lower()
    if "/" in body:
        num_text, _, den_text = body.partition("/")
        num = parse_token(num_text.strip())
        den = parse_token(den_text.strip())
        if num is not None and den is not None:
            return num.div(den)
        return None
    return parse_token(body)


# ---------------------------------------------------------------------------
# Cross-file function facts
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class FunctionFact:
    """Statically harvested unit contract of one callable.

    ``params`` maps parameter names to their declared units (suffix,
    voltage convention, or docstring ``name ... [unit]`` bracket).
    ``positional`` is the parameter-name order *excluding* ``self`` /
    ``cls``; None disables positional mapping (signature collisions).
    """

    name: str
    qualname: str
    params: dict[str, Unit]
    positional: tuple[str, ...] | None
    return_unit: Unit | None
    is_method: bool


_DOC_BRACKET_CACHE: dict[int, dict[str, Unit]] = {}


def _docstring_param_units(func: ast.FunctionDef | ast.AsyncFunctionDef,
                           names: Iterable[str]) -> dict[str, Unit]:
    """``name -> unit`` for params documented as ``name ... [unit]``."""
    doc = ast.get_docstring(func)
    if not doc:
        return {}
    units: dict[str, Unit] = {}
    for line in doc.lower().splitlines():
        if "[" not in line:
            continue
        for name in names:
            if name in units or name.lower() not in line:
                continue
            start = line.find("[", line.find(name.lower()))
            end = line.find("]", start)
            if start == -1 or end == -1:
                continue
            unit = parse_bracket_unit(line[start + 1:end])
            if unit is not None:
                units[name] = unit
    return units


def _signature_fact(func: ast.FunctionDef | ast.AsyncFunctionDef,
                    qualname: str, is_method: bool) -> FunctionFact:
    args = func.args
    ordered = [a.arg for a in (*args.posonlyargs, *args.args)]
    keyword_only = [a.arg for a in args.kwonlyargs]
    if is_method and ordered and ordered[0] in ("self", "cls"):
        ordered = ordered[1:]
    params: dict[str, Unit] = {}
    for name in (*ordered, *keyword_only):
        unit = parse_name_unit(name)
        if unit is not None:
            params[name] = unit
    plain = [n for n in (*ordered, *keyword_only) if n not in params]
    for name, unit in _docstring_param_units(func, plain).items():
        params[name] = unit
    return_unit = None
    if (not func.name.startswith(("from_", "with_", "_"))
            and not is_conversion_name(func.name)):
        return_unit = parse_name_unit(func.name)
    return FunctionFact(name=func.name, qualname=qualname, params=params,
                        positional=tuple(ordered), return_unit=return_unit,
                        is_method=is_method)


def _dataclass_fact(cls: ast.ClassDef, qualname: str) -> FunctionFact | None:
    """Constructor fact for a ``@dataclass``-style class (field order)."""
    decorated = any(
        (isinstance(d, ast.Name) and d.id == "dataclass")
        or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
        or (isinstance(d, ast.Call) and (
            (isinstance(d.func, ast.Name) and d.func.id == "dataclass")
            or (isinstance(d.func, ast.Attribute)
                and d.func.attr == "dataclass")))
        for d in cls.decorator_list)
    if not decorated:
        return None
    fields = [stmt.target.id for stmt in cls.body
              if isinstance(stmt, ast.AnnAssign)
              and isinstance(stmt.target, ast.Name)
              and not stmt.target.id.startswith("_")]
    params = {name: unit for name in fields
              if (unit := parse_name_unit(name)) is not None}
    return FunctionFact(name=cls.name, qualname=qualname, params=params,
                        positional=tuple(fields), return_unit=None,
                        is_method=False)


def harvest_module_facts(tree: ast.Module,
                         module_name: str) -> Iterator[FunctionFact]:
    """Facts for every callable defined at module or class level."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _signature_fact(node, f"{module_name}.{node.name}",
                                  is_method=False)
        elif isinstance(node, ast.ClassDef):
            init = None
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{module_name}.{node.name}.{stmt.name}"
                    static = any(isinstance(d, ast.Name)
                                 and d.id == "staticmethod"
                                 for d in stmt.decorator_list)
                    fact = _signature_fact(stmt, qual,
                                           is_method=not static)
                    if stmt.name == "__init__":
                        init = dataclasses.replace(fact, name=node.name)
                    else:
                        yield fact
            if init is not None:
                yield dataclasses.replace(init, is_method=False)
            else:
                fact = _dataclass_fact(node, f"{module_name}.{node.name}")
                if fact is not None:
                    yield fact


def merge_facts(facts: Iterable[FunctionFact]) -> dict[str, FunctionFact]:
    """Index facts by bare callable name, degrading on collisions.

    When two same-named callables disagree, the merged fact keeps only
    the parameter units they agree on and drops positional mapping if
    the orders differ — checks degrade to keyword arguments, they never
    guess.
    """
    table: dict[str, FunctionFact] = {}
    for fact in facts:
        prior = table.get(fact.name)
        if prior is None:
            table[fact.name] = fact
            continue
        params = {name: unit for name, unit in prior.params.items()
                  if fact.params.get(name) == unit}
        positional = (prior.positional
                      if prior.positional == fact.positional
                      and prior.is_method == fact.is_method else None)
        return_unit = (prior.return_unit
                       if prior.return_unit == fact.return_unit else None)
        table[fact.name] = FunctionFact(
            name=fact.name, qualname=prior.qualname, params=params,
            positional=positional, return_unit=return_unit,
            is_method=prior.is_method and fact.is_method)
    return table


# ---------------------------------------------------------------------------
# Intraprocedural inference
# ---------------------------------------------------------------------------

_UNKNOWN = "unknown"
_NEUTRAL = "neutral"
_KNOWN = "known"


@dataclasses.dataclass(frozen=True)
class UVal:
    """Inferred value: unknown, unit-neutral (literals), or a unit.

    ``chain`` records how the unit was derived, newest step last, for
    ``repro lint --explain``.  ``flex`` marks a unit whose *scale* came
    from a power-of-ten literal (``1e-6 * vdd``) rather than a suffix:
    small-step and margin idioms deliberately rescale within a
    dimension, so flex values match any scale of the same dimensions —
    only suffix-vs-suffix scale conflicts (``l_nm + l_um``) are hard
    errors.
    """

    kind: str = _UNKNOWN
    unit: Unit = DIMENSIONLESS
    chain: tuple[str, ...] = ()
    flex: bool = False

    @property
    def known(self) -> bool:
        return self.kind == _KNOWN


UNKNOWN = UVal()
NEUTRAL = UVal(kind=_NEUTRAL)


def known(unit: Unit, why: str,
          parents: tuple[str, ...] = (), flex: bool = False) -> UVal:
    chain = parents + (why,)
    if len(chain) > 8:
        chain = chain[:1] + ("...",) + chain[-6:]
    return UVal(kind=_KNOWN, unit=unit, chain=chain, flex=flex)


def units_conflict(left: UVal, right: UVal) -> bool:
    """True when two known values cannot legally share an expression.

    A dimension mismatch always conflicts.  A scale-only mismatch
    conflicts only between two *suffix-anchored* values — once either
    side has been rescaled by a power-of-ten literal (``flex``), the
    code is explicitly managing the scale and the lattice stops
    second-guessing it.
    """
    if left.unit.dims != right.unit.dims:
        return True
    if left.unit.scale == right.unit.scale:
        return False
    return not (left.flex or right.flex)


def conflicts_declared(value: UVal, declared: Unit) -> bool:
    """True when an inferred value violates a declared (suffix) unit."""
    if value.unit.dims != declared.dims:
        return True
    return value.unit.scale != declared.scale and not value.flex


def _join_units(left: UVal, right: UVal) -> tuple[Unit, bool]:
    """Result (unit, flex) of a non-conflicting additive/match join.

    Prefers the suffix-anchored side's unit; the join is flex only when
    no suffix anchors it.
    """
    if left.flex and not right.flex:
        return right.unit, False
    if right.flex and not left.flex:
        return left.unit, False
    return left.unit, left.flex or right.flex


@dataclasses.dataclass(frozen=True)
class UnitIssue:
    """One contradiction found by the dataflow pass.

    ``category`` is ``"mix"`` / ``"rebind"`` / ``"return"`` (RPR011) or
    ``"call"`` (RPR012); ``chain`` is the full derivation trace.
    """

    category: str
    lineno: int
    col: int
    message: str
    chain: tuple[str, ...]


#: Call targets transparent to units (result = unit of first argument).
_PRESERVE_CALLS = frozenset({
    "float", "int", "abs", "round", "sum",
    "asarray", "array", "atleast_1d", "ravel", "squeeze", "copy",
    "ascontiguousarray", "real", "absolute", "float64",
    "nansum", "mean", "nanmean", "median", "nanmedian", "diff",
    "amin", "amax", "nanmin", "nanmax", "broadcast_to", "zeros_like",
    "ones_like", "empty_like", "fabs", "floor", "ceil", "rint",
})

#: Call targets whose known-unit arguments must all agree; the result
#: takes the common unit.
_MATCH_CALLS = frozenset({
    "min", "max", "minimum", "maximum", "fmin", "fmax", "hypot",
    "isclose", "allclose",
})

#: Call targets returning a dimensionless / neutral result.
_NEUTRAL_CALLS = frozenset({
    "exp", "log", "log10", "log2", "expm1", "log1p", "tanh", "sinh",
    "cosh", "sign", "isnan", "isfinite", "isinf", "len", "argmin",
    "argmax", "ndtr", "erf", "erfc", "count_nonzero", "bool", "all",
    "any", "logical_and", "logical_or", "logical_not", "searchsorted",
})

#: ndarray methods transparent to units (checked before fact lookup).
_NDARRAY_PRESERVE = frozenset({
    "copy", "astype", "sum", "mean", "min", "max", "clip", "reshape",
    "ravel", "item", "squeeze", "flatten", "take", "transpose",
})

#: Attribute roots that are external libraries, never repro callables.
_EXTERNAL_ROOTS = frozenset({
    "np", "numpy", "math", "sp", "scipy", "os", "json", "ast", "re",
    "pathlib", "sys", "itertools", "functools", "special", "stats",
    "linalg", "qmc", "optimize", "interpolate", "plt", "time",
})


def _pow10_exponent(node: ast.expr) -> int | None:
    """Exponent k when ``node`` is a positive power-of-ten literal."""
    value: object = None
    if isinstance(node, ast.Constant):
        value = node.value
    elif (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
          and isinstance(node.operand, ast.Constant)):
        return None  # negative literals never convert units
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return None
    if value <= 0:
        return None
    exponent = math.log10(value)
    rounded = round(exponent)
    if math.isclose(exponent, rounded, abs_tol=1e-12) and rounded != 0:
        return int(rounded)
    return None


def _describe(node: ast.expr, limit: int = 48) -> str:
    text = ast.unparse(node)
    return text if len(text) <= limit else text[:limit - 3] + "..."


class FunctionUnitAnalysis:
    """One intraprocedural inference pass over a callable (or module).

    Walks the statements in order, maintaining ``env`` (name -> UVal)
    and appending :class:`UnitIssue` records to ``issues``.  Branches
    are analysed independently and merged by agreement, so a name bound
    to different units on two paths degrades to unknown instead of
    guessing.
    """

    def __init__(self, facts: Mapping[str, FunctionFact],
                 self_unit_hint: str = "") -> None:
        self.facts = facts
        self.issues: list[UnitIssue] = []
        self.env: dict[str, UVal] = {}
        self.declared_return: Unit | None = None
        self.function_name = self_unit_hint

    # -- entry points --------------------------------------------------

    def analyse_function(self,
                         func: ast.FunctionDef | ast.AsyncFunctionDef
                         ) -> list[UnitIssue]:
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            unit = parse_name_unit(arg.arg)
            if unit is not None:
                self.env[arg.arg] = known(
                    unit, f"{arg.arg} is {render_unit(unit)} "
                          f"(parameter suffix)")
        self.function_name = func.name
        if (not func.name.startswith(("from_", "with_", "_"))
                and not is_conversion_name(func.name)):
            self.declared_return = parse_name_unit(func.name)
        self._block(func.body, self.env)
        return self.issues

    def analyse_module_body(self, body: list[ast.stmt]) -> list[UnitIssue]:
        self._block(body, self.env)
        return self.issues

    # -- statement walk ------------------------------------------------

    def _block(self, stmts: list[ast.stmt],
               env: dict[str, UVal]) -> dict[str, UVal]:
        for stmt in stmts:
            env = self._statement(stmt, env)
        return env

    @staticmethod
    def _merge_envs(envs: list[dict[str, UVal]]) -> dict[str, UVal]:
        if not envs:
            return {}
        merged: dict[str, UVal] = {}
        first = envs[0]
        for name, val in first.items():
            if all((name in env and env[name].kind == val.kind
                    and env[name].unit == val.unit) for env in envs[1:]):
                merged[name] = val
        return merged

    def _statement(self, stmt: ast.stmt,
                   env: dict[str, UVal]) -> dict[str, UVal]:
        self.env = env
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env  # nested scopes are analysed separately
        if isinstance(stmt, ast.Assign):
            value = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, stmt.value, value, env)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self._expr(stmt.value)
                self._bind(stmt.target, stmt.value, value, env)
            return env
        if isinstance(stmt, ast.AugAssign):
            target_val = self._expr(stmt.target)
            value = self._expr(stmt.value)
            binop = ast.BinOp(left=stmt.target, op=stmt.op,
                              right=stmt.value)
            ast.copy_location(binop, stmt)
            result = self._binop_value(binop, target_val, value)
            if isinstance(stmt.target, ast.Name):
                self._bind(stmt.target, stmt.value, result, env,
                           rebind_check=True)
            return env
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._expr(stmt.value)
                if (self.declared_return is not None and value.known
                        and conflicts_declared(value,
                                               self.declared_return)):
                    self._issue(
                        "return", stmt,
                        f"{self.function_name}() is unit-suffixed "
                        f"{render_unit(self.declared_return)} but returns "
                        f"{_describe(stmt.value)!r} inferred as "
                        f"{render_unit(value.unit)}",
                        value.chain)
            return env
        if isinstance(stmt, ast.If):
            self._expr(stmt.test)
            then_env = self._block(list(stmt.body), dict(env))
            else_env = self._block(list(stmt.orelse), dict(env))
            return self._merge_envs([then_env, else_env])
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = self._expr(stmt.iter)
            loop_env = dict(env)
            self._bind(stmt.target, stmt.iter, iter_val, loop_env,
                       rebind_check=False)
            self.env = loop_env
            body_env = self._block(list(stmt.body), loop_env)
            else_env = self._block(list(stmt.orelse), dict(env))
            return self._merge_envs([env, body_env, else_env])
        if isinstance(stmt, ast.While):
            self._expr(stmt.test)
            body_env = self._block(list(stmt.body), dict(env))
            else_env = self._block(list(stmt.orelse), dict(env))
            return self._merge_envs([env, body_env, else_env])
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, item.context_expr,
                               UNKNOWN, env, rebind_check=False)
            return self._block(list(stmt.body), env)
        if isinstance(stmt, ast.Try):
            body_env = self._block(list(stmt.body), dict(env))
            handler_envs = [self._block(list(h.body), dict(env))
                            for h in stmt.handlers]
            merged = self._merge_envs([body_env, *handler_envs])
            merged = self._block(list(stmt.orelse), merged)
            return self._block(list(stmt.finalbody), merged)
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
            return env
        if isinstance(stmt, (ast.Assert,)):
            self._expr(stmt.test)
            return env
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        return env

    # -- binding -------------------------------------------------------

    def _bind(self, target: ast.expr, value_node: ast.expr, value: UVal,
              env: dict[str, UVal], rebind_check: bool = True) -> None:
        if isinstance(target, ast.Name):
            declared = parse_name_unit(target.id)
            if declared is not None:
                if (rebind_check and value.known
                        and conflicts_declared(value, declared)):
                    self._issue(
                        "rebind", target,
                        f"{target.id!r} is unit-suffixed "
                        f"{render_unit(declared)} but is bound to "
                        f"{_describe(value_node)!r} inferred as "
                        f"{render_unit(value.unit)}",
                        value.chain)
                env[target.id] = known(
                    declared, f"{target.id} is {render_unit(declared)} "
                              f"(name suffix)")
            else:
                env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: list[UVal]
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                    value_node.elts) == len(target.elts):
                elements = [self._expr(elt) for elt in value_node.elts]
            else:
                elements = [UNKNOWN] * len(target.elts)
            for sub_target, sub_value in zip(target.elts, elements):
                if isinstance(sub_target, ast.Starred):
                    continue
                self._bind(sub_target, value_node, sub_value, env,
                           rebind_check=rebind_check
                           and sub_value is not UNKNOWN)
        # attribute/subscript targets carry their own suffix; no check

    # -- expression inference ------------------------------------------

    def _expr(self, node: ast.expr) -> UVal:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(
                    node.value, bool):
                return NEUTRAL
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            unit = parse_name_unit(node.id)
            if unit is not None:
                return known(unit,
                             f"{node.id} is {render_unit(unit)} "
                             f"(name suffix)")
            return UNKNOWN
        if isinstance(node, ast.Attribute):
            unit = parse_name_unit(node.attr)
            if unit is not None:
                return known(unit,
                             f"{_describe(node)} is {render_unit(unit)} "
                             f"(attribute suffix)")
            return UNKNOWN
        if isinstance(node, ast.Subscript):
            return self._expr(node.value)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return self._expr(node.operand)
            self._expr(node.operand)
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._binop_value(node, self._expr(node.left),
                                     self._expr(node.right))
        if isinstance(node, ast.Compare):
            self._compare(node)
            return NEUTRAL
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._expr(value)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._expr(node.test)
            body = self._expr(node.body)
            orelse = self._expr(node.orelse)
            if body.known and orelse.known and body.unit == orelse.unit:
                return body
            return UNKNOWN
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self._expr(elt)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self._expr(node.value)
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self._expr(key)
            for value in node.values:
                self._expr(value)
            return UNKNOWN
        return UNKNOWN

    def _binop_value(self, node: ast.BinOp, left: UVal,
                     right: UVal) -> UVal:
        op = node.op
        if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
            return self._additive(node, left, right)
        if isinstance(op, ast.Mult):
            return self._multiplicative(node, left, right, sign=+1)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._multiplicative(node, left, right, sign=-1)
        if isinstance(op, ast.Pow):
            return self._power(node, left)
        return UNKNOWN

    def _additive(self, node: ast.BinOp, left: UVal,
                  right: UVal) -> UVal:
        if left.known and right.known:
            if units_conflict(left, right):
                symbol = {ast.Add: "+", ast.Sub: "-",
                          ast.Mod: "%"}[type(node.op)]
                self._issue(
                    "mix", node,
                    f"mixed-unit arithmetic: {_describe(node.left)!r} "
                    f"{render_unit(left.unit)} {symbol} "
                    f"{_describe(node.right)!r} {render_unit(right.unit)}",
                    left.chain + right.chain)
                return UNKNOWN
            unit, flex = _join_units(left, right)
            return known(unit,
                         f"{_describe(node)} keeps {render_unit(unit)}",
                         left.chain + right.chain, flex=flex)
        if left.known and right.kind == _NEUTRAL:
            return left
        if right.known and left.kind == _NEUTRAL:
            return right
        if left.kind == _NEUTRAL and right.kind == _NEUTRAL:
            return NEUTRAL
        return UNKNOWN

    def _multiplicative(self, node: ast.BinOp, left: UVal,
                        right: UVal, sign: int) -> UVal:
        # Power-of-ten literals shift the scale: `t_ox_nm * 1e-9` is
        # the conversion-to-metres idiom, not a milli-nano-metre.
        if left.known and right.kind == _NEUTRAL:
            pow10 = _pow10_exponent(node.right)
            if pow10 is not None:
                shifted = left.unit.shift_scale(sign * pow10)
                return known(
                    shifted,
                    f"{_describe(node)} scales by 10^{sign * pow10} -> "
                    f"{render_unit(shifted)}", left.chain, flex=True)
            return left
        if right.known and left.kind == _NEUTRAL:
            pow10 = _pow10_exponent(node.left)
            unit = right.unit if sign > 0 else DIMENSIONLESS.div(right.unit)
            if pow10 is not None:
                unit = unit.shift_scale(pow10)
            return known(unit, f"{_describe(node)} -> {render_unit(unit)}",
                         right.chain,
                         flex=right.flex or pow10 is not None)
        if left.known and right.known:
            unit = (left.unit.mul(right.unit) if sign > 0
                    else left.unit.div(right.unit))
            symbol = "*" if sign > 0 else "/"
            return known(
                unit,
                f"{_describe(node.left)} {render_unit(left.unit)} {symbol} "
                f"{_describe(node.right)} {render_unit(right.unit)} -> "
                f"{render_unit(unit)}",
                left.chain + right.chain, flex=left.flex or right.flex)
        if left.kind == _NEUTRAL and right.kind == _NEUTRAL:
            return NEUTRAL
        return UNKNOWN

    def _power(self, node: ast.BinOp, base: UVal) -> UVal:
        self._expr(node.right)
        if not base.known:
            return NEUTRAL if base.kind == _NEUTRAL else UNKNOWN
        exponent = node.right
        value: object = None
        if isinstance(exponent, ast.Constant):
            value = exponent.value
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return UNKNOWN
        if float(value).is_integer():
            unit = base.unit.pow_int(int(value))
            return known(unit,
                         f"{_describe(node)} -> {render_unit(unit)}",
                         base.chain, flex=base.flex)
        if math.isclose(float(value), 0.5):
            unit = base.unit.root(2)
            if unit is not None:
                return known(unit,
                             f"{_describe(node)} -> {render_unit(unit)}",
                             base.chain, flex=base.flex)
        return UNKNOWN

    def _compare(self, node: ast.Compare) -> None:
        values = [self._expr(node.left)]
        values += [self._expr(comp) for comp in node.comparators]
        ops = node.ops
        for index, op in enumerate(ops):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                                   ast.Eq, ast.NotEq)):
                continue
            left, right = values[index], values[index + 1]
            if left.known and right.known and units_conflict(left, right):
                operands = [node.left, *node.comparators]
                self._issue(
                    "mix", node,
                    f"mixed-unit comparison: "
                    f"{_describe(operands[index])!r} "
                    f"{render_unit(left.unit)} vs "
                    f"{_describe(operands[index + 1])!r} "
                    f"{render_unit(right.unit)}",
                    left.chain + right.chain)

    # -- calls ---------------------------------------------------------

    def _call(self, node: ast.Call) -> UVal:
        arg_values = [self._expr(arg) for arg in node.args
                      if not isinstance(arg, ast.Starred)]
        kwarg_values = {kw.arg: self._expr(kw.value)
                        for kw in node.keywords if kw.arg is not None}
        name, attr_base = self._call_name(node.func)
        if name is None:
            return UNKNOWN
        if name in ("sqrt",):
            if arg_values and arg_values[0].known:
                unit = arg_values[0].unit.root(2)
                if unit is not None:
                    return known(unit,
                                 f"sqrt -> {render_unit(unit)}",
                                 arg_values[0].chain)
            return UNKNOWN
        if name == "square" and arg_values and arg_values[0].known:
            unit = arg_values[0].unit.pow_int(2)
            return known(unit, f"square -> {render_unit(unit)}",
                         arg_values[0].chain)
        if name in ("where",) and len(arg_values) == 3:
            return self._require_match(node, arg_values[1:], "np.where")
        if name in ("clip",) and arg_values:
            self._require_match(node, arg_values, "clip")
            return arg_values[0]
        if name in ("interp",) and len(arg_values) == 3:
            return arg_values[2]
        if name in ("trapz", "trapezoid") and len(arg_values) >= 2:
            y, x = arg_values[0], arg_values[1]
            if y.known and x.known:
                unit = y.unit.mul(x.unit)
                return known(unit, f"integral -> {render_unit(unit)}",
                             y.chain + x.chain)
            return UNKNOWN
        if name in _MATCH_CALLS:
            return self._require_match(node, arg_values, name)
        if name in _NEUTRAL_CALLS:
            return NEUTRAL
        if name in _PRESERVE_CALLS:
            return arg_values[0] if arg_values else UNKNOWN
        if (isinstance(node.func, ast.Attribute)
                and name in _NDARRAY_PRESERVE):
            return self._expr(node.func.value)
        # Cross-file fact lookup (RPR012) — never for external modules.
        if attr_base in _EXTERNAL_ROOTS:
            return UNKNOWN
        fact = self.facts.get(name)
        if fact is None:
            unit = None if is_conversion_name(name) else parse_name_unit(name)
            if unit is not None:
                return known(unit,
                             f"{name}() returns {render_unit(unit)} "
                             f"(callable suffix)")
            return UNKNOWN
        self._check_call_against_fact(node, fact, arg_values, kwarg_values)
        if fact.return_unit is not None:
            return known(fact.return_unit,
                         f"{name}() returns "
                         f"{render_unit(fact.return_unit)} "
                         f"(suffix of {fact.qualname})")
        return UNKNOWN

    @staticmethod
    def _call_name(func: ast.expr) -> tuple[str | None, str | None]:
        if isinstance(func, ast.Name):
            return func.id, None
        if isinstance(func, ast.Attribute):
            base = func.value
            root: str | None = None
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                root = base.id
            return func.attr, root
        return None, None

    def _require_match(self, node: ast.Call, values: list[UVal],
                       label: str) -> UVal:
        units = [v for v in values if v.known]
        if len(units) >= 2 and any(units_conflict(units[0], u)
                                   for u in units[1:]):
            chain: tuple[str, ...] = ()
            for value in units:
                chain += value.chain
            self._issue(
                "mix", node,
                f"mixed units in {label}(): "
                + " vs ".join(render_unit(u.unit) for u in units),
                chain)
            return UNKNOWN
        if units:
            joined = units[0]
            for value in units[1:]:
                unit, flex = _join_units(joined, value)
                joined = dataclasses.replace(joined, unit=unit, flex=flex)
            return joined
        return NEUTRAL if values and all(
            v.kind == _NEUTRAL for v in values) else UNKNOWN

    def _check_call_against_fact(self, node: ast.Call, fact: FunctionFact,
                                 arg_values: list[UVal],
                                 kwarg_values: dict[str, UVal]) -> None:
        has_star = any(isinstance(arg, ast.Starred) for arg in node.args)
        pairs: list[tuple[str, UVal, ast.expr]] = []
        if fact.positional is not None and not has_star:
            plain_args = [a for a in node.args
                          if not isinstance(a, ast.Starred)]
            offset = 0
            if (fact.is_method and isinstance(node.func, ast.Name)):
                return  # Class.method(obj, ...) — mapping is ambiguous
            for index, (value, arg_node) in enumerate(
                    zip(arg_values, plain_args)):
                if index + offset >= len(fact.positional):
                    break
                pairs.append((fact.positional[index + offset], value,
                              arg_node))
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in kwarg_values:
                pairs.append((kw.arg, kwarg_values[kw.arg], kw.value))
        for param, value, arg_node in pairs:
            declared = fact.params.get(param)
            if declared is None or not value.known:
                continue
            if conflicts_declared(value, declared):
                self._issue(
                    "call", node,
                    f"argument {_describe(arg_node)!r} inferred as "
                    f"{render_unit(value.unit)} is passed to parameter "
                    f"{param!r} of {fact.qualname}() declared "
                    f"{render_unit(declared)}",
                    value.chain
                    + (f"{param} is {render_unit(declared)} "
                       f"(signature of {fact.qualname})",))

    # -- issue emission ------------------------------------------------

    def _issue(self, category: str, node: ast.AST, message: str,
               chain: tuple[str, ...]) -> None:
        deduped: list[str] = []
        for step in chain:
            if step not in deduped:
                deduped.append(step)
        self.issues.append(UnitIssue(
            category=category,
            lineno=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            chain=tuple(deduped)))


def analyse_module(tree: ast.Module,
                   facts: Mapping[str, FunctionFact]) -> list[UnitIssue]:
    """All unit issues in one module: module body plus every callable."""
    issues: list[UnitIssue] = []
    module_pass = FunctionUnitAnalysis(facts)
    issues.extend(module_pass.analyse_module_body(tree.body))
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analysis = FunctionUnitAnalysis(facts)
            issues.extend(analysis.analyse_function(node))
    return issues
