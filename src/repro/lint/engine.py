"""Rule framework and per-file driver for ``repro lint``.

A :class:`Rule` inspects one parsed module at a time (plus the shared
:class:`~repro.lint.context.ProjectContext` for cross-file facts) and
yields :class:`~repro.lint.findings.Finding` records.  The driver
parses each file once, runs every registered rule over it, then folds
in the two suppression layers:

1. inline ``# repro: noqa[RULE]`` markers on the offending line, and
2. the checked-in baseline of reviewed, grandfathered findings.

Findings that survive both layers are *active* and drive the non-zero
exit code.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Iterable, Iterator

from ..errors import ParameterError
from .baseline import Baseline
from .context import ModuleUnit, ProjectContext
from .findings import Finding
from .suppress import build_suppression_map

_RULE_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """Base class for lint rules; subclasses register on instantiation.

    Class attributes
    ----------------
    rule_id:
        Stable identifier (``RPR001`` ...), used in output, noqa
        markers, and baseline entries.
    title:
        One-line summary for the rule catalogue.
    rationale:
        Why the invariant exists in *this* repository — typically the
        PR whose hand-fixed bug motivated it.
    """

    rule_id: str = ""
    title: str = ""
    rationale: str = ""

    def check_module(self, module: ModuleUnit,
                     context: ProjectContext) -> Iterator[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(self, module: ModuleUnit, line: int, col: int,
                message: str,
                explanation: tuple[str, ...] = ()) -> Finding:
        """Helper building a :class:`Finding` with the line text filled."""
        return Finding(rule_id=self.rule_id, path=module.rel_path,
                       line=line, col=col, message=message,
                       line_text=module.line_text(line),
                       explanation=explanation)


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.rule_id:
        raise ParameterError(f"rule {rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _RULE_REGISTRY:
        raise ParameterError(f"duplicate rule id {rule_cls.rule_id!r}")
    _RULE_REGISTRY[rule_cls.rule_id] = rule_cls()
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by id (imports the bundled rule set)."""
    from . import rules as _rules  # noqa: F401  (registration side effect)
    return [_RULE_REGISTRY[rid] for rid in sorted(_RULE_REGISTRY)]


def rule_catalogue() -> list[tuple[str, str, str]]:
    """``(rule_id, title, rationale)`` rows for docs and ``--explain``."""
    return [(r.rule_id, r.title, r.rationale) for r in all_rules()]


class LintReport:
    """Outcome of one lint run."""

    def __init__(self, findings: list[Finding],
                 stale_baseline: list[dict[str, str]],
                 files_checked: int) -> None:
        self.findings = findings
        self.stale_baseline = stale_baseline
        self.files_checked = files_checked

    @property
    def active(self) -> list[Finding]:
        """Findings that are neither suppressed nor baselined."""
        return [f for f in self.findings if f.active]

    @property
    def clean(self) -> bool:
        """True when nothing counts against the exit code."""
        return not self.active and not self.stale_baseline

    def render_text(self, verbose: bool = False) -> str:
        """Human-readable report (active findings, then a summary)."""
        lines = []
        shown = self.findings if verbose else self.active
        for finding in sorted(shown, key=lambda f: (f.path, f.line,
                                                    f.col, f.rule_id)):
            lines.append(finding.render())
        for entry in self.stale_baseline:
            lines.append(
                f"stale baseline entry {entry['fingerprint']} "
                f"({entry['rule']} in {entry['path']}): finding no longer "
                "present; remove it from the baseline")
        suppressed = sum(1 for f in self.findings if f.suppressed)
        baselined = sum(1 for f in self.findings if f.baselined)
        lines.append(
            f"checked {self.files_checked} files: "
            f"{len(self.active)} finding(s), {baselined} baselined, "
            f"{suppressed} suppressed"
            + (f", {len(self.stale_baseline)} stale baseline entr"
               f"{'y' if len(self.stale_baseline) == 1 else 'ies'}"
               if self.stale_baseline else ""))
        return "\n".join(lines)

    def to_json(self) -> dict[str, object]:
        """Machine-readable report for ``--format json``."""
        ordered = sorted(self.findings,
                         key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return {
            "schema": 1,
            "files_checked": self.files_checked,
            "active": len(self.active),
            "baselined": sum(1 for f in self.findings if f.baselined),
            "suppressed": sum(1 for f in self.findings if f.suppressed),
            "stale_baseline": self.stale_baseline,
            "findings": [f.to_json() for f in ordered],
        }

    def to_sarif(self) -> dict[str, object]:
        """SARIF 2.1.0 log for code-scanning upload (``--format sarif``).

        Every finding becomes a ``result``; noqa-suppressed and
        baselined findings carry a SARIF ``suppressions`` entry (kind
        ``inSource`` / ``external``) so scanners show them as reviewed
        rather than open.  Paths are repository-relative URIs and the
        baseline fingerprint rides along as a partial fingerprint, so
        uploads deduplicate the same way the baseline file does.
        """
        rules_meta: list[dict[str, object]] = [{
            "id": "RPR000",
            "shortDescription": {"text": "file does not parse"},
            "fullDescription": {
                "text": "a syntax error blocks every other check; "
                        "reported so broken files fail the lint gate"},
            "defaultConfiguration": {"level": "error"},
        }]
        for rule_id, title, rationale in rule_catalogue():
            rules_meta.append({
                "id": rule_id,
                "shortDescription": {"text": title},
                "fullDescription": {"text": rationale},
                "defaultConfiguration": {"level": "error"},
            })
        results: list[dict[str, object]] = []
        ordered = sorted(self.findings,
                         key=lambda f: (f.path, f.line, f.col, f.rule_id))
        for finding in ordered:
            result: dict[str, object] = {
                "ruleId": finding.rule_id,
                "level": "error",
                "message": {"text": finding.message},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path,
                                             "uriBaseId": "SRCROOT"},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                            "snippet": {"text": finding.line_text},
                        },
                    },
                }],
                "partialFingerprints": {
                    "reproLintFingerprint/v1": finding.fingerprint},
            }
            if finding.suppressed:
                result["suppressions"] = [{
                    "kind": "inSource",
                    "justification": "inline '# repro: noqa' marker"}]
            elif finding.baselined:
                result["suppressions"] = [{
                    "kind": "external",
                    "justification": "grandfathered in lint-baseline.json"}]
            results.append(result)
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "repro-lint",
                    "rules": rules_meta,
                }},
                "columnKind": "utf16CodeUnits",
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {
                        "text": "repository root"}}},
                "results": results,
            }],
        }


def lint_paths(paths: Iterable[pathlib.Path], context: ProjectContext,
               baseline: Baseline | None = None,
               rules: Iterable[Rule] | None = None) -> LintReport:
    """Run the rule set over ``paths`` and classify the findings."""
    baseline = baseline or Baseline()
    active_rules = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    files_checked = 0
    for path in paths:
        try:
            module = ModuleUnit(path, context.root)
        except SyntaxError as err:
            findings.append(Finding(
                rule_id="RPR000",
                path=path.relative_to(context.root).as_posix(),
                line=err.lineno or 1, col=(err.offset or 1) - 1,
                message=f"file does not parse: {err.msg}",
                line_text=err.text or ""))
            files_checked += 1
            continue
        files_checked += 1
        suppressions = build_suppression_map(module.source)
        for rule in active_rules:
            for finding in rule.check_module(module, context):
                marked = suppressions.get(finding.line, frozenset())
                if finding.rule_id in marked:
                    finding = dataclasses.replace(finding, suppressed=True)
                elif baseline.matches(finding):
                    finding = dataclasses.replace(finding, baselined=True)
                findings.append(finding)
    return LintReport(findings=findings,
                      stale_baseline=baseline.unmatched(findings),
                      files_checked=files_checked)


def lint_repository(root: pathlib.Path,
                    baseline_path: pathlib.Path | None = None
                    ) -> LintReport:
    """Lint every library source under ``root`` with the baseline."""
    from .baseline import DEFAULT_BASELINE_NAME
    context = ProjectContext(root)
    path = baseline_path or (root / DEFAULT_BASELINE_NAME)
    baseline = Baseline.load(path)
    return lint_paths(context.source_files(), context, baseline)
