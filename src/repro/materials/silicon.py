"""Bulk silicon properties.

Temperature-dependent bandgap (Varshni), intrinsic carrier
concentration, Fermi potential of doped silicon, junction built-in
potential and the extrinsic Debye length.  These feed the
electrostatics and Poisson-solver layers.
"""

from __future__ import annotations

import math

from ..constants import (
    EG_0K,
    EPS_SI,
    K_B,
    NC_300K,
    NI_300K,
    NV_300K,
    Q,
    T_ROOM,
    VARSHNI_ALPHA,
    VARSHNI_BETA,
    thermal_voltage,
)
from ..errors import ParameterError


def bandgap_ev(temperature_k: float = T_ROOM) -> float:
    """Silicon bandgap in eV via the Varshni relation.

    >>> round(bandgap_ev(300.0), 3)
    1.125
    """
    if temperature_k < 0.0:
        raise ParameterError(f"temperature must be >= 0, got {temperature_k}")
    return EG_0K - VARSHNI_ALPHA * temperature_k ** 2 / (temperature_k + VARSHNI_BETA)


def intrinsic_concentration(temperature_k: float = T_ROOM) -> float:
    """Intrinsic carrier concentration n_i(T) in cm^-3.

    Uses the effective-density-of-states form
    ``n_i = sqrt(Nc*Nv) * (T/300)^1.5 * exp(-Eg/(2kT))`` normalised so
    that ``n_i(300 K)`` equals the classic 1e10 cm^-3 reference value.
    """
    if temperature_k <= 0.0:
        raise ParameterError(f"temperature must be positive, got {temperature_k}")

    def raw(t: float) -> float:
        eg = bandgap_ev(t)
        kt_ev = K_B * t / Q
        return math.sqrt(NC_300K * NV_300K) * (t / 300.0) ** 1.5 * math.exp(
            -eg / (2.0 * kt_ev)
        )

    return NI_300K * raw(temperature_k) / raw(300.0)


def fermi_potential(doping_cm3: float, temperature_k: float = T_ROOM) -> float:
    """Fermi potential ``phi_F = vT * ln(N/n_i)`` of p-type silicon [V].

    For an n-channel MOSFET the body is p-type with acceptor
    concentration ``doping_cm3``; the same magnitude applies (with sign
    flipped externally) to n-type bodies.

    >>> 0.45 < fermi_potential(1.5e18) < 0.55
    True
    """
    if doping_cm3 <= 0.0:
        raise ParameterError(f"doping must be positive, got {doping_cm3}")
    ni = intrinsic_concentration(temperature_k)
    if doping_cm3 <= ni:
        raise ParameterError(
            f"doping {doping_cm3:.3g} cm^-3 must exceed n_i = {ni:.3g} cm^-3"
        )
    return thermal_voltage(temperature_k) * math.log(doping_cm3 / ni)


def built_in_potential(
    n_side_cm3: float, p_side_cm3: float, temperature_k: float = T_ROOM
) -> float:
    """Built-in potential of a pn junction [V].

    ``V_bi = vT * ln(Nd * Na / n_i^2)``; used for the source/drain to
    channel junctions in the short-channel-effect model.
    """
    if n_side_cm3 <= 0.0 or p_side_cm3 <= 0.0:
        raise ParameterError("junction dopings must be positive")
    ni = intrinsic_concentration(temperature_k)
    return thermal_voltage(temperature_k) * math.log(
        n_side_cm3 * p_side_cm3 / ni ** 2
    )


def debye_length(doping_cm3: float, temperature_k: float = T_ROOM) -> float:
    """Extrinsic Debye length [cm] of silicon doped at ``doping_cm3``."""
    if doping_cm3 <= 0.0:
        raise ParameterError(f"doping must be positive, got {doping_cm3}")
    vt = thermal_voltage(temperature_k)
    return math.sqrt(EPS_SI * vt / (Q * doping_cm3))
