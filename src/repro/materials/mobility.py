"""Carrier mobility models.

Three effects matter for the devices in this study:

* ionised-impurity scattering — low-field mobility falls with channel
  doping (Masetti fit),
* vertical-field degradation — the effective mobility in an inversion
  layer falls with the transverse effective field (universal mobility),
* velocity saturation — lateral-field degradation that limits the
  on-current of short devices.

The models are deliberately the simple textbook forms: the paper's
conclusions depend on trends in electrostatics, and the mobility model
only needs to scale currents plausibly between nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import VSAT_ELECTRON, VSAT_HOLE
from ..errors import ParameterError

# Masetti fit parameters (Masetti, Severi, Solmi 1983), electrons/holes
# in silicon; mu in cm^2/Vs, N in cm^-3.
_MASETTI = {
    "electron": dict(mu_min1=52.2, mu_min2=52.2, mu1=43.4, mu_max=1417.0,
                     cr=9.68e16, cs=3.43e20, alpha=0.680, beta=2.0),
    "hole": dict(mu_min1=44.9, mu_min2=0.0, mu1=29.0, mu_max=470.5,
                 cr=2.23e17, cs=6.10e20, alpha=0.719, beta=2.0),
}


def masetti_mobility(doping_cm3: float, carrier: str = "electron") -> float:
    """Low-field bulk mobility [cm^2/Vs] vs total doping (Masetti model).

    >>> masetti_mobility(1e15) > 1300
    True
    >>> masetti_mobility(1e19) < 150
    True
    """
    if doping_cm3 <= 0.0:
        raise ParameterError(f"doping must be positive, got {doping_cm3}")
    try:
        p = _MASETTI[carrier]
    except KeyError:
        raise ParameterError(f"unknown carrier {carrier!r}") from None
    n = doping_cm3
    mu = p["mu_min1"]
    mu += (p["mu_max"] - p["mu_min2"]) / (1.0 + (n / p["cr"]) ** p["alpha"])
    mu -= p["mu1"] / (1.0 + (p["cs"] / n) ** p["beta"])
    return max(mu, 10.0)


def vertical_field_factor(eff_field_v_per_cm: float, carrier: str = "electron") -> float:
    """Universal-mobility degradation factor (<= 1) vs effective field.

    ``1 / (1 + (E_eff/E_0)^nu)`` with the usual electron/hole constants
    (E_0 ~ 0.67 MV/cm, nu ~ 1.6 for electrons).
    """
    if eff_field_v_per_cm < 0.0:
        raise ParameterError("effective field must be >= 0")
    if carrier == "electron":
        e0, nu = 6.7e5, 1.6
    elif carrier == "hole":
        e0, nu = 7.0e5, 1.0
    else:
        raise ParameterError(f"unknown carrier {carrier!r}")
    return 1.0 / (1.0 + (eff_field_v_per_cm / e0) ** nu)


def saturation_velocity(carrier: str = "electron") -> float:
    """Carrier saturation velocity [cm/s]."""
    if carrier == "electron":
        return VSAT_ELECTRON
    if carrier == "hole":
        return VSAT_HOLE
    raise ParameterError(f"unknown carrier {carrier!r}")


@dataclass(frozen=True)
class MobilityModel:
    """Composite mobility model for one carrier type.

    Parameters
    ----------
    carrier:
        ``"electron"`` or ``"hole"``.
    temperature_k:
        Lattice temperature; bulk mobility scales as ``(T/300)^-2.2``
        (phonon-dominated regime).
    """

    carrier: str = "electron"
    temperature_k: float = 300.0

    def __post_init__(self) -> None:
        if self.carrier not in ("electron", "hole"):
            raise ParameterError(f"unknown carrier {self.carrier!r}")
        if self.temperature_k <= 0.0:
            raise ParameterError("temperature must be positive")

    def low_field(self, doping_cm3: float) -> float:
        """Low-field mobility [cm^2/Vs] at the model temperature."""
        mu300 = masetti_mobility(doping_cm3, self.carrier)
        return mu300 * (self.temperature_k / 300.0) ** -2.2

    def effective(self, doping_cm3: float, eff_field_v_per_cm: float) -> float:
        """Effective inversion-layer mobility [cm^2/Vs]."""
        return self.low_field(doping_cm3) * vertical_field_factor(
            eff_field_v_per_cm, self.carrier
        )

    def vsat(self) -> float:
        """Saturation velocity [cm/s]."""
        return saturation_velocity(self.carrier)


def effective_mobility(
    doping_cm3: float,
    eff_field_v_per_cm: float = 0.0,
    carrier: str = "electron",
    temperature_k: float = 300.0,
) -> float:
    """Convenience wrapper over :class:`MobilityModel`.

    >>> effective_mobility(2e18) < effective_mobility(1e16)
    True
    """
    model = MobilityModel(carrier=carrier, temperature_k=temperature_k)
    return model.effective(doping_cm3, eff_field_v_per_cm)
