"""Gate-stack (dielectric) models.

The paper treats ``T_ox`` as a scaling knob whose slow reduction
(~10 %/generation, limited by gate leakage and reliability) is the root
cause of subthreshold-slope degradation.  This module models a gate
stack by its physical thickness and dielectric constant, exposes the
equivalent oxide thickness (EOT) and areal capacitance, and provides a
crude direct-tunnelling gate-leakage heuristic used in discussions of
why T_ox cannot scale faster.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import EPS_0, EPS_OX_REL
from ..errors import ParameterError


@dataclass(frozen=True)
class GateStack:
    """A single-layer gate dielectric.

    Parameters
    ----------
    thickness_cm:
        Physical dielectric thickness [cm].
    rel_permittivity:
        Relative dielectric constant (3.9 for SiO2, ~20 for HfO2).
    name:
        Label used in reports.
    """

    thickness_cm: float
    rel_permittivity: float = EPS_OX_REL
    name: str = "SiO2"

    def __post_init__(self) -> None:
        if self.thickness_cm <= 0.0:
            raise ParameterError(
                f"gate dielectric thickness must be positive, got {self.thickness_cm}"
            )
        if self.rel_permittivity < 1.0:
            raise ParameterError("relative permittivity must be >= 1")

    @property
    def eot_cm(self) -> float:
        """Equivalent oxide thickness [cm] referenced to SiO2."""
        return self.thickness_cm * EPS_OX_REL / self.rel_permittivity

    @property
    def capacitance_per_area(self) -> float:
        """Areal gate capacitance C_ox [F/cm^2]."""
        return self.rel_permittivity * EPS_0 / self.thickness_cm

    def scaled(self, factor: float) -> "GateStack":
        """Return a stack with thickness multiplied by ``factor``."""
        if factor <= 0.0:
            raise ParameterError("scaling factor must be positive")
        return GateStack(
            thickness_cm=self.thickness_cm * factor,
            rel_permittivity=self.rel_permittivity,
            name=self.name,
        )

    def tunneling_leakage_a_cm2(self, vox: float = 1.0) -> float:
        """Direct-tunnelling gate-leakage density heuristic [A/cm^2].

        Exponential in physical thickness with the ~1 decade / 2 Angstrom
        slope reported for thin SiO2 near 1 V oxide bias.  High-k stacks
        benefit from their larger physical thickness at equal EOT, which
        is exactly why the ITRS projections the paper cites rely on them.
        """
        if vox < 0.0:
            raise ParameterError("oxide voltage must be >= 0")
        t_nm = self.thickness_cm * 1.0e7
        # Calibration: ~1 A/cm^2 at 2.0 nm SiO2, 1 decade per 0.2 nm,
        # roughly linear in bias around 1 V.
        barrier_scale = 3.1 / 3.1  # SiO2 barrier reference
        decades = (2.0 - t_nm) / 0.2 * barrier_scale
        return max(vox, 1e-9) * 10.0 ** decades


def sio2(thickness_cm: float) -> GateStack:
    """Construct a thermal-SiO2 stack of the given physical thickness."""
    return GateStack(thickness_cm=thickness_cm, rel_permittivity=EPS_OX_REL,
                     name="SiO2")


def hfo2(eot_cm: float, rel_permittivity: float = 20.0) -> GateStack:
    """Construct a high-k (HfO2-like) stack with a target EOT."""
    if eot_cm <= 0.0:
        raise ParameterError("EOT must be positive")
    physical = eot_cm * rel_permittivity / EPS_OX_REL
    return GateStack(thickness_cm=physical, rel_permittivity=rel_permittivity,
                     name="HfO2")


#: Reference stacks used by examples and tests.
SIO2 = sio2(2.1e-7)
HFO2 = hfo2(1.0e-7)
