"""Material models: silicon bulk properties, carrier mobility, gate stacks."""

from .silicon import (
    bandgap_ev,
    intrinsic_concentration,
    fermi_potential,
    built_in_potential,
    debye_length,
)
from .mobility import (
    MobilityModel,
    masetti_mobility,
    effective_mobility,
)
from .oxide import GateStack, SIO2, HFO2

__all__ = [
    "bandgap_ev",
    "intrinsic_concentration",
    "fermi_potential",
    "built_in_potential",
    "debye_length",
    "MobilityModel",
    "masetti_mobility",
    "effective_mobility",
    "GateStack",
    "SIO2",
    "HFO2",
]
