"""Physical constants used throughout the library.

All quantities are expressed in a centimetre-gram-second-derived unit
system that is conventional in device physics:

* lengths in centimetres (``cm``),
* capacitances per area in ``F/cm^2``,
* doping concentrations in ``cm^-3``,
* currents in amperes, voltages in volts, temperatures in kelvin.

Helper converters for the nanometre-scale inputs used by the paper
(``nm_to_cm`` and friends) live here as well so that modules never
hand-roll the factors.
"""

from __future__ import annotations

import math

# --- fundamental constants -------------------------------------------------

#: Elementary charge [C].
Q: float = 1.602176634e-19

#: Boltzmann constant [J/K].
K_B: float = 1.380649e-23

#: Vacuum permittivity [F/cm].
EPS_0: float = 8.8541878128e-14

#: Relative permittivity of silicon.
EPS_SI_REL: float = 11.7

#: Relative permittivity of thermal SiO2.
EPS_OX_REL: float = 3.9

#: Permittivity of silicon [F/cm].
EPS_SI: float = EPS_SI_REL * EPS_0

#: Permittivity of SiO2 [F/cm].
EPS_OX: float = EPS_OX_REL * EPS_0

#: Default lattice temperature [K].
T_ROOM: float = 300.0

#: Intrinsic carrier concentration of silicon at 300 K [cm^-3].
#: The classic device-physics value (Taur & Ning) rather than the more
#: recent 9.65e9 refinement; the paper's generation of TCAD tools used it.
NI_300K: float = 1.0e10

#: Silicon bandgap at 0 K [eV] (Varshni fit).
EG_0K: float = 1.170
#: Varshni alpha [eV/K].
VARSHNI_ALPHA: float = 4.73e-4
#: Varshni beta [K].
VARSHNI_BETA: float = 636.0

#: Effective density of states, conduction band, at 300 K [cm^-3].
NC_300K: float = 2.8e19
#: Effective density of states, valence band, at 300 K [cm^-3].
NV_300K: float = 1.04e19

#: Saturation velocity of electrons in silicon [cm/s].
VSAT_ELECTRON: float = 1.0e7
#: Saturation velocity of holes in silicon [cm/s].
VSAT_HOLE: float = 8.0e6

#: ln(10); the factor between natural and decadic slopes.
LN10: float = math.log(10.0)


def thermal_voltage(temperature_k: float = T_ROOM) -> float:
    """Return the thermal voltage ``kT/q`` in volts.

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    if temperature_k <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature_k!r}")
    return K_B * temperature_k / Q


# --- unit conversions -------------------------------------------------------

#: Centimetres per nanometre.
CM_PER_NM: float = 1.0e-7
#: Centimetres per micrometre.
CM_PER_UM: float = 1.0e-4


def nm_to_cm(value_nm: float) -> float:
    """Convert nanometres to centimetres."""
    return value_nm * CM_PER_NM


def cm_to_nm(value_cm: float) -> float:
    """Convert centimetres to nanometres."""
    return value_cm / CM_PER_NM


def um_to_cm(value_um: float) -> float:
    """Convert micrometres to centimetres."""
    return value_um * CM_PER_UM


def cm_to_um(value_cm: float) -> float:
    """Convert centimetres to micrometres."""
    return value_cm / CM_PER_UM
