"""repro — reproduction of *Nanometer Device Scaling in Subthreshold
Circuits* (Hanson, Seok, Sylvester, Blaauw — DAC 2007).

The package layers:

* :mod:`repro.materials` / :mod:`repro.device` — a bulk-MOSFET compact
  model with the paper's four scaling parameters (L_poly, T_ox, N_sub,
  N_p,halo),
* :mod:`repro.tcad` — a numerical 1-D Poisson / quasi-2-D device
  simulator standing in for MEDICI,
* :mod:`repro.circuit` — inverter VTC/SNM, transient delay, and
  minimum-energy (V_min) analysis,
* :mod:`repro.scaling` — the super-V_th (Table 2) and proposed
  sub-V_th (Table 3) scaling-strategy optimisers,
* :mod:`repro.experiments` — one module per paper table/figure,
* :mod:`repro.variability` — RDF/Monte-Carlo extension.

Quick start::

    from repro.device import nfet, pfet
    from repro.circuit import Inverter, noise_margins

    n = nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
             n_p_halo_cm3=1.5e18)
    p = pfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.2e18,
             n_p_halo_cm3=1.5e18)
    inv = Inverter(n, p, vdd=0.25)
    print(noise_margins(inv).snm)
"""

from .constants import thermal_voltage
from .device import MOSFET, Polarity, nfet, pfet
from .circuit import Inverter, noise_margins, fo1_delay, InverterChain
from .scaling import (
    build_super_vth_family,
    build_sub_vth_family,
    roadmap_nodes,
    node_by_name,
)
from .tcad import DeviceSimulator
from .experiments import run_experiment, list_experiments

__version__ = "1.0.0"

__all__ = [
    "thermal_voltage",
    "MOSFET",
    "Polarity",
    "nfet",
    "pfet",
    "Inverter",
    "noise_margins",
    "fo1_delay",
    "InverterChain",
    "build_super_vth_family",
    "build_sub_vth_family",
    "roadmap_nodes",
    "node_by_name",
    "DeviceSimulator",
    "run_experiment",
    "list_experiments",
    "__version__",
]
