"""Labelled data series — the payload of every reproduced figure."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError


@dataclass(frozen=True)
class Series:
    """One labelled (x, y) series of a figure.

    Attributes
    ----------
    label:
        Legend label ("super-vth @250mV", ...).
    x / y:
        Sample arrays of equal length.
    x_label / y_label:
        Axis descriptions, units included.
    """

    label: str
    x: np.ndarray
    y: np.ndarray
    x_label: str = "x"
    y_label: str = "y"

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.ndim != 1 or x.shape != y.shape:
            raise ParameterError("series needs matching 1-D x and y arrays")
        if x.size == 0:
            raise ParameterError("series cannot be empty")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def normalized(self, reference: float | None = None) -> "Series":
        """Series scaled so the reference value (default: first y) is 1."""
        ref = self.y[0] if reference is None else reference
        if ref == 0:
            raise ParameterError("cannot normalise by zero")
        return Series(label=self.label, x=self.x, y=self.y / ref,
                      x_label=self.x_label,
                      y_label=f"{self.y_label} (normalized)")

    def total_change(self) -> float:
        """Fractional change from first to last sample."""
        if self.y[0] == 0:
            raise ParameterError("cannot normalise by zero")
        return float(self.y[-1] / self.y[0] - 1.0)

    def per_step_change(self) -> list[float]:
        """Fractional change between consecutive samples."""
        if np.any(self.y[:-1] == 0):
            raise ParameterError("cannot normalise by zero")
        return list(np.diff(self.y) / self.y[:-1])

    def pearson_r(self, other: "Series") -> float:
        """Correlation between this and another series' y values."""
        if other.y.shape != self.y.shape:
            raise ParameterError("series lengths differ")
        if self.y.size < 3:
            raise ParameterError("need at least 3 samples for correlation")
        return float(np.corrcoef(self.y, other.y)[0, 1])

    def as_rows(self) -> list[tuple[float, float]]:
        """(x, y) tuples, e.g. for table rendering."""
        return list(zip(self.x.tolist(), self.y.tolist()))
