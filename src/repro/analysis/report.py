"""Experiment result containers and paper-vs-measured comparisons.

Every experiment returns an :class:`ExperimentResult`: the reproduced
table rows / figure series plus a list of :class:`Comparison` records
that pair each paper claim with the measured value.  EXPERIMENTS.md is
generated from these records, and the benchmark suite asserts on the
``holds`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .series import Series
from .tables import format_sig, render_table


@dataclass(frozen=True)
class Comparison:
    """One paper-claim-vs-measurement record.

    Attributes
    ----------
    claim:
        The paper's statement ("S_S degrades ~11% from 90nm to 32nm").
    paper_value / measured_value:
        Numeric values in the same unit.
    unit:
        Unit label for rendering.
    holds:
        Whether the *qualitative* claim holds in the reproduction
        (set by the experiment's own criterion, not strict equality).
    note:
        Free-form context (calibration caveats, definitions).
    """

    claim: str
    paper_value: float
    measured_value: float
    unit: str = ""
    holds: bool = True
    note: str = ""

    def render(self) -> str:
        """One-line human-readable rendering."""
        status = "OK " if self.holds else "MISS"
        return (f"[{status}] {self.claim}: paper {format_sig(self.paper_value)}"
                f"{self.unit} vs measured {format_sig(self.measured_value)}"
                f"{self.unit}" + (f" ({self.note})" if self.note else ""))


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one reproduced table or figure.

    Attributes
    ----------
    experiment_id:
        "table2", "fig4", ...
    title:
        Human-readable title.
    series:
        Figure payload (empty for pure tables).
    headers / rows:
        Table payload (empty for pure figures).
    comparisons:
        Paper-vs-measured records.
    """

    experiment_id: str
    title: str
    series: tuple[Series, ...] = ()
    headers: tuple[str, ...] = ()
    rows: tuple[tuple, ...] = ()
    comparisons: tuple[Comparison, ...] = ()

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ParameterError("experiment needs an id")
        if self.rows and not self.headers:
            raise ParameterError("table rows need headers")

    def get_series(self, label: str) -> Series:
        """Look up a series by its label."""
        for s in self.series:
            if s.label == label:
                return s
        known = ", ".join(s.label for s in self.series)
        raise ParameterError(f"no series {label!r}; have: {known}")

    def all_hold(self) -> bool:
        """True when every recorded claim holds."""
        return all(c.holds for c in self.comparisons)

    def render(self) -> str:
        """Full plain-text rendering (tables, series, comparisons)."""
        parts: list[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(render_table(self.headers, self.rows))
        for s in self.series:
            header = f"-- {s.label} ({s.x_label} vs {s.y_label}) --"
            body = "\n".join(
                f"  {format_sig(x, 4)}\t{format_sig(y, 4)}"
                for x, y in s.as_rows()
            )
            parts.append(f"{header}\n{body}")
        if self.comparisons:
            parts.append("-- paper vs measured --")
            parts.extend(c.render() for c in self.comparisons)
        return "\n".join(parts)
