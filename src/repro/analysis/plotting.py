"""Terminal-friendly plotting: ASCII line charts for experiment series.

The reproduction runs in headless/offline environments, so figures are
rendered as compact ASCII charts (one character column per x-bucket,
rows spanning the y-range).  Good enough to eyeball every reproduced
figure's shape directly from ``python -m repro run figN --plot``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ParameterError
from .series import Series

#: Glyphs used for successive series in one chart.
GLYPHS = "*o+x#%@"


def render_ascii_chart(series_list: list[Series], width: int = 64,
                       height: int = 16, logy: bool = False) -> str:
    """Render one or more series into an ASCII chart.

    All series share the x and y axes; y may be log-scaled for the
    current/energy figures.  Returns a multi-line string.
    """
    if not series_list:
        raise ParameterError("need at least one series")
    if width < 16 or height < 4:
        raise ParameterError("chart too small to be legible")
    if len(series_list) > len(GLYPHS):
        raise ParameterError(f"at most {len(GLYPHS)} series per chart")

    xs = np.concatenate([s.x for s in series_list])
    ys = np.concatenate([s.y for s in series_list])
    if logy:
        if np.any(ys <= 0.0):
            raise ParameterError("log-scale chart requires positive y")
        ys = np.log10(ys)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for glyph, series in zip(GLYPHS, series_list):
        y_vals = np.log10(series.y) if logy else series.y
        # Dense linear interpolation so lines read as lines.
        x_dense = np.linspace(series.x.min(), series.x.max(), width * 4)
        order = np.argsort(series.x)
        y_dense = np.interp(x_dense, series.x[order], y_vals[order])
        for xv, yv in zip(x_dense, y_dense):
            col = int((xv - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((yv - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    y_top = 10.0 ** y_hi if logy else y_hi
    y_bot = 10.0 ** y_lo if logy else y_lo
    lines = [f"{y_top:11.4g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 11 + " |" + "".join(row))
    lines.append(f"{y_bot:11.4g} +" + "".join(grid[-1]))
    axis = " " * 13 + f"{x_lo:<.4g}" + " " * max(
        width - len(f"{x_lo:<.4g}") - len(f"{x_hi:.4g}"), 1) + f"{x_hi:.4g}"
    lines.append(axis)
    legend = "   ".join(f"{glyph} {s.label}"
                        for glyph, s in zip(GLYPHS, series_list))
    lines.append(" " * 13 + legend)
    return "\n".join(lines)


def sparkline(values: list[float] | np.ndarray, width: int | None = None
              ) -> str:
    """A one-line unicode sparkline (eight-level blocks).

    >>> sparkline([1, 2, 3, 4])
    '▁▃▆█'
    """
    blocks = "▁▂▃▄▅▆▇█"
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ParameterError("sparkline needs values")
    if width is not None and width < arr.size:
        idx = np.linspace(0, arr.size - 1, width).round().astype(int)
        arr = arr[idx]
    lo, hi = float(arr.min()), float(arr.max())
    if hi == lo:
        return blocks[0] * arr.size
    levels = ((arr - lo) / (hi - lo) * (len(blocks) - 1)).round().astype(int)
    return "".join(blocks[level] for level in levels)
