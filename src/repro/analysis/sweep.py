"""Generic parameter-sweep helpers.

Thin, explicit wrappers: a 1-D sweep evaluating a callable over a grid
(with optional per-point error tolerance) and a cartesian grid sweep.
Used by experiments for V_dd sweeps, L_poly sweeps and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..errors import ParameterError


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated sweep point.

    ``error`` holds the exception message when the evaluation failed
    and failures were tolerated; ``value`` is ``None`` in that case.
    """

    inputs: tuple[float, ...]
    value: object | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the evaluation succeeded."""
        return self.error is None


def sweep_1d(func: Callable[[float], object], grid: Iterable[float],
             tolerate_failures: bool = False) -> list[SweepPoint]:
    """Evaluate ``func`` over a 1-D grid.

    With ``tolerate_failures`` the sweep records exceptions instead of
    propagating — useful for sweeps that run off a model's validity
    edge (e.g. SNM at supplies below the regeneration limit).
    """
    points: list[SweepPoint] = []
    for x in grid:
        x = float(x)
        try:
            points.append(SweepPoint(inputs=(x,), value=func(x)))
        except Exception as exc:  # noqa: BLE001 -- intentional: recorded
            if not tolerate_failures:
                raise
            points.append(SweepPoint(inputs=(x,), value=None, error=str(exc)))
    return points


def sweep_grid(func: Callable[..., object],
               grids: dict[str, Iterable[float]],
               tolerate_failures: bool = False) -> list[SweepPoint]:
    """Evaluate ``func(**kwargs)`` over the cartesian product of grids.

    Axis order follows the dict insertion order; ``inputs`` in each
    point are in that same order.
    """
    if not grids:
        raise ParameterError("need at least one sweep axis")
    names = list(grids)
    axes = [np.asarray(list(g), dtype=float) for g in grids.values()]
    mesh = np.meshgrid(*axes, indexing="ij")
    flat = np.stack([m.ravel() for m in mesh], axis=-1)
    points: list[SweepPoint] = []
    for row in flat:
        kwargs = {name: float(v) for name, v in zip(names, row)}
        try:
            points.append(SweepPoint(inputs=tuple(row.tolist()),
                                     value=func(**kwargs)))
        except Exception as exc:  # noqa: BLE001 -- intentional: recorded
            if not tolerate_failures:
                raise
            points.append(SweepPoint(inputs=tuple(row.tolist()), value=None,
                                     error=str(exc)))
    return points


def successful_values(points: list[SweepPoint]) -> list[object]:
    """Values of the successful points, in sweep order."""
    return [p.value for p in points if p.ok]
