"""Plain-text table rendering for experiment output.

The experiments print paper-style tables to stdout; this module keeps
the formatting in one place (column alignment, significant digits,
engineering notation via :mod:`repro.units`).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import ParameterError


def format_sig(value: float, digits: int = 3) -> str:
    """Format a float to ``digits`` significant figures.

    >>> format_sig(1234.5)
    '1230'
    >>> format_sig(0.00123)
    '0.00123'
    """
    if value == 0:
        return "0"
    if math.isnan(value) or math.isinf(value):
        return str(value)
    magnitude = math.floor(math.log10(abs(value)))
    if -4 <= magnitude < digits + 2:
        decimals = digits - 1 - magnitude
        if decimals >= 0:
            return f"{value:.{decimals}f}"
        rounded = round(value, decimals)
        return f"{rounded:.0f}"
    return f"{value:.{digits - 1}e}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table.

    Cells may be strings or numbers; numbers are formatted to three
    significant figures.
    """
    if not headers:
        raise ParameterError("table needs headers")
    text_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ParameterError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
        text_rows.append([
            cell if isinstance(cell, str) else format_sig(float(cell))
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
