"""Analysis utilities: sweeps, series, tables, reports and provenance."""

from .series import Series
from .sweep import sweep_1d, sweep_grid
from .tables import render_table, format_sig
from .report import Comparison, ExperimentResult
from .plotting import render_ascii_chart, sparkline
from .manifest import RunManifest, RunRecord, current_git_sha

__all__ = [
    "Series",
    "sweep_1d",
    "sweep_grid",
    "render_table",
    "format_sig",
    "Comparison",
    "ExperimentResult",
    "render_ascii_chart",
    "sparkline",
    "RunManifest",
    "RunRecord",
    "current_git_sha",
]
