"""Provenance-tracked experiment runs.

Every reproduced artefact in this project is a claim ("the sub-V_th
strategy wins ~23 % energy at 32nm") backed by a live computation.  The
manifest layer records *how* each number was produced so the generated
documentation (EXPERIMENTS.md, docs/RESULTS.md) and the machine-readable
``results.json`` are auditable instead of hand-maintained prose:

* :class:`RunRecord` — one experiment run's structured trace: wall time,
  :mod:`repro.perf` counter deltas (Newton iterations, Poisson solves,
  cache hits/misses), the git commit, the physics model schema hash
  (:func:`repro.cache.model_schema_hash`), and the paper-vs-measured
  comparison outcomes.
* :class:`RunManifest` — wraps :func:`repro.experiments.run_experiment`
  to capture records, appends them to a JSONL trace log, and distils
  them into the ``results.json`` payload that ``repro report`` commits.

Records round-trip through JSONL (:meth:`RunManifest.write_jsonl` /
:meth:`RunManifest.read_jsonl`), so external tooling can consume the
trace without importing this library.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
from dataclasses import dataclass

from .. import perf
from ..errors import ParameterError
from .report import Comparison, ExperimentResult

#: Version stamp for the manifest/results.json payloads.
MANIFEST_SCHEMA = 1


def current_git_sha(root: str | pathlib.Path | None = None) -> str:
    """The checkout's commit SHA, or ``"unknown"`` outside a git repo.

    Provenance only — never used as a cache key (the model schema hash
    plays that role), so a missing git binary degrades gracefully.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if root is None else str(root),
            capture_output=True, text=True, timeout=10.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


@dataclass(frozen=True)
class RunRecord:
    """The provenance trace of one experiment run.

    Attributes
    ----------
    experiment_id / title:
        Registry identity of the experiment.
    wall_time_s:
        Wall-clock duration of the run.
    perf_counters:
        :mod:`repro.perf` counter increments attributable to this run
        (empty when the run did no counted numerical work).
    git_sha / schema_hash:
        The code identity: commit of the checkout and digest of the
        physics model sources.
    comparisons:
        The paper-vs-measured records the run produced.
    n_series / n_rows:
        Payload shape summary (figure series / table rows).
    """

    experiment_id: str
    title: str
    wall_time_s: float
    perf_counters: dict[str, int]
    git_sha: str
    schema_hash: str
    comparisons: tuple[Comparison, ...] = ()
    n_series: int = 0
    n_rows: int = 0

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ParameterError("run record needs an experiment id")
        if self.wall_time_s < 0.0:
            raise ParameterError("wall time cannot be negative")

    @property
    def claims_total(self) -> int:
        """Number of paper claims this run checked."""
        return len(self.comparisons)

    @property
    def claims_held(self) -> int:
        """Number of claims that held."""
        return sum(1 for c in self.comparisons if c.holds)

    def all_hold(self) -> bool:
        """True when every recorded claim holds."""
        return self.claims_held == self.claims_total

    def to_dict(self) -> dict:
        """Plain-dict form (JSONL / results.json payload)."""
        from ..io.serialize import comparison_to_dict
        return {
            "schema": MANIFEST_SCHEMA,
            "kind": "run_record",
            "experiment_id": self.experiment_id,
            "title": self.title,
            "wall_time_s": self.wall_time_s,
            "perf_counters": dict(sorted(self.perf_counters.items())),
            "git_sha": self.git_sha,
            "schema_hash": self.schema_hash,
            "comparisons": [comparison_to_dict(c) for c in self.comparisons],
            "n_series": self.n_series,
            "n_rows": self.n_rows,
            "claims_total": self.claims_total,
            "claims_held": self.claims_held,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        from ..io.serialize import comparison_from_dict
        if payload.get("kind") != "run_record":
            raise ParameterError(
                f"expected a 'run_record' payload, got {payload.get('kind')!r}"
            )
        if payload.get("schema") != MANIFEST_SCHEMA:
            raise ParameterError(
                f"unsupported manifest schema {payload.get('schema')!r}"
            )
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            wall_time_s=payload["wall_time_s"],
            perf_counters={k: int(v)
                           for k, v in payload["perf_counters"].items()},
            git_sha=payload["git_sha"],
            schema_hash=payload["schema_hash"],
            comparisons=tuple(comparison_from_dict(c)
                              for c in payload["comparisons"]),
            n_series=payload.get("n_series", 0),
            n_rows=payload.get("n_rows", 0),
        )


class RunManifest:
    """Collects provenance-stamped experiment runs.

    Parameters
    ----------
    git_sha / schema_hash:
        Code-identity stamps applied to every record.  Default to the
        live checkout / model sources; injectable for tests.
    """

    def __init__(self, git_sha: str | None = None,
                 schema_hash: str | None = None) -> None:
        if schema_hash is None:
            from ..cache import model_schema_hash
            schema_hash = model_schema_hash()
        self.git_sha = current_git_sha() if git_sha is None else git_sha
        self.schema_hash = schema_hash
        self._pairs: list[tuple[ExperimentResult, RunRecord]] = []

    # -- capture -------------------------------------------------------------

    def record(self, experiment_id: str) -> tuple[ExperimentResult, RunRecord]:
        """Run one experiment, capturing its provenance trace."""
        from ..experiments import run_experiment
        before = perf.snapshot()
        start = time.perf_counter()
        result = run_experiment(experiment_id)
        wall_time_s = time.perf_counter() - start
        return result, self.add(result, wall_time_s=wall_time_s,
                                perf_counters=perf.delta(before))

    def add(self, result: ExperimentResult, *, wall_time_s: float,
            perf_counters: dict[str, int]) -> RunRecord:
        """Attach an already-computed result (e.g. from a worker process)."""
        from ..experiments import experiment_title
        record = RunRecord(
            experiment_id=result.experiment_id,
            title=experiment_title(result.experiment_id),
            wall_time_s=wall_time_s,
            perf_counters=dict(perf_counters),
            git_sha=self.git_sha,
            schema_hash=self.schema_hash,
            comparisons=result.comparisons,
            n_series=len(result.series),
            n_rows=len(result.rows),
        )
        self._pairs.append((result, record))
        return record

    # -- access --------------------------------------------------------------

    @property
    def pairs(self) -> list[tuple[ExperimentResult, RunRecord]]:
        """(result, record) pairs in capture order."""
        return list(self._pairs)

    @property
    def records(self) -> list[RunRecord]:
        """Captured records in capture order."""
        return [record for _result, record in self._pairs]

    def __len__(self) -> int:
        return len(self._pairs)

    # -- JSONL trace log -----------------------------------------------------

    def write_jsonl(self, path: str | pathlib.Path,
                    append: bool = True) -> None:
        """Write the captured records as one JSON object per line."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        lines = "".join(json.dumps(record.to_dict(), sort_keys=True) + "\n"
                        for record in self.records)
        with target.open("a" if append else "w") as handle:
            handle.write(lines)

    @staticmethod
    def read_jsonl(path: str | pathlib.Path) -> list[RunRecord]:
        """Read records back from a :meth:`write_jsonl` trace log."""
        records: list[RunRecord] = []
        for line in pathlib.Path(path).read_text().splitlines():
            if line.strip():
                records.append(RunRecord.from_dict(json.loads(line)))
        return records

    # -- results.json --------------------------------------------------------

    def results_payload(self) -> dict:
        """The machine-readable ``results.json`` payload.

        One entry per captured experiment, keyed by id, each carrying
        the perf counters, wall time, schema hash and claim outcomes —
        the auditable companion to the generated markdown.
        """
        experiments: dict[str, dict] = {}
        for record in sorted(self.records, key=lambda r: r.experiment_id):
            entry = record.to_dict()
            entry.pop("schema")
            entry.pop("kind")
            entry.pop("experiment_id")
            experiments[record.experiment_id] = entry
        return {
            "schema": MANIFEST_SCHEMA,
            "kind": "results",
            "git_sha": self.git_sha,
            "schema_hash": self.schema_hash,
            "claims_total": sum(r.claims_total for r in self.records),
            "claims_held": sum(r.claims_held for r in self.records),
            "experiments": experiments,
        }

    def save_results_json(self, path: str | pathlib.Path) -> None:
        """Write :meth:`results_payload` as pretty-printed JSON."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.results_payload(), indent=2,
                                     sort_keys=True) + "\n")
