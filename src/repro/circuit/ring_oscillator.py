"""Ring-oscillator extension.

Sub-V_th silicon results (the paper's refs [1][2]) are usually
characterised by ring-oscillator frequency; this small extension maps
the FO1 stage delay to an N-stage RO frequency so examples can report
kHz/MHz-class numbers comparable to the papers the introduction cites.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .delay import K_D_DEFAULT, analytic_delay
from .inverter import Inverter
from .transient import propagation_delay


@dataclass(frozen=True)
class RingOscillator:
    """An odd-stage inverter ring oscillator.

    Parameters
    ----------
    stage:
        The unit inverter.
    n_stages:
        Odd number of stages (>= 3).
    """

    stage: Inverter
    n_stages: int = 31

    def __post_init__(self) -> None:
        if self.n_stages < 3 or self.n_stages % 2 == 0:
            raise ParameterError("ring oscillator needs an odd stage count >= 3")

    def stage_delay(self, transient: bool = False,
                    k_d: float = K_D_DEFAULT) -> float:
        """Per-stage FO1 delay [s]."""
        c_load = self.stage.load_capacitance(fanout=1)
        if transient:
            return propagation_delay(self.stage, c_load)
        return analytic_delay(self.stage, c_load, k_d)

    def frequency_hz(self, transient: bool = False,
                     k_d: float = K_D_DEFAULT) -> float:
        """Oscillation frequency ``1 / (2 N t_p)`` [Hz]."""
        return 1.0 / (2.0 * self.n_stages * self.stage_delay(transient, k_d))

    def power_w(self, activity: float = 1.0) -> float:
        """Mean switching + leakage power while oscillating [W].

        Every node toggles once per half period, so the effective
        activity of a free-running ring is 1.
        """
        if not 0.0 < activity <= 1.0:
            raise ParameterError("activity must be in (0, 1]")
        vdd = self.stage.vdd
        c_load = self.stage.load_capacitance(fanout=1)
        freq = self.frequency_hz()
        dynamic = self.n_stages * activity * c_load * vdd ** 2 * freq
        leakage = self.n_stages * self.stage.leakage_current() * vdd
        return dynamic + leakage
