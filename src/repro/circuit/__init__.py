"""Circuit layer: inverters, chains, noise margins, delay and energy.

The paper's circuit evidence is built from CMOS inverters: a single
inverter for static noise margins (Fig. 4/10), an FO1-loaded inverter
for delay (Fig. 5/11), and a 30-stage inverter chain with activity
factor 0.1 for energy and V_min (Fig. 6/12).  This package implements
those testbenches on top of the compact device models, plus SRAM and
ring-oscillator extensions.
"""

from .batch import (
    BatchNoiseMargins,
    LOST_REGENERATION_MESSAGES,
    SOLVER_MODES,
    gain_batch,
    lost_regeneration_error,
    noise_margins_batch,
    solve_balance_batch,
    solve_vtc_batch,
)
from .inverter import Inverter
from .snm import NoiseMargins, noise_margins, butterfly_snm
from .delay import DelayResult, fo1_delay, analytic_delay, analytic_delay_batch
from .energy import (
    EnergyBreakdown,
    VminResult,
    chain_energy_per_cycle,
    chain_energy_sweep,
    find_vmin,
)
from .chain import InverterChain
from .ring_oscillator import RingOscillator
from .sram import SramCell, hold_snm, read_snm
from .gates import EquivalentGate, nand2, nor2
from .vmin_model import vmin_closed_form, k_vmin
from .netlist import Circuit, GROUND
from .mna import NodalSolver, DCResult, TransientResult
from .analytic_vtc import vin_of_vout_matched, analytic_snm_matched
from .wires import WireModel
from .logical_effort import size_path, best_stage_count
from .level_shifter import LevelShifter, min_convertible_vdd
from .cell_library import CellLibrary, characterise_design
from .dvs import energy_per_cycle_at_throughput, dvs_range

__all__ = [
    "BatchNoiseMargins",
    "LOST_REGENERATION_MESSAGES",
    "SOLVER_MODES",
    "gain_batch",
    "lost_regeneration_error",
    "noise_margins_batch",
    "solve_balance_batch",
    "solve_vtc_batch",
    "Inverter",
    "NoiseMargins",
    "noise_margins",
    "butterfly_snm",
    "DelayResult",
    "fo1_delay",
    "analytic_delay",
    "analytic_delay_batch",
    "EnergyBreakdown",
    "chain_energy_per_cycle",
    "chain_energy_sweep",
    "find_vmin",
    "VminResult",
    "InverterChain",
    "RingOscillator",
    "SramCell",
    "hold_snm",
    "read_snm",
    "EquivalentGate",
    "nand2",
    "nor2",
    "vmin_closed_form",
    "k_vmin",
    "Circuit",
    "GROUND",
    "NodalSolver",
    "DCResult",
    "TransientResult",
    "vin_of_vout_matched",
    "analytic_snm_matched",
    "WireModel",
    "size_path",
    "best_stage_count",
    "LevelShifter",
    "min_convertible_vdd",
    "CellLibrary",
    "characterise_design",
    "energy_per_cycle_at_throughput",
    "dvs_range",
]
