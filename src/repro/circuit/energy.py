"""Energy per cycle and the minimum-energy voltage V_min.

The paper's Eq. 7 testbench: a chain of ``N`` inverters with activity
factor ``alpha``, clocked at its own critical path (``T = N t_p``):

``E_dyn  = N alpha C_L V_dd^2``
``E_leak = N I_leak V_dd T = N I_leak V_dd N t_p``

Sweeping V_dd trades the quadratic dynamic term against the leakage
term, whose exponential delay growth at low V_dd creates the classic
interior minimum at ``V_min`` (refs [17][18]).  The scaling-parameter
factor ``C_L S_S^2`` of Eq. 8 is implemented in
:mod:`repro.scaling.metrics` and validated against these simulations in
the Fig. 6 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar

from ..errors import ParameterError
from .delay import K_D_DEFAULT, analytic_delay
from .inverter import Inverter
from .transient import propagation_delay


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per cycle of an inverter chain at one supply point.

    Attributes
    ----------
    vdd:
        Supply voltage [V].
    dynamic_j / leakage_j:
        The two Eq. 7 components [J].
    cycle_time_s:
        The chain critical path ``N t_p`` used for leakage integration.
    """

    vdd: float
    dynamic_j: float
    leakage_j: float
    cycle_time_s: float

    @property
    def total_j(self) -> float:
        """Total energy per cycle [J]."""
        return self.dynamic_j + self.leakage_j

    @property
    def leakage_fraction(self) -> float:
        """E_leak / E_total (0..1)."""
        return self.leakage_j / self.total_j


def chain_energy_per_cycle(inverter: Inverter, n_stages: int = 30,
                           activity: float = 0.1, transient: bool = False,
                           k_d: float = K_D_DEFAULT) -> EnergyBreakdown:
    """Energy per cycle of an ``n_stages`` chain at the inverter's V_dd.

    Parameters
    ----------
    inverter:
        The unit stage (each stage drives the next: FO1 loading).
    n_stages:
        Chain length; the paper uses 30.
    activity:
        Switching activity factor alpha; the paper uses 0.1.
    transient:
        When true the stage delay comes from transient simulation
        instead of the Eq. 4 analytic form (slower, used by the
        headline experiments).
    """
    if n_stages < 1:
        raise ParameterError("need at least one stage")
    if not 0.0 <= activity <= 1.0:
        raise ParameterError("activity factor must be in [0, 1]")
    vdd = inverter.vdd
    c_load = inverter.load_capacitance(fanout=1)
    if transient:
        t_p = propagation_delay(inverter, c_load)
    else:
        t_p = analytic_delay(inverter, c_load, k_d)
    cycle = n_stages * t_p
    dynamic = n_stages * activity * c_load * vdd ** 2
    leakage = n_stages * inverter.leakage_current() * vdd * cycle
    return EnergyBreakdown(vdd=vdd, dynamic_j=dynamic, leakage_j=leakage,
                           cycle_time_s=cycle)


@dataclass(frozen=True)
class VminResult:
    """Minimum-energy operating point of an inverter chain.

    Attributes
    ----------
    vmin:
        The energy-optimal supply [V].
    energy:
        The energy breakdown at ``vmin``.
    vdd_grid / energy_grid_j:
        The sweep used to bracket the minimum (for plotting Fig. 6/12).
    """

    vmin: float
    energy: EnergyBreakdown
    vdd_grid: np.ndarray
    energy_grid_j: np.ndarray


def find_vmin(inverter: Inverter, n_stages: int = 30, activity: float = 0.1,
              vdd_lo: float = 0.08, vdd_hi: float = 0.70,
              n_grid: int = 33, transient: bool = False,
              k_d: float = K_D_DEFAULT) -> VminResult:
    """Locate the minimum-energy supply voltage V_min.

    A coarse geometric grid brackets the minimum, then bounded scalar
    minimisation refines it.  Raises :class:`ParameterError` when the
    minimum sits on the sweep boundary (no interior V_min in range).
    """
    if not 0.0 < vdd_lo < vdd_hi:
        raise ParameterError("need 0 < vdd_lo < vdd_hi")

    def total(vdd: float) -> float:
        return chain_energy_per_cycle(
            inverter.with_vdd(vdd), n_stages, activity,
            transient=transient, k_d=k_d,
        ).total_j

    grid = np.geomspace(vdd_lo, vdd_hi, n_grid)
    energies = np.array([total(float(v)) for v in grid])
    idx = int(np.argmin(energies))
    if idx == 0 or idx == n_grid - 1:
        raise ParameterError(
            f"energy minimum at sweep boundary (V_dd = {grid[idx]:.3f} V); "
            "widen [vdd_lo, vdd_hi]"
        )
    result = minimize_scalar(total, bounds=(float(grid[idx - 1]),
                                            float(grid[idx + 1])),
                             method="bounded",
                             options={"xatol": 1e-4})
    vmin = float(result.x)
    breakdown = chain_energy_per_cycle(inverter.with_vdd(vmin), n_stages,
                                       activity, transient=transient, k_d=k_d)
    return VminResult(vmin=vmin, energy=breakdown, vdd_grid=grid,
                      energy_grid_j=energies)
