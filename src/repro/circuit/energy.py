"""Energy per cycle and the minimum-energy voltage V_min.

The paper's Eq. 7 testbench: a chain of ``N`` inverters with activity
factor ``alpha``, clocked at its own critical path (``T = N t_p``):

``E_dyn  = N alpha C_L V_dd^2``
``E_leak = N I_leak V_dd T = N I_leak V_dd N t_p``

Sweeping V_dd trades the quadratic dynamic term against the leakage
term, whose exponential delay growth at low V_dd creates the classic
interior minimum at ``V_min`` (refs [17][18]).  The scaling-parameter
factor ``C_L S_S^2`` of Eq. 8 is implemented in
:mod:`repro.scaling.metrics` and validated against these simulations in
the Fig. 6 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import minimize_scalar

from .. import perf
from ..errors import ParameterError
from .batch import validate_solver
from .delay import K_D_DEFAULT, analytic_delay
from .inverter import Inverter
from .transient import propagation_delay


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per cycle of an inverter chain at one supply point.

    Attributes
    ----------
    vdd:
        Supply voltage [V].
    dynamic_j / leakage_j:
        The two Eq. 7 components [J].
    cycle_time_s:
        The chain critical path ``N t_p`` used for leakage integration.
    """

    vdd: float
    dynamic_j: float
    leakage_j: float
    cycle_time_s: float

    @property
    def total_j(self) -> float:
        """Total energy per cycle [J]."""
        return self.dynamic_j + self.leakage_j

    @property
    def leakage_fraction(self) -> float:
        """E_leak / E_total (0..1)."""
        return self.leakage_j / self.total_j


def chain_energy_per_cycle(inverter: Inverter, n_stages: int = 30,
                           activity: float = 0.1, transient: bool = False,
                           k_d: float = K_D_DEFAULT) -> EnergyBreakdown:
    """Energy per cycle of an ``n_stages`` chain at the inverter's V_dd.

    Parameters
    ----------
    inverter:
        The unit stage (each stage drives the next: FO1 loading).
    n_stages:
        Chain length; the paper uses 30.
    activity:
        Switching activity factor alpha; the paper uses 0.1.
    transient:
        When true the stage delay comes from transient simulation
        instead of the Eq. 4 analytic form (slower, used by the
        headline experiments).
    """
    if n_stages < 1:
        raise ParameterError("need at least one stage")
    if not 0.0 <= activity <= 1.0:
        raise ParameterError("activity factor must be in [0, 1]")
    vdd = inverter.vdd
    c_load = inverter.load_capacitance(fanout=1)
    if transient:
        t_p = propagation_delay(inverter, c_load)
    else:
        t_p = analytic_delay(inverter, c_load, k_d)
    cycle = n_stages * t_p
    dynamic = n_stages * activity * c_load * vdd ** 2
    leakage = n_stages * inverter.leakage_current() * vdd * cycle
    return EnergyBreakdown(vdd=vdd, dynamic_j=dynamic, leakage_j=leakage,
                           cycle_time_s=cycle)


def chain_energy_sweep(inverter: Inverter, vdd_grid,
                       n_stages: int = 30, activity: float = 0.1,
                       k_d: float = K_D_DEFAULT) -> np.ndarray:
    """Total Eq. 7 energy per cycle over a whole V_dd grid [J].

    Vectorised equivalent of calling ``chain_energy_per_cycle`` (with
    the analytic delay) at each grid point: the bias-dependent load
    capacitance, on-currents and leakage are all evaluated as arrays,
    so the Fig. 6 V_min bracket sweep costs a handful of vector ops
    instead of ``n_grid`` scalar rebuild-and-solve rounds.
    """
    if n_stages < 1:
        raise ParameterError("need at least one stage")
    if not 0.0 <= activity <= 1.0:
        raise ParameterError("activity factor must be in [0, 1]")
    if k_d <= 0.0:
        raise ParameterError("k_d must be positive")
    vdd = np.asarray(vdd_grid, dtype=float)
    if np.any(vdd <= 0.0):
        raise ParameterError("vdd must be positive")
    nfet, pfet = inverter.nfet, inverter.pfet
    c_load, cycle = _load_and_cycle(inverter, vdd, n_stages, k_d)
    i_leak = 0.5 * (nfet.ids(np.zeros_like(vdd), vdd)
                    + pfet.ids(np.zeros_like(vdd), vdd))
    dynamic = n_stages * activity * c_load * vdd ** 2
    leakage = n_stages * i_leak * vdd * cycle
    perf.bump("circuit.energy_sweep_points", int(vdd.size))
    return dynamic + leakage


def _load_and_cycle(inverter: Inverter, vdd: np.ndarray, n_stages: int,
                    k_d: float) -> tuple[np.ndarray, np.ndarray]:
    """FO1 load and chain cycle time ``N t_p`` over a V_dd array.

    The vectorised Eq. 4 kernel shared by :func:`chain_energy_sweep`
    and the DVS throughput solves (:mod:`repro.circuit.dvs`) — the same
    load/on-current expressions as the scalar
    :meth:`InverterChain.critical_path` path, evaluated arraywise.
    """
    nfet, pfet = inverter.nfet, inverter.pfet
    c_in = (nfet.capacitance.c_gate_effective(
                vdd, nfet.iv.vth(vdd), nfet.slope_factor)
            + pfet.capacitance.c_gate_effective(
                vdd, pfet.iv.vth(vdd), pfet.slope_factor))
    c_out = nfet.capacitance.c_drain() + pfet.capacitance.c_drain()
    c_load = 1 * c_in + c_out
    i_on = 0.5 * (nfet.ids(vdd, vdd) + pfet.ids(vdd, vdd))
    t_p = k_d * c_load * vdd / i_on
    return c_load, n_stages * t_p


@dataclass(frozen=True)
class VminResult:
    """Minimum-energy operating point of an inverter chain.

    Attributes
    ----------
    vmin:
        The energy-optimal supply [V].
    energy:
        The energy breakdown at ``vmin``.
    vdd_grid / energy_grid_j:
        The sweep used to bracket the minimum (for plotting Fig. 6/12).
    """

    vmin: float
    energy: EnergyBreakdown
    vdd_grid: np.ndarray
    energy_grid_j: np.ndarray


def find_vmin(inverter: Inverter, n_stages: int = 30, activity: float = 0.1,
              vdd_lo: float = 0.08, vdd_hi: float = 0.70,
              n_grid: int = 33, transient: bool = False,
              k_d: float = K_D_DEFAULT, solver: str = "batch") -> VminResult:
    """Locate the minimum-energy supply voltage V_min.

    A coarse geometric grid brackets the minimum, then bounded scalar
    minimisation refines it.  Raises :class:`ParameterError` when the
    minimum sits on the sweep boundary (no interior V_min in range).

    With ``solver="batch"`` (default) the bracketing grid is one
    :func:`chain_energy_sweep` array evaluation; ``solver="sequential"``
    (or a transient delay model, which has no vectorised form) sweeps
    the grid point by point.
    """
    if not 0.0 < vdd_lo < vdd_hi:
        raise ParameterError("need 0 < vdd_lo < vdd_hi")
    validate_solver(solver)

    def total(vdd: float) -> float:
        return chain_energy_per_cycle(
            inverter.with_vdd(vdd), n_stages, activity,
            transient=transient, k_d=k_d,
        ).total_j

    grid = np.geomspace(vdd_lo, vdd_hi, n_grid)
    if solver == "batch" and not transient:
        energies = chain_energy_sweep(inverter, grid, n_stages, activity,
                                      k_d=k_d)
    else:
        energies = np.array([total(float(v)) for v in grid])
    idx = int(np.argmin(energies))
    if idx == 0 or idx == n_grid - 1:
        raise ParameterError(
            f"energy minimum at sweep boundary (V_dd = {grid[idx]:.3f} V); "
            "widen [vdd_lo, vdd_hi]"
        )
    result = minimize_scalar(total, bounds=(float(grid[idx - 1]),
                                            float(grid[idx + 1])),
                             method="bounded",
                             options={"xatol": 1e-4})
    vmin = float(result.x)
    breakdown = chain_energy_per_cycle(inverter.with_vdd(vmin), n_stages,
                                       activity, transient=transient, k_d=k_d)
    return VminResult(vmin=vmin, energy=breakdown, vdd_grid=grid,
                      energy_grid_j=energies)
