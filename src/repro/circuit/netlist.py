"""Netlist description for the nodal circuit simulator.

A deliberately small SPICE-like circuit representation: grounded
voltage sources (rails and inputs), two-terminal resistors and
capacitors, and MOSFET instances referencing the compact device models.
The paper's circuits — inverters, chains, ring oscillators, SRAM
cells — are all expressible, and :mod:`repro.circuit.mna` solves them.

Conventions
-----------
* Node names are strings; ``"0"`` (or ``GROUND``) is ground.
* Voltage sources must have their negative terminal at ground (the
  standard restriction that keeps the system pure-nodal; digital
  circuits never need floating sources).
* MOSFETs are three-terminal (drain, gate, source) with the body tied
  to the source rail, matching the device model's source-referenced
  formulation.  The model is symmetric, so drain/source swap freely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..device.mosfet import MOSFET, Polarity
from ..errors import ParameterError

#: The ground node name.
GROUND = "0"


@dataclass(frozen=True)
class VoltageSource:
    """A grounded voltage source.

    ``waveform`` maps time [s] to volts; DC sources use a constant.
    """

    name: str
    node: str
    waveform: Callable[[float], float]

    def value(self, time_s: float) -> float:
        """Source voltage [V] at ``time_s`` [s]."""
        return float(self.waveform(time_s))


@dataclass(frozen=True)
class Resistor:
    """A two-terminal linear resistor."""

    name: str
    node_a: str
    node_b: str
    ohms: float


@dataclass(frozen=True)
class Capacitor:
    """A two-terminal linear capacitor."""

    name: str
    node_a: str
    node_b: str
    farads: float


@dataclass(frozen=True)
class Transistor:
    """A MOSFET instance in the netlist."""

    name: str
    drain: str
    gate: str
    source: str
    device: MOSFET

    def current_into_drain(self, v_d: float, v_g: float, v_s: float) -> float:
        """Drain-terminal current [A], positive flowing into the drain.

        For an NFET, current flows drain -> source when ``v_d > v_s``;
        the symmetric model handles reversed bias by swapping terminals.
        A PFET is evaluated with all voltage magnitudes mirrored.
        """
        dev = self.device
        if dev.polarity is Polarity.NFET:
            if v_d >= v_s:
                return float(dev.ids(v_g - v_s, v_d - v_s))
            return -float(dev.ids(v_g - v_d, v_s - v_d))
        # PFET: conduction when the source (the higher terminal) sees a
        # negative gate drive; mirror all magnitudes.
        if v_d <= v_s:
            return -float(dev.ids(v_s - v_g, v_s - v_d))
        return float(dev.ids(v_d - v_g, v_d - v_s))


@dataclass
class Circuit:
    """A flat netlist.

    >>> from repro.device import nfet, pfet
    >>> c = Circuit()
    >>> c.add_vsource("vdd", "vdd", 1.0)
    >>> c.add_vsource("vin", "in", 0.0)
    >>> c.add_mosfet("mp", "out", "in", "vdd",
    ...              pfet(65, 2.1, 1.2e18, 1.5e18))
    >>> c.add_mosfet("mn", "out", "in", "0",
    ...              nfet(65, 2.1, 1.2e18, 1.5e18))
    >>> sorted(c.unknown_nodes())
    ['out']
    """

    sources: list[VoltageSource] = field(default_factory=list)
    resistors: list[Resistor] = field(default_factory=list)
    capacitors: list[Capacitor] = field(default_factory=list)
    transistors: list[Transistor] = field(default_factory=list)
    #: Incrementally maintained taken-name set; rebuilding it per add
    #: made netlist construction O(n^2), real money at array scale.
    _names: set[str] = field(default_factory=set, init=False, repr=False,
                             compare=False)

    def __post_init__(self) -> None:
        for e in (*self.sources, *self.resistors, *self.capacitors,
                  *self.transistors):
            self._names.add(e.name)

    # -- construction -------------------------------------------------------

    def _check_name(self, name: str) -> None:
        if name in self._names:
            raise ParameterError(f"element name {name!r} already used")

    def add_vsource(self, name: str, node: str,
                    value: float | Callable[[float], float]) -> None:
        """Add a grounded source; ``value`` is volts or a waveform(t)."""
        self._check_name(name)
        if node == GROUND:
            raise ParameterError("source node cannot be ground")
        for s in self.sources:
            if s.node == node:
                raise ParameterError(f"node {node!r} already driven by "
                                     f"source {s.name!r}")
        waveform = (lambda _t, v=float(value): v) if not callable(value) \
            else value
        self.sources.append(VoltageSource(name=name, node=node,
                                          waveform=waveform))
        self._names.add(name)

    def add_resistor(self, name: str, node_a: str, node_b: str,
                     ohms: float) -> None:
        """Add a linear resistor of ``ohms`` [ohms]."""
        self._check_name(name)
        if ohms <= 0.0:
            raise ParameterError("resistance must be positive")
        self.resistors.append(Resistor(name, node_a, node_b, ohms))
        self._names.add(name)

    def add_capacitor(self, name: str, node_a: str, node_b: str,
                      farads: float) -> None:
        """Add a linear capacitor of ``farads`` [farads]."""
        self._check_name(name)
        if farads <= 0.0:
            raise ParameterError("capacitance must be positive")
        self.capacitors.append(Capacitor(name, node_a, node_b, farads))
        self._names.add(name)

    def add_mosfet(self, name: str, drain: str, gate: str, source: str,
                   device: MOSFET) -> None:
        """Add a MOSFET instance."""
        self._check_name(name)
        self.transistors.append(Transistor(name, drain, gate, source,
                                           device))
        self._names.add(name)

    def add_inverter(self, name: str, input_node: str, output_node: str,
                     vdd_node: str, nfet_dev: MOSFET, pfet_dev: MOSFET
                     ) -> None:
        """Convenience: a CMOS inverter between the rails."""
        self.add_mosfet(f"{name}.mp", output_node, input_node, vdd_node,
                        pfet_dev)
        self.add_mosfet(f"{name}.mn", output_node, input_node, GROUND,
                        nfet_dev)

    # -- topology -------------------------------------------------------------

    def all_nodes(self) -> set[str]:
        """All node names, ground included."""
        nodes = {GROUND}
        for s in self.sources:
            nodes.add(s.node)
        for r in self.resistors:
            nodes.update((r.node_a, r.node_b))
        for c in self.capacitors:
            nodes.update((c.node_a, c.node_b))
        for t in self.transistors:
            nodes.update((t.drain, t.gate, t.source))
        return nodes

    def fixed_nodes(self) -> set[str]:
        """Nodes pinned by ground or a source."""
        return {GROUND} | {s.node for s in self.sources}

    def unknown_nodes(self) -> list[str]:
        """Nodes the solver must determine, in deterministic order."""
        return sorted(self.all_nodes() - self.fixed_nodes())

    def validate(self) -> None:
        """Sanity-check the topology before solving."""
        if not self.sources:
            raise ParameterError("circuit has no sources")
        unknowns = self.unknown_nodes()
        if not unknowns:
            raise ParameterError("circuit has no unknown nodes to solve")
        # Every unknown node must connect to at least one current-
        # carrying element terminal (a floating node has no equation).
        touched: set[str] = set()
        for r in self.resistors:
            touched.update((r.node_a, r.node_b))
        for c in self.capacitors:
            touched.update((c.node_a, c.node_b))
        for t in self.transistors:
            touched.update((t.drain, t.source))
        floating = [n for n in unknowns if n not in touched]
        if floating:
            raise ParameterError(f"floating nodes: {floating}")
