"""Transistor-level gate netlists for the batched MNA engine.

:mod:`repro.circuit.gates` reduces NAND/NOR to an *equivalent
inverter* — a first-order analytic stand-in.  This module builds the
real topologies (series stacks, parallel pull-ups, transmission-gate
muxes) as :class:`~repro.circuit.netlist.Circuit` objects and
characterises them with :mod:`repro.circuit.mna_batch`, so input
vectors and (ΔV_th,n, ΔV_th,p) variation corners are batch lanes of
one compiled solve:

* **state-dependent leakage** — the supply current of every input
  vector in one batched DC solve.  The classic stacking effect falls
  out: a NAND2 with *both* inputs low leaks less than with either
  alone, because the internal stack node rises, reverse-biasing the
  top device and killing its DIBL — a second-order effect the
  equivalent-inverter reduction cannot see.
* **switching delay** — a batched transient of an input step into a
  capacitively loaded output, per corner.

Every solver entry point accepts ``solver="batch"/"sequential"`` and
runs both modes through the same compiled netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
import numpy.typing as npt

from ..device.mosfet import MOSFET
from ..errors import ParameterError
from .batch import validate_solver
from .mna_batch import solve_dc_batch, solve_transient_batch
from .netlist import Circuit, GROUND

__all__ = ["GateNetlist", "nand2_netlist", "nor2_netlist", "mux2_netlist",
           "gate_leakage", "gate_delay"]

FloatArray = npt.NDArray[np.float64]


@dataclass(frozen=True)
class GateNetlist:
    """A static CMOS gate as a solvable netlist.

    ``inputs`` are the input *source names* (drive them through the
    batched ``stimulus``); ``output`` is the output node.  The output
    carries ``c_load_f`` of load so transients have a time constant.
    """

    name: str
    circuit: Circuit
    inputs: tuple[str, ...]
    output: str
    vdd: float
    nfet_unit: MOSFET
    pfet_unit: MOSFET
    c_load_f: float

    def time_scale_s(self) -> float:
        """Characteristic output slew time [s]: the load swung a rail
        at the weaker device's on current."""
        i_drive = min(self.nfet_unit.i_on(self.vdd),
                      self.pfet_unit.i_on(self.vdd))
        return self.c_load_f * self.vdd / i_drive


def _default_load_f(nfet_unit: MOSFET, pfet_unit: MOSFET,
                    vdd: float) -> float:
    """FO1-style load [F]: one like-sized inverter's input capacitance."""
    return nfet_unit.c_gate_eff(vdd) + pfet_unit.c_gate_eff(vdd)


def _start(name: str, vdd: float, inputs: tuple[str, ...],
           nfet_unit: MOSFET, pfet_unit: MOSFET,
           c_load_f: float | None) -> tuple[Circuit, float]:
    if vdd <= 0.0:
        raise ParameterError("vdd must be positive")
    load = (_default_load_f(nfet_unit, pfet_unit, vdd)
            if c_load_f is None else c_load_f)
    if load <= 0.0:
        raise ParameterError("c_load_f must be positive")
    c = Circuit()
    c.add_vsource("vdd", "vdd", vdd)
    for pin in inputs:
        c.add_vsource(pin, pin, 0.0)
    c.add_capacitor("cload", "y", GROUND, load)
    return c, load


def nand2_netlist(nfet_unit: MOSFET, pfet_unit: MOSFET, vdd: float, *,
                  c_load_f: float | None = None) -> GateNetlist:
    """2-input NAND: parallel PFET pull-ups, series NFET stack.

    Inputs ``a`` (stack top) and ``b`` (stack bottom); output ``y``;
    internal stack node ``x``.  ``c_load_f`` [f] defaults to one
    like-sized inverter input capacitance (FO1).
    """
    c, load = _start("nand2", vdd, ("a", "b"), nfet_unit, pfet_unit,
                     c_load_f)
    c.add_mosfet("mpa", "y", "a", "vdd", pfet_unit)
    c.add_mosfet("mpb", "y", "b", "vdd", pfet_unit)
    c.add_mosfet("mna", "y", "a", "x", nfet_unit)
    c.add_mosfet("mnb", "x", "b", GROUND, nfet_unit)
    return GateNetlist(name="nand2", circuit=c, inputs=("a", "b"),
                       output="y", vdd=vdd, nfet_unit=nfet_unit,
                       pfet_unit=pfet_unit, c_load_f=load)


def nor2_netlist(nfet_unit: MOSFET, pfet_unit: MOSFET, vdd: float, *,
                 c_load_f: float | None = None) -> GateNetlist:
    """2-input NOR: series PFET stack, parallel NFET pull-downs.

    Inputs ``a`` (stack top, at the rail) and ``b``; output ``y``;
    internal stack node ``x``.  ``c_load_f`` [f] defaults to FO1.
    """
    c, load = _start("nor2", vdd, ("a", "b"), nfet_unit, pfet_unit,
                     c_load_f)
    c.add_mosfet("mpa", "x", "a", "vdd", pfet_unit)
    c.add_mosfet("mpb", "y", "b", "x", pfet_unit)
    c.add_mosfet("mna", "y", "a", GROUND, nfet_unit)
    c.add_mosfet("mnb", "y", "b", GROUND, nfet_unit)
    return GateNetlist(name="nor2", circuit=c, inputs=("a", "b"),
                       output="y", vdd=vdd, nfet_unit=nfet_unit,
                       pfet_unit=pfet_unit, c_load_f=load)


def mux2_netlist(nfet_unit: MOSFET, pfet_unit: MOSFET, vdd: float, *,
                 c_load_f: float | None = None) -> GateNetlist:
    """2:1 transmission-gate mux with an internal select inverter.

    Inputs ``d0``, ``d1`` (data) and ``sel``; output ``y`` follows
    ``d0`` when ``sel`` is low, ``d1`` when high.  The complement
    ``selb`` is generated by an on-gate inverter, as a standard-cell
    mux would.  ``c_load_f`` [f] defaults to FO1.
    """
    c, load = _start("mux2", vdd, ("d0", "d1", "sel"), nfet_unit,
                     pfet_unit, c_load_f)
    c.add_mosfet("msn", "selb", "sel", GROUND, nfet_unit)
    c.add_mosfet("msp", "selb", "sel", "vdd", pfet_unit)
    c.add_mosfet("mt0n", "y", "selb", "d0", nfet_unit)
    c.add_mosfet("mt0p", "y", "sel", "d0", pfet_unit)
    c.add_mosfet("mt1n", "y", "sel", "d1", nfet_unit)
    c.add_mosfet("mt1p", "y", "selb", "d1", pfet_unit)
    return GateNetlist(name="mux2", circuit=c,
                       inputs=("d0", "d1", "sel"), output="y", vdd=vdd,
                       nfet_unit=nfet_unit, pfet_unit=pfet_unit,
                       c_load_f=load)


def gate_leakage(gate: GateNetlist,
                 inputs: Mapping[str, object] | None = None, *,
                 dvth_n_v: object = 0.0, dvth_p_v: object = 0.0,
                 solver: str = "batch") -> FloatArray:
    """Standby supply current [A] per input vector and corner.

    ``inputs`` maps input names to per-lane voltages [v] (broadcast
    together with the ``dvth_n_v`` / ``dvth_p_v`` corner shifts [v] —
    e.g. every input vector of a truth table as one batch axis);
    unmentioned inputs sit at 0.  Returns the current the rail source
    delivers, batch-shaped.
    """
    validate_solver(solver)
    stimulus: dict[str, object] = {}
    for pin, value in (inputs or {}).items():
        if pin not in gate.inputs:
            raise ParameterError(
                f"unknown input {pin!r}; gate has {gate.inputs}")
        stimulus[pin] = value
    result = solve_dc_batch(gate.circuit, stimulus=stimulus,
                            dvth_n_v=dvth_n_v, dvth_p_v=dvth_p_v,
                            solver=solver)
    return np.asarray(result.source_currents_a["vdd"])


def gate_delay(gate: GateNetlist, switch_input: str, *,
               held: Mapping[str, float] | None = None,
               rise: bool = True, n_steps: int = 160,
               horizon_taus: float = 40.0, dvth_n_v: object = 0.0,
               dvth_p_v: object = 0.0, solver: str = "batch"
               ) -> FloatArray:
    """Propagation delay [s] of an input step, per variation corner.

    ``switch_input`` steps (up if ``rise``, else down) a tenth of the
    way into a ``horizon_taus`` x :meth:`GateNetlist.time_scale_s`
    window while ``held`` pins the other inputs [v] and ``dvth_n_v`` /
    ``dvth_p_v`` [v] span the variation corners; the delay is the
    step-to-output 50 % crossing.  Lanes whose output never crosses
    (a non-controlling input combination) report ``nan``.
    """
    validate_solver(solver)
    if switch_input not in gate.inputs:
        raise ParameterError(
            f"unknown input {switch_input!r}; gate has {gate.inputs}")
    vdd = gate.vdd
    t_stop = horizon_taus * gate.time_scale_s()
    t_step = 0.1 * t_stop

    def step(t: float) -> float:
        after = t >= t_step
        return (vdd if after else 0.0) if rise else (0.0 if after else vdd)

    stimulus: dict[str, object] = {switch_input: step}
    for pin, value in (held or {}).items():
        if pin not in gate.inputs:
            raise ParameterError(
                f"unknown input {pin!r}; gate has {gate.inputs}")
        stimulus[pin] = value
    result = solve_transient_batch(
        gate.circuit, t_stop, t_stop / n_steps, stimulus=stimulus,
        dvth_n_v=dvth_n_v, dvth_p_v=dvth_p_v, solver=solver)
    crossings = result.crossing_times(gate.output, 0.5 * vdd)
    delay = crossings - t_step
    return np.asarray(np.where(np.isnan(crossings) | (delay < 0.0),
                               np.nan, delay))
