"""Static noise margins.

Two definitions are provided:

* :func:`noise_margins` — the paper's definition for a single inverter
  (Section 2.3.2): noise margins measured at the two points where the
  VTC gain equals -1 (``NM_L = V_IL - V_OL``, ``NM_H = V_OH - V_IH``,
  SNM = min of the two).
* :func:`butterfly_snm` — the classic largest-embedded-square SNM of a
  cross-coupled pair (used for the SRAM extension, ref [16]).

Both default to the vectorised kernels of :mod:`repro.circuit.batch`
(``solver="batch"``); the original scalar implementations remain the
correctness oracles behind ``solver="sequential"``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from .. import perf
from ..errors import ParameterError
from .batch import (
    XTOL_DEFAULT,
    lost_regeneration_error,
    noise_margins_batch,
    validate_solver,
)
from .inverter import Inverter


@dataclass(frozen=True)
class NoiseMargins:
    """Noise-margin summary of one inverter VTC (all volts).

    Attributes
    ----------
    v_il / v_ih:
        Input voltages where the VTC gain is -1 (low and high).
    v_ol / v_oh:
        Output voltages at those points: ``V_OL = VTC(V_IH)``,
        ``V_OH = VTC(V_IL)``.
    nm_low / nm_high:
        ``NM_L = V_IL - V_OL`` and ``NM_H = V_OH - V_IH``.
    """

    v_il: float
    v_ih: float
    v_ol: float
    v_oh: float
    nm_low: float
    nm_high: float

    @property
    def snm(self) -> float:
        """The static noise margin: min(NM_L, NM_H)."""
        return min(self.nm_low, self.nm_high)


def _unity_gain_points(inverter: Inverter, n_scan: int = 101,
                       xtol: float = XTOL_DEFAULT) -> tuple[float, float]:
    """Locate the two gain = -1 inputs by scan + bisection refinement.

    The scan and the refinement use the *same* finite-difference gain
    stencil, so brentq brackets are guaranteed consistent.
    """
    vdd = inverter.vdd
    margin = vdd * 1e-3
    vins = np.linspace(margin, vdd - margin, n_scan)

    def gain_plus_one(vin: float) -> float:
        return inverter.gain(float(vin), xtol=xtol) + 1.0

    values = np.array([gain_plus_one(v) for v in vins])
    below = values < 0.0
    if not below.any():
        raise lost_regeneration_error(1)
    first = int(np.argmax(below))
    last = int(len(below) - 1 - np.argmax(below[::-1]))
    if first == 0 or last == len(vins) - 1:
        raise lost_regeneration_error(2)
    v_il = float(brentq(gain_plus_one, vins[first - 1], vins[first],
                        xtol=xtol))
    v_ih = float(brentq(gain_plus_one, vins[last], vins[last + 1],
                        xtol=xtol))
    return v_il, v_ih


def noise_margins(inverter: Inverter, solver: str = "batch",
                  n_scan: int = 101,
                  xtol: float = XTOL_DEFAULT) -> NoiseMargins:
    """Gain = -1 noise margins of a CMOS inverter (paper Fig. 4/10).

    Raises :class:`repro.errors.LostRegenerationError` when the
    inverter has no gain = -1 points (supply so low the VTC
    degenerates), which is itself a meaningful "no noise margin left"
    result for callers to handle structurally via the error's ``code``
    (aligned with the batch kernel's ``lost_code``).

    ``solver="batch"`` (default) extracts the margins through the
    vectorised VTC kernel; ``solver="sequential"`` runs the original
    per-point scan, kept as the correctness oracle.
    """
    validate_solver(solver)
    if solver == "batch":
        batch = noise_margins_batch(inverter, 0.0, 0.0, n_scan=n_scan,
                                    xtol=xtol)
        code = int(batch.lost_code[0])
        if code:
            raise lost_regeneration_error(code)
        return NoiseMargins(
            v_il=float(batch.v_il[0]), v_ih=float(batch.v_ih[0]),
            v_ol=float(batch.v_ol[0]), v_oh=float(batch.v_oh[0]),
            nm_low=float(batch.nm_low[0]), nm_high=float(batch.nm_high[0]),
        )
    v_il, v_ih = _unity_gain_points(inverter, n_scan=n_scan, xtol=xtol)
    v_oh = inverter.vtc_point(v_il, xtol=xtol)
    v_ol = inverter.vtc_point(v_ih, xtol=xtol)
    return NoiseMargins(
        v_il=v_il, v_ih=v_ih, v_ol=v_ol, v_oh=v_oh,
        nm_low=v_il - v_ol, nm_high=v_oh - v_ih,
    )


def _decreasing_interpolator(x: np.ndarray, y: np.ndarray, side: str):
    """Interpolator for a monotone-decreasing curve, clamped at the ends.

    A mirrored VTC is multivalued where the original is rail-flat, so
    duplicate x samples are aggregated: the *upper* boundary of a lobe
    keeps the max y at each x, the *lower* boundary the min.  The
    returned callable accepts scalars or arrays.
    """
    order = np.argsort(x)
    xs, ys = x[order], y[order]
    unique_x, inverse = np.unique(xs, return_inverse=True)
    agg = np.full(unique_x.shape, -np.inf if side == "upper" else np.inf)
    if side == "upper":
        np.maximum.at(agg, inverse, ys)
    else:
        np.minimum.at(agg, inverse, ys)

    def evaluate(q):
        out = np.interp(q, unique_x, agg)
        return float(out) if np.isscalar(q) else out

    return evaluate


def _lobe_square_sequential(f, g, x_lo: float, x_hi: float) -> float:
    """Scalar oracle: per-x fixed-point loop with running-best pruning."""
    best = 0.0
    for x in np.linspace(x_lo, x_hi, 256):
        x = float(x)
        gap0 = f(x) - g(x)
        if gap0 <= best:
            continue
        lo, hi = 0.0, min(gap0, x_hi - x)
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if mid <= f(x + mid) - g(x):
                lo = mid
            else:
                hi = mid
        best = max(best, lo)
    return best


def _lobe_square_batch(f, g, x_lo: float, x_hi: float) -> float:
    """All 256 corner abscissae iterate their fixed point as one array.

    The pruning of the scalar path only skips abscissae that cannot
    beat the running best, so the unpruned vectorised maximum is
    identical; each surviving point runs the same 40 bisection
    iterations on the same interpolants.
    """
    xs = np.linspace(x_lo, x_hi, 256)
    g0 = g(xs)
    gap0 = f(xs) - g0
    valid = gap0 > 0.0
    if not valid.any():
        return 0.0
    xs, g0, gap0 = xs[valid], g0[valid], gap0[valid]
    lo = np.zeros_like(xs)
    hi = np.minimum(gap0, x_hi - xs)
    perf.bump("circuit.butterfly_batch_solves")
    for _ in range(40):
        mid = 0.5 * (lo + hi)
        feasible = mid <= f(xs + mid) - g0
        lo = np.where(feasible, mid, lo)
        hi = np.where(feasible, hi, mid)
    return float(lo.max())


def _lobe_square(f_curve: tuple[np.ndarray, np.ndarray],
                 g_curve: tuple[np.ndarray, np.ndarray],
                 solver: str = "batch") -> float:
    """Largest square between decreasing curve ``f`` (above) and ``g`` (below).

    For an axis-aligned square of side ``s`` with lower-left corner
    ``(x, y)`` lying in the region ``g <= y <= f``, feasibility reduces
    to ``s <= f(x + s) - g(x)`` (both curves are decreasing, so the
    binding corners are upper-right against ``f`` and lower-left against
    ``g``).  For each ``x`` the right-hand side is decreasing in ``s``,
    so the maximal side solves a 1-D fixed point; we take the max over
    a grid of ``x``.
    """
    f = _decreasing_interpolator(*f_curve, side="upper")
    g = _decreasing_interpolator(*g_curve, side="lower")
    x_lo = float(min(f_curve[0].min(), g_curve[0].min()))
    x_hi = float(max(f_curve[0].max(), g_curve[0].max()))
    if x_hi - x_lo <= 0.0:
        return 0.0
    if solver == "batch":
        return _lobe_square_batch(f, g, x_lo, x_hi)
    return _lobe_square_sequential(f, g, x_lo, x_hi)


def butterfly_snm(forward: tuple[np.ndarray, np.ndarray],
                  backward: tuple[np.ndarray, np.ndarray] | None = None,
                  solver: str = "batch") -> float:
    """Largest-square (Seevinck) SNM of a cross-coupled pair [V].

    Parameters
    ----------
    forward:
        ``(vin, vout)`` samples of the first inverter's VTC (monotone
        decreasing).
    backward:
        VTC of the second inverter; defaults to the first (symmetric
        cell).  The second characteristic is mirrored across the
        ``V_out = V_in`` diagonal to form the butterfly.
    solver:
        ``"batch"`` (default) iterates all candidate squares as one
        array; ``"sequential"`` keeps the scalar per-abscissa loop.

    The butterfly's two lobes are bounded above by one VTC and below by
    the mirror of the other; the SNM is the side of the largest square
    that fits in the smaller lobe.
    """
    validate_solver(solver)
    vin_f, vout_f = (np.asarray(a, dtype=float) for a in forward)
    if backward is None:
        vin_b, vout_b = vin_f.copy(), vout_f.copy()
    else:
        vin_b, vout_b = (np.asarray(a, dtype=float) for a in backward)
    if vin_f.size < 8:
        raise ParameterError("need at least 8 VTC samples")

    # Upper-left lobe: below curve A (y = f(x)), above mirrored curve B
    # (y = f_b^{-1}(x), i.e. the swapped-axis samples).
    upper = _lobe_square((vin_f, vout_f), (vout_b, vin_b), solver)
    # Lower-right lobe: mirror the construction.
    lower = _lobe_square((vin_b, vout_b), (vout_f, vin_f), solver)
    return max(min(upper, lower), 0.0)
