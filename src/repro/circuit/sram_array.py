"""Bitline-loaded SRAM columns: array-scale margins and leakage.

The paper evaluates one 6T cell; Mukhopadhyay et al. (PAPERS.md,
"Loading Effect in Leakage of Nano-Scaled Bulk-CMOS Logic Circuits")
show that leakage and margins are *loading* quantities — an N-row
column is not N independent cells.  This module builds full column
netlists (cross-coupled pairs, access devices, a resistive bitline
keeper, per-cell bitline capacitance) and characterises them with the
compiled batched MNA engine:

* **leakage under loading** — the keeper current feeding the leakage
  of every '0'-storing cell on the line.  As rows are added the
  bitline sags, each cell's access V_ds (and its DIBL boost) shrinks,
  and total leakage grows *sub-linearly* — the loading effect.
* **read SNM vs height** — during a read the N-1 unaccessed
  '1'-storing cells hold the floating bitline near V_dd, stiffening
  the read disturb on the accessed cell; loaded read SNM degrades
  with height toward the pinned-bitline limit.
* **write margins** — the DC bitline trip voltage, and an
  OpenNVRAM-style binary search for the minimum wordline pulse that
  flips the cell, where every probe is one batched transient over all
  variation corners.

Every solve runs through :func:`repro.circuit.mna_batch.solve_dc_batch`
/ :func:`solve_transient_batch`, so (ΔV_th,n, ΔV_th,p) corners are a
batch axis, and ``solver="sequential"`` swaps in the scalar oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
import numpy.typing as npt

from ..errors import ParameterError
from .batch import validate_solver
from .compile import CompiledCircuit, compile_circuit
from .mna_batch import solve_dc_batch, solve_transient_batch
from .netlist import Circuit, GROUND
from .snm import butterfly_snm
from .sram import SramCell, read_snm

__all__ = ["SramColumn", "build_column", "bitline_leakage_vs_height",
           "loaded_read_snm", "read_snm_vs_height", "write_trip_voltage",
           "min_write_pulse"]

FloatArray = npt.NDArray[np.float64]

#: Default per-cell bitline wiring+junction capacitance [F] (same
#: figure as :func:`repro.circuit.sram.bitline_read`).
C_BL_PER_CELL_F = 0.2e-15

#: Keeper sizing: the default keeper drops ``KEEPER_DROP_PER_CELL``
#: of V_dd per leaking cell at the nominal access leakage, so a
#: 32-row column shows a deep (strongly sub-linear) sag.
KEEPER_DROP_PER_CELL = 0.02


@dataclass(frozen=True)
class SramColumn:
    """An N-row, one-column 6T array netlist.

    ``circuit`` has sources ``vdd``, ``wl0 .. wl{N-1}`` (all parked at
    0 V — drive the selected row through the batched ``stimulus``),
    optional bitline write drivers ``vbl`` / ``vblb``, keeper
    resistors from both bitlines to the rail, and per-row storage
    nodes ``q{i}`` / ``qb{i}``.
    """

    cell: SramCell
    n_rows: int
    selected_row: int
    stored: tuple[int, ...]
    r_keeper_ohms: float
    c_bl_per_cell_f: float
    circuit: Circuit

    def q(self, row: int) -> str:
        """Storage-node name of ``row`` (the bit side)."""
        return f"q{row}"

    def qb(self, row: int) -> str:
        """Complement storage-node name of ``row``."""
        return f"qb{row}"

    def seed(self, bl_v: float | None = None, blb_v: float | None = None
             ) -> dict[str, float]:
        """Newton seeds [v] for the stored data pattern.

        Bitlines default to the rail (their standby level through the
        keeper); ``bl_v`` / ``blb_v`` override where the bitlines are
        driven or expected elsewhere.
        """
        vdd = self.cell.vdd
        seeds: dict[str, float] = {}
        for row, bit in enumerate(self.stored):
            seeds[self.q(row)] = vdd if bit else 0.0
            seeds[self.qb(row)] = 0.0 if bit else vdd
        seeds["bl"] = vdd if bl_v is None else bl_v
        seeds["blb"] = vdd if blb_v is None else blb_v
        return seeds


def _stored_pattern(stored: int | Sequence[int], n_rows: int
                    ) -> tuple[int, ...]:
    if isinstance(stored, int):
        return tuple([int(bool(stored))] * n_rows)
    pattern = tuple(int(bool(b)) for b in stored)
    if len(pattern) != n_rows:
        raise ParameterError(
            f"stored pattern has {len(pattern)} bits for {n_rows} rows")
    return pattern


def default_keeper_ohms(cell: SramCell) -> float:
    """The default bitline keeper resistance [ohms].

    Sized so one '0'-storing cell at nominal access leakage sags the
    bitline by :data:`KEEPER_DROP_PER_CELL` of the rail — deep enough
    that a tall column's sag (and with it the loading effect on
    leakage) is well resolved by the solver.
    """
    return KEEPER_DROP_PER_CELL * cell.vdd / cell.access.i_off(cell.vdd)


def storage_node_cap_f(cell: SramCell) -> float:
    """Per-storage-node capacitance [f]: the opposite inverter's gate
    input capacitance, which sets the cell's flip time scale."""
    vdd = cell.vdd
    return cell.pulldown.c_gate_eff(vdd) + cell.pullup.c_gate_eff(vdd)


def flip_time_scale_s(cell: SramCell) -> float:
    """The cell's characteristic write-flip time [s].

    The storage node swings a rail at roughly the access device's on
    current — the RC scale every write characterisation's horizon and
    step default to, so they adapt across device families (a
    super-threshold cell flips ~10^3x faster than a subthreshold one).
    """
    return (storage_node_cap_f(cell) * cell.vdd
            / cell.access.i_on(cell.vdd))


def build_column(cell: SramCell, n_rows: int, *,
                 stored: int | Sequence[int] = 0, selected_row: int = 0,
                 drive_bitlines: bool = False,
                 probe: str | None = None,
                 r_keeper_ohms: float | None = None,
                 c_bl_per_cell_f: float = C_BL_PER_CELL_F) -> SramColumn:
    """Build the column netlist.

    Parameters
    ----------
    stored:
        Data pattern — one bit (replicated) or one bit per row; bit b
        of row i means ``q{i}`` holds ``b * vdd``.
    selected_row:
        The row the read/write characterisations drive (its ``wl``
        source is still parked at 0 — select it via ``stimulus``).
    drive_bitlines:
        Add write-driver sources ``vbl`` / ``vblb`` pinning the
        bitlines (write characterisation); otherwise the bitlines
        float behind the keeper.
    probe:
        ``"q"`` or ``"qb"`` adds a ``vprobe`` source at that storage
        node of the selected row — the loop-breaking probe the
        butterfly-SNM sweeps drive.
    r_keeper_ohms:
        Bitline keeper resistance [ohms]
        (default :func:`default_keeper_ohms`).
    c_bl_per_cell_f:
        Per-cell bitline capacitance [f].
    """
    if n_rows < 1:
        raise ParameterError("need at least one row")
    if not 0 <= selected_row < n_rows:
        raise ParameterError("selected_row outside the column")
    pattern = _stored_pattern(stored, n_rows)
    keeper = (default_keeper_ohms(cell) if r_keeper_ohms is None
              else r_keeper_ohms)
    if keeper <= 0.0:
        raise ParameterError("keeper resistance must be positive")
    vdd = cell.vdd
    c = Circuit()
    c.add_vsource("vdd", "vdd", vdd)
    for row in range(n_rows):
        c.add_vsource(f"wl{row}", f"wl{row}", 0.0)
    if drive_bitlines:
        c.add_vsource("vbl", "bl", vdd)
        c.add_vsource("vblb", "blb", vdd)
    else:
        c.add_capacitor("cbl", "bl", GROUND, n_rows * c_bl_per_cell_f)
        c.add_capacitor("cblb", "blb", GROUND, n_rows * c_bl_per_cell_f)
    c.add_resistor("rkbl", "vdd", "bl", keeper)
    c.add_resistor("rkblb", "vdd", "blb", keeper)
    c_node = storage_node_cap_f(cell)
    for row in range(n_rows):
        q, qb = f"q{row}", f"qb{row}"
        c.add_mosfet(f"m{row}.pdl", q, qb, GROUND, cell.pulldown)
        c.add_mosfet(f"m{row}.pul", q, qb, "vdd", cell.pullup)
        c.add_mosfet(f"m{row}.pdr", qb, q, GROUND, cell.pulldown)
        c.add_mosfet(f"m{row}.pur", qb, q, "vdd", cell.pullup)
        c.add_mosfet(f"m{row}.axl", "bl", f"wl{row}", q, cell.access)
        c.add_mosfet(f"m{row}.axr", "blb", f"wl{row}", qb, cell.access)
        c.add_capacitor(f"c{row}.q", q, GROUND, c_node)
        c.add_capacitor(f"c{row}.qb", qb, GROUND, c_node)
    if probe is not None:
        if probe not in ("q", "qb"):
            raise ParameterError("probe must be 'q' or 'qb'")
        c.add_vsource("vprobe", f"{probe}{selected_row}", 0.0)
    return SramColumn(cell=cell, n_rows=n_rows, selected_row=selected_row,
                      stored=pattern, r_keeper_ohms=keeper,
                      c_bl_per_cell_f=c_bl_per_cell_f, circuit=c)


# ---------------------------------------------------------------------------
# leakage under loading


@dataclass(frozen=True)
class LeakageVsHeight:
    """Standby bitline leakage vs array height.

    ``i_bl_a`` / ``v_bl`` / ``per_cell_a`` are shaped
    ``(len(heights),) + batch_shape`` — heights stack as the leading
    axis, variation corners broadcast behind.
    """

    heights: tuple[int, ...]
    i_bl_a: FloatArray
    v_bl: FloatArray
    per_cell_a: FloatArray


def bitline_leakage_vs_height(cell: SramCell, heights: Sequence[int], *,
                              dvth_n_v: object = 0.0,
                              dvth_p_v: object = 0.0,
                              r_keeper_ohms: float | None = None,
                              solver: str = "batch") -> LeakageVsHeight:
    """Standby (all wordlines low) bitline leakage per array height.

    Every cell stores '0', so each access device leaks the bitline
    into its low node; the ``r_keeper_ohms`` [ohms] keeper supplies
    ``(vdd - v_bl) / r`` [A].
    ``dvth_n_v`` / ``dvth_p_v`` [v] broadcast as variation corners.
    The loading claim: total leakage grows sub-linearly (per-cell
    leakage strictly falls) because the sagging bitline strips each
    access device of drain bias and DIBL.
    """
    validate_solver(solver)
    keeper = (default_keeper_ohms(cell) if r_keeper_ohms is None
              else r_keeper_ohms)
    i_rows = []
    v_rows = []
    for n_rows in heights:
        column = build_column(cell, int(n_rows), stored=0,
                              r_keeper_ohms=keeper)
        result = solve_dc_batch(column.circuit, dvth_n_v=dvth_n_v,
                                dvth_p_v=dvth_p_v,
                                initial=column.seed(), solver=solver)
        v_bl = result["bl"]
        v_rows.append(v_bl)
        i_rows.append((cell.vdd - v_bl) / keeper)
    heights_arr = np.array([int(n) for n in heights])
    i_bl = np.stack(i_rows, axis=0)
    v_bl = np.stack(v_rows, axis=0)
    shape = (len(heights),) + (1,) * (i_bl.ndim - 1)
    per_cell = i_bl / heights_arr.reshape(shape)
    return LeakageVsHeight(heights=tuple(int(n) for n in heights),
                           i_bl_a=i_bl, v_bl=v_bl, per_cell_a=per_cell)


# ---------------------------------------------------------------------------
# read SNM under loading


def _probe_vtc(column: SramColumn, vins: FloatArray, out_node: str,
               solver: str, compiled: CompiledCircuit | None = None
               ) -> FloatArray:
    vdd = column.cell.vdd
    seeds = {node: value for node, value in column.seed().items()
             if node not in (out_node,)}
    seeds[out_node] = vdd - vins
    result = solve_dc_batch(
        column.circuit, stimulus={"vprobe": vins,
                                  f"wl{column.selected_row}": vdd},
        initial=seeds, solver=solver, compiled=compiled)
    return result[out_node]


def loaded_read_snm(cell: SramCell, n_rows: int, *, n_points: int = 33,
                    r_keeper_ohms: float | None = None,
                    solver: str = "batch") -> float:
    """Read SNM [V] of the accessed cell with loaded bitlines.

    The selected row is read (wordline high); the other ``n_rows - 1``
    cells store '1' and hold the floating bitline (behind its
    ``r_keeper_ohms`` [ohms] keeper) near the rail, so the read
    disturb stiffens with height.  Both butterfly lobes are solved as
    batched DC sweeps of a loop-breaking probe source.
    """
    validate_solver(solver)
    if n_points < 8:
        raise ParameterError("need at least 8 VTC points")
    vdd = cell.vdd
    vins = np.linspace(0.0, vdd, n_points)
    stored = [1] * n_rows
    stored[0] = 0
    lobes = []
    for probe, out in (("qb", "q0"), ("q", "qb0")):
        column = build_column(cell, n_rows, stored=stored,
                              selected_row=0, probe=probe,
                              r_keeper_ohms=r_keeper_ohms)
        lobes.append(_probe_vtc(column, vins, out, solver))
    return butterfly_snm((vins, lobes[0]), (vins, lobes[1]),
                         solver=solver)


def read_snm_vs_height(cell: SramCell, heights: Sequence[int], *,
                       n_points: int = 33,
                       r_keeper_ohms: float | None = None,
                       solver: str = "batch"
                       ) -> tuple[FloatArray, FloatArray, float]:
    """Loaded read SNM [V] per array height, plus the pinned-bitline
    limit the degradation approaches (``(heights, snm, snm_pinned)``).
    ``r_keeper_ohms`` [ohms] overrides the bitline keeper.
    """
    snm = np.array([loaded_read_snm(cell, int(n), n_points=n_points,
                                    r_keeper_ohms=r_keeper_ohms,
                                    solver=solver)
                    for n in heights])
    pinned = read_snm(cell, solver=solver)
    return np.array([int(n) for n in heights]), snm, pinned


# ---------------------------------------------------------------------------
# write margins


def write_trip_voltage(cell: SramCell, n_rows: int, *,
                       ramp_taus: float = 80.0, n_steps: int = 240,
                       dvth_n_v: object = 0.0, dvth_p_v: object = 0.0,
                       solver: str = "batch") -> FloatArray:
    """Write trip: the bitline voltage [V] at which the accessed cell
    flips as ``vbl`` ramps down from the rail, per variation corner.

    The selected cell stores '1'; the wordline is selected and
    ``vbl`` ramps quasistatically (``ramp_taus`` flip time scales, so
    the tracking lag is ~``vdd / ramp_taus``) from V_dd to 0 while
    ``vblb`` holds high.  A slow ramp follows the held state until
    its basin disappears — the write trip — which sidesteps the
    Newton cycling a cold DC solve suffers exactly at that
    bifurcation (the scalar oracle fails there too).  A higher trip
    voltage means an easier write.  ``dvth_n_v`` / ``dvth_p_v`` [v]
    broadcast as corners; lanes whose cell never flips report
    ``nan``.
    """
    validate_solver(solver)
    vdd = cell.vdd
    column = build_column(cell, n_rows, stored=1, drive_bitlines=True)
    t_ramp = ramp_taus * flip_time_scale_s(cell)

    def vbl_ramp(t: float) -> float:
        return vdd * max(0.0, 1.0 - t / t_ramp)

    result = solve_transient_batch(
        column.circuit, t_ramp, t_ramp / n_steps,
        stimulus={"vbl": vbl_ramp, "wl0": vdd},
        dvth_n_v=dvth_n_v, dvth_p_v=dvth_p_v,
        initial=column.seed(), solver=solver)
    t_flip = result.crossing_times("qb0", 0.5 * vdd, rising=True)
    return np.asarray(vdd * (1.0 - t_flip / t_ramp))


def min_write_pulse(cell: SramCell, n_rows: int, *,
                    t_max_s: float | None = None, n_probes: int = 10,
                    n_steps: int = 96, dvth_n_v: object = 0.0,
                    dvth_p_v: object = 0.0, solver: str = "batch"
                    ) -> FloatArray:
    """Minimum wordline pulse width [s] that writes the cell, per
    variation corner — an OpenNVRAM-style binary search where every
    probe is **one** batched transient.

    The cell stores '1', the bitline is driven low, and the selected
    wordline pulses high for a per-lane width; a lane succeeds when
    its cell has flipped once the pulse is gone.  ``t_max_s`` [s] is
    the search ceiling, defaulting to 40 flip time scales (lanes that
    cannot flip report ``nan``); ``dvth_n_v`` / ``dvth_p_v`` [v]
    broadcast as corners.  The result is the surviving upper bracket,
    within ``t_max_s / 2**n_probes`` of the true minimum.
    """
    validate_solver(solver)
    if t_max_s is None:
        t_max_s = 40.0 * flip_time_scale_s(cell)
    if t_max_s <= 0.0:
        raise ParameterError("t_max_s must be positive")
    vdd = cell.vdd
    column = build_column(cell, n_rows, stored=1, drive_bitlines=True)
    compiled = compile_circuit(column.circuit)
    shape = np.broadcast_shapes(np.shape(dvth_n_v), np.shape(dvth_p_v))
    t_start = 0.05 * t_max_s
    t_stop = 1.6 * t_max_s
    dt = t_stop / n_steps

    def probe(widths: FloatArray) -> FloatArray:
        def wordline(t: float) -> FloatArray:
            on = (t >= t_start) & (t < t_start + widths)
            return np.where(on, vdd, 0.0)

        result = solve_transient_batch(
            column.circuit, t_stop, dt,
            stimulus={"wl0": wordline, "vbl": 0.0},
            dvth_n_v=dvth_n_v, dvth_p_v=dvth_p_v,
            initial=column.seed(bl_v=0.0), solver=solver,
            compiled=compiled)
        return result.voltages["q0"][-1] < 0.5 * vdd

    lo = np.zeros(shape)
    hi = np.full(shape, t_max_s)
    writable = probe(hi)
    for _ in range(n_probes):
        mid = 0.5 * (lo + hi)
        flipped = probe(mid)
        hi = np.where(flipped, mid, hi)
        lo = np.where(flipped, lo, mid)
    return np.asarray(np.where(writable, hi, np.nan))
