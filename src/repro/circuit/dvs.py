"""Dynamic voltage scaling down to the minimum-energy limit (ref [17]).

The paper's V_min analysis leans on Zhai et al., *The Limit of Dynamic
Voltage Scaling and Insomniac DVS* — whose central observation is that
a DVS system should never scale its supply below V_min: beneath it,
both energy *and* speed get worse, so a workload slower than the
V_min-rate is served best by computing at V_min and idling
("race-to-V_min").  This module implements that policy for the
library's inverter-chain workload model:

* :func:`vdd_for_throughput` — the lowest supply meeting a cycle-rate
  target (bisection on the chain delay),
* :func:`energy_per_cycle_at_throughput` — the DVS energy curve, with
  the race-to-V_min floor below the V_min rate,
* :func:`dvs_range` — the useful supply range [V_min, V_max] and the
  throughput dynamic range it spans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..numerics import bisect_illinois
from .batch import validate_solver
from .chain import InverterChain
from .delay import K_D_DEFAULT
from .energy import VminResult, _load_and_cycle, chain_energy_sweep


@dataclass(frozen=True)
class DvsOperatingPoint:
    """One DVS operating point for a throughput target.

    Attributes
    ----------
    f_target_hz / f_actual_hz:
        Requested and delivered cycle rates.
    vdd:
        Chosen supply [V].
    energy_j:
        Energy per cycle including idle leakage when duty-cycled [J].
    duty_cycle:
        Fraction of time computing (1.0 above the V_min rate).
    """

    f_target_hz: float
    f_actual_hz: float
    vdd: float
    energy_j: float
    duty_cycle: float


def chain_rate_hz(chain: InverterChain, vdd: float) -> float:
    """Cycle rate of the chain at a supply [Hz]."""
    return 1.0 / chain.at_vdd(vdd).critical_path()


def vdd_for_throughput(chain: InverterChain, f_target_hz: float,
                       vdd_lo: float = 0.10, vdd_hi: float = 1.2,
                       tol: float = 1e-4) -> float:
    """Lowest supply at which the chain meets ``f_target_hz`` [hz].

    Delay is monotone decreasing in V_dd, so bisection applies.
    Raises when the target exceeds the rate at ``vdd_hi``.
    """
    if f_target_hz <= 0.0:
        raise ParameterError("throughput target must be positive")
    if chain_rate_hz(chain, vdd_hi) < f_target_hz:
        raise ParameterError(
            f"target {f_target_hz:.3g} Hz unreachable below "
            f"{vdd_hi:.2f} V"
        )
    if chain_rate_hz(chain, vdd_lo) >= f_target_hz:
        return vdd_lo
    lo, hi = vdd_lo, vdd_hi
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if chain_rate_hz(chain, mid) >= f_target_hz:
            hi = mid
        else:
            lo = mid
    return hi


def chain_rate_batch(chain: InverterChain, vdd) -> np.ndarray:
    """Cycle rates of the chain over an array of supplies [Hz].

    Array counterpart of :func:`chain_rate_hz` through the shared
    Eq. 4 kernel, so one evaluation serves every active lane of a
    batched throughput solve.
    """
    vdd = np.asarray(vdd, dtype=float)
    if np.any(vdd <= 0.0):
        raise ParameterError("vdd must be positive")
    _, cycle = _load_and_cycle(chain.stage, vdd, chain.n_stages,
                               K_D_DEFAULT)
    return 1.0 / cycle


def vdd_for_throughput_batch(chain: InverterChain, f_targets_hz,
                             vdd_lo: float = 0.10, vdd_hi: float = 1.2,
                             tol: float = 1e-4) -> np.ndarray:
    """Lowest supplies meeting each ``f_targets_hz`` target [hz],
    as supplies [V].

    Batched port of :func:`vdd_for_throughput` through the gathered
    core: the bisection runs in pure-midpoint mode (warmup pinned to
    the sweep cap, so regula falsi never engages) and the returned
    value is each lane's *hi* bracket end — exactly the scalar loop's
    "lowest probed supply that met the target", not the midpoint.
    Already-met targets return ``vdd_lo`` via a zero-width bracket.
    """
    targets = np.asarray(f_targets_hz, dtype=float)
    if np.any(targets <= 0.0):
        raise ParameterError("throughput target must be positive")
    shape = targets.shape
    flat = np.ravel(targets)
    rate_lo = float(chain_rate_batch(chain, np.array([vdd_lo]))[0])
    rate_hi = float(chain_rate_batch(chain, np.array([vdd_hi]))[0])
    if rate_hi < flat.max():
        raise ParameterError(
            f"target {flat.max():.3g} Hz unreachable below "
            f"{vdd_hi:.2f} V"
        )
    at_lo = rate_lo >= flat
    lo = np.full_like(flat, vdd_lo)
    hi = np.where(at_lo, vdd_lo, vdd_hi)

    def residual(vdd: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return chain_rate_batch(chain, vdd) - flat[idx]

    result = bisect_illinois(
        residual, lo, hi, xtol=tol,
        warmup_sweeps=80, max_sweeps=80,
        sweep_counter="circuit.dvs_bisection_sweeps",
    )
    return result.hi.reshape(shape)


def dvs_curve(chain: InverterChain, f_targets_hz,
              mep: VminResult | None = None, power_gated: bool = False,
              solver: str = "batch") -> np.ndarray:
    """Energy per delivered cycle [J] per ``f_targets_hz`` rate
    target [hz].

    Vectorised counterpart of mapping
    :func:`energy_per_cycle_at_throughput` over ``f_targets_hz``: the
    above-V_min targets share one gathered bisection for their supplies
    (:func:`vdd_for_throughput_batch`) and one array energy sweep,
    while below-V_min targets apply the duty-cycled V_min floor
    arithmetic lane-wise.  ``solver="sequential"`` keeps the scalar
    per-target path as the correctness oracle.
    """
    validate_solver(solver)
    targets = np.asarray(f_targets_hz, dtype=float)
    if solver == "sequential":
        return np.array([
            energy_per_cycle_at_throughput(chain, float(f), mep,
                                           power_gated=power_gated).energy_j
            for f in np.ravel(targets)
        ]).reshape(targets.shape)
    mep = chain.minimum_energy_point() if mep is None else mep
    f_vmin = chain_rate_hz(chain, mep.vmin)
    flat = np.ravel(targets)
    energy = np.empty_like(flat)
    above = flat >= f_vmin
    above_i = np.flatnonzero(above)
    if above_i.size:
        vdds = vdd_for_throughput_batch(chain, flat[above_i])
        energy[above_i] = chain_energy_sweep(
            chain.stage, vdds, chain.n_stages, chain.activity)
    below_i = np.flatnonzero(~above)
    if below_i.size:
        duty = flat[below_i] / f_vmin
        energy[below_i] = mep.energy.total_j
        if not power_gated:
            rebias = chain.at_vdd(mep.vmin)
            idle_power = (rebias.n_stages * rebias.stage.leakage_current()
                          * mep.vmin)
            energy[below_i] += (idle_power * (1.0 / flat[below_i])
                                * (1.0 - duty))
    return energy.reshape(targets.shape)


def energy_per_cycle_at_throughput(chain: InverterChain,
                                   f_target_hz: float,
                                   mep: VminResult | None = None,
                                   power_gated: bool = False
                                   ) -> DvsOperatingPoint:
    """Energy per cycle under the V_min-floored DVS policy.

    Above the V_min rate: conventional DVS (lowest supply meeting
    ``f_target_hz`` [hz]).  Below it: compute at V_min with duty cycle
    ``f_target / f(V_min)`` —

    * ``power_gated=False`` (default): the idle fraction still leaks,
      so energy per delivered cycle *diverges* as the duty cycle falls.
      This is the Insomniac observation: absent gating, sleeping slower
      than V_min is strictly worse than computing — stay awake.
    * ``power_gated=True``: ideal gating zeroes the idle leakage and
      energy per cycle saturates exactly at the V_min value — the DVS
      energy floor.
    """
    mep = chain.minimum_energy_point() if mep is None else mep
    f_vmin = chain_rate_hz(chain, mep.vmin)
    if f_target_hz >= f_vmin:
        vdd = vdd_for_throughput(chain, f_target_hz)
        rebias = chain.at_vdd(vdd)
        energy = rebias.energy_per_cycle().total_j
        return DvsOperatingPoint(
            f_target_hz=f_target_hz,
            f_actual_hz=chain_rate_hz(chain, vdd),
            vdd=vdd, energy_j=energy, duty_cycle=1.0,
        )
    # Duty-cycled operation at V_min: per delivered cycle, the active
    # energy plus (unless gated) the leakage of the idle remainder.
    duty = f_target_hz / f_vmin
    active = mep.energy.total_j
    idle_energy = 0.0
    if not power_gated:
        rebias = chain.at_vdd(mep.vmin)
        idle_power = (rebias.n_stages * rebias.stage.leakage_current()
                      * mep.vmin)
        idle_energy = idle_power * (1.0 / f_target_hz) * (1.0 - duty)
    return DvsOperatingPoint(
        f_target_hz=f_target_hz,
        f_actual_hz=f_vmin,
        vdd=mep.vmin,
        energy_j=active + idle_energy,
        duty_cycle=duty,
    )


@dataclass(frozen=True)
class DvsRange:
    """The useful DVS window of a design."""

    vmin: float
    vmax: float
    f_at_vmin_hz: float
    f_at_vmax_hz: float

    @property
    def throughput_dynamic_range(self) -> float:
        """f(V_max) / f(V_min) — decades of rate the window covers."""
        return self.f_at_vmax_hz / self.f_at_vmin_hz


def dvs_range(chain: InverterChain, vmax: float,
              mep: VminResult | None = None) -> DvsRange:
    """The [V_min, vmax] DVS window and its throughput span."""
    mep = chain.minimum_energy_point() if mep is None else mep
    if vmax <= mep.vmin:
        raise ParameterError("vmax must exceed V_min")
    return DvsRange(
        vmin=mep.vmin,
        vmax=vmax,
        f_at_vmin_hz=chain_rate_hz(chain, mep.vmin),
        f_at_vmax_hz=chain_rate_hz(chain, vmax),
    )
