"""Batched circuit-evaluation kernels: vectorised VTC, gain and SNM.

Scalar circuit evaluation solves one current-balance root-find per
(input voltage, V_th perturbation) point — 101 scalar ``gain`` calls
per SNM extraction and one full extraction per Monte Carlo trial.
This module applies the same stacked-system trick as the batched
Poisson kernel one layer up: *all* points of a grid — every input
voltage of every Monte Carlo trial — are solved simultaneously by a
masked vectorised bisection on the inverter current balance

``I_N(V_in, V_out; dV_th,n) = I_P(V_in, V_out; dV_th,p)``

The balance is strictly increasing in ``V_out``, so each point's
bracket ``[0, V_dd]`` contains exactly one root; rail points (balance
already signed at a rail) retire from the active mask immediately and
every other point bisects until its bracket falls below ``xtol``,
mirroring the Poisson batch kernel's convergence mask.

Both devices of every point are evaluated in one fused array pass:
the NFET and PFET legs share the same EKV expression tree, so their
per-point parameters (V_th0 + offset, slope factor, DIBL
coefficients, I_spec, velocity-saturation factors) are stacked into
length-2n arrays and a balance evaluation costs a fixed ~50 numpy ops
regardless of batch size.

The gain = -1 crossings of :func:`noise_margins_batch` are located by
the same 101-point scan as the scalar path, then refined by staged
sub-grid bisection: each stage solves one batched VTC system for all
trials' candidate points at once, shrinking every bracket 64x, so a
whole Monte Carlo population costs a handful of batched solves instead
of thousands of scalar root-finds.

The scalar implementations remain available as correctness oracles
behind each consumer's ``solver=`` switch (the same convention as
:class:`repro.tcad.DeviceSimulator`); agreement to <= 1e-9 relative is
locked down by ``tests/test_circuit_batch_equivalence.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import perf
from ..constants import thermal_voltage
from ..device.iv import _ekv_f
from ..errors import LostRegenerationError, ParameterError
from ..numerics import bisect_masked

#: Solver switch values shared by every batched/scalar consumer pair.
SOLVER_MODES = ("batch", "sequential")

#: Default bracket tolerance of the batched bisection [V].
XTOL_DEFAULT = 1e-10

#: Sub-intervals per crossing-refinement stage (each stage shrinks the
#: gain = -1 bracket by this factor with a single batched VTC solve).
_REFINE_INTERVALS = 64

#: Canonical lost-regeneration messages, indexed by ``lost_code - 1``.
#: The scalar SNM extraction raises them wrapped in the structured
#: :class:`repro.errors.LostRegenerationError` (via
#: :func:`lost_regeneration_error`), which is what Monte Carlo and the
#: service layer catch; every other :class:`ParameterError` is a
#: genuine defect and propagates.
LOST_REGENERATION_MESSAGES = (
    "VTC never reaches gain -1; supply too low for regeneration",
    "gain = -1 crossing hits the sweep boundary",
)


def lost_regeneration_error(code: int) -> LostRegenerationError:
    """The structured error for batch ``lost_code == code``.

    Pairs each code (``1`` — no gain = -1 point, ``2`` — crossing on
    the sweep boundary) with its canonical message from
    :data:`LOST_REGENERATION_MESSAGES`, so the batch and scalar paths
    share one error contract.
    """
    if code not in (1, 2):
        raise ParameterError("lost-regeneration code must be 1 or 2")
    return LostRegenerationError(LOST_REGENERATION_MESSAGES[code - 1],
                                 code=code)


def validate_solver(solver: str) -> None:  # repro: noqa[RPR004] the switch's own validator, not a dual-backend API
    """Raise :class:`ParameterError` unless ``solver`` is a known mode."""
    if solver not in SOLVER_MODES:
        raise ParameterError(
            f"unknown solver {solver!r}; choose one of {SOLVER_MODES}"
        )


def solve_balance_batch(balance, lo, hi, xtol: float = XTOL_DEFAULT
                        ) -> np.ndarray:
    """Gathered vectorised bisection on a monotone-increasing balance.

    Thin circuit-layer wrapper over :func:`repro.numerics.bisect_masked`
    preserving the ``circuit.balance_bisection_sweeps`` counter.
    ``balance(v, idx)`` maps gathered candidate outputs (plus their lane
    indices) to the signed balance at each live point; each bracket
    ``[lo_i, hi_i]`` must contain the sign change.  Points whose
    bracket is already below ``xtol`` (rails pinned by the caller)
    never enter the active set; the rest retire as their brackets
    converge.  Returns bracket midpoints.
    """
    if xtol <= 0.0:
        raise ParameterError("xtol must be positive")
    return bisect_masked(balance, lo, hi, xtol=xtol,
                         sweep_counter="circuit.balance_bisection_sweeps")


class _VtcSystem:
    """Fused NFET+PFET balance evaluator for one batch of VTC points.

    Per-point device parameters are stacked into length-2n arrays
    (NFET leg first) so a balance evaluation is one pass of elementwise
    numpy ops; the arithmetic reproduces :meth:`IVModel.ids` term for
    term, so batch and scalar paths agree to root-finder tolerance.
    """

    def __init__(self, inverter, vin: np.ndarray,
                 dvth_n: np.ndarray, dvth_p: np.ndarray) -> None:
        vdd = inverter.vdd
        n = vin.size
        self.vdd = vdd
        self.n = n
        pieces: dict[str, list[np.ndarray]] = {}
        for iv, vgs, dvth in ((inverter.nfet.iv, vin, dvth_n),
                              (inverter.pfet.iv, vdd - vin, dvth_p)):
            vt = thermal_voltage(iv.temperature_k)
            leg = {
                "vgs": vgs,
                "ispec": np.asarray(iv.i_spec(vgs), dtype=float),
                "vth0": (iv._vth0 + iv.vth_offset_v) + dvth,
                "m": iv._m,
                "b": iv._sce_barrier,
                "twob": 2.0 * iv._sce_barrier,
                "e1": iv._sce_e1,
                "e2": iv._sce_e2,
                "vt": vt,
                "twovt": 2.0 * vt,
                "mu": iv.mobility.low_field(iv._n_eff),
                "vsat_leff": iv.mobility.vsat() * iv.geometry.l_eff_cm,
            }
            for key, value in leg.items():
                arr = np.broadcast_to(np.asarray(value, dtype=float), (n,))
                pieces.setdefault(key, []).append(arr)
        for key, (n_arr, p_arr) in pieces.items():
            setattr(self, key, np.concatenate([n_arr, p_arr]))

    def balance(self, vout: np.ndarray, idx=None) -> np.ndarray:
        """``I_N - I_P`` at each point's candidate output voltage.

        With ``idx`` (the root-solve core's gathered-lane indices) only
        those points' stacked NFET/PFET legs are evaluated; the
        arithmetic is elementwise, so the gathered result matches the
        corresponding lanes of a full evaluation bitwise.
        """
        if idx is None:
            sel: slice | np.ndarray = slice(None)
            k = self.n
        else:
            sel = np.concatenate([idx, idx + self.n])
            k = idx.shape[0]
        vds = np.concatenate([np.maximum(vout, 0.0),
                              np.maximum(self.vdd - vout, 0.0)])
        b = self.b[sel]
        dv = ((self.twob[sel] + vds) * self.e1[sel]
              + 2.0 * np.sqrt(b * (b + vds)) * self.e2[sel])
        vth = self.vth0[sel] - dv
        vp = (self.vgs[sel] - vth) / self.m[sel]
        i_f = _ekv_f(vp / self.vt[sel])
        i_r = _ekv_f((vp - vds) / self.vt[sel])
        current = self.ispec[sel] * (i_f - i_r)
        severity = i_f / (1.0 + i_f)
        v_drive = np.maximum(vp, self.twovt[sel])
        v_dsat = vds * v_drive / (vds + v_drive + 1e-12)
        vsat_term = (self.mu[sel] * v_dsat) / self.vsat_leff[sel]
        current = current / (1.0 + severity * vsat_term)
        return current[:k] - current[k:]


def _broadcast_inputs(vin, dvth_n, dvth_p):
    vin_arr, dn_arr, dp_arr = np.broadcast_arrays(
        np.asarray(vin, dtype=float),
        np.asarray(dvth_n, dtype=float),
        np.asarray(dvth_p, dtype=float),
    )
    return vin_arr, dn_arr, dp_arr


def solve_vtc_batch(inverter, vin, dvth_n=0.0, dvth_p=0.0,
                    xtol: float = XTOL_DEFAULT):
    """Static output voltages for whole arrays of VTC points [V].

    Solves ``I_N(V_in, V_out) = I_P(V_in, V_out)`` for every
    (``vin``, ``dvth_n``, ``dvth_p``) triple at once (inputs broadcast
    together); each element is the batched equivalent of
    ``Inverter.vtc_point`` on a V_th-offset copy of the devices.
    Scalar inputs return a float.
    """
    vin_arr, dn_arr, dp_arr = _broadcast_inputs(vin, dvth_n, dvth_p)
    shape = vin_arr.shape
    vdd = inverter.vdd
    flat = vin_arr.ravel()
    if np.any((flat < 0.0) | (flat > vdd)):
        raise ParameterError(
            f"vin outside the supply range [0, {vdd}]"
        )
    system = _VtcSystem(inverter, flat, dn_arr.ravel(), dp_arr.ravel())
    n = flat.size
    f_lo = system.balance(np.zeros(n))
    f_hi = system.balance(np.full(n, vdd))
    at_lo = f_lo >= 0.0
    at_hi = (f_hi <= 0.0) & ~at_lo
    # Rail points are pinned by collapsing their bracket, which keeps
    # them out of the bisection's active mask from sweep zero.
    lo = np.where(at_hi, vdd, 0.0)
    hi = np.where(at_lo, 0.0, vdd)
    perf.bump("circuit.vtc_batch_solves")
    perf.bump("circuit.vtc_batch_points", n)
    vout = solve_balance_batch(system.balance, lo, hi, xtol=xtol)
    if shape == ():
        return float(vout[0])
    return vout.reshape(shape)


def gain_batch(inverter, vin, dvth_n=0.0, dvth_p=0.0,
               h_v: float | None = None, xtol: float = XTOL_DEFAULT):
    """Small-signal gain dV_out/dV_in for arrays of VTC points.

    Uses the same finite-difference stencil (step ``h_v`` [v],
    defaulting to ``V_dd * 1e-4``, clamped at the rails) as
    ``Inverter.gain``, evaluated from one batched VTC solve over all
    ``2 * n`` stencil endpoints.
    """
    vin_arr, dn_arr, dp_arr = _broadcast_inputs(vin, dvth_n, dvth_p)
    shape = vin_arr.shape
    gains = _gain_flat(inverter, vin_arr.ravel(), dn_arr.ravel(),
                       dp_arr.ravel(), h_v, xtol)
    if shape == ():
        return float(gains[0])
    return gains.reshape(shape)


def _gain_flat(inverter, vin: np.ndarray, dvth_n: np.ndarray,
               dvth_p: np.ndarray, h: float | None,
               xtol: float) -> np.ndarray:
    vdd = inverter.vdd
    step = (vdd * 1e-4) if h is None else h
    lo = np.maximum(vin - step, 0.0)
    hi = np.minimum(vin + step, vdd)
    if np.any(hi <= lo):
        raise ParameterError("gain stencil collapsed; vin at a corner?")
    vouts = solve_vtc_batch(
        inverter,
        np.concatenate([hi, lo]),
        np.concatenate([dvth_n, dvth_n]),
        np.concatenate([dvth_p, dvth_p]),
        xtol=xtol,
    )
    m = vin.size
    return (vouts[:m] - vouts[m:]) / (hi - lo)


@dataclass(frozen=True)
class BatchNoiseMargins:
    """Per-trial noise-margin arrays of a batched SNM extraction.

    Attributes mirror :class:`repro.circuit.snm.NoiseMargins`
    elementwise; trials that lost regeneration carry NaN in every
    voltage field and a nonzero ``lost_code``.

    Attributes
    ----------
    v_il / v_ih / v_ol / v_oh / nm_low / nm_high:
        Noise-margin voltages per trial [V].
    lost_code:
        0 = regenerative, 1 = the VTC never reaches gain -1,
        2 = a gain = -1 crossing hits the sweep boundary (the indices
        of :data:`LOST_REGENERATION_MESSAGES`, offset by one).
    """

    v_il: np.ndarray
    v_ih: np.ndarray
    v_ol: np.ndarray
    v_oh: np.ndarray
    nm_low: np.ndarray
    nm_high: np.ndarray
    lost_code: np.ndarray

    @property
    def lost(self) -> np.ndarray:
        """Boolean mask of trials that lost regeneration."""
        return self.lost_code > 0

    @property
    def snm(self) -> np.ndarray:
        """min(NM_L, NM_H) per trial (NaN where regeneration is lost)."""
        return np.minimum(self.nm_low, self.nm_high)


def _refine_crossings(inverter, a: np.ndarray, b: np.ndarray,
                      sign: np.ndarray, dvth_n: np.ndarray,
                      dvth_p: np.ndarray, xtol: float) -> np.ndarray:
    """Shrink each gain = -1 bracket ``[a, b]`` below ``xtol``.

    ``sign`` is +1 where ``gain + 1`` crosses downwards inside the
    bracket (the V_IL side) and -1 where it crosses upwards (V_IH);
    multiplying by it folds both cases into "first negative grid
    point".  Every stage evaluates all jobs' sub-grids in a single
    batched VTC solve and keeps the first sign-change sub-interval.
    """
    n_jobs = a.size
    if n_jobs == 0:
        return a
    frac = np.linspace(0.0, 1.0, _REFINE_INTERVALS + 1)
    width = float((b - a).max())
    n_stages = max(1, int(math.ceil(
        math.log(max(width, xtol) / xtol) / math.log(_REFINE_INTERVALS))))
    dn_rep = np.repeat(dvth_n, frac.size)
    dp_rep = np.repeat(dvth_p, frac.size)
    for _ in range(n_stages):
        grid = a[:, None] + frac[None, :] * (b - a)[:, None]
        gains = _gain_flat(inverter, grid.ravel(), dn_rep, dp_rep,
                           None, xtol).reshape(n_jobs, frac.size)
        folded = (gains + 1.0) * sign[:, None]
        # First negative grid point; the bracket invariant guarantees
        # folded[:, 0] >= 0 > folded[:, -1], the clip guards the
        # degenerate bracket-narrower-than-gain-noise case.
        idx = np.clip(np.argmax(folded < 0.0, axis=1),
                      1, _REFINE_INTERVALS)
        a = np.take_along_axis(grid, (idx - 1)[:, None], axis=1).ravel()
        b = np.take_along_axis(grid, idx[:, None], axis=1).ravel()
    return 0.5 * (a + b)


def noise_margins_batch(inverter, dvth_n=0.0, dvth_p=0.0, n_scan: int = 101,
                        xtol: float = XTOL_DEFAULT) -> BatchNoiseMargins:
    """Gain = -1 noise margins for whole arrays of V_th perturbations.

    The batched equivalent of running ``noise_margins`` on a
    V_th-offset copy of the inverter per trial: the same 101-point
    scan grid locates each trial's two sign-change brackets, staged
    sub-grid bisection refines them below ``xtol``, and one more
    batched solve reads off ``V_OL``/``V_OH``.  Trials whose VTC never
    reaches gain -1 (or only at the sweep boundary) are flagged in
    ``lost_code`` instead of raising.
    """
    if n_scan < 5:
        raise ParameterError("need at least 5 scan points")
    dn_arr, dp_arr = np.broadcast_arrays(np.asarray(dvth_n, dtype=float),
                                         np.asarray(dvth_p, dtype=float))
    shape = dn_arr.shape
    dn = np.atleast_1d(dn_arr.ravel())
    dp = np.atleast_1d(dp_arr.ravel())
    trials = dn.size
    vdd = inverter.vdd
    margin = vdd * 1e-3
    vins = np.linspace(margin, vdd - margin, n_scan)

    vin_grid = np.broadcast_to(vins, (trials, n_scan))
    gains = _gain_flat(inverter, vin_grid.ravel(),
                       np.repeat(dn, n_scan), np.repeat(dp, n_scan),
                       None, xtol).reshape(trials, n_scan)
    below = (gains + 1.0) < 0.0
    has_crossing = below.any(axis=1)
    first = np.argmax(below, axis=1)
    last = n_scan - 1 - np.argmax(below[:, ::-1], axis=1)
    lost_code = np.zeros(trials, dtype=int)
    lost_code[~has_crossing] = 1
    boundary = has_crossing & ((first == 0) | (last == n_scan - 1))
    lost_code[boundary] = 2
    ok = lost_code == 0

    nan = np.full(trials, np.nan)
    v_il, v_ih = nan.copy(), nan.copy()
    v_ol, v_oh = nan.copy(), nan.copy()
    k = int(ok.sum())
    if k:
        first_ok, last_ok = first[ok], last[ok]
        a = np.concatenate([vins[first_ok - 1], vins[last_ok]])
        b = np.concatenate([vins[first_ok], vins[last_ok + 1]])
        sign = np.concatenate([np.ones(k), -np.ones(k)])
        dn2 = np.concatenate([dn[ok], dn[ok]])
        dp2 = np.concatenate([dp[ok], dp[ok]])
        roots = _refine_crossings(inverter, a, b, sign, dn2, dp2, xtol)
        v_il[ok] = roots[:k]
        v_ih[ok] = roots[k:]
        vouts = solve_vtc_batch(inverter, roots, dn2, dp2, xtol=xtol)
        v_oh[ok] = vouts[:k]
        v_ol[ok] = vouts[k:]
    perf.bump("circuit.snm_batch_extractions", trials)
    return BatchNoiseMargins(
        v_il=v_il.reshape(shape) if shape else v_il,
        v_ih=v_ih.reshape(shape) if shape else v_ih,
        v_ol=v_ol.reshape(shape) if shape else v_ol,
        v_oh=v_oh.reshape(shape) if shape else v_oh,
        nm_low=(v_il - v_ol).reshape(shape) if shape else v_il - v_ol,
        nm_high=(v_oh - v_ih).reshape(shape) if shape else v_oh - v_ih,
        lost_code=lost_code.reshape(shape) if shape else lost_code,
    )
