"""Transient simulation of a capacitively loaded inverter.

A single nonlinear ODE per switching event:

``C_L dV_out/dt = I_P(V_in(t), V_out) - I_N(V_in(t), V_out)``

integrated with ``scipy.integrate.solve_ivp`` (stiff-safe BDF for the
deep-subthreshold regime, where currents span many decades).  The
propagation delay is the 50 %-crossing time of the output after the
input step — the same measurement one scripts on top of SPICE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.integrate import solve_ivp

from ..errors import ConvergenceError, ParameterError
from .inverter import Inverter


@dataclass(frozen=True)
class TransientResult:
    """One switching event.

    Attributes
    ----------
    time_s / vout_v:
        Output waveform samples.
    delay_s:
        50 % propagation delay from the input step at t = 0.
    falling:
        True for a high-to-low output transition.
    """

    time_s: np.ndarray
    vout_v: np.ndarray
    delay_s: float
    falling: bool


def _estimate_timescale(inverter: Inverter, c_load_f: float) -> float:
    """Order-of-magnitude RC estimate used to scope the integration window."""
    vdd = inverter.vdd
    drive = max(inverter.nfet.i_on(vdd), inverter.pfet.i_on(vdd))
    if drive <= 0.0:
        raise ParameterError("device has no drive current")
    return c_load_f * vdd / drive


def switch_event(inverter: Inverter, c_load_f: float, falling: bool,
                 rtol: float = 1e-6, max_windows: int = 12
                 ) -> TransientResult:
    """Integrate one output transition after an ideal input step.

    Parameters
    ----------
    inverter:
        The driving gate.
    c_load_f:
        Lumped load capacitance at the output [F].
    falling:
        True: input steps 0 -> V_dd, output falls from V_dd.
        False: input steps V_dd -> 0, output rises from 0.
    max_windows:
        The integration window starts at ~20 RC estimates and doubles
        until the 50 % crossing is captured (subthreshold delays can
        exceed naive estimates by orders of magnitude).
    """
    if c_load_f <= 0.0:
        raise ParameterError("load capacitance must be positive")
    vdd = inverter.vdd
    vin = vdd if falling else 0.0
    v0 = vdd if falling else 0.0
    target = 0.5 * vdd

    def rhs(_t: float, y: np.ndarray) -> list[float]:
        vout = float(np.clip(y[0], 0.0, vdd))
        return [inverter.output_current(vin, vout) / c_load_f]

    def crossing(_t: float, y: np.ndarray) -> float:
        return y[0] - target

    crossing.terminal = True
    crossing.direction = -1.0 if falling else 1.0

    window = 20.0 * _estimate_timescale(inverter, c_load_f)
    for _ in range(max_windows):
        sol = solve_ivp(rhs, (0.0, window), [v0], method="BDF",
                        events=crossing, rtol=rtol, atol=1e-9 * vdd,
                        dense_output=False)
        if not sol.success:
            raise ConvergenceError(f"transient integration failed: {sol.message}")
        if sol.t_events[0].size > 0:
            delay = float(sol.t_events[0][0])
            return TransientResult(time_s=sol.t, vout_v=sol.y[0],
                                   delay_s=delay, falling=falling)
        window *= 4.0
    raise ConvergenceError(
        "output never reached 50% of V_dd; the gate cannot switch this load"
    )


def propagation_delay(inverter: Inverter, c_load_f: float,
                      rtol: float = 1e-6) -> float:
    """Average of the falling and rising 50 % propagation delays
    [s] driving ``c_load_f`` [f]."""
    t_hl = switch_event(inverter, c_load_f, falling=True, rtol=rtol).delay_s
    t_lh = switch_event(inverter, c_load_f, falling=False, rtol=rtol).delay_s
    return 0.5 * (t_hl + t_lh)
