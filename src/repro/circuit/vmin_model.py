"""Closed-form minimum-energy voltage (refs [17][18], Lambert-W form).

For a logic block of depth ``N`` with per-gate activity ``alpha``
operated in subthreshold, energy per cycle is

``E(V) = N C V^2 (alpha + K e^{-V/(m v_T)})``,   ``K = N k_d``

because ``I_leak/I_on = e^{-V/(m v_T)}`` when both are measured on the
same exponential (Eq. 1) and the cycle time is the critical path
``N t_p``.  Setting ``dE/dV = 0`` with ``w = V/(m v_T)`` gives

``(w - 2) e^{-(w - 2)} = (2 alpha / K) e^{-2}``

whose energy-minimising root is

``w = 2 - W_{-1}( -(2 alpha / K) e^{-2} )``

with the lower Lambert-W branch.  This is the Calhoun/Zhai closed form
the paper leans on when it writes ``V_min = K_Vmin S_S``: since
``m v_T = S_S / ln 10``, the expression *is* a structure-dependent
multiple of S_S, independent of everything else — the key step behind
Eqs. 6 and 8.

The module provides the closed form, the implied ``K_Vmin``, and a
validation helper against the numerical sweep in
:mod:`repro.circuit.energy`.
"""

from __future__ import annotations

import math

from scipy.special import lambertw

from ..constants import LN10
from ..errors import ModelDomainError, ParameterError


def vmin_closed_form(ss_v_per_dec: float, n_stages: int = 30,
                     activity: float = 0.1, k_d: float = 0.69) -> float:
    """Closed-form V_min [V] for a chain of ``n_stages`` at
    ``activity``, given the subthreshold swing ``ss_v_per_dec``
    [v/dec].

    Raises
    ------
    ModelDomainError
        When the operating point has no interior minimum (activity so
        high that dynamic energy dominates at every supply — V_min
        collapses to the functionality floor).

    >>> 0.15 < vmin_closed_form(0.080) < 0.40
    True
    """
    if ss_v_per_dec <= 0.0:
        raise ParameterError("S_S must be positive")
    if n_stages < 1:
        raise ParameterError("need at least one stage")
    if not 0.0 < activity <= 1.0:
        raise ParameterError("activity must be in (0, 1]")
    if k_d <= 0.0:
        raise ParameterError("k_d must be positive")
    m_vt = ss_v_per_dec / LN10
    k_leak = n_stages * k_d
    argument = -(2.0 * activity / k_leak) * math.exp(-2.0)
    if argument <= -1.0 / math.e:
        raise ModelDomainError(
            "no interior V_min: leakage-to-activity ratio too small "
            f"(argument {argument:.4f} <= -1/e)"
        )
    w_branch = lambertw(argument, k=-1)
    if abs(w_branch.imag) > 1e-9:
        raise ModelDomainError("Lambert-W returned a complex root")
    w = 2.0 - w_branch.real
    return m_vt * w


def k_vmin(ss_v_per_dec: float, n_stages: int = 30, activity: float = 0.1,
           k_d: float = 0.69) -> float:
    """The paper's structure constant ``K_Vmin = V_min / S_S``
    (``ss_v_per_dec`` [v/dec] cancels out).

    A pure function of the circuit (N, alpha, k_d) — this is the claim
    behind ``V_dd = V_min = K_Vmin * S_S`` in Section 2.3.3.
    """
    return vmin_closed_form(ss_v_per_dec, n_stages, activity,
                            k_d) / ss_v_per_dec


def energy_at_vmin_factor(ss_v_per_dec: float, c_load_f: float,
                          n_stages: int = 30, activity: float = 0.1,
                          k_d: float = 0.69) -> float:
    """Eq. 8 energy per cycle at the closed-form V_min [J].

    ``E = N C V_min^2 (alpha + K e^{-V_min/(m v_T)})`` for swing
    ``ss_v_per_dec`` [v/dec] and load ``c_load_f`` [f] — proportional
    to ``C_L S_S^2`` with a structure-only prefactor, which is the
    paper's Eq. 8(a)+(b).
    """
    if c_load_f <= 0.0:
        raise ParameterError("load capacitance must be positive")
    vmin = vmin_closed_form(ss_v_per_dec, n_stages, activity, k_d)
    m_vt = ss_v_per_dec / LN10
    leak_term = n_stages * k_d * math.exp(-vmin / m_vt)
    return n_stages * c_load_f * vmin ** 2 * (activity + leak_term)


def validate_against_simulation(inverter, n_stages: int = 30,
                                activity: float = 0.1,
                                k_d: float = 0.69) -> dict[str, float]:
    """Compare the closed form with the numerical V_min sweep.

    Returns a dict with both V_min values and their relative error.
    The closed form assumes conduction stays on the pure subthreshold
    exponential all the way up to V_min; in the full model the optimum
    sits close to V_th, where moderate-inversion drive exceeds the
    extrapolated exponential, so the closed form systematically
    *over-estimates* V_min (by up to ~2x for the devices here).  What
    survives exactly is the structure: ``V_min / S_S`` is a constant of
    the circuit (see :func:`k_vmin`) — which is the property the paper
    actually uses.
    """
    from .energy import find_vmin

    simulated = find_vmin(inverter, n_stages=n_stages, activity=activity,
                          k_d=k_d).vmin
    analytic = vmin_closed_form(inverter.nfet.ss_v_per_dec, n_stages,
                                activity, k_d)
    return {
        "vmin_simulated": simulated,
        "vmin_closed_form": analytic,
        "relative_error": abs(analytic - simulated) / simulated,
    }
