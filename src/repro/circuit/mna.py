"""Nodal analysis: DC and transient solution of a :class:`Circuit`.

A compact SPICE-core equivalent:

* **DC** — damped Newton on the nodal current-balance equations, with
  automatic ``gmin`` stepping when the raw system is ill-conditioned
  (deep-subthreshold circuits have node conductances spanning many
  decades).  Multiple stable states (e.g. an SRAM cell) are reached by
  seeding Newton with different initial guesses.
* **Transient** — backward Euler with Newton at each step and simple
  step-size control (halve on non-convergence, grow back on success).
  Backward Euler's strong damping is exactly what stiff subthreshold
  switching needs; accuracy is step-controlled by a local-change bound.

The Jacobian is assembled by per-element finite differences, which for
the handful-of-nodes circuits in this study is both robust and fast.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConvergenceError, ParameterError
from .netlist import Circuit, GROUND

#: Perturbation for the finite-difference Jacobian [V].
_FD_STEP = 1e-7
#: Conductance floor added from every node to ground during gmin
#: stepping [S]; relaxed geometrically to zero.
_GMIN_START = 1e-6


@dataclass(frozen=True)
class DCResult:
    """A DC operating point.

    Attributes
    ----------
    voltages:
        node name -> voltage [V] (sources and ground included).
    iterations:
        Newton iterations used (summed over gmin steps).
    """

    voltages: dict[str, float]
    iterations: int

    def __getitem__(self, node: str) -> float:
        return self.voltages[node]


@dataclass(frozen=True)
class TransientResult:
    """A transient waveform set.

    Attributes
    ----------
    time_s:
        Time samples.
    voltages:
        node name -> waveform array aligned with ``time_s``.
    """

    time_s: np.ndarray
    voltages: dict[str, np.ndarray]

    def at(self, node: str, time_s: float) -> float:
        """Linearly interpolated node voltage [V] at ``time_s`` [s]."""
        return float(np.interp(time_s, self.time_s, self.voltages[node]))

    def crossing_time(self, node: str, level_v: float,
                      rising: bool | None = None) -> float:
        """First time the node crosses ``level_v`` [V], in [s].

        A waveform that starts exactly at the level and departs in the
        requested direction crosses at t = 0 (symmetric with the
        falling case, which the interpolation already resolved to 0).
        """
        wave = self.voltages[node]
        if wave[0] == level_v:
            off_level = np.flatnonzero(wave != level_v)
            if off_level.size:
                going_up = bool(wave[off_level[0]] > level_v)
                if rising is None or rising is going_up:
                    return 0.0
        above = wave >= level_v
        for i in range(1, wave.size):
            if above[i] == above[i - 1]:
                continue
            if rising is True and not above[i]:
                continue
            if rising is False and above[i]:
                continue
            t0, t1 = self.time_s[i - 1], self.time_s[i]
            v0, v1 = wave[i - 1], wave[i]
            return float(t0 + (level_v - v0) * (t1 - t0) / (v1 - v0))
        raise ParameterError(f"node {node!r} never crosses {level_v} V")


class NodalSolver:
    """DC / transient solver bound to one circuit."""

    def __init__(self, circuit: Circuit) -> None:
        circuit.validate()
        self.circuit = circuit
        self.unknowns = circuit.unknown_nodes()
        self.index = {n: i for i, n in enumerate(self.unknowns)}

    # -- assembly ----------------------------------------------------------------

    def _node_voltages(self, x: np.ndarray, time_s: float) -> dict[str, float]:
        volts = {GROUND: 0.0}
        for s in self.circuit.sources:
            volts[s.node] = s.value(time_s)
        for name, i in self.index.items():
            volts[name] = float(x[i])
        return volts

    def _residual(self, x: np.ndarray, time_s: float, gmin: float,
                  prev: dict[str, float] | None, dt: float | None
                  ) -> np.ndarray:
        """KCL residual at each unknown node (currents leaving = +)."""
        volts = self._node_voltages(x, time_s)
        f = np.zeros(len(self.unknowns))

        def add(node: str, current: float) -> None:
            i = self.index.get(node)
            if i is not None:
                f[i] += current

        for r in self.circuit.resistors:
            i_ab = (volts[r.node_a] - volts[r.node_b]) / r.ohms
            add(r.node_a, i_ab)
            add(r.node_b, -i_ab)
        for t in self.circuit.transistors:
            i_drain = t.current_into_drain(volts[t.drain], volts[t.gate],
                                           volts[t.source])
            # Current into the drain leaves the drain node's KCL surplus
            # and enters the source node.
            add(t.drain, i_drain)
            add(t.source, -i_drain)
        if dt is not None and prev is not None:
            # Backward-Euler companion model for each capacitor.
            for c in self.circuit.capacitors:
                dv_now = volts[c.node_a] - volts[c.node_b]
                dv_prev = prev[c.node_a] - prev[c.node_b]
                i_ab = c.farads * (dv_now - dv_prev) / dt
                add(c.node_a, i_ab)
                add(c.node_b, -i_ab)
        if gmin > 0.0:
            for name, i in self.index.items():
                f[i] += gmin * volts[name]
        return f

    def _jacobian(self, x: np.ndarray, time_s: float, gmin: float,
                  prev: dict[str, float] | None, dt: float | None
                  ) -> np.ndarray:
        n = len(self.unknowns)
        jac = np.zeros((n, n))
        base = self._residual(x, time_s, gmin, prev, dt)
        for j in range(n):
            bumped = x.copy()
            bumped[j] += _FD_STEP
            jac[:, j] = (self._residual(bumped, time_s, gmin, prev, dt)
                         - base) / _FD_STEP
        return jac

    # -- Newton -------------------------------------------------------------------

    def _newton(self, x0: np.ndarray, time_s: float, gmin: float,
                prev: dict[str, float] | None, dt: float | None,
                tol_v: float = 1e-9, max_iter: int = 80
                ) -> tuple[np.ndarray, int]:
        x = x0.copy()
        rail = self._rail_estimate(time_s)
        for iteration in range(1, max_iter + 1):
            residual = self._residual(x, time_s, gmin, prev, dt)
            jac = self._jacobian(x, time_s, gmin, prev, dt)
            try:
                update = np.linalg.solve(jac, -residual)
            except np.linalg.LinAlgError:
                raise ConvergenceError("singular nodal Jacobian",
                                       iterations=iteration)
            # Damp to a fraction of the rail per step.
            biggest = float(np.max(np.abs(update)))
            scale = min(1.0, 0.25 * max(rail, 0.1) / max(biggest, 1e-30))
            x = x + scale * update
            x = np.clip(x, -0.5, rail + 0.5)
            if biggest * scale < tol_v:
                return x, iteration
        raise ConvergenceError("nodal Newton did not converge",
                               iterations=max_iter)

    def _rail_estimate(self, time_s: float) -> float:
        values = [abs(s.value(time_s)) for s in self.circuit.sources]
        return max(values) if values else 1.0

    # -- public API ------------------------------------------------------------------

    def solve_dc(self, initial: dict[str, float] | None = None,
                 time_s: float = 0.0) -> DCResult:
        """DC operating point; ``initial`` seeds Newton (SRAM states).

        ``time_s`` [s] is the waveform evaluation time of the sources.
        A seeded solve first attempts direct Newton at ``gmin = 0`` so
        that a bistable circuit converges to the basin the seed lies in;
        the gmin continuation (which would steer every seed to the same
        continuation solution) is only a fallback for hard cold starts.
        """
        rail = self._rail_estimate(time_s)
        x0 = np.full(len(self.unknowns), 0.5 * rail)
        if initial:
            for node, value in initial.items():
                if node in self.index:
                    x0[self.index[node]] = value
        try:
            x, used = self._newton(x0.copy(), time_s, gmin=0.0,
                                   prev=None, dt=None)
            return DCResult(voltages=self._node_voltages(x, time_s),
                            iterations=used)
        except ConvergenceError:
            pass
        total_iter = 0
        gmin = _GMIN_START
        x = x0.copy()
        while True:
            x, used = self._newton(x, time_s, gmin, prev=None, dt=None)
            total_iter += used
            if gmin == 0:
                break
            gmin = 0.0 if gmin < 1e-12 else gmin * 1e-3
        return DCResult(voltages=self._node_voltages(x, time_s),
                        iterations=total_iter)

    def solve_transient(self, t_stop_s: float, dt_s: float,
                        initial: dict[str, float] | None = None,
                        use_initial_conditions: bool = False,
                        dt_min_factor: float = 1e-6,
                        max_change_v: float | None = None
                        ) -> TransientResult:
        """Backward-Euler transient.

        Parameters
        ----------
        t_stop_s / dt_s:
            Horizon and initial step [s].  The step halves on Newton
            failure (down to ``dt_s * dt_min_factor``) and recovers by
            1.5x on success, capped at the initial ``dt_s``.
        initial:
            Node -> voltage values.  By default they seed the starting
            DC solve; with ``use_initial_conditions`` they *are* the
            t = 0 state (SPICE's UIC), which is how one starts an RC
            charging experiment or kicks a ring oscillator.
        max_change_v:
            Optional accuracy bound [v]: a step whose largest node
            change exceeds this is retried at half the step.
        """
        if t_stop_s <= 0.0 or dt_s <= 0.0:
            raise ParameterError("t_stop_s and dt_s must be positive")
        if use_initial_conditions:
            x0 = np.zeros(len(self.unknowns))
            if initial:
                for node, value in initial.items():
                    if node in self.index:
                        x0[self.index[node]] = value
            start_voltages = self._node_voltages(x0, 0.0)
        else:
            start_voltages = self.solve_dc(initial=initial,
                                           time_s=0.0).voltages
        times = [0.0]
        waves = {n: [start_voltages[n]] for n in start_voltages}

        prev = dict(start_voltages)
        x = np.array([prev[n] for n in self.unknowns])
        t = 0.0
        step = dt_s
        min_step = dt_s * dt_min_factor
        while t < t_stop_s - 1e-18:
            step = min(step, t_stop_s - t)
            try:
                x_new, _ = self._newton(x.copy(), t + step, gmin=0.0,
                                        prev=prev, dt=step)
            except ConvergenceError:
                if step <= min_step:
                    raise
                step *= 0.5
                continue
            if max_change_v is not None and step > min_step:
                change = float(np.max(np.abs(
                    x_new - np.array([prev[n] for n in self.unknowns]))))
                if change > max_change_v:
                    step *= 0.5
                    continue
            t += step
            x = x_new
            prev = self._node_voltages(x, t)
            times.append(t)
            for node, value in prev.items():
                waves[node].append(value)
            step = min(step * 1.5, dt_s)
        return TransientResult(
            time_s=np.array(times),
            voltages={n: np.array(v) for n, v in waves.items()},
        )
