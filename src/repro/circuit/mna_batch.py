"""Batched nodal analysis: compiled DC and transient over lanes.

The scalar :class:`~repro.circuit.mna.NodalSolver` re-walks the
netlist per residual and finite-differences the Jacobian one node at a
time — fine for one inverter, hopeless for a stimulus sweep times a
(ΔV_th,n, ΔV_th,p) corner grid on an SRAM column.  This engine solves
the same equations over a trailing **lane** axis:

* the netlist is lowered once by :func:`repro.circuit.compile.compile_circuit`
  into index arrays and constant linear stamps;
* device currents evaluate per *group* (all transistors sharing one
  model) through the array-native ``MOSFET.ids(vth_shift_v=...)``
  hook, so a variation corner is data, not a rebuilt circuit;
* residuals and Jacobian partials scatter-add into dense per-lane
  systems (``np.add.at``), solved with one stacked
  ``xp.linalg.solve``;
* Newton runs with active-lane compression in the
  :mod:`repro.numerics` style: an index array of unconverged lanes, a
  bounded ``for`` sweep loop, and ``circuit.mna.*`` perf counters.

Batch semantics: ``stimulus`` values, variation shifts and initial
seeds broadcast to a common batch shape; results carry that shape per
node.  ``solver="sequential"`` routes every lane through the scalar
:class:`NodalSolver` on a per-lane rebuilt circuit (shifted devices
via ``with_vth_offset``) — the correctness oracle the equivalence
tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np
import numpy.typing as npt

from .. import perf
from ..device.mosfet import Polarity
from ..errors import ConvergenceError, ParameterError
from ..numerics.backend import array_namespace, flatnonzero
from .batch import validate_solver
from .compile import CompiledCircuit, TransistorGroup, compile_circuit
from .mna import NodalSolver, _FD_STEP, _GMIN_START
from .netlist import Circuit

__all__ = ["BatchDCResult", "BatchTransientResult", "solve_dc_batch",
           "solve_transient_batch"]

FloatArray = npt.NDArray[np.float64]

#: A stimulus entry: a constant (scalar or batch-shaped array) or a
#: waveform callable mapping time [s] to a constant of either kind.
Stimulus = Mapping[str, object]

#: gmin continuation ladder of the scalar solver's fallback phase,
#: reproduced rung for rung so the sequential oracle stays bitwise
#: comparable: 1e-6 relaxed by 1e-3 until < 1e-12, then released.
_GMIN_LADDER: tuple[float, ...] = (_GMIN_START, 1e-9, 1e-12, 1e-15, 0.0)


# ---------------------------------------------------------------------------
# results


@dataclass(frozen=True)
class BatchDCResult:
    """A batch of DC operating points.

    Attributes
    ----------
    batch_shape:
        The broadcast stimulus/corner shape; every array below has it.
    voltages:
        node name -> voltages [V], shaped ``batch_shape``.
    source_currents_a:
        source name -> current [A] the source injects into the
        circuit, shaped ``batch_shape`` (supply leakage reads
        straight off the rail source).
    iterations:
        Newton sweeps executed (batch) or summed scalar iterations
        (sequential).
    """

    batch_shape: tuple[int, ...]
    voltages: dict[str, FloatArray]
    source_currents_a: dict[str, FloatArray]
    iterations: int

    def __getitem__(self, node: str) -> FloatArray:
        return self.voltages[node]


@dataclass(frozen=True)
class BatchTransientResult:
    """Batched transient waveforms on one shared time grid.

    Attributes
    ----------
    time_s:
        Accepted time samples [s], shape ``(t,)`` — shared across
        lanes (the step controller is global, so every lane sees the
        same grid).
    voltages:
        node name -> waveforms [V], shape ``(t,) + batch_shape``.
    """

    time_s: FloatArray
    voltages: dict[str, FloatArray]
    batch_shape: tuple[int, ...]

    def at(self, node: str, time_s: float) -> FloatArray:
        """Linearly interpolated node voltages at ``time_s`` [s],
        shaped ``batch_shape`` (clamped to the grid ends)."""
        wave = self.voltages[node]
        t = self.time_s
        if time_s <= t[0]:
            return wave[0]
        if time_s >= t[-1]:
            return wave[-1]
        i = int(np.searchsorted(t, time_s))
        w = (time_s - t[i - 1]) / (t[i] - t[i - 1])
        return (1.0 - w) * wave[i - 1] + w * wave[i]

    def crossing_times(self, node: str, level_v: float,
                       rising: bool | None = None) -> FloatArray:
        """First time each lane crosses ``level_v`` [V], in [s].

        Vectorised analogue of
        :meth:`repro.circuit.mna.TransientResult.crossing_time` with
        identical per-lane semantics (including a waveform that starts
        exactly at the level and departs in the requested direction
        crossing at t = 0) — except that lanes which never cross
        report ``nan`` instead of raising, so a batched binary search
        can keep probing the other lanes.
        """
        shape = self.batch_shape
        lanes = int(np.prod(shape)) if shape else 1
        wave = self.voltages[node].reshape(self.time_s.size, lanes)
        t = self.time_s
        above = wave >= level_v
        trans = above[1:] != above[:-1]
        if rising is True:
            valid = trans & above[1:]
        elif rising is False:
            valid = trans & ~above[1:]
        else:
            valid = trans
        found = valid.any(axis=0)
        first = np.argmax(valid, axis=0)
        cols = np.arange(lanes)
        v0 = wave[first, cols]
        v1 = wave[first + 1, cols]
        t0 = t[first]
        t1 = t[first + 1]
        denom = np.where(v1 == v0, 1.0, v1 - v0)
        out = np.where(found, t0 + (level_v - v0) * (t1 - t0) / denom,
                       np.nan)
        # A lane that starts exactly on the level "crosses" at t = 0
        # if its first departure goes the requested way.
        starts_on = wave[0] == level_v
        if bool(np.any(starts_on)):
            off_level = wave != level_v
            departs = off_level.any(axis=0)
            fi = np.argmax(off_level, axis=0)
            going_up = wave[fi, cols] > level_v
            ok = starts_on & departs
            if rising is True:
                ok &= going_up
            elif rising is False:
                ok &= ~going_up
            out = np.where(ok, 0.0, out)
        return out.reshape(shape)


# ---------------------------------------------------------------------------
# broadcasting and stimulus plumbing


def _value_shape(value: object, time_s: float) -> tuple[int, ...]:
    if callable(value):
        return np.shape(value(time_s))
    return np.shape(value)


def _batch_shape(stimulus: Stimulus | None, dvth_n_v: object,
                 dvth_p_v: object, initial: Mapping[str, object] | None,
                 time_s: float) -> tuple[int, ...]:
    shapes = [np.shape(dvth_n_v), np.shape(dvth_p_v)]
    for value in (stimulus or {}).values():
        shapes.append(_value_shape(value, time_s))
    for value in (initial or {}).items():
        shapes.append(np.shape(value[1]))
    return tuple(np.broadcast_shapes(*shapes))


def _as_lanes(value: object, batch_shape: tuple[int, ...]) -> FloatArray:
    lanes = int(np.prod(batch_shape)) if batch_shape else 1
    arr = np.asarray(value, dtype=float)
    return np.ascontiguousarray(
        np.broadcast_to(arr, batch_shape).reshape(lanes))


class _FixedPlan:
    """Per-call plan for the fixed-node voltage matrix.

    Resolves the compiled source waveforms plus the per-lane stimulus
    overrides into a dense ``(n_fixed, lanes)`` matrix at any time.
    """

    def __init__(self, compiled: CompiledCircuit, stimulus: Stimulus | None,
                 batch_shape: tuple[int, ...]) -> None:
        self.compiled = compiled
        self.batch_shape = batch_shape
        self.lanes = int(np.prod(batch_shape)) if batch_shape else 1
        self.overrides: list[tuple[int, object]] = []
        for key, value in sorted((stimulus or {}).items()):
            pos = compiled.source_position.get(key)
            if pos is None:
                raise ParameterError(
                    f"stimulus key {key!r} names no source (by name or "
                    f"node) in the circuit")
            self.overrides.append((pos, value))

    def at(self, time_s: float) -> FloatArray:
        base = self.compiled.fixed_base(time_s)
        fixed = np.repeat(base[:, None], self.lanes, axis=1)
        for pos, value in self.overrides:
            resolved = value(time_s) if callable(value) else value
            fixed[pos] = _as_lanes(resolved, self.batch_shape)
        return fixed

    def lane_waveform(self, pos: int, lane: int
                      ) -> Callable[[float], float] | None:
        """A scalar waveform for one lane of one override (oracle path)."""
        for p, value in self.overrides:
            if p == pos:
                if callable(value):
                    return lambda t, f=value: float(
                        _as_lanes(f(t), self.batch_shape)[lane])
                return lambda _t, v=float(_as_lanes(
                    value, self.batch_shape)[lane]): v
        return None


# ---------------------------------------------------------------------------
# assembly


def _group_currents(group: TransistorGroup, vd: FloatArray, vg: FloatArray,
                    vs: FloatArray, shift: object) -> FloatArray:
    """Drain-terminal currents [A] of a device group, vectorised.

    Mirrors :meth:`repro.circuit.netlist.Transistor.current_into_drain`
    exactly: the symmetric model always sees the source-referenced
    magnitudes of the conducting orientation, and the sign flips when
    drain and source swap roles.
    """
    lo = np.minimum(vd, vs)
    hi = np.maximum(vd, vs)
    if group.polarity is Polarity.NFET:
        mag = group.device.ids(vg - lo, hi - lo, shift)
        return np.where(vd >= vs, mag, -mag)
    mag = group.device.ids(hi - vg, hi - lo, shift)
    return np.where(vd <= vs, -mag, mag)


def _group_shift(group: TransistorGroup, shift_n: object, shift_p: object
                 ) -> object:
    return shift_n if group.polarity is Polarity.NFET else shift_p


def _residual_full(compiled: CompiledCircuit, x: FloatArray,
                   fixed: FloatArray, shift_n: object, shift_p: object,
                   gmin: float, prev_full: FloatArray | None,
                   inv_dt: float | None, xp: Any) -> FloatArray:
    """KCL residual at every node, shape ``(n_total, lanes)``.

    Rows ``:n_unknown`` must vanish at a solution; fixed-node rows
    read back as the current each source injects.
    """
    n = compiled.n_unknown
    v = xp.concatenate([x, fixed], axis=0)
    f = compiled.g_linear @ v
    if inv_dt is not None and prev_full is not None:
        f = f + (compiled.c_linear @ (v - prev_full)) * inv_dt
    lanes = x.shape[1]
    for grp in compiled.groups:
        i0 = _group_currents(grp, v[grp.drain_full], v[grp.gate_full],
                             v[grp.source_full],
                             _group_shift(grp, shift_n, shift_p))
        np.add.at(f, grp.drain_full, i0)
        np.add.at(f, grp.source_full, -i0)
        perf.bump("circuit.mna.device_evals", grp.size * lanes)
    if gmin > 0.0:
        f[:n] += gmin * x
    return f


def _assemble(compiled: CompiledCircuit, x: FloatArray, fixed: FloatArray,
              shift_n: object, shift_p: object, gmin: float,
              prev_full: FloatArray | None, inv_dt: float | None,
              xp: Any) -> tuple[FloatArray, FloatArray]:
    """Residual rows and stacked Jacobian for the unknown block.

    Returns ``(f, jac)`` with ``f`` shaped ``(n_total, lanes)`` and
    ``jac`` shaped ``(lanes, n, n)``.  Device partials are per-terminal
    finite differences (step :data:`repro.circuit.mna._FD_STEP`), three
    extra group evaluations per sweep instead of one residual sweep
    per node.
    """
    n = compiled.n_unknown
    lanes = x.shape[1]
    v = xp.concatenate([x, fixed], axis=0)
    f = compiled.g_linear @ v
    if inv_dt is not None and prev_full is not None:
        f = f + (compiled.c_linear @ (v - prev_full)) * inv_dt
    jac = xp.zeros((n + 1, n + 1, lanes))
    for grp in compiled.groups:
        shift = _group_shift(grp, shift_n, shift_p)
        vd = v[grp.drain_full]
        vg = v[grp.gate_full]
        vs = v[grp.source_full]
        i0 = _group_currents(grp, vd, vg, vs, shift)
        gd = (_group_currents(grp, vd + _FD_STEP, vg, vs, shift)
              - i0) / _FD_STEP
        gg = (_group_currents(grp, vd, vg + _FD_STEP, vs, shift)
              - i0) / _FD_STEP
        gs = (_group_currents(grp, vd, vg, vs + _FD_STEP, shift)
              - i0) / _FD_STEP
        np.add.at(f, grp.drain_full, i0)
        np.add.at(f, grp.source_full, -i0)
        np.add.at(jac, (grp.drain_jrow, grp.drain_col), gd)
        np.add.at(jac, (grp.drain_jrow, grp.gate_col), gg)
        np.add.at(jac, (grp.drain_jrow, grp.source_col), gs)
        np.add.at(jac, (grp.source_jrow, grp.drain_col), -gd)
        np.add.at(jac, (grp.source_jrow, grp.gate_col), -gg)
        np.add.at(jac, (grp.source_jrow, grp.source_col), -gs)
        perf.bump("circuit.mna.device_evals", 4 * grp.size * lanes)
    stacked = jac[:n, :n].transpose(2, 0, 1)
    stacked += compiled.g_linear[:n, :n]
    if inv_dt is not None:
        stacked += compiled.c_linear[:n, :n] * inv_dt
    if gmin > 0.0:
        f[:n] += gmin * x
        diag = xp.arange(n)
        stacked[:, diag, diag] += gmin
    return f, stacked


# ---------------------------------------------------------------------------
# batched Newton


def _gather_shift(shift: object, idx: Any) -> object:
    if isinstance(shift, np.ndarray):
        return shift[idx]
    return shift


def _newton_batch(compiled: CompiledCircuit, x: FloatArray,
                  fixed: FloatArray, shift_n: object, shift_p: object,
                  gmin: float, prev_full: FloatArray | None,
                  inv_dt: float | None, rail: FloatArray, tol_v: float,
                  max_iter: int, xp: Any
                  ) -> tuple[FloatArray, FloatArray, int]:
    """Damped Newton over lanes with active-set compression.

    Same damping, clipping and step-size convergence test as the
    scalar :meth:`NodalSolver._newton`, applied per lane.  Returns
    ``(x, converged_mask, sweeps)`` — a singular stacked Jacobian
    marks the remaining live lanes unconverged instead of raising, so
    the caller can send them through the gmin ladder.
    """
    n = compiled.n_unknown
    lanes = x.shape[1]
    converged = np.zeros(lanes, dtype=bool)
    idx = xp.arange(lanes)
    sweeps = 0
    for _ in range(max_iter):
        live = int(idx.shape[0])
        if not live:
            break
        sweeps += 1
        perf.bump("circuit.mna.newton_sweeps")
        perf.bump("circuit.mna.total_lanes", lanes)
        perf.bump("circuit.mna.active_lanes", live)
        prev_live = None if prev_full is None else prev_full[:, idx]
        f, jac = _assemble(compiled, x[:, idx], fixed[:, idx],
                           _gather_shift(shift_n, idx),
                           _gather_shift(shift_p, idx),
                           gmin, prev_live, inv_dt, xp)
        try:
            update = xp.linalg.solve(jac, -f[:n].T[:, :, None])[:, :, 0].T
        except np.linalg.LinAlgError:
            break
        biggest = xp.max(xp.abs(update), axis=0)
        rail_live = rail[idx]
        scale = xp.minimum(
            1.0, 0.25 * xp.maximum(rail_live, 0.1)
            / xp.maximum(biggest, 1e-30))
        moved = x[:, idx] + scale * update
        x[:, idx] = xp.clip(moved, -0.5, rail_live + 0.5)
        done = biggest * scale < tol_v
        converged[idx[flatnonzero(xp, done)]] = True
        idx = idx[flatnonzero(xp, ~done)]
    return x, converged, sweeps


def _dc_core(compiled: CompiledCircuit, fixed: FloatArray,
             shift_n: object, shift_p: object, x0: FloatArray,
             tol_v: float, max_iter: int, xp: Any
             ) -> tuple[FloatArray, int]:
    """The scalar solver's two-phase DC strategy, batched.

    Phase 1 is direct Newton at ``gmin = 0`` from the seed (so
    bistable lanes converge to the basin their seed lies in); lanes
    that fail restart from the seed and walk the gmin ladder.
    """
    rail = np.max(np.abs(fixed), axis=0)
    x = x0.copy()
    x, converged, sweeps = _newton_batch(
        compiled, x, fixed, shift_n, shift_p, 0.0, None, None, rail,
        tol_v, max_iter, xp)
    total = sweeps
    bad = flatnonzero(xp, ~converged)
    if int(bad.shape[0]):
        xb = x0[:, bad].copy()
        for gmin in _GMIN_LADDER:
            xb, conv_b, sweeps = _newton_batch(
                compiled, xb, fixed[:, bad],
                _gather_shift(shift_n, bad), _gather_shift(shift_p, bad),
                gmin, None, None, rail[bad], tol_v, max_iter, xp)
            total += sweeps
            if not bool(np.all(conv_b)):
                raise ConvergenceError(
                    f"batched nodal Newton left "
                    f"{int(np.sum(~conv_b))} lane(s) unconverged at "
                    f"gmin={gmin:g}", iterations=total)
        x[:, bad] = xb
    return x, total


# ---------------------------------------------------------------------------
# public API


def solve_dc_batch(circuit: Circuit, *, stimulus: Stimulus | None = None,
                   dvth_n_v: object = 0.0, dvth_p_v: object = 0.0,
                   initial: Mapping[str, object] | None = None,
                   time_s: float = 0.0, tol_v: float = 1e-9,
                   max_iter: int = 80, solver: str = "batch",
                   compiled: CompiledCircuit | None = None,
                   xp: Any = None) -> BatchDCResult:
    """Batched DC operating points of ``circuit``.

    Parameters
    ----------
    stimulus:
        source name (or source node) -> value: a scalar, an array
        (one lane per entry), or a waveform callable of time.  Arrays
        broadcast against the corner shifts to the batch shape.
    dvth_n_v / dvth_p_v:
        Additive V_th variation [v] applied to every NFET / PFET
        (composing with any offset already built into the devices);
        scalars or batch arrays.
    initial:
        node -> seed voltage(s) for Newton (selects the basin of
        bistable circuits, exactly as the scalar solver).
    time_s:
        Waveform evaluation time [s] for sources not overridden.
    tol_v:
        Newton step-size convergence bound [v].
    solver:
        ``"batch"`` (default) or ``"sequential"`` — the per-lane
        scalar-oracle path used by the equivalence tests.
    compiled:
        Optional pre-lowered netlist (skips recompilation in sweeps
        that reuse one topology).
    xp:
        Optional array namespace (numpy if omitted).
    """
    validate_solver(solver)
    compiled = compiled or compile_circuit(circuit)
    batch_shape = _batch_shape(stimulus, dvth_n_v, dvth_p_v, initial,
                               time_s)
    lanes = int(np.prod(batch_shape)) if batch_shape else 1
    plan = _FixedPlan(compiled, stimulus, batch_shape)
    if solver == "sequential":
        return _solve_dc_sequential(circuit, compiled, plan, dvth_n_v,
                                    dvth_p_v, initial, time_s, batch_shape)
    xp = array_namespace(xp=xp)
    perf.bump("circuit.mna.batch_solves")
    perf.bump("circuit.mna.batch_lanes", lanes)
    fixed = plan.at(time_s)
    shift_n = _maybe_lanes(dvth_n_v, batch_shape)
    shift_p = _maybe_lanes(dvth_p_v, batch_shape)
    rail = np.max(np.abs(fixed), axis=0)
    x0 = np.repeat((0.5 * rail)[None, :], compiled.n_unknown, axis=0)
    for node, value in (initial or {}).items():
        if node in compiled.unknowns:
            x0[compiled.unknowns.index(node)] = _as_lanes(value,
                                                          batch_shape)
    x, iterations = _dc_core(compiled, fixed, shift_n, shift_p, x0,
                             tol_v, max_iter, xp)
    f = _residual_full(compiled, x, fixed, shift_n, shift_p, 0.0, None,
                       None, xp)
    return _pack_dc(compiled, x, fixed, f, batch_shape, iterations)


def solve_transient_batch(circuit: Circuit, t_stop_s: float, dt_s: float,
                          *, stimulus: Stimulus | None = None,
                          dvth_n_v: object = 0.0, dvth_p_v: object = 0.0,
                          initial: Mapping[str, object] | None = None,
                          use_initial_conditions: bool = False,
                          dt_min_factor: float = 1e-6,
                          max_change_v: float | None = None,
                          tol_v: float = 1e-9, max_iter: int = 80,
                          solver: str = "batch",
                          compiled: CompiledCircuit | None = None,
                          xp: Any = None) -> BatchTransientResult:
    """Batched backward-Euler transient of ``circuit``.

    Same companion model and step policy as the scalar
    :meth:`NodalSolver.solve_transient` — the step halves when Newton
    fails (down to ``dt_s * dt_min_factor``) or when any node moves
    more than ``max_change_v`` [v], and recovers by 1.5x up to
    ``dt_s`` — except the controller is **global**: all lanes share
    one time grid, and any lane can trigger the halving.  ``t_stop_s``
    and ``dt_s`` are the horizon and initial step [s]; ``dvth_n_v`` /
    ``dvth_p_v`` are per-lane V_th shifts [v]; ``tol_v`` [v] bounds
    the Newton step; ``stimulus``, ``initial`` and ``solver`` behave
    as in :func:`solve_dc_batch` (waveform stimuli may return per-lane
    arrays, which is how a binary search probes many pulse widths in
    one transient).
    """
    validate_solver(solver)
    if t_stop_s <= 0.0 or dt_s <= 0.0:
        raise ParameterError("t_stop_s and dt_s must be positive")
    compiled = compiled or compile_circuit(circuit)
    batch_shape = _batch_shape(stimulus, dvth_n_v, dvth_p_v, initial, 0.0)
    lanes = int(np.prod(batch_shape)) if batch_shape else 1
    plan = _FixedPlan(compiled, stimulus, batch_shape)
    if solver == "sequential":
        return _solve_transient_sequential(
            circuit, compiled, plan, dvth_n_v, dvth_p_v, initial,
            use_initial_conditions, t_stop_s, dt_s, dt_min_factor,
            max_change_v, batch_shape)
    xp = array_namespace(xp=xp)
    perf.bump("circuit.mna.batch_solves")
    perf.bump("circuit.mna.batch_lanes", lanes)
    shift_n = _maybe_lanes(dvth_n_v, batch_shape)
    shift_p = _maybe_lanes(dvth_p_v, batch_shape)
    n = compiled.n_unknown
    if use_initial_conditions:
        x = np.zeros((n, lanes))
        for node, value in (initial or {}).items():
            if node in compiled.unknowns:
                x[compiled.unknowns.index(node)] = _as_lanes(value,
                                                             batch_shape)
    else:
        fixed0 = plan.at(0.0)
        rail0 = np.max(np.abs(fixed0), axis=0)
        x0 = np.repeat((0.5 * rail0)[None, :], n, axis=0)
        for node, value in (initial or {}).items():
            if node in compiled.unknowns:
                x0[compiled.unknowns.index(node)] = _as_lanes(value,
                                                              batch_shape)
        x, _ = _dc_core(compiled, fixed0, shift_n, shift_p, x0, tol_v,
                        max_iter, xp)
    prev_full = np.concatenate([x, plan.at(0.0)], axis=0)
    times = [0.0]
    snapshots = [prev_full.copy()]
    t = 0.0
    step = dt_s
    min_step = dt_s * dt_min_factor
    while t < t_stop_s - 1e-18:
        step = min(step, t_stop_s - t)
        fixed = plan.at(t + step)
        rail = np.max(np.abs(fixed), axis=0)
        x_try, conv, _ = _newton_batch(
            compiled, x.copy(), fixed, shift_n, shift_p, 0.0, prev_full,
            1.0 / step, rail, tol_v, max_iter, xp)
        if not bool(np.all(conv)):
            if step <= min_step:
                raise ConvergenceError(
                    f"batched transient Newton left "
                    f"{int(np.sum(~conv))} lane(s) unconverged at the "
                    f"minimum step", iterations=len(times))
            step *= 0.5
            continue
        if max_change_v is not None and step > min_step:
            change = float(np.max(np.abs(x_try - prev_full[:n])))
            if change > max_change_v:
                step *= 0.5
                continue
        t += step
        x = x_try
        prev_full = np.concatenate([x, fixed], axis=0)
        times.append(t)
        snapshots.append(prev_full.copy())
        step = min(step * 1.5, dt_s)
        perf.bump("circuit.mna.transient_steps")
    stacked = np.stack(snapshots, axis=0)
    names = compiled.node_names
    shape = (len(times),) + batch_shape
    return BatchTransientResult(
        time_s=np.array(times),
        voltages={name: stacked[:, i].reshape(shape)
                  for i, name in enumerate(names)},
        batch_shape=batch_shape,
    )


def _maybe_lanes(value: object, batch_shape: tuple[int, ...]) -> object:
    """Lanes array for a batch-varying shift, plain float otherwise."""
    if np.shape(value) == ():
        return float(value)  # type: ignore[arg-type]
    return _as_lanes(value, batch_shape)


def _pack_dc(compiled: CompiledCircuit, x: FloatArray, fixed: FloatArray,
             f: FloatArray, batch_shape: tuple[int, ...], iterations: int
             ) -> BatchDCResult:
    n = compiled.n_unknown
    voltages: dict[str, FloatArray] = {}
    for i, name in enumerate(compiled.unknowns):
        voltages[name] = x[i].reshape(batch_shape).copy()
    for j, name in enumerate(compiled.fixed):
        voltages[name] = fixed[j].reshape(batch_shape).copy()
    currents = {}
    for pos, key in enumerate(compiled.source_names):
        if key is not None:
            currents[key] = f[n + pos].reshape(batch_shape).copy()
    return BatchDCResult(batch_shape=batch_shape, voltages=voltages,
                         source_currents_a=currents, iterations=iterations)


# ---------------------------------------------------------------------------
# sequential oracle


def _lane_circuit(circuit: Circuit, compiled: CompiledCircuit,
                  plan: _FixedPlan, shift_n: float, shift_p: float,
                  lane: int) -> Circuit:
    """The lane's scalar circuit: overridden sources, shifted devices."""
    lane_c = Circuit()
    for s in circuit.sources:
        pos = compiled.source_position[s.name]
        waveform = plan.lane_waveform(pos, lane) or s.waveform
        lane_c.add_vsource(s.name, s.node, waveform)
    for r in circuit.resistors:
        lane_c.add_resistor(r.name, r.node_a, r.node_b, r.ohms)
    for c in circuit.capacitors:
        lane_c.add_capacitor(c.name, c.node_a, c.node_b, c.farads)
    for tr in circuit.transistors:
        shift = (shift_n if tr.device.polarity is Polarity.NFET
                 else shift_p)
        dev = tr.device
        if shift != 0:
            dev = dev.with_vth_offset(dev.vth_offset_v + shift)
        lane_c.add_mosfet(tr.name, tr.drain, tr.gate, tr.source, dev)
    return lane_c


def _lane_scalar(value: object, batch_shape: tuple[int, ...], lane: int
                 ) -> float:
    return float(_as_lanes(value, batch_shape)[lane])


def _solve_dc_sequential(circuit: Circuit, compiled: CompiledCircuit,
                         plan: _FixedPlan, dvth_n_v: object,
                         dvth_p_v: object,
                         initial: Mapping[str, object] | None,
                         time_s: float, batch_shape: tuple[int, ...]
                         ) -> BatchDCResult:
    lanes = plan.lanes
    names = compiled.node_names
    volts = np.zeros((len(names), lanes))
    currents = np.zeros((len(circuit.sources), lanes))
    iterations = 0
    for lane in range(lanes):
        perf.bump("circuit.mna.sequential_solves")
        lane_c = _lane_circuit(
            circuit, compiled, plan,
            _lane_scalar(dvth_n_v, batch_shape, lane),
            _lane_scalar(dvth_p_v, batch_shape, lane), lane)
        seed = {node: _lane_scalar(value, batch_shape, lane)
                for node, value in (initial or {}).items()}
        result = NodalSolver(lane_c).solve_dc(initial=seed or None,
                                              time_s=time_s)
        iterations += result.iterations
        for i, name in enumerate(names):
            volts[i, lane] = result.voltages[name]
        for k, s in enumerate(circuit.sources):
            currents[k, lane] = _scalar_source_current(lane_c, s.node,
                                                       result.voltages)
    voltages = {name: volts[i].reshape(batch_shape).copy()
                for i, name in enumerate(names)}
    currents_map = {s.name: currents[k].reshape(batch_shape).copy()
                    for k, s in enumerate(circuit.sources)}
    return BatchDCResult(batch_shape=batch_shape, voltages=voltages,
                         source_currents_a=currents_map,
                         iterations=iterations)


def _scalar_source_current(circuit: Circuit, node: str,
                           volts: Mapping[str, float]) -> float:
    """Current [A] the source driving ``node`` injects, from element
    currents at the solved operating point."""
    total = 0.0
    for r in circuit.resistors:
        if node in (r.node_a, r.node_b):
            i_ab = (volts[r.node_a] - volts[r.node_b]) / r.ohms
            total += i_ab if node == r.node_a else -i_ab
    for t in circuit.transistors:
        if node in (t.drain, t.source):
            i_d = t.current_into_drain(volts[t.drain], volts[t.gate],
                                       volts[t.source])
            if node == t.drain:
                total += i_d
            if node == t.source:
                total -= i_d
    return total


def _solve_transient_sequential(circuit: Circuit,
                                compiled: CompiledCircuit,
                                plan: _FixedPlan, dvth_n_v: object,
                                dvth_p_v: object,
                                initial: Mapping[str, object] | None,
                                use_initial_conditions: bool,
                                t_stop_s: float, dt_s: float,
                                dt_min_factor: float,
                                max_change_v: float | None,
                                batch_shape: tuple[int, ...]
                                ) -> BatchTransientResult:
    """Per-lane scalar transients, resampled onto one shared grid.

    The scalar controller adapts its step per lane, so lane grids
    differ; waveforms are linearly interpolated onto a uniform
    ``dt_s`` grid for the batched result shape.  (The batch path keeps
    its own native grid — comparisons interpolate, as the equivalence
    tests do.)
    """
    lanes = plan.lanes
    names = compiled.node_names
    grid = np.arange(0.0, t_stop_s + 0.5 * dt_s, dt_s)
    grid[-1] = min(grid[-1], t_stop_s)
    waves = np.zeros((grid.size, len(names), lanes))
    for lane in range(lanes):
        perf.bump("circuit.mna.sequential_solves")
        lane_c = _lane_circuit(
            circuit, compiled, plan,
            _lane_scalar(dvth_n_v, batch_shape, lane),
            _lane_scalar(dvth_p_v, batch_shape, lane), lane)
        seed = {node: _lane_scalar(value, batch_shape, lane)
                for node, value in (initial or {}).items()}
        result = NodalSolver(lane_c).solve_transient(
            t_stop_s, dt_s, initial=seed or None,
            use_initial_conditions=use_initial_conditions,
            dt_min_factor=dt_min_factor, max_change_v=max_change_v)
        for i, name in enumerate(names):
            waves[:, i, lane] = np.interp(grid, result.time_s,
                                          result.voltages[name])
    shape = (grid.size,) + batch_shape
    return BatchTransientResult(
        time_s=grid,
        voltages={name: waves[:, i].reshape(shape).copy()
                  for i, name in enumerate(names)},
        batch_shape=batch_shape,
    )
