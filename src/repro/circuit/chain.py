"""The 30-stage inverter chain testbench (paper Figs. 6 and 12)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from .delay import K_D_DEFAULT, analytic_delay
from .energy import EnergyBreakdown, VminResult, chain_energy_per_cycle, find_vmin
from .inverter import Inverter
from .transient import propagation_delay


@dataclass(frozen=True)
class InverterChain:
    """A homogeneous chain of identical FO1-loaded inverters.

    Parameters
    ----------
    stage:
        The unit inverter (defines devices and V_dd).
    n_stages:
        Chain length (the paper's figure uses 30).
    activity:
        Switching activity factor alpha (the paper uses 0.1).
    """

    stage: Inverter
    n_stages: int = 30
    activity: float = 0.1

    def __post_init__(self) -> None:
        if self.n_stages < 1:
            raise ParameterError("chain needs at least one stage")
        if not 0.0 <= self.activity <= 1.0:
            raise ParameterError("activity must be in [0, 1]")

    @property
    def vdd(self) -> float:
        """Chain supply voltage [V]."""
        return self.stage.vdd

    def stage_delay(self, transient: bool = False,
                    k_d: float = K_D_DEFAULT) -> float:
        """Per-stage FO1 delay [s]."""
        c_load = self.stage.load_capacitance(fanout=1)
        if transient:
            return propagation_delay(self.stage, c_load)
        return analytic_delay(self.stage, c_load, k_d)

    def critical_path(self, transient: bool = False,
                      k_d: float = K_D_DEFAULT) -> float:
        """End-to-end chain delay ``N t_p`` [s]."""
        return self.n_stages * self.stage_delay(transient, k_d)

    def energy_per_cycle(self, transient: bool = False,
                         k_d: float = K_D_DEFAULT) -> EnergyBreakdown:
        """Energy per cycle at the current V_dd."""
        return chain_energy_per_cycle(self.stage, self.n_stages,
                                      self.activity, transient=transient,
                                      k_d=k_d)

    def minimum_energy_point(self, transient: bool = False,
                             vdd_lo: float = 0.08, vdd_hi: float = 0.70,
                             k_d: float = K_D_DEFAULT,
                             solver: str = "batch") -> VminResult:
        """V_min and the energy there (the Fig. 6/12 measurement)."""
        return find_vmin(self.stage, self.n_stages, self.activity,
                         vdd_lo=vdd_lo, vdd_hi=vdd_hi,
                         transient=transient, k_d=k_d, solver=solver)

    def at_vdd(self, vdd: float) -> "InverterChain":
        """Copy of this chain re-biased to a different supply."""
        return InverterChain(stage=self.stage.with_vdd(vdd),
                             n_stages=self.n_stages, activity=self.activity)
