"""Gate delay: the paper's analytic Eq. 4/5 and the simulated FO1 delay.

``t_p = k_d C_L V_dd / I_on`` (Eq. 4) with the fitting parameter
``k_d``; the "simulated" delay of Figs. 5 and 11 is reproduced by the
transient engine in :mod:`repro.circuit.transient` with an FO1 load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import perf
from ..errors import ParameterError
from .inverter import Inverter
from .transient import propagation_delay

#: Default delay fitting parameter (ln 2 for a single-pole RC stage).
K_D_DEFAULT: float = 0.69


@dataclass(frozen=True)
class DelayResult:
    """FO1 delay of an inverter at one supply point.

    Attributes
    ----------
    vdd:
        Supply voltage [V].
    c_load_f:
        The FO1 load used [F].
    analytic_s:
        ``k_d C_L V_dd / I_on`` estimate [s].
    transient_s:
        50 %-crossing transient delay [s]; ``None`` when only the
        analytic value was requested.
    """

    vdd: float
    c_load_f: float
    analytic_s: float
    transient_s: float | None = None

    @property
    def best(self) -> float:
        """Transient delay when available, else the analytic estimate."""
        return self.analytic_s if self.transient_s is None else self.transient_s


def analytic_delay(inverter: Inverter, c_load_f: float | None = None,
                   k_d: float = K_D_DEFAULT) -> float:
    """Eq. 4 delay ``k_d C_L V_dd / I_on`` [s].

    ``c_load_f`` [f] defaults to the FO1 load.  ``I_on`` is the
    average of the NFET and PFET on-currents — the two transitions are
    driven by different devices and the paper's ``k_d`` absorbs the
    residual asymmetry.
    """
    if k_d <= 0.0:
        raise ParameterError("k_d must be positive")
    c_load = inverter.load_capacitance(fanout=1) if c_load_f is None else c_load_f
    if c_load <= 0.0:
        raise ParameterError("load capacitance must be positive")
    vdd = inverter.vdd
    i_on = 0.5 * (inverter.nfet.i_on(vdd) + inverter.pfet.i_on(vdd))
    if i_on <= 0.0:
        raise ParameterError("inverter has no on-current")
    return k_d * c_load * vdd / i_on


def analytic_delay_batch(inverter: Inverter, dvth_n=0.0, dvth_p=0.0,
                         c_load_f: float | None = None,
                         k_d: float = K_D_DEFAULT) -> np.ndarray:
    """Eq. 4 delay for whole arrays of V_th perturbation pairs [s].

    The batched equivalent of ``analytic_delay`` on a V_th-offset copy
    of the inverter per element: the offsets enter the on-currents
    through the ``vth_shift_v`` hook of :meth:`MOSFET.ids`, so the
    whole Monte Carlo population is two vectorised I-V evaluations.
    The load is the *unperturbed* inverter's FO1 load unless
    ``c_load_f`` [f] overrides it (matching ``delay_distribution``).
    """
    if k_d <= 0.0:
        raise ParameterError("k_d must be positive")
    c_load = (inverter.load_capacitance(fanout=1) if c_load_f is None
              else c_load_f)
    if c_load <= 0.0:
        raise ParameterError("load capacitance must be positive")
    dn, dp = np.broadcast_arrays(np.asarray(dvth_n, dtype=float),
                                 np.asarray(dvth_p, dtype=float))
    vdd = inverter.vdd
    i_on = 0.5 * (inverter.nfet.ids(vdd, vdd, vth_shift_v=dn)
                  + inverter.pfet.ids(vdd, vdd, vth_shift_v=dp))
    if np.any(i_on <= 0.0):
        raise ParameterError("inverter has no on-current")
    perf.bump("circuit.delay_batch_points", int(np.asarray(i_on).size))
    return k_d * c_load * vdd / i_on


def fo1_delay(inverter: Inverter, transient: bool = True,
              k_d: float = K_D_DEFAULT, rtol: float = 1e-6) -> DelayResult:
    """FO1 (fanout-of-one) inverter delay, the paper's Fig. 5/11 metric."""
    c_load = inverter.load_capacitance(fanout=1)
    result = DelayResult(
        vdd=inverter.vdd,
        c_load_f=c_load,
        analytic_s=analytic_delay(inverter, c_load, k_d),
    )
    if not transient:
        return result
    t_sim = propagation_delay(inverter, c_load, rtol=rtol)
    return DelayResult(vdd=result.vdd, c_load_f=c_load,
                       analytic_s=result.analytic_s, transient_s=t_sim)
