"""6T SRAM cell noise margins (extension, after the paper's ref [16]).

The paper flags SRAM as the circuit most exposed to S_S degradation:
"noise margins are paramount and a small I_on/I_off in sub-V_th
circuits already places tight limits on the maximum number of
bits/line".  This module models a 6T cell as two cross-coupled
inverters plus NFET access transistors and reports hold and read
butterfly SNM, so the scaling strategies can be compared on the
circuit the paper says matters most.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from ..device.mosfet import MOSFET, Polarity
from ..errors import ParameterError
from .batch import solve_balance_batch, validate_solver
from .inverter import Inverter
from .snm import butterfly_snm


@dataclass(frozen=True)
class SramCell:
    """A symmetric 6T SRAM cell.

    Parameters
    ----------
    pulldown / pullup:
        The inverter pair devices (NFET pull-down, PFET pull-up).
    access:
        The NFET access (pass-gate) transistor.
    vdd:
        Supply voltage [V].
    """

    pulldown: MOSFET
    pullup: MOSFET
    access: MOSFET
    vdd: float

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ParameterError("vdd must be positive")
        if self.pulldown.polarity is not Polarity.NFET:
            raise ParameterError("pulldown must be an NFET")
        if self.pullup.polarity is not Polarity.PFET:
            raise ParameterError("pullup must be a PFET")
        if self.access.polarity is not Polarity.NFET:
            raise ParameterError("access transistor must be an NFET")

    def inverter(self) -> Inverter:
        """The storage inverter (half of the cross-coupled pair)."""
        return Inverter(nfet=self.pulldown, pfet=self.pullup, vdd=self.vdd)

    # -- read-disturbed transfer -----------------------------------------------

    def read_vtc_point(self, vin: float, xtol: float = 1e-9) -> float:
        """Storage-node voltage during a read access, for one input [V].

        During a read the wordline and both bitlines sit at V_dd; the
        access transistor fights the pull-down and lifts the low node.
        Current balance at the output node:

        ``I_N,pulldown(vin, vout) = I_P,pullup(vin, vout)
                                    + I_N,access(node -> bitline)``

        The access device's source is the storage node, drain the
        precharged bitline: ``V_gs = V_dd - V_out``, ``V_ds = V_dd - V_out``.
        """
        if not 0.0 <= vin <= self.vdd:
            raise ParameterError("vin outside supply range")

        def balance(vout: float) -> float:
            i_pd = float(self.pulldown.ids(vin, vout))
            i_pu = float(self.pullup.ids(self.vdd - vin,
                                         max(self.vdd - vout, 0.0)))
            i_ax = float(self.access.ids(max(self.vdd - vout, 0.0),
                                         max(self.vdd - vout, 0.0)))
            return i_pd - i_pu - i_ax

        lo, hi = 0.0, self.vdd
        if balance(lo) >= 0.0:
            return lo
        if balance(hi) <= 0.0:
            return hi
        return float(brentq(balance, lo, hi, xtol=xtol))

    def read_vtc(self, n_points: int = 121, solver: str = "batch",
                 xtol: float = 1e-9) -> tuple[np.ndarray, np.ndarray]:
        """Read-disturbed VTC samples ``(vin, vout)``.

        ``solver="batch"`` (default) solves the three-device current
        balance for the whole input grid in one masked vectorised
        bisection; ``solver="sequential"`` keeps the per-point Brent
        solve as the correctness oracle.
        """
        validate_solver(solver)
        vins = np.linspace(0.0, self.vdd, n_points)
        if solver == "sequential":
            vouts = np.array([self.read_vtc_point(float(v), xtol=xtol)
                              for v in vins])
            return vins, vouts
        vdd = self.vdd

        all_points = np.arange(n_points)

        def balance(vout: np.ndarray, idx: np.ndarray = all_points
                    ) -> np.ndarray:
            v_pu = np.maximum(vdd - vout, 0.0)
            i_pd = self.pulldown.ids(vins[idx], np.maximum(vout, 0.0))
            i_pu = self.pullup.ids(vdd - vins[idx], v_pu)
            i_ax = self.access.ids(v_pu, v_pu)
            return i_pd - i_pu - i_ax

        lo = np.zeros_like(vins)
        hi = np.full_like(vins, vdd)
        f_lo, f_hi = balance(lo), balance(hi)
        at_lo = f_lo >= 0.0
        at_hi = (f_hi <= 0.0) & ~at_lo
        lo = np.where(at_hi, vdd, 0.0)
        hi = np.where(at_lo, 0.0, vdd)
        vouts = solve_balance_batch(balance, lo, hi, xtol=xtol)
        return vins, vouts


def hold_snm(cell: SramCell, n_points: int = 161,
             solver: str = "batch") -> float:
    """Hold (standby) butterfly SNM of the cell [V]."""
    vtc = cell.inverter().vtc(n_points, solver=solver)
    return butterfly_snm(vtc, solver=solver)


def read_snm(cell: SramCell, n_points: int = 161,
             solver: str = "batch") -> float:
    """Read butterfly SNM of the cell [V] (always <= hold SNM)."""
    vtc = cell.read_vtc(n_points, solver=solver)
    return butterfly_snm(vtc, solver=solver)


@dataclass(frozen=True)
class BitlineReadReport:
    """Read feasibility of one bitline configuration.

    The sub-V_th bitline problem (the paper's ref [16]): the accessed
    cell must develop a sense margin against the *aggregate* leakage of
    every unaccessed cell sharing the line, and the margin collapses as
    I_on/I_off shrinks.

    Attributes
    ----------
    n_bits:
        Cells on the bitline.
    i_read_a:
        Access current of the selected cell [A].
    i_leak_total_a:
        Worst-case aggregate leakage of the unselected cells [A].
    margin_ratio:
        ``i_read / i_leak_total`` — must exceed ~2 for reliable sensing.
    t_sense_s:
        Time to develop the sense swing on the bitline capacitance [s].
    """

    n_bits: int
    i_read_a: float
    i_leak_total_a: float
    margin_ratio: float
    t_sense_s: float

    @property
    def readable(self) -> bool:
        """True when the margin supports differential sensing."""
        return self.margin_ratio >= 2.0


def bitline_read(cell: SramCell, n_bits: int,
                 c_bitline_per_cell_f: float = 0.2e-15,
                 sense_swing_v: float = 0.05) -> BitlineReadReport:
    """Analyse a read on a bitline shared by ``n_bits`` cells.

    ``c_bitline_per_cell_f`` [f] is each cell's bitline loading and
    ``sense_swing_v`` [v] the differential swing the sense amplifier
    needs.  Worst case: every unaccessed cell stores the data polarity
    that leaks into the line while the accessed cell discharges it.
    """
    if n_bits < 1:
        raise ParameterError("need at least one cell on the line")
    if c_bitline_per_cell_f <= 0.0:
        raise ParameterError("bitline capacitance must be positive")
    if not 0.0 < sense_swing_v < cell.vdd:
        raise ParameterError("sense swing must be inside the rail")
    i_read = float(cell.access.ids(cell.vdd, cell.vdd / 2.0))
    i_leak = (n_bits - 1) * cell.access.i_off(cell.vdd)
    c_line = (n_bits * c_bitline_per_cell_f
              + cell.access.capacitance.c_drain())
    net = max(i_read - i_leak, 1e-30)
    return BitlineReadReport(
        n_bits=n_bits,
        i_read_a=i_read,
        i_leak_total_a=i_leak,
        margin_ratio=i_read / max(i_leak, 1e-30),
        t_sense_s=c_line * sense_swing_v / net,
    )


def max_bits_per_line(cell: SramCell, margin: float = 2.0,
                      n_max: int = 1 << 14) -> int:
    """Largest bitline population with read margin >= ``margin``.

    The paper: a small I_on/I_off "already places tight limits on the
    maximum number of bits/line" — this is that limit.
    """
    if margin <= 1.0:
        raise ParameterError("margin must exceed 1")
    i_read = float(cell.access.ids(cell.vdd, cell.vdd / 2.0))
    i_off = cell.access.i_off(cell.vdd)
    limit = int(i_read / (margin * i_off)) + 1
    return max(1, min(limit, n_max))
