"""Netlist lowering: compile a :class:`Circuit` to integer index arrays.

The scalar :class:`~repro.circuit.mna.NodalSolver` walks python lists
of elements and a name->index dict on every residual evaluation.  That
is fine for a handful of nodes, but an N-row SRAM column evaluates
thousands of device currents per Newton sweep.  This module lowers the
netlist **once** into flat numpy index arrays so the batched engine
(:mod:`repro.circuit.mna_batch`) can stamp every element of every
batch lane with a few vectorised calls:

* a full-vector node numbering — unknown nodes first (in the exact
  order of :meth:`Circuit.unknown_nodes`), then ground, then source
  nodes — so gathering element terminal voltages is integer indexing;
* dense linear stamp matrices for resistors and capacitors (residual
  contribution is one matmul; their Jacobian block is constant);
* transistors grouped by shared device model, each group carrying
  per-terminal full-vector indices plus residual-row / Jacobian-column
  maps (fixed nodes dump into a discard row/column), so one
  ``device.ids`` call evaluates a whole group across all lanes.

Compilation is **canonical**: elements are processed in name-sorted
order, so two circuits with the same elements added in different
orders lower to bitwise-identical stamps — DC results are invariant
to insertion order (property-tested in ``tests/test_properties_mna.py``).

Memory note: the batched Jacobian is dense, ``(lanes, n, n)`` floats;
at 512 lanes a 16-row column (34 unknowns) costs ~5 MB, a 256-row
column ~1 GB.  Columns beyond ~100 rows should shrink the lane count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np
import numpy.typing as npt

from ..device.mosfet import MOSFET, Polarity
from .netlist import GROUND, Circuit

__all__ = ["CompiledCircuit", "TransistorGroup", "compile_circuit"]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.intp]


@dataclass(frozen=True)
class TransistorGroup:
    """All transistors sharing one device model, as index arrays.

    ``*_full`` index the full voltage vector (terminal gathers, and
    residual rows — the residual is kept full-length so fixed-node
    rows read back as source currents); ``*_jrow`` / ``*_col`` index
    Jacobian rows/columns, with fixed-node terminals mapped to the
    discard row/column ``n_unknown``.
    """

    device: MOSFET
    polarity: Polarity
    names: tuple[str, ...]
    drain_full: IntArray
    gate_full: IntArray
    source_full: IntArray
    drain_jrow: IntArray
    source_jrow: IntArray
    drain_col: IntArray
    gate_col: IntArray
    source_col: IntArray

    @property
    def size(self) -> int:
        """Number of transistor instances in the group."""
        return len(self.names)


@dataclass(frozen=True)
class CompiledCircuit:
    """A :class:`Circuit` lowered to index arrays and stamp matrices.

    Attributes
    ----------
    unknowns:
        Unknown node names; full-vector indices ``0 .. n_unknown-1``.
    fixed:
        Fixed node names (ground first, then source nodes sorted);
        full-vector indices ``n_unknown ..``.
    g_linear:
        ``(n_total, n_total)`` conductance stamps [S]: the resistor
        residual contribution is ``g_linear @ v_full``.
    c_linear:
        ``(n_total, n_total)`` capacitance stamps [F] (backward-Euler
        companion currents are ``c_linear @ (v - v_prev) / dt``).
    groups:
        Transistor groups in canonical (name-sorted, first-occurrence)
        order.
    waveforms:
        Per-fixed-node source waveform, aligned with ``fixed``
        (``None`` for ground).
    source_names:
        Per-fixed-node source name, aligned with ``fixed`` (``None``
        for ground).
    source_position:
        Source name *and* source node -> index into ``fixed``.
    """

    unknowns: tuple[str, ...]
    fixed: tuple[str, ...]
    g_linear: FloatArray
    c_linear: FloatArray
    groups: tuple[TransistorGroup, ...]
    waveforms: tuple[Callable[[float], float] | None, ...]
    source_names: tuple[str | None, ...]
    source_position: Mapping[str, int]

    @property
    def n_unknown(self) -> int:
        """Number of unknown nodes (Newton system size)."""
        return len(self.unknowns)

    @property
    def n_total(self) -> int:
        """Full voltage-vector length (unknown + fixed nodes)."""
        return len(self.unknowns) + len(self.fixed)

    @property
    def node_names(self) -> tuple[str, ...]:
        """All node names in full-vector order."""
        return self.unknowns + self.fixed

    def fixed_base(self, time_s: float) -> FloatArray:
        """Fixed-node voltages [V] from the source waveforms at
        ``time_s`` [s] (ground is 0)."""
        return np.array([0.0 if w is None else float(w(time_s))
                         for w in self.waveforms], dtype=float)


def _full_index(unknowns: list[str], fixed: list[str]) -> dict[str, int]:
    index = {name: i for i, name in enumerate(unknowns)}
    for j, name in enumerate(fixed):
        index[name] = len(unknowns) + j
    return index


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Lower ``circuit`` into a :class:`CompiledCircuit`.

    Validates the topology first (same checks as the scalar solver).
    The lowering is pure — the circuit is not mutated and may keep
    being extended; recompile to pick up new elements.
    """
    circuit.validate()
    unknowns = circuit.unknown_nodes()
    sources = sorted(circuit.sources, key=lambda s: s.name)
    fixed = [GROUND] + sorted({s.node for s in sources})
    index = _full_index(unknowns, fixed)
    n = len(unknowns)
    n_total = len(unknowns) + len(fixed)

    g_linear = np.zeros((n_total, n_total))
    for r in sorted(circuit.resistors, key=lambda e: e.name):
        g = 1.0 / r.ohms
        a, b = index[r.node_a], index[r.node_b]
        g_linear[a, a] += g
        g_linear[a, b] -= g
        g_linear[b, a] -= g
        g_linear[b, b] += g

    c_linear = np.zeros((n_total, n_total))
    for c in sorted(circuit.capacitors, key=lambda e: e.name):
        a, b = index[c.node_a], index[c.node_b]
        c_linear[a, a] += c.farads
        c_linear[a, b] -= c.farads
        c_linear[b, a] -= c.farads
        c_linear[b, b] += c.farads

    # Group transistors by shared device model object.  Devices are
    # immutable and memoised, so array builders naturally share one
    # model across hundreds of instances; grouping in name-sorted
    # first-occurrence order keeps the lowering canonical.
    grouped: dict[int, list] = {}
    order: list[int] = []
    for t in sorted(circuit.transistors, key=lambda e: e.name):
        key = id(t.device)
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(t)

    def jcol(node: str) -> int:
        i = index[node]
        return i if i < n else n

    groups = []
    for key in order:
        members = grouped[key]
        device = members[0].device
        groups.append(TransistorGroup(
            device=device,
            polarity=device.polarity,
            names=tuple(t.name for t in members),
            drain_full=np.array([index[t.drain] for t in members],
                                dtype=np.intp),
            gate_full=np.array([index[t.gate] for t in members],
                               dtype=np.intp),
            source_full=np.array([index[t.source] for t in members],
                                 dtype=np.intp),
            drain_jrow=np.array([jcol(t.drain) for t in members],
                                dtype=np.intp),
            source_jrow=np.array([jcol(t.source) for t in members],
                                 dtype=np.intp),
            drain_col=np.array([jcol(t.drain) for t in members],
                               dtype=np.intp),
            gate_col=np.array([jcol(t.gate) for t in members],
                              dtype=np.intp),
            source_col=np.array([jcol(t.source) for t in members],
                                dtype=np.intp),
        ))

    waveforms: list[Callable[[float], float] | None] = [None] * len(fixed)
    names: list[str | None] = [None] * len(fixed)
    position: dict[str, int] = {}
    for s in sources:
        pos = index[s.node] - n
        waveforms[pos] = s.waveform
        names[pos] = s.name
        position[s.name] = pos
        position[s.node] = pos

    return CompiledCircuit(
        unknowns=tuple(unknowns),
        fixed=tuple(fixed),
        g_linear=g_linear,
        c_linear=c_linear,
        groups=tuple(groups),
        waveforms=tuple(waveforms),
        source_names=tuple(names),
        source_position=position,
    )
