"""Logical-effort path timing in the subthreshold regime.

Sutherland-Sproull logical effort transfers cleanly to sub-V_th
operation because it is built on delay ratios: the unit delay ``tau``
becomes exponentially supply-dependent, but stage efforts and the
optimal sizing rule (equalise ``f = g h`` across stages) are
unchanged.  This module sizes a path of gates for minimum delay and
evaluates it with the library's devices, so examples can answer
questions like "what does the paper's 32nm sub-V_th device deliver on
an adder-class critical path?".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from .delay import K_D_DEFAULT, analytic_delay
from .inverter import Inverter

#: Logical efforts of the standard static gates (inverter = 1).
GATE_EFFORTS: dict[str, float] = {
    "inv": 1.0,
    "nand2": 4.0 / 3.0,
    "nor2": 5.0 / 3.0,
    "nand3": 5.0 / 3.0,
    "nor3": 7.0 / 3.0,
    "aoi21": 2.0,
}

#: Parasitic delay of each gate in units of the inverter parasitic.
GATE_PARASITICS: dict[str, float] = {
    "inv": 1.0,
    "nand2": 2.0,
    "nor2": 2.0,
    "nand3": 3.0,
    "nor3": 3.0,
    "aoi21": 7.0 / 3.0,
}


@dataclass(frozen=True)
class PathTiming:
    """Sized logical-effort path and its delay.

    Attributes
    ----------
    gates:
        Gate types along the path.
    stage_efforts:
        The equalised per-stage effort ``f_hat``.
    relative_sizes:
        Input capacitance of each stage relative to the first.
    delay_s:
        Absolute path delay with the bound technology/supply.
    unit_delay_s:
        The technology ``tau`` (FO1 inverter delay / (1 + p_inv)).
    normalized_delay:
        Path delay in units of ``tau`` (the textbook D value).
    """

    gates: tuple[str, ...]
    stage_efforts: float
    relative_sizes: tuple[float, ...]
    delay_s: float
    unit_delay_s: float
    normalized_delay: float


def path_logical_effort(gates: list[str]) -> float:
    """Product of logical efforts ``G`` along the path."""
    try:
        efforts = [GATE_EFFORTS[g] for g in gates]
    except KeyError as exc:
        known = ", ".join(sorted(GATE_EFFORTS))
        raise ParameterError(
            f"unknown gate {exc.args[0]!r}; known gates: {known}"
        ) from None
    return float(np.prod(efforts))


def path_parasitic(gates: list[str]) -> float:
    """Sum of parasitic delays ``P`` along the path (units of p_inv)."""
    return float(sum(GATE_PARASITICS[g] for g in gates))


def size_path(inverter: Inverter, gates: list[str], fanout: float,
              k_d: float = K_D_DEFAULT) -> PathTiming:
    """Size a gate path for minimum delay and evaluate it.

    Parameters
    ----------
    inverter:
        The technology reference (devices + supply); its FO1 delay
        calibrates the absolute time unit.
    gates:
        Gate types from path input to output.
    fanout:
        Electrical effort ``H`` of the whole path (C_out / C_in).

    The optimal stage effort is ``f_hat = (G * H)^(1/N)``; the
    normalized minimum delay is ``N f_hat + P`` (Sutherland-Sproull),
    scaled here by the technology unit delay.

    >>> # a longer path at equal total effort is slower in absolute terms
    """
    if not gates:
        raise ParameterError("path needs at least one gate")
    if fanout <= 0.0:
        raise ParameterError("path electrical effort must be positive")
    n_stages = len(gates)
    g_total = path_logical_effort(gates)
    f_hat = (g_total * fanout) ** (1.0 / n_stages)

    # Relative input capacitances from the sizing recursion
    # C_{i+1} = C_i * f_hat / g_{i+1}.
    sizes = [1.0]
    for gate in gates[1:]:
        sizes.append(sizes[-1] * f_hat / GATE_EFFORTS[gate])

    # The technology unit: FO1 inverter delay corresponds to effort
    # f = 1 plus parasitic p_inv = 1 -> tau = t_FO1 / 2.
    t_fo1 = analytic_delay(inverter, k_d=k_d)
    tau = 0.5 * t_fo1
    normalized = n_stages * f_hat + path_parasitic(gates)
    return PathTiming(
        gates=tuple(gates),
        stage_efforts=f_hat,
        relative_sizes=tuple(sizes),
        delay_s=normalized * tau,
        unit_delay_s=tau,
        normalized_delay=normalized,
    )


def best_stage_count(inverter: Inverter, total_effort: float,
                     k_d: float = K_D_DEFAULT,
                     max_stages: int = 12) -> tuple[int, float]:
    """Optimal inverter-chain depth for a given total effort.

    Sweeps buffer depths and returns ``(n_stages, delay_s)`` for the
    fastest; the optimum effort per stage lands near the classic
    ``f ~ 3.6`` (e of the continuous approximation, shifted by the
    parasitic).
    """
    if total_effort <= 1.0:
        raise ParameterError("total effort must exceed 1")
    best: tuple[int, float] | None = None
    for n in range(1, max_stages + 1):
        timing = size_path(inverter, ["inv"] * n, total_effort, k_d)
        if best is None or timing.delay_s < best[1]:
            best = (n, timing.delay_s)
    return best
