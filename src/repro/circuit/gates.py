"""Equivalent-inverter reduction of simple static gates (extension).

NAND/NOR delay and leakage in the sub-V_th regime follow from the
inverter analysis once series stacks are reduced to equivalent devices:
``k`` series transistors behave (to first order) like one transistor of
``1/k`` the drive, while parallel transistors add leakage.  This module
provides that standard reduction so examples can explore multi-input
logic without a full netlist simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.mosfet import MOSFET
from ..errors import ParameterError
from .delay import K_D_DEFAULT, analytic_delay
from .inverter import Inverter


@dataclass(frozen=True)
class EquivalentGate:
    """A static CMOS gate reduced to an equivalent inverter.

    Attributes
    ----------
    name:
        Gate label ("nand2", "nor2", ...).
    inverter:
        The equivalent inverter used for delay estimation.
    n_inputs:
        Fan-in of the original gate.
    logical_effort:
        Input-capacitance multiplier relative to an inverter of equal
        drive (standard logical-effort g).
    leakage_inputs:
        Worst-case number of leaking parallel devices.
    """

    name: str
    inverter: Inverter
    n_inputs: int
    logical_effort: float
    leakage_inputs: int

    def delay(self, fanout: int = 1, k_d: float = K_D_DEFAULT) -> float:
        """FO-``fanout`` analytic delay [s], load scaled by logical effort."""
        if fanout < 1:
            raise ParameterError("fanout must be >= 1")
        c_unit = self.inverter.input_capacitance() * self.logical_effort
        c_load = fanout * c_unit + self.inverter.output_capacitance()
        return analytic_delay(self.inverter, c_load, k_d)

    def worst_case_leakage(self) -> float:
        """Worst-case standby leakage [A] (all parallel devices off)."""
        vdd = self.inverter.vdd
        n_leak = self.inverter.nfet.i_off(vdd) * self.leakage_inputs
        p_leak = self.inverter.pfet.i_off(vdd) * self.leakage_inputs
        return max(n_leak, p_leak)


def _series_device(device: MOSFET, k: int) -> MOSFET:
    """Equivalent single device for a ``k``-stack: width divided by k."""
    if k < 1:
        raise ParameterError("stack depth must be >= 1")
    width_um = device.geometry.width_um / k
    return device.with_width_um(width_um)


def nand2(nfet_unit: MOSFET, pfet_unit: MOSFET, vdd: float) -> EquivalentGate:
    """2-input NAND reduced to an equivalent inverter.

    The series NFET stack halves pull-down drive; the parallel PFETs
    keep pull-up drive but double P leakage paths.
    """
    eq = Inverter(nfet=_series_device(nfet_unit, 2), pfet=pfet_unit, vdd=vdd)
    return EquivalentGate(name="nand2", inverter=eq, n_inputs=2,
                          logical_effort=4.0 / 3.0, leakage_inputs=2)


def nor2(nfet_unit: MOSFET, pfet_unit: MOSFET, vdd: float) -> EquivalentGate:
    """2-input NOR reduced to an equivalent inverter."""
    eq = Inverter(nfet=nfet_unit, pfet=_series_device(pfet_unit, 2), vdd=vdd)
    return EquivalentGate(name="nor2", inverter=eq, n_inputs=2,
                          logical_effort=5.0 / 3.0, leakage_inputs=2)
