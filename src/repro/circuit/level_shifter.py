"""Sub-V_th to nominal-rail level shifter (DCVS topology).

Any deployment of the paper's sub-V_th cores must talk to IO and
memory at the nominal rail, and the conventional cross-coupled (DCVS)
level shifter is the canonical interface: two NFETs driven from the
low domain fight a cross-coupled PFET pair tied to the high rail.  It
fails exactly when the sub-V_th input can no longer overpower the
high-rail PFET — making the *minimum convertible input supply* a
figure of merit of the low-voltage device's drive.

The circuit is solved with the library's own netlist/MNA engine; the
search for the minimum working input supply is a bisection over DC
solves from both input states.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..device.mosfet import MOSFET, Polarity
from ..errors import ParameterError
from .mna import NodalSolver
from .netlist import Circuit


@dataclass(frozen=True)
class LevelShifter:
    """A DCVS level shifter between two supply domains.

    Parameters
    ----------
    nfet / pfet:
        The device pair; pull-down NFETs run from the low domain's
        logic levels, the cross-coupled PFETs hang on the high rail.
    vdd_low / vdd_high:
        Input (sub-V_th) and output (nominal) supplies [V].
    nfet_width_um:
        Pull-down sizing; DCVS shifters conventionally upsize the
        NFETs to win the contention.
    """

    nfet: MOSFET
    pfet: MOSFET
    vdd_low: float
    vdd_high: float
    nfet_width_um: float = 4.0

    #: Output-node capacitance used for the settling transient [F].
    NODE_CAP_F: float = 2e-15

    def __post_init__(self) -> None:
        if not 0.0 < self.vdd_low <= self.vdd_high:
            raise ParameterError("need 0 < vdd_low <= vdd_high")
        if self.nfet.polarity is not Polarity.NFET:
            raise ParameterError("nfet argument must be an NFET")
        if self.pfet.polarity is not Polarity.PFET:
            raise ParameterError("pfet argument must be a PFET")
        if self.nfet_width_um <= 0.0:
            raise ParameterError("pull-down width must be positive")

    # -- circuit assembly ---------------------------------------------------

    def _build(self, vin: float) -> Circuit:
        c = Circuit()
        c.add_vsource("vddh", "vddh", self.vdd_high)
        c.add_vsource("vddl", "vddl", self.vdd_low)
        c.add_vsource("vin", "in", vin)
        # Low-domain inverter generates the complement.
        c.add_inverter("lowinv", "in", "inb", "vddl", self.nfet, self.pfet)
        # Output stage: upsized pull-downs, cross-coupled PFETs.
        pd = self.nfet.with_width_um(self.nfet_width_um)
        c.add_mosfet("mn1", "outb", "in", "0", pd)
        c.add_mosfet("mn2", "out", "inb", "0", pd)
        c.add_mosfet("mp1", "outb", "out", "vddh", self.pfet)
        c.add_mosfet("mp2", "out", "outb", "vddh", self.pfet)
        # Node capacitances make the contention dynamics well-posed.
        for node in ("out", "outb", "inb"):
            c.add_capacitor(f"c_{node}", node, "0", self.NODE_CAP_F)
        return c

    # -- analysis ----------------------------------------------------------------

    def output_levels(self, vin: float) -> tuple[float, float]:
        """Settled (out, outb) after an input edge to ``vin`` [V].

        The transient starts from the *opposite* output state — the
        situation right after an input transition — so a correct final
        state demonstrates the pull-downs genuinely win the contention
        (a cross-coupled stage has a stable wrong state whenever the
        input device is too weak; static DC seeding would just pick a
        basin).
        """
        if not 0.0 <= vin <= self.vdd_low:
            raise ParameterError("vin outside the low domain")
        circuit = self._build(vin)
        solver = NodalSolver(circuit)
        high_input = vin > self.vdd_low / 2.0
        start = {"out": 0.0 if high_input else self.vdd_high,
                 "outb": self.vdd_high if high_input else 0.0,
                 "inb": self.vdd_low - vin}
        # Timescale: the pull-down discharging a node cap through the
        # low-domain gate drive (use half-rail drain bias).
        pd = self.nfet.with_width_um(self.nfet_width_um)
        drive = max(float(pd.ids(self.vdd_low, self.vdd_high / 2.0)), 1e-15)
        tau = self.NODE_CAP_F * self.vdd_high / drive
        horizon = 60.0 * tau
        result = solver.solve_transient(
            horizon, horizon / 400.0, initial=start,
            use_initial_conditions=True,
        )
        return (float(result.voltages["out"][-1]),
                float(result.voltages["outb"][-1]))

    def converts_correctly(self, margin: float = 0.10) -> bool:
        """True when both input states produce full-swing outputs.

        ``margin`` is the allowed deviation from the rails as a
        fraction of V_dd,high.
        """
        out_hi, outb_hi = self.output_levels(self.vdd_low)
        out_lo, outb_lo = self.output_levels(0.0)
        rail = self.vdd_high
        return (out_hi > (1.0 - margin) * rail
                and outb_hi < margin * rail
                and out_lo < margin * rail
                and outb_lo > (1.0 - margin) * rail)

    def with_vdd_low(self, vdd_low: float) -> "LevelShifter":
        """Copy at a different input supply."""
        return LevelShifter(nfet=self.nfet, pfet=self.pfet,
                            vdd_low=vdd_low, vdd_high=self.vdd_high,
                            nfet_width_um=self.nfet_width_um)


def min_convertible_vdd(shifter: LevelShifter, lo: float = 0.08,
                        hi: float | None = None, tol: float = 0.005
                        ) -> float:
    """Lowest input supply the shifter still converts from [V].

    Bisection over :meth:`LevelShifter.converts_correctly`.  Raises
    when even ``hi`` fails (undersized pull-downs) — callers should
    then raise ``nfet_width_um``.
    """
    upper = shifter.vdd_low if hi is None else hi
    if not shifter.with_vdd_low(upper).converts_correctly():
        raise ParameterError(
            f"shifter fails even at vdd_low = {upper:.3f} V; "
            "increase nfet_width_um"
        )
    if shifter.with_vdd_low(lo).converts_correctly():
        return lo
    low, high = lo, upper
    while high - low > tol:
        mid = 0.5 * (low + high)
        if shifter.with_vdd_low(mid).converts_correctly():
            high = mid
        else:
            low = mid
    return high
