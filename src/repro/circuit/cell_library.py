"""Standard-cell characterisation (liberty-lite).

A downstream adopter of a technology runs cell characterisation: for
each gate, a table of delay and energy versus output load and supply.
This module produces exactly that for the INV/NAND2/NOR2 set built
from a design's device pair — the data from which synthesis-style
timing/power estimates are made — and renders it as a compact text
library, so the scaling strategies can be compared at the level a
digital flow actually consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.tables import format_sig, render_table
from ..errors import ParameterError
from ..scaling.strategy import DeviceDesign
from .delay import K_D_DEFAULT, analytic_delay
from .gates import EquivalentGate, nand2, nor2
from .inverter import Inverter

#: Output loads characterised, as multiples of the cell's input cap.
LOAD_GRID: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class CellTiming:
    """Characterisation of one cell at one supply.

    Attributes
    ----------
    name:
        Cell name ("inv", "nand2", "nor2").
    vdd:
        Characterised supply [V].
    input_cap_f:
        Cell input capacitance [F].
    loads_f / delays_s:
        Load grid and matching propagation delays.
    switch_energy_j:
        Internal + load switching energy at the unit load [J].
    leakage_w:
        Standby leakage power [W].
    """

    name: str
    vdd: float
    input_cap_f: float
    loads_f: tuple[float, ...]
    delays_s: tuple[float, ...]
    switch_energy_j: float
    leakage_w: float

    def delay_at(self, load_f: float) -> float:
        """Interpolated delay [s] at an arbitrary ``load_f`` [f]."""
        loads = np.asarray(self.loads_f)
        delays = np.asarray(self.delays_s)
        if not loads.min() <= load_f <= loads.max():
            raise ParameterError("load outside the characterised range")
        return float(np.interp(load_f, loads, delays))

    @property
    def drive_resistance_ohm(self) -> float:
        """Effective linear drive resistance (delay-vs-load slope)."""
        loads = np.asarray(self.loads_f)
        delays = np.asarray(self.delays_s)
        slope = np.polyfit(loads, delays, 1)[0]
        return float(slope / 0.69)


def _characterise_inverter_like(name: str, inverter: Inverter,
                                effort: float, leakage_paths: int,
                                k_d: float) -> CellTiming:
    c_in = inverter.input_capacitance() * effort
    c_self = inverter.output_capacitance()
    loads = tuple(mult * c_in for mult in LOAD_GRID)
    delays = tuple(
        analytic_delay(inverter, c_self + load, k_d) for load in loads
    )
    vdd = inverter.vdd
    energy = (c_self + loads[0]) * vdd ** 2
    leakage = leakage_paths * inverter.leakage_current() * vdd
    return CellTiming(
        name=name, vdd=vdd, input_cap_f=c_in, loads_f=loads,
        delays_s=delays, switch_energy_j=energy, leakage_w=leakage,
    )


def characterise_cell(gate: EquivalentGate | Inverter, name: str,
                      k_d: float = K_D_DEFAULT) -> CellTiming:
    """Characterise one cell (an Inverter or an EquivalentGate)."""
    if isinstance(gate, Inverter):
        return _characterise_inverter_like(name, gate, 1.0, 1, k_d)
    return _characterise_inverter_like(
        name, gate.inverter, gate.logical_effort, gate.leakage_inputs, k_d
    )


@dataclass(frozen=True)
class CellLibrary:
    """A characterised cell set for one design/supply point."""

    label: str
    vdd: float
    cells: tuple[CellTiming, ...] = field(default_factory=tuple)

    def cell(self, name: str) -> CellTiming:
        """Look up one cell by name."""
        for c in self.cells:
            if c.name == name:
                return c
        known = ", ".join(c.name for c in self.cells)
        raise ParameterError(f"no cell {name!r}; have: {known}")

    def render(self) -> str:
        """Compact text library (one row per cell)."""
        rows = []
        for c in self.cells:
            rows.append((
                c.name,
                format_sig(c.input_cap_f * 1e15),
                format_sig(c.delays_s[0] * 1e9),
                format_sig(c.delays_s[-1] * 1e9),
                format_sig(c.switch_energy_j * 1e15),
                format_sig(c.leakage_w * 1e12),
            ))
        return render_table(
            ("cell", "Cin fF", "t_p@FO1 ns", f"t_p@FO{LOAD_GRID[-1]:.0f} ns",
             "E_sw fJ", "P_leak pW"),
            rows,
            title=f"* cell library: {self.label} @ {self.vdd:.2f} V",
        )


def characterise_design(design: DeviceDesign, vdd: float | None = None,
                        k_d: float = K_D_DEFAULT) -> CellLibrary:
    """Characterise the INV/NAND2/NOR2 set of one strategy design.

    >>> # used by examples and the strategy-comparison tests
    """
    supply = design.vdd if vdd is None else vdd
    if supply <= 0.0:
        raise ParameterError("supply must be positive")
    inv = design.inverter(supply)
    cells = (
        characterise_cell(inv, "inv", k_d),
        characterise_cell(nand2(design.nfet, design.pfet, supply), "nand2",
                          k_d),
        characterise_cell(nor2(design.nfet, design.pfet, supply), "nor2",
                          k_d),
    )
    label = f"{design.strategy}/{design.node.name}"
    return CellLibrary(label=label, vdd=supply, cells=cells)
