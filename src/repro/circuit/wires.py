"""Interconnect: node-scaled wire capacitance and resistance.

Generalized scaling (the paper's Table 1) shrinks wire cross-sections
with `1/alpha` like every other physical dimension, which keeps the
capacitance *per unit length* roughly constant (width shrinks, but so
does spacing) while resistance per unit length grows as `alpha^2`.
This module provides a per-node local-wire model so circuit studies
can include realistic interconnect load — which matters for sub-V_th
energy because wire capacitance does not enjoy the weak-inversion
collapse that gate capacitance does.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..scaling.roadmap import NodeSpec

#: Local-wire capacitance per µm at the 90nm node [F/µm] — the classic
#: ~0.2 fF/µm for minimum-pitch metal.
C_WIRE_90NM_F_PER_UM: float = 0.2e-15
#: Local-wire resistance per µm at the 90nm node [ohm/µm].
R_WIRE_90NM_OHM_PER_UM: float = 1.0
#: Wire cap stays ~constant per unit length with scaling (width and
#: spacing shrink together); resistance grows as the inverse square of
#: the dimension factor.
DIMENSION_FACTOR_PER_GEN: float = 0.7


@dataclass(frozen=True)
class WireModel:
    """Local-interconnect model for one technology node.

    Attributes
    ----------
    c_f_per_um:
        Capacitance per µm of wire [F/µm].
    r_ohm_per_um:
        Resistance per µm of wire [ohm/µm].
    node_name:
        The node this model belongs to.
    """

    c_f_per_um: float
    r_ohm_per_um: float
    node_name: str = ""

    def __post_init__(self) -> None:
        if self.c_f_per_um <= 0.0 or self.r_ohm_per_um <= 0.0:
            raise ParameterError("wire parameters must be positive")

    @classmethod
    def for_node(cls, node: NodeSpec) -> "WireModel":
        """Wire model scaled from the 90nm reference to ``node``."""
        gens = node.generation
        shrink = DIMENSION_FACTOR_PER_GEN ** gens
        return cls(
            c_f_per_um=C_WIRE_90NM_F_PER_UM,          # ~constant per length
            r_ohm_per_um=R_WIRE_90NM_OHM_PER_UM / shrink ** 2,
            node_name=node.name,
        )

    def capacitance(self, length_um: float) -> float:
        """Total capacitance [F] of a ``length_um`` [um] wire."""
        if length_um < 0.0:
            raise ParameterError("length must be >= 0")
        return self.c_f_per_um * length_um

    def resistance(self, length_um: float) -> float:
        """Total resistance [ohm] of a ``length_um`` [um] wire."""
        if length_um < 0.0:
            raise ParameterError("length must be >= 0")
        return self.r_ohm_per_um * length_um

    def elmore_delay(self, length_um: float, c_load_f: float = 0.0) -> float:
        """Distributed-RC Elmore delay [s] of a ``length_um`` [um]
        wire into ``c_load_f`` [f].

        ``0.5 R_w C_w + R_w C_load`` — the standard first moment.
        """
        r_wire_ohm = self.resistance(length_um)
        c_wire_f = self.capacitance(length_um)
        if c_load_f < 0.0:
            raise ParameterError("load capacitance must be >= 0")
        return 0.5 * r_wire_ohm * c_wire_f + r_wire_ohm * c_load_f

    def rc_negligible_below_um(self, gate_delay_s: float,
                               c_load_f: float = 0.0,
                               fraction: float = 0.1) -> float:
        """Longest wire whose Elmore delay (into ``c_load_f`` [f])
        stays below ``fraction`` of ``gate_delay_s`` [s] — in sub-V_th
        circuits this is enormous (gates are slow, wires are not),
        which is why the paper can ignore wire *delay* while wire
        *capacitance* still costs energy."""
        if gate_delay_s <= 0.0:
            raise ParameterError("gate delay must be positive")
        if not 0.0 < fraction < 1.0:
            raise ParameterError("fraction must be in (0, 1)")
        budget = fraction * gate_delay_s
        # Solve 0.5 r c L^2 + r C_load L = budget for L (per-um r, c).
        a = 0.5 * self.r_ohm_per_um * self.c_f_per_um
        b = self.r_ohm_per_um * c_load_f
        disc = b * b + 4.0 * a * budget
        return (-b + disc ** 0.5) / (2.0 * a)


def wire_energy_per_transition(model: WireModel, length_um: float,
                               vdd: float) -> float:
    """Switching energy [J] of a ``length_um`` [um] wire:
    ``C_w V_dd^2`` per full cycle.

    Wire capacitance sees the full supply swing and no weak-inversion
    relief, so at scaled nodes it becomes a growing share of sub-V_th
    energy.
    """
    if vdd <= 0.0:
        raise ParameterError("vdd must be positive")
    return model.capacitance(length_um) * vdd ** 2
