"""The paper's Eq. 3 — analytic subthreshold inverter VTC.

Equating the weak-inversion currents of the NFET and PFET (Eq. 3a) and
solving for the input voltage gives Eq. 3(b); with matched devices
(``I_0N = I_0P``, ``V_thN = V_thP``, ``m_N = m_P``) it collapses to the
paper's Eq. 3(c):

``V_in = V_dd/2 + (m v_T / 2) ln[(1 - e^{(V_out - V_dd)/v_T}) /
                                 (1 - e^{-V_out/v_T})]``

These expressions make the role of the slope factor (and hence S_S) in
the transfer characteristic explicit — the analytical backbone of the
paper's SNM discussion.  The functions here evaluate Eq. 3(b)/(c) and
derive closed-form gain and noise-margin approximations, which the test
suite validates against the full numerical VTC in the subthreshold
regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import T_ROOM, thermal_voltage
from ..errors import ParameterError
from .inverter import Inverter


def vin_of_vout_matched(vout: float | np.ndarray, vdd: float, m: float,
                        temperature_k: float = T_ROOM) -> float | np.ndarray:
    """Eq. 3(c): the matched-inverter input for a given output [V].

    Valid strictly inside the rails (the log diverges at 0 and V_dd,
    exactly as the true VTC saturates).  ``temperature_k`` [k] sets
    the thermal voltage.
    """
    if vdd <= 0.0:
        raise ParameterError("vdd must be positive")
    if m < 1.0:
        raise ParameterError("slope factor must be >= 1")
    vt = thermal_voltage(temperature_k)
    v = np.asarray(vout, dtype=float)
    if np.any(v <= 0.0) or np.any(v >= vdd):
        raise ParameterError("vout must lie strictly inside (0, vdd)")
    ratio = (1.0 - np.exp((v - vdd) / vt)) / (1.0 - np.exp(-v / vt))
    out = vdd / 2.0 + (m * vt / 2.0) * np.log(ratio)
    return float(out) if np.isscalar(vout) else out


def vin_of_vout_general(vout: float, vdd: float, m_n: float, m_p: float,
                        vth_n: float, vth_p: float, i0_n: float, i0_p: float,
                        temperature_k: float = T_ROOM) -> float:
    """Eq. 3(b): the general (mismatched) subthreshold VTC inverse
    [V]; ``temperature_k`` [k] sets the thermal voltage."""
    if min(i0_n, i0_p) <= 0.0:
        raise ParameterError("I_0 prefactors must be positive")
    if min(m_n, m_p) < 1.0:
        raise ParameterError("slope factors must be >= 1")
    vt = thermal_voltage(temperature_k)
    if not 0.0 < vout < vdd:
        raise ParameterError("vout must lie strictly inside (0, vdd)")
    log_term = math.log(
        (i0_p / i0_n)
        * (1.0 - math.exp((vout - vdd) / vt))
        / (1.0 - math.exp(-vout / vt))
    )
    numerator = (m_n * (vdd - vth_p) + m_p * vth_n
                 + m_n * m_p * vt * log_term)
    return numerator / (m_n + m_p)


def switching_threshold_matched(vdd: float) -> float:
    """Matched Eq. 3(c) trip point: exactly V_dd/2 by symmetry."""
    if vdd <= 0.0:
        raise ParameterError("vdd must be positive")
    return vdd / 2.0


def max_gain_matched(vdd: float, m: float,
                     temperature_k: float = T_ROOM) -> float:
    """Peak small-signal gain magnitude of the Eq. 3(c) VTC.

    Differentiating Eq. 3(c) at ``V_out = V_dd/2`` gives
    ``|A_max| = (2/(m v_T)) * (1/(e^{-V_dd/(2 v_T)} ... ))``; for
    ``V_dd >> v_T`` it approaches ``V_dd ... `` — evaluated here
    numerically from the closed form for exactness.
    ``temperature_k`` [k] sets the thermal voltage.
    """
    vt = thermal_voltage(temperature_k)
    h = 1e-6 * vdd
    mid = vdd / 2.0
    dvin = (vin_of_vout_matched(mid + h, vdd, m, temperature_k)
            - vin_of_vout_matched(mid - h, vdd, m, temperature_k))
    dvout = 2.0 * h
    slope_inv = dvin / dvout       # dV_in/dV_out at the trip point (<0)
    return abs(1.0 / slope_inv)


@dataclass(frozen=True)
class AnalyticSnm:
    """Noise margins from the Eq. 3(c) characteristic."""

    v_il: float
    v_ih: float
    snm: float


def analytic_snm_matched(vdd: float, m: float,
                         temperature_k: float = T_ROOM,
                         n_grid: int = 4001) -> AnalyticSnm:
    """Gain = -1 noise margins of the Eq. 3(c) VTC.

    Uses the closed-form inverse characteristic on a dense V_out grid
    at ``temperature_k`` [k]; by symmetry ``NM_L = NM_H``, so the SNM
    is either margin.
    """
    vout = np.linspace(1e-4 * vdd, vdd * (1.0 - 1e-4), n_grid)
    vin = vin_of_vout_matched(vout, vdd, m, temperature_k)
    # Gain = dVout/dVin; find |gain| = 1 crossings on the grid.
    dvin = np.gradient(vin, vout)          # dV_in/dV_out
    gain = 1.0 / dvin                      # negative through the middle
    below = gain < -1.0
    if not below.any():
        raise ParameterError("no regeneration: V_dd too low for Eq. 3(c)")
    first = int(np.argmax(below))
    last = int(len(below) - 1 - np.argmax(below[::-1]))
    if first == 0 or last == len(vout) - 1:
        raise ParameterError("gain = -1 point at the rail; widen the grid")
    # The VTC is decreasing: the low-V_out end of the transition is the
    # high-V_in unity-gain point and vice versa.
    v_ih = float(vin[first])
    v_ol = float(vout[first])
    v_il = float(vin[last])
    v_oh = float(vout[last])
    nm_high = v_oh - v_ih
    nm_low = v_il - v_ol
    return AnalyticSnm(v_il=v_il, v_ih=v_ih, snm=min(nm_low, nm_high))


def compare_with_numeric(inverter: Inverter, n_points: int = 41
                         ) -> dict[str, float]:
    """Worst-case deviation between Eq. 3(c) and the numerical VTC.

    The comparison is made in the *input-voltage* domain (the VTC's
    gain would amplify any output-domain metric by 10-100x near the
    trip point): sample the numerical VTC, feed each output back
    through the closed-form inverse, and record the worst V_in
    disagreement.  Uses the NFET's slope factor for ``m`` (matched
    assumption); small in deep subthreshold, where Eq. 3 is derived.
    """
    vdd = inverter.vdd
    m = inverter.nfet.slope_factor
    vins = np.linspace(0.02 * vdd, 0.98 * vdd, n_points)
    worst = 0.0
    for vin in vins:
        numeric_vout = inverter.vtc_point(float(vin))
        if not 1e-4 * vdd < numeric_vout < (1.0 - 1e-4) * vdd:
            continue   # rail-saturated: the log form diverges there
        analytic_vin = vin_of_vout_matched(numeric_vout, vdd, m,
                                           inverter.nfet.temperature_k)
        worst = max(worst, abs(analytic_vin - float(vin)))
    return {"max_vin_deviation_v": worst, "vdd": vdd, "m": m}
