"""The CMOS inverter: voltage transfer characteristic and small-signal gain.

The VTC is obtained exactly as the paper's Eq. 3(a) prescribes — by
equating the NFET and PFET drain currents at the output node — except
numerically and with the full weak-to-strong-inversion model, so the
same code serves both the sub-V_th (250 mV) and nominal-V_dd analyses.
Whole input grids default to the vectorised bisection kernel of
:mod:`repro.circuit.batch`; the per-point Brent solve remains as the
scalar oracle (``solver="sequential"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from .. import perf
from ..device.mosfet import MOSFET, Polarity
from ..errors import ParameterError
from .batch import solve_vtc_batch, validate_solver


@dataclass(frozen=True)
class Inverter:
    """A static CMOS inverter.

    Parameters
    ----------
    nfet / pfet:
        Pull-down and pull-up devices.  The PFET is evaluated through
        the polarity-symmetric model: its source sits at V_dd, so its
        gate-source and drain-source magnitudes are ``V_dd - V_in`` and
        ``V_dd - V_out``.
    vdd:
        Supply voltage [V].
    """

    nfet: MOSFET
    pfet: MOSFET
    vdd: float

    def __post_init__(self) -> None:
        if self.vdd <= 0.0:
            raise ParameterError(f"vdd must be positive, got {self.vdd}")
        if self.nfet.polarity is not Polarity.NFET:
            raise ParameterError("nfet argument must be an NFET")
        if self.pfet.polarity is not Polarity.PFET:
            raise ParameterError("pfet argument must be a PFET")

    # -- device currents at a bias point ------------------------------------------

    def pulldown_current(self, vin: float, vout: float) -> float:
        """NFET drain current [A] at the given input/output voltages."""
        return float(self.nfet.ids(vin, max(vout, 0.0)))

    def pullup_current(self, vin: float, vout: float) -> float:
        """PFET source-to-drain current [A] at the given voltages."""
        return float(self.pfet.ids(self.vdd - vin,
                                   max(self.vdd - vout, 0.0)))

    def output_current(self, vin: float, vout: float) -> float:
        """Net current charging the output node: ``I_P - I_N`` [A]."""
        return self.pullup_current(vin, vout) - self.pulldown_current(vin, vout)

    # -- static transfer -----------------------------------------------------------

    def vtc_point(self, vin: float, xtol: float = 1e-9) -> float:
        """Static output voltage for one input voltage [V].

        Solves ``I_N(V_in, V_out) = I_P(V_in, V_out)``; the balance
        function is monotonic in ``V_out`` so the bracket [0, V_dd]
        always contains exactly one root.
        """
        if not 0.0 <= vin <= self.vdd:
            raise ParameterError(
                f"vin={vin} outside the supply range [0, {self.vdd}]"
            )

        def balance(vout: float) -> float:
            return (self.pulldown_current(vin, vout)
                    - self.pullup_current(vin, vout))

        perf.bump("circuit.vtc_scalar_solves")
        lo, hi = 0.0, self.vdd
        f_lo, f_hi = balance(lo), balance(hi)
        if f_lo >= 0.0:
            return lo
        if f_hi <= 0.0:
            return hi
        return float(brentq(balance, lo, hi, xtol=xtol))

    def vtc(self, n_points: int = 121, solver: str = "batch",
            xtol: float = 1e-9) -> tuple[np.ndarray, np.ndarray]:
        """Full VTC on a uniform input grid: ``(vin, vout)`` arrays.

        ``solver="batch"`` (default) solves every input point in one
        vectorised bisection; ``solver="sequential"`` keeps the scalar
        per-point Brent solve as the correctness oracle.
        """
        if n_points < 5:
            raise ParameterError("need at least 5 VTC points")
        validate_solver(solver)
        vins = np.linspace(0.0, self.vdd, n_points)
        if solver == "batch":
            return vins, solve_vtc_batch(self, vins, xtol=xtol)
        vouts = np.array([self.vtc_point(float(v), xtol=xtol) for v in vins])
        return vins, vouts

    def gain(self, vin: float, h_v: float | None = None,
             xtol: float = 1e-9) -> float:
        """Small-signal voltage gain dV_out/dV_in at ``vin``
        (negative); ``h_v`` [v] overrides the stencil half-step."""
        step = (self.vdd * 1e-4) if h_v is None else h_v
        lo = max(vin - step, 0.0)
        hi = min(vin + step, self.vdd)
        if hi <= lo:
            raise ParameterError("gain stencil collapsed; vin at a corner?")
        return (self.vtc_point(hi, xtol=xtol)
                - self.vtc_point(lo, xtol=xtol)) / (hi - lo)

    def switching_threshold(self, xtol: float = 1e-9) -> float:
        """Input voltage where ``V_out = V_in`` (the inverter trip point)."""

        def crossing(vin: float) -> float:
            return self.vtc_point(vin) - vin

        return float(brentq(crossing, 0.0, self.vdd, xtol=xtol))

    # -- loading ----------------------------------------------------------------------

    def input_capacitance(self) -> float:
        """Total gate capacitance presented at the input [F].

        Bias-aware: at sub-V_th supplies the intrinsic gate area term
        collapses to its weak-inversion (depletion-limited) value.
        """
        return (self.nfet.c_gate_eff(self.vdd)
                + self.pfet.c_gate_eff(self.vdd))

    def output_capacitance(self) -> float:
        """Parasitic self-loading at the output node [F]."""
        return (self.nfet.capacitance.c_drain() + self.pfet.capacitance.c_drain())

    def load_capacitance(self, fanout: int = 1) -> float:
        """FO-``fanout`` load: receivers' input caps plus self-loading [F]."""
        if fanout < 0:
            raise ParameterError("fanout must be >= 0")
        return fanout * self.input_capacitance() + self.output_capacitance()

    def leakage_current(self) -> float:
        """Average standby leakage over the two input states [A].

        With ``V_in = 0`` the NFET leaks; with ``V_in = V_dd`` the PFET
        leaks; a long chain spends half its gates in each state.
        """
        i_n = self.nfet.i_off(self.vdd)
        i_p = self.pfet.i_off(self.vdd)
        return 0.5 * (i_n + i_p)

    def with_vdd(self, vdd: float) -> "Inverter":
        """Copy of this inverter at a different supply."""
        return Inverter(nfet=self.nfet, pfet=self.pfet, vdd=vdd)
