"""Lightweight performance instrumentation.

A process-global counter table tracks how much numerical work the
library actually performs: Newton iterations, Poisson solves, optimiser
residual evaluations, and cache hits/misses.  The hot paths call
:func:`bump`, which is a dict increment — cheap enough to leave enabled
unconditionally — and the CLI's ``--profile`` flag (plus the benchmark
tooling) renders a snapshot at the end of a run.

Counter names in use
--------------------
``poisson.solves``
    Single-bias Poisson problems solved (batch members count once each).
``poisson.batch_solves``
    Calls to :func:`repro.tcad.poisson1d.solve_mos_poisson_batch`.
``poisson.newton_iterations``
    Total damped-Newton iterations across all solves.
``optimizer.brentq_residual_evals``
    Leakage-residual evaluations inside the scaling root-solves.
``cache.device.hits`` / ``cache.device.misses``
    In-process device-construction memo.
``cache.family.hits`` / ``cache.family.misses``
    On-disk optimised-family cache.
``circuit.vtc_batch_solves`` / ``circuit.vtc_batch_points``
    Batched VTC kernel invocations and the total points they solved.
``circuit.balance_bisection_sweeps``
    Whole-array bisection sweeps inside the batched balance solver.
``circuit.vtc_scalar_solves``
    Per-point (sequential-oracle) VTC solves.
``circuit.snm_batch_extractions``
    Noise-margin extractions performed through the batched kernel.
``circuit.delay_batch_points``
    Monte Carlo delay evaluations done as array elements.
``circuit.energy_sweep_points``
    V_dd grid points evaluated by the vectorised energy sweep.
``circuit.butterfly_batch_solves``
    Vectorised largest-square butterfly-SNM solves.
``circuit.dvs_bisection_sweeps``
    Gathered bisection sweeps inside the batched DVS supply solver.
``scaling.doping_batch_solves`` / ``scaling.doping_batch_points``
    Batched doping root-solves and the candidate points they stacked
    (deterministic: fixed by the optimisation grid sizes).
``scaling.doping_bisection_sweeps``
    Whole-stack bisection sweeps inside the batched doping solver
    (warm-start dependent, so run-order sensitive).
``scaling.device_eval_points``
    Parameter-axis device evaluations (`repro.device.batch` metrics
    calls, counted per stacked point).
``cache.bracket.hits`` / ``cache.bracket.misses``
    Warm-start bracket cache of the batched doping solver.
``cache.family.stores``
    Optimised families persisted to the on-disk cache.
``scaling.bracket_warm_hits`` / ``scaling.bracket_cold_misses``
    Disk-layer warm starts of the doping solver: lanes whose replayed
    bracket survived sign verification vs lanes solved cold from the
    full bounds (bumped only when the on-disk cache is enabled).
``numerics.active_lanes`` / ``numerics.total_lanes``
    Lanes the shared root-solve core actually evaluated vs lanes
    carried, summed per sweep; their ratio is the measured active-set
    compression (run-order sensitive via warm starts).
``scaling.family.*`` / ``numerics.family.*``
    Flow-level re-attribution of the ``scaling.*`` / ``numerics.*``
    counters by :mod:`repro.experiments.families` (same meanings,
    family scope).
``service.grid.shards`` / ``service.grid.points``
    Design-space grid precompute: (node, L_poly) shards filled and the
    total (target, V_dd) metric points they produced.
``service.queries``
    Queries answered by the design-space server (errors included).
``service.surrogate_hits`` / ``service.exact_fallbacks``
    Query answers served from the fitted surrogate vs answers that
    fell back to an exact batched root-solve (off-grid point, NaN grid
    cell, shifted corner, or no grid loaded).
``service.errors``
    Queries answered with an error envelope (any taxonomy code).
``cache.grid.hits`` / ``cache.grid.misses`` / ``cache.grid.stores``
    On-disk design-space grid tensors (schema-hash keyed ``.npz``).
``variability.qmc_points`` / ``variability.mc_points``
    Standard-normal trial pairs drawn from the scrambled-Sobol' /
    block-seeded pseudo-random streams of the rare-event engine.
``variability.shift_probes``
    Failure-indicator points spent by the batched minimum-norm
    failure-point search (importance-shift location).
``variability.estimator_trials``
    Trials evaluated by the likelihood-ratio tail estimator (across
    all chunks; early stopping shows up as fewer trials).
``variability.tail_points``
    (V_dd, design) points estimated on failure-rate-vs-supply curves.
``circuit.mna.batch_solves`` / ``circuit.mna.batch_lanes``
    Compiled batched MNA solves (DC or transient calls) and the lanes
    they carried (stimulus points x variation corners).
``circuit.mna.newton_sweeps``
    Batched damped-Newton sweeps executed (one stacked linear solve
    each).
``circuit.mna.active_lanes`` / ``circuit.mna.total_lanes``
    Lanes the batched MNA Newton actually assembled vs lanes carried,
    summed per sweep (active-set compression of the nodal engine).
``circuit.mna.device_evals``
    Vectorised device-current evaluations (transistor instances x
    lanes, residual and finite-difference sweeps alike).
``circuit.mna.transient_steps``
    Accepted backward-Euler steps of the batched transient engine.
``circuit.mna.sequential_solves``
    Per-lane scalar NodalSolver solves run by the sequential oracle.

The registry below mirrors this list; ``repro lint`` (rule RPR006)
statically checks every ``perf.bump``/``perf.get`` call site against
it, so adding a counter means adding it here *and* documenting it
above.
"""

from __future__ import annotations

from collections import Counter

#: Every literal counter name a call site may use (lint rule RPR006).
KNOWN_COUNTERS: frozenset[str] = frozenset({
    "poisson.solves",
    "poisson.batch_solves",
    "poisson.newton_iterations",
    "optimizer.brentq_residual_evals",
    "cache.device.hits",
    "cache.device.misses",
    "cache.family.hits",
    "cache.family.misses",
    "cache.family.stores",
    "cache.bracket.hits",
    "cache.bracket.misses",
    "circuit.vtc_batch_solves",
    "circuit.vtc_batch_points",
    "circuit.balance_bisection_sweeps",
    "circuit.vtc_scalar_solves",
    "circuit.snm_batch_extractions",
    "circuit.delay_batch_points",
    "circuit.energy_sweep_points",
    "circuit.butterfly_batch_solves",
    "circuit.dvs_bisection_sweeps",
    "scaling.doping_batch_solves",
    "scaling.doping_batch_points",
    "scaling.doping_bisection_sweeps",
    "scaling.device_eval_points",
    "scaling.bracket_warm_hits",
    "scaling.bracket_cold_misses",
    "numerics.active_lanes",
    "numerics.total_lanes",
    "service.grid.shards",
    "service.grid.points",
    "service.queries",
    "service.surrogate_hits",
    "service.exact_fallbacks",
    "service.errors",
    "cache.grid.hits",
    "cache.grid.misses",
    "cache.grid.stores",
    "variability.qmc_points",
    "variability.mc_points",
    "variability.shift_probes",
    "variability.estimator_trials",
    "variability.tail_points",
    "circuit.mna.batch_solves",
    "circuit.mna.batch_lanes",
    "circuit.mna.newton_sweeps",
    "circuit.mna.active_lanes",
    "circuit.mna.total_lanes",
    "circuit.mna.device_evals",
    "circuit.mna.transient_steps",
    "circuit.mna.sequential_solves",
})

#: Name families that may be built dynamically (f-string/concat call
#: sites): the cache layer parameterises ``cache.<name>.*`` on the memo
#: name, and the family flows re-attribute under ``scaling.family.*``.
DYNAMIC_COUNTER_PREFIXES: tuple[str, ...] = (
    "cache.", "scaling.family.", "numerics.family.")

_COUNTERS: Counter[str] = Counter()


def bump(name: str, n: int = 1) -> None:
    """Increment counter ``name`` by ``n``."""
    _COUNTERS[name] += n


def get(name: str) -> int:
    """Current value of counter ``name`` (0 if never bumped)."""
    return _COUNTERS[name]


def snapshot() -> dict[str, int]:
    """A plain-dict copy of all counters (picklable, for workers)."""
    return dict(_COUNTERS)


def merge(counts: dict[str, int]) -> None:
    """Fold a worker-process snapshot into this process's counters."""
    _COUNTERS.update(counts)


def delta(before: dict[str, int]) -> dict[str, int]:
    """Counter increments since a :func:`snapshot` (zero deltas dropped).

    The provenance manifest brackets each experiment run with a
    snapshot/delta pair so ``results.json`` attributes numerical work
    (solves, iterations, cache traffic) to the experiment that caused
    it rather than to the whole process.
    """
    changes: dict[str, int] = {}
    for name, value in _COUNTERS.items():
        increment = value - before.get(name, 0)
        if increment:
            changes[name] = increment
    return changes


def reset() -> None:
    """Zero every counter."""
    _COUNTERS.clear()


def report() -> str:
    """Human-readable counter table, sorted by name.

    When the shared root-solve core ran, a summary line reports the
    measured active-set compression (evaluated vs carried lanes).
    """
    if not _COUNTERS:
        return "perf counters: (none recorded)"
    width = max(len(name) for name in _COUNTERS)
    lines = ["perf counters:"]
    for name in sorted(_COUNTERS):
        lines.append(f"  {name:<{width}}  {_COUNTERS[name]:>12,}")
    total = _COUNTERS["numerics.total_lanes"]
    if total:
        active = _COUNTERS["numerics.active_lanes"]
        lines.append(f"  active-set compression: {active / total:.1%} "
                     f"of carried lanes evaluated")
    return "\n".join(lines)
