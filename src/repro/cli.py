"""Command-line interface: run reproduced experiments.

Usage::

    repro list                 # show all experiments
    repro run fig4             # run one experiment, print its report
    repro run all              # run everything (slow but complete)
    repro run all --jobs 4     # ... fanned out over 4 worker processes
    repro run table2 --profile # ... printing solver/cache perf counters
    repro report               # regenerate EXPERIMENTS.md, docs/RESULTS.md,
                               # results.json from live runs
    repro report --check       # exit 2 if the committed docs are stale
    repro lint                 # check the repo's coding invariants
    repro lint --format json   # ... machine-readable findings
    repro grid build --quick   # precompute design-space grid tensors
    repro serve                # answer design queries (stdio-JSON)
    repro serve --transport http --port 8337
    repro yield --vdd 0.2 0.25 0.3    # 6-sigma cell failure rates
    repro yield --mode snm --vdd 0.12 --strategy super-vth
    repro array --rows 2 4 8 16       # column leakage/SNM vs height
    repro array --study write --strategy super-vth --profile
    python -m repro run table2 # module form

Exit codes: 0 success; 1 a reproduced claim failed to hold (or, for
``lint``, active findings); 2 usage errors (unknown experiment id, bad
flags) or stale generated docs in ``report --check`` mode.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import perf
from .experiments import list_experiments, run_experiment


def _run_one(experiment_id: str):
    """Run one experiment, timing it."""
    start = time.perf_counter()
    result = run_experiment(experiment_id)
    elapsed = time.perf_counter() - start
    return result, elapsed


def _run_one_worker(experiment_id: str):
    """Worker body for the parallel runner.

    Module-level so it pickles into :class:`ProcessPoolExecutor`
    workers; experiments are pure functions of the registry id.  The
    counters are reset first because a forked worker inherits the
    parent's totals, which would double-count once merged back.
    """
    perf.reset()
    result, elapsed = _run_one(experiment_id)
    return result, elapsed, perf.snapshot()


def _print_result(result, elapsed: float, plot: bool) -> bool:
    print(result.render())
    if plot and result.series:
        from .analysis.plotting import render_ascii_chart
        # Chart series that share a y-label together.
        by_axis: dict[str, list] = {}
        for s in result.series:
            by_axis.setdefault(s.y_label, []).append(s)
        for y_label, group in by_axis.items():
            print(f"\n[{y_label}]")
            print(render_ascii_chart(group))
    print(f"-- completed in {elapsed:.1f}s --\n")
    return result.all_hold()


def _cmd_list() -> int:
    for experiment_id, title in list_experiments():
        print(f"{experiment_id:20s} {title}")
    return 0


def _cmd_run(targets: list[str], plot: bool = False, jobs: int = 1,
             profile: bool = False) -> int:
    known = [eid for eid, _t in list_experiments()]
    if "all" in targets:
        ids = known
    else:
        unknown = [t for t in targets if t not in known]
        if unknown:
            print(f"error: unknown experiment "
                  f"{', '.join(repr(t) for t in unknown)}; "
                  f"known ids: {', '.join(known)} (or 'all')",
                  file=sys.stderr)
            return 2
        ids = list(dict.fromkeys(targets))
    if jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    failures = 0
    if jobs == 1 or len(ids) == 1:
        for experiment_id in ids:
            result, elapsed = _run_one(experiment_id)
            if not _print_result(result, elapsed, plot):
                failures += 1
    else:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(jobs, len(ids))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves submission order, so the report stream is
            # deterministic regardless of completion order.
            for result, elapsed, counts in pool.map(_run_one_worker, ids):
                perf.merge(counts)
                if not _print_result(result, elapsed, plot):
                    failures += 1

    if profile:
        print(perf.report())
    if failures:
        print(f"{failures} experiment(s) had claims that did not hold")
    return 1 if failures else 0


def _resolve_ids(targets: list[str] | None) -> list[str] | int:
    """Expand/validate experiment ids; returns an exit code on error."""
    known = [eid for eid, _t in list_experiments()]
    if not targets:
        return known
    unknown = [t for t in targets if t not in known]
    if unknown:
        print(f"error: unknown experiment "
              f"{', '.join(repr(t) for t in unknown)}; "
              f"known ids: {', '.join(known)}",
              file=sys.stderr)
        return 2
    return list(dict.fromkeys(targets))


def _results_json_problems(path, manifest, ids: list[str]) -> list[str]:
    """Structural staleness checks for the committed results.json.

    Byte comparison would be meaningless (wall times and git SHA vary
    run to run), so the check is semantic: the file must exist, parse,
    carry the current model schema hash, and record perf counters and
    wall time for every id that was just run.
    """
    import json
    if not path.exists():
        return [f"{path.name}: missing"]
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        return [f"{path.name}: unparseable ({err})"]
    problems = []
    if payload.get("schema_hash") != manifest.schema_hash:
        problems.append(
            f"{path.name}: schema hash {payload.get('schema_hash')!r} != "
            f"current {manifest.schema_hash!r} (model sources changed)")
    entries = payload.get("experiments", {})
    for eid in ids:
        entry = entries.get(eid)
        if entry is None:
            problems.append(f"{path.name}: no entry for {eid!r}")
        elif ("perf_counters" not in entry
              or "wall_time_s" not in entry):
            problems.append(f"{path.name}: incomplete entry for {eid!r}")
    return problems


def _cmd_report(root: str, check: bool = False, jobs: int = 1,
                only: list[str] | None = None,
                manifest_path: str | None = None) -> int:
    """Regenerate (or drift-check) the provenance-tracked results docs."""
    import pathlib

    from .analysis import docgen
    from .analysis.manifest import RunManifest

    ids = _resolve_ids(only)
    if isinstance(ids, int):
        return ids
    if jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    manifest = RunManifest()
    if jobs == 1 or len(ids) == 1:
        for experiment_id in ids:
            manifest.record(experiment_id)
    else:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(jobs, len(ids))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for result, elapsed, counts in pool.map(_run_one_worker, ids):
                perf.merge(counts)
                manifest.add(result, wall_time_s=elapsed,
                             perf_counters=counts)

    docs = docgen.render_docs(manifest.pairs)
    root_path = pathlib.Path(root)
    claims = sum(record.claims_total for record in manifest.records)
    held = sum(record.claims_held for record in manifest.records)

    if check:
        stale = [rel for rel, text in docs.items()
                 if not (root_path / rel).exists()
                 or (root_path / rel).read_text() != text]
        problems = [f"stale: {rel}" for rel in stale]
        problems += _results_json_problems(
            root_path / docgen.RESULTS_JSON, manifest, ids)
        if problems:
            for problem in problems:
                print(problem, file=sys.stderr)
            print("generated docs have drifted from the code; run "
                  "'python -m repro report' and commit the result",
                  file=sys.stderr)
            return 2
        print(f"docs up to date: {len(ids)} experiments, "
              f"{held}/{claims} claims hold")
        return 0

    for rel, text in docs.items():
        target = root_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
        print(f"wrote {target}")
    manifest.save_results_json(root_path / docgen.RESULTS_JSON)
    print(f"wrote {root_path / docgen.RESULTS_JSON}")
    trace = (pathlib.Path(manifest_path) if manifest_path
             else root_path / ".repro" / "manifest.jsonl")
    manifest.write_jsonl(trace)
    print(f"appended {len(manifest)} run records to {trace}")
    print(f"{held}/{claims} claims hold")
    return 0


def _family(strategy: str):
    from .experiments.families import sub_vth_family, super_vth_family
    if strategy == "super-vth":
        return super_vth_family()
    if strategy == "sub-vth":
        return sub_vth_family()
    raise SystemExit(f"unknown strategy {strategy!r} "
                     "(choose super-vth or sub-vth)")


def _cmd_cards(strategy: str) -> int:
    from .scaling.compact_card import family_card_table
    print(family_card_table(_family(strategy)))
    return 0


def _cmd_save_family(strategy: str, path: str) -> int:
    from .io import family_to_dict, save_json
    family = _family(strategy)
    save_json(family_to_dict(family), path)
    print(f"wrote {strategy} family ({len(family.designs)} nodes) to {path}")
    return 0


def _cmd_yield(strategy: str, node: str, vdds: list[float], mode: str,
               method: str, trials: int, seed: int, slowdown: float,
               snm_min_mv: float, target_rel_err: float | None,
               r_max_sigma: float, profile: bool) -> int:
    """Estimate rare-event cell failure rates over a supply list."""
    from .errors import ParameterError
    from .variability import failure_rate_curve

    family = _family(strategy)
    try:
        design = family.design(node)
    except (ParameterError, KeyError):
        known = ", ".join(d.node.name for d in family.designs)
        print(f"error: unknown node {node!r}; known nodes: {known}",
              file=sys.stderr)
        return 2
    try:
        curve = failure_rate_curve(
            design.inverter, vdds, label=f"{strategy} {node}", mode=mode,
            method=method, n_trials=trials, seed=seed, slowdown=slowdown,
            snm_min_v=1e-3 * snm_min_mv, target_rel_err=target_rel_err,
            r_max_sigma=r_max_sigma)
    except ParameterError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(f"{strategy} {node}, {mode}-mode failure, "
          f"{method} estimator, seed {seed}")
    for vdd, est in zip(curve.vdd_v, curve.estimates):
        if est.p_fail == 0:
            print(f"  V_dd = {vdd:.3f} V: no failure within "
                  f"{r_max_sigma:g} sigma (p below resolution)")
            continue
        shift = (f", shift beta = {est.shift.beta_sigma:.2f} sigma"
                 if est.shift is not None else "")
        print(f"  V_dd = {vdd:.3f} V: p_fail = {est.p_fail:.3e} "
              f"({est.sigma:.2f} sigma), 95% CI "
              f"[{est.ci_lo:.2e}, {est.ci_hi:.2e}], "
              f"rel err {est.rel_err:.1%}, ESS {est.ess:.0f}, "
              f"{est.n_trials} trials{shift}")
    if profile:
        print(perf.report())
    return 0


def _cmd_array(strategy: str, node: str, study: str, rows: list[int],
               vdd: float, corners_mv: list[float], solver: str,
               profile: bool) -> int:
    """Array-scale column/gate characterisation on the batched engine."""
    import numpy as np

    from .circuit.gate_netlists import (gate_leakage, nand2_netlist,
                                        nor2_netlist)
    from .circuit.sram import SramCell
    from .circuit.sram_array import (bitline_leakage_vs_height,
                                     min_write_pulse, read_snm_vs_height,
                                     write_trip_voltage)
    from .errors import ParameterError

    family = _family(strategy)
    try:
        design = family.design(node)
    except (ParameterError, KeyError):
        known = ", ".join(d.node.name for d in family.designs)
        print(f"error: unknown node {node!r}; known nodes: {known}",
              file=sys.stderr)
        return 2
    cell = SramCell(pulldown=design.nfet.with_width_um(2.0),
                    pullup=design.pfet.with_width_um(1.0),
                    access=design.nfet.with_width_um(1.0), vdd=vdd)
    shifts = 1e-3 * np.array(corners_mv)
    print(f"{strategy} {node} column @ {vdd:.2f} V, solver={solver}")
    try:
        if study in ("leakage", "all"):
            leak = bitline_leakage_vs_height(cell, rows, solver=solver)
            print("bitline leakage under loading (all cells storing 0):")
            for n, i_bl, per in zip(leak.heights, leak.i_bl_a,
                                    leak.per_cell_a):
                print(f"  {n:4d} rows: I_bl = {i_bl:.3e} A "
                      f"({per:.3e} A/cell)")
        if study in ("read-snm", "all"):
            heights, snm, pinned = read_snm_vs_height(cell, rows,
                                                      solver=solver)
            print("loaded read SNM ('1'-storing unaccessed rows):")
            for n, s in zip(heights, snm):
                print(f"  {n:4d} rows: SNM = {s * 1e3:.2f} mV")
            print(f"  pinned-bitline limit: {pinned * 1e3:.2f} mV")
        if study in ("write", "all"):
            n_rows = rows[0]
            trip = write_trip_voltage(cell, n_rows, dvth_n_v=shifts,
                                      solver=solver)
            pulse = min_write_pulse(cell, n_rows, dvth_n_v=shifts,
                                    solver=solver)
            print(f"write margins on a {n_rows}-row column, per "
                  "access-NFET corner:")
            for mv, t, w in zip(corners_mv, trip, pulse):
                print(f"  dVth,n = {mv:+6.1f} mV: trip = {t:.4f} V, "
                      f"min pulse = {w:.3e} s")
        if study in ("gates", "all"):
            for name, build in (("nand2", nand2_netlist),
                                ("nor2", nor2_netlist)):
                gate = build(design.nfet, design.pfet, vdd)
                a = np.array([0.0, 0.0, vdd, vdd])
                b = np.array([0.0, vdd, 0.0, vdd])
                leak_g = gate_leakage(gate, {"a": a, "b": b},
                                      solver=solver)
                states = ", ".join(
                    f"{int(x / vdd)}{int(y / vdd)}: {i:.2e} A"
                    for x, y, i in zip(a, b, leak_g))
                print(f"{name} truth-table leakage ({states})")
    except ParameterError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    if profile:
        print(perf.report())
    return 0


def _cmd_grid_build(quick: bool, jobs: int, profile: bool,
                    validate_points: int) -> int:
    """Precompute, validate and spill the design-space grid tensors."""
    from .cache import cache_dir
    from .service import GridSpec, build_grid, fit_surrogate, store_grid
    from .service.surrogate import SURROGATE_TOL_REL, validate_surrogate

    if jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if cache_dir() is None:
        print("error: the disk cache is disabled; set REPRO_CACHE_DIR "
              "(or REPRO_CACHE=1) so the grid has somewhere to spill",
              file=sys.stderr)
        return 2
    spec = GridSpec.quick() if quick else GridSpec.default()
    start = time.perf_counter()
    grid = build_grid(spec, jobs=jobs)
    fill_s = time.perf_counter() - start
    bounds = validate_surrogate(fit_surrogate(grid),
                                max_points_per_node=validate_points)
    path = store_grid(grid)
    shape = spec.shape
    print(f"filled {shape[0] * shape[1]} shards "
          f"({'x'.join(str(n) for n in shape)} tensor per V_dd metric) "
          f"in {fill_s:.1f}s")
    worst = max(bounds, key=lambda m: bounds[m])
    print(f"surrogate worst-case error: {bounds[worst]:.2e} relative "
          f"({worst}); all bounds "
          + ("within" if all(b <= SURROGATE_TOL_REL
                             for b in bounds.values()) else "NOT within")
          + f" the {SURROGATE_TOL_REL:g} target")
    print(f"wrote {path}")
    if profile:
        print(perf.report())
    return 0


def _cmd_serve(transport: str, host: str, port: int, quick: bool,
               no_grid: bool) -> int:
    """Start the design-space query server on one transport."""
    import asyncio

    from .service import (DesignSpaceService, GridSpec, fit_surrogate,
                          load_grid, serve_http, serve_stdio)

    surrogate = None
    if not no_grid:
        spec = GridSpec.quick() if quick else GridSpec.default()
        grid = load_grid(spec)
        if grid is None:
            print("no grid tensors for the current model schema hash; "
                  "serving exact-only (run 'repro grid build' to "
                  "precompute)", file=sys.stderr)
        else:
            surrogate = fit_surrogate(grid)
    service = DesignSpaceService(surrogate)
    # Status goes to stderr: on the stdio transport, stdout is the
    # protocol channel.
    tier = "exact-only" if surrogate is None else "surrogate+exact"
    print(f"design-space service ready ({transport}, {tier}, "
          f"schema {service.schema_hash})", file=sys.stderr)
    try:
        if transport == "stdio":
            asyncio.run(serve_stdio(service))
        else:
            asyncio.run(serve_http(service, host=host, port=port))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Nanometer Device Scaling in "
                    "Subthreshold Circuits' (DAC 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments (or 'all')")
    run_parser.add_argument("experiment", nargs="+",
                            help="experiment id(s) or 'all'")
    run_parser.add_argument("--plot", action="store_true",
                            help="render ASCII charts of the series")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="run experiments across N worker "
                                 "processes (default 1)")
    run_parser.add_argument("--profile", action="store_true",
                            help="print solver/cache perf counters "
                                 "after the run")
    report_parser = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md / docs/RESULTS.md / "
                       "results.json from live runs")
    report_parser.add_argument("--check", action="store_true",
                               help="don't write; exit 2 if the committed "
                                    "docs are stale")
    report_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                               help="run experiments across N worker "
                                    "processes (default 1)")
    report_parser.add_argument("--only", nargs="+", metavar="ID",
                               help="restrict to these experiment ids "
                                    "(default: all registered)")
    report_parser.add_argument("--root", default=".", metavar="DIR",
                               help="repository root to write/check "
                                    "(default: current directory)")
    report_parser.add_argument("--manifest", metavar="PATH",
                               help="JSONL trace log path (default: "
                                    "<root>/.repro/manifest.jsonl)")
    lint_parser = sub.add_parser(
        "lint", help="check the repo's coding invariants (RPR rules)")
    lint_parser.add_argument("paths", nargs="*", metavar="PATH",
                             help="files/directories to check (default: "
                                  "all library sources under src/repro)")
    lint_parser.add_argument("--format", choices=("text", "json", "sarif"),
                             default="text", dest="output_format",
                             help="findings output format (default: text; "
                                  "sarif emits a SARIF 2.1.0 log for "
                                  "code-scanning upload)")
    lint_parser.add_argument("--root", metavar="DIR",
                             help="repository root (default: inferred "
                                  "from the package location)")
    lint_parser.add_argument("--baseline", metavar="PATH",
                             help="baseline file of grandfathered "
                                  "findings (default: <root>/"
                                  "lint-baseline.json)")
    lint_parser.add_argument("--update-baseline", action="store_true",
                             help="rewrite the baseline to cover the "
                                  "current findings, then exit 0")
    lint_parser.add_argument("--explain", metavar="RULE",
                             help="print a rule's catalogue entry and "
                                  "every matching finding with its "
                                  "derivation chain; positional args "
                                  "select findings (fingerprint prefix "
                                  "or path[:line])")
    grid_parser = sub.add_parser(
        "grid", help="manage precomputed design-space grid tensors")
    grid_sub = grid_parser.add_subparsers(dest="grid_command",
                                          required=True)
    grid_build = grid_sub.add_parser(
        "build", help="precompute + validate the grid, spill to the "
                      "disk cache (REPRO_CACHE_DIR)")
    grid_build.add_argument("--quick", action="store_true",
                            help="the tiny CI/test grid instead of the "
                                 "full serving grid")
    grid_build.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="fill shards across N worker processes "
                                 "(default 1; tensors are byte-identical "
                                 "for any N)")
    grid_build.add_argument("--validate-points", type=int, default=32,
                            metavar="N",
                            help="max exact-solve validation midpoints "
                                 "per node (default 32)")
    grid_build.add_argument("--profile", action="store_true",
                            help="print solver/cache perf counters "
                                 "after the build")
    serve_parser = sub.add_parser(
        "serve", help="answer design-space queries (surrogate-first, "
                      "exact fallback)")
    serve_parser.add_argument("--transport", choices=("stdio", "http"),
                              default="stdio",
                              help="newline-delimited JSON on stdio "
                                   "(default) or an HTTP endpoint")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="HTTP bind address (default "
                                   "127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8337,
                              help="HTTP port (default 8337; 0 lets "
                                   "the OS pick)")
    serve_parser.add_argument("--quick", action="store_true",
                              help="serve the tiny CI/test grid spec")
    serve_parser.add_argument("--no-grid", action="store_true",
                              help="skip grid loading; every query "
                                   "answers from the exact tier")
    yield_parser = sub.add_parser(
        "yield", help="estimate rare-event cell failure rates "
                      "(scrambled-Sobol QMC + importance sampling)")
    yield_parser.add_argument("--strategy", default="sub-vth",
                              help="super-vth or sub-vth (default "
                                   "sub-vth)")
    yield_parser.add_argument("--node", default="32nm",
                              help="technology node (default 32nm)")
    yield_parser.add_argument("--vdd", type=float, nargs="+",
                              default=[0.25], metavar="V",
                              help="supply voltages to sweep [V] "
                                   "(default 0.25)")
    yield_parser.add_argument("--mode", choices=("delay", "snm"),
                              default="delay",
                              help="failure mode: delay exceedance "
                                   "(default) or SNM collapse")
    yield_parser.add_argument("--method",
                              choices=("mc", "qmc", "is", "qmc-is"),
                              default="qmc-is",
                              help="estimator (default qmc-is)")
    yield_parser.add_argument("--trials", type=int, default=2048,
                              metavar="N",
                              help="trial budget per supply point "
                                   "(default 2048; powers of two keep "
                                   "the Sobol' balance)")
    yield_parser.add_argument("--seed", type=int, default=2007,
                              help="root stream seed (default 2007)")
    yield_parser.add_argument("--slowdown", type=float, default=1.5,
                              metavar="X",
                              help="delay-mode timing window as a "
                                   "multiple of nominal (default 1.5)")
    yield_parser.add_argument("--snm-min-mv", type=float, default=0.0,
                              metavar="MV",
                              help="snm-mode required margin [mV] "
                                   "(default 0: outright collapse)")
    yield_parser.add_argument("--target-rel-err", type=float,
                              default=None, metavar="R",
                              help="stop early once the relative "
                                   "standard error falls below R")
    yield_parser.add_argument("--r-max-sigma", type=float, default=10.0,
                              metavar="S",
                              help="failure-point search horizon in "
                                   "sigma (default 10)")
    yield_parser.add_argument("--profile", action="store_true",
                              help="print perf counters after the run")
    array_parser = sub.add_parser(
        "array", help="characterise SRAM columns and gate netlists on "
                      "the compiled batched MNA engine")
    array_parser.add_argument("--strategy", default="sub-vth",
                              help="super-vth or sub-vth (default "
                                   "sub-vth)")
    array_parser.add_argument("--node", default="32nm",
                              help="technology node (default 32nm)")
    array_parser.add_argument("--study",
                              choices=("leakage", "read-snm", "write",
                                       "gates", "all"),
                              default="all",
                              help="which characterisation to run "
                                   "(default all)")
    array_parser.add_argument("--rows", type=int, nargs="+",
                              default=[2, 4, 8, 16], metavar="N",
                              help="array heights to sweep (write "
                                   "study uses the first; default "
                                   "2 4 8 16)")
    array_parser.add_argument("--vdd", type=float, default=0.30,
                              metavar="V",
                              help="column supply [V] (default 0.30)")
    array_parser.add_argument("--corners-mv", type=float, nargs="+",
                              default=[-20.0, 0.0, 20.0], metavar="MV",
                              help="access-NFET dVth corners [mV] for "
                                   "the write study (default -20 0 20)")
    array_parser.add_argument("--solver", choices=("batch", "sequential"),
                              default="batch",
                              help="batched engine (default) or the "
                                   "scalar sequential oracle")
    array_parser.add_argument("--profile", action="store_true",
                              help="print perf counters after the run")
    cards_parser = sub.add_parser(
        "cards", help="print a strategy family's model cards")
    cards_parser.add_argument("strategy", help="super-vth or sub-vth")
    save_parser = sub.add_parser(
        "save-family", help="optimise a strategy family and save it as JSON")
    save_parser.add_argument("strategy", help="super-vth or sub-vth")
    save_parser.add_argument("path", help="output JSON path")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "report":
        return _cmd_report(args.root, check=args.check, jobs=args.jobs,
                           only=args.only, manifest_path=args.manifest)
    if args.command == "lint":
        from .lint import run_lint_command
        return run_lint_command(paths=args.paths,
                                output_format=args.output_format,
                                root=args.root,
                                baseline_path=args.baseline,
                                update_baseline=args.update_baseline,
                                explain=args.explain)
    if args.command == "grid":
        return _cmd_grid_build(quick=args.quick, jobs=args.jobs,
                               profile=args.profile,
                               validate_points=args.validate_points)
    if args.command == "serve":
        return _cmd_serve(transport=args.transport, host=args.host,
                          port=args.port, quick=args.quick,
                          no_grid=args.no_grid)
    if args.command == "yield":
        return _cmd_yield(strategy=args.strategy, node=args.node,
                          vdds=args.vdd, mode=args.mode,
                          method=args.method, trials=args.trials,
                          seed=args.seed, slowdown=args.slowdown,
                          snm_min_mv=args.snm_min_mv,
                          target_rel_err=args.target_rel_err,
                          r_max_sigma=args.r_max_sigma,
                          profile=args.profile)
    if args.command == "array":
        return _cmd_array(strategy=args.strategy, node=args.node,
                          study=args.study, rows=args.rows,
                          vdd=args.vdd, corners_mv=args.corners_mv,
                          solver=args.solver, profile=args.profile)
    if args.command == "cards":
        return _cmd_cards(args.strategy)
    if args.command == "save-family":
        return _cmd_save_family(args.strategy, args.path)
    return _cmd_run(args.experiment, plot=args.plot, jobs=args.jobs,
                    profile=args.profile)


if __name__ == "__main__":
    sys.exit(main())
