"""Command-line interface: run reproduced experiments.

Usage::

    repro list                 # show all experiments
    repro run fig4             # run one experiment, print its report
    repro run all              # run everything (slow but complete)
    repro run all --jobs 4     # ... fanned out over 4 worker processes
    repro run table2 --profile # ... printing solver/cache perf counters
    python -m repro run table2 # module form
"""

from __future__ import annotations

import argparse
import sys
import time

from . import perf
from .experiments import list_experiments, run_experiment


def _run_one(experiment_id: str):
    """Run one experiment, timing it."""
    start = time.perf_counter()
    result = run_experiment(experiment_id)
    elapsed = time.perf_counter() - start
    return result, elapsed


def _run_one_worker(experiment_id: str):
    """Worker body for the parallel runner.

    Module-level so it pickles into :class:`ProcessPoolExecutor`
    workers; experiments are pure functions of the registry id.  The
    counters are reset first because a forked worker inherits the
    parent's totals, which would double-count once merged back.
    """
    perf.reset()
    result, elapsed = _run_one(experiment_id)
    return result, elapsed, perf.snapshot()


def _print_result(result, elapsed: float, plot: bool) -> bool:
    print(result.render())
    if plot and result.series:
        from .analysis.plotting import render_ascii_chart
        # Chart series that share a y-label together.
        by_axis: dict[str, list] = {}
        for s in result.series:
            by_axis.setdefault(s.y_label, []).append(s)
        for y_label, group in by_axis.items():
            print(f"\n[{y_label}]")
            print(render_ascii_chart(group))
    print(f"-- completed in {elapsed:.1f}s --\n")
    return result.all_hold()


def _cmd_list() -> int:
    for experiment_id, title in list_experiments():
        print(f"{experiment_id:20s} {title}")
    return 0


def _cmd_run(targets: list[str], plot: bool = False, jobs: int = 1,
             profile: bool = False) -> int:
    known = [eid for eid, _t in list_experiments()]
    if "all" in targets:
        ids = known
    else:
        unknown = [t for t in targets if t not in known]
        if unknown:
            print(f"error: unknown experiment "
                  f"{', '.join(repr(t) for t in unknown)}; "
                  f"known ids: {', '.join(known)} (or 'all')",
                  file=sys.stderr)
            return 2
        ids = list(dict.fromkeys(targets))
    if jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    failures = 0
    if jobs == 1 or len(ids) == 1:
        for experiment_id in ids:
            result, elapsed = _run_one(experiment_id)
            if not _print_result(result, elapsed, plot):
                failures += 1
    else:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(jobs, len(ids))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # map() preserves submission order, so the report stream is
            # deterministic regardless of completion order.
            for result, elapsed, counts in pool.map(_run_one_worker, ids):
                perf.merge(counts)
                if not _print_result(result, elapsed, plot):
                    failures += 1

    if profile:
        print(perf.report())
    if failures:
        print(f"{failures} experiment(s) had claims that did not hold")
    return 1 if failures else 0


def _family(strategy: str):
    from .experiments.families import sub_vth_family, super_vth_family
    if strategy == "super-vth":
        return super_vth_family()
    if strategy == "sub-vth":
        return sub_vth_family()
    raise SystemExit(f"unknown strategy {strategy!r} "
                     "(choose super-vth or sub-vth)")


def _cmd_cards(strategy: str) -> int:
    from .scaling.compact_card import family_card_table
    print(family_card_table(_family(strategy)))
    return 0


def _cmd_save_family(strategy: str, path: str) -> int:
    from .io import family_to_dict, save_json
    family = _family(strategy)
    save_json(family_to_dict(family), path)
    print(f"wrote {strategy} family ({len(family.designs)} nodes) to {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Nanometer Device Scaling in "
                    "Subthreshold Circuits' (DAC 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run_parser = sub.add_parser("run", help="run experiments (or 'all')")
    run_parser.add_argument("experiment", nargs="+",
                            help="experiment id(s) or 'all'")
    run_parser.add_argument("--plot", action="store_true",
                            help="render ASCII charts of the series")
    run_parser.add_argument("--jobs", type=int, default=1, metavar="N",
                            help="run experiments across N worker "
                                 "processes (default 1)")
    run_parser.add_argument("--profile", action="store_true",
                            help="print solver/cache perf counters "
                                 "after the run")
    cards_parser = sub.add_parser(
        "cards", help="print a strategy family's model cards")
    cards_parser.add_argument("strategy", help="super-vth or sub-vth")
    save_parser = sub.add_parser(
        "save-family", help="optimise a strategy family and save it as JSON")
    save_parser.add_argument("strategy", help="super-vth or sub-vth")
    save_parser.add_argument("path", help="output JSON path")
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "cards":
        return _cmd_cards(args.strategy)
    if args.command == "save-family":
        return _cmd_save_family(args.strategy, args.path)
    return _cmd_run(args.experiment, plot=args.plot, jobs=args.jobs,
                    profile=args.profile)


if __name__ == "__main__":
    sys.exit(main())
