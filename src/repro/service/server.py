"""The design-space query server: dispatch, provenance, transports.

:class:`DesignSpaceService` is the transport-independent core — a pure
``request dict -> response dict`` dispatcher implementing the contract
tables in :mod:`repro.service.contract`.  Warm queries answer from the
fitted surrogate in well under a millisecond; anything the surrogate
cannot answer — no grid loaded, node off the grid, point outside the
hull of the tensors, a NaN-contaminated cell, a shifted process
corner — falls back to an exact batched root-solve, and every
successful answer carries a provenance footer (schema hash, answering
tier, grid id, recorded error bound).

Two asyncio transports wrap the same core: newline-delimited JSON over
stdio (:func:`serve_stdio`) and a minimal HTTP/1.1 endpoint
(:func:`serve_http`, ``POST /query`` with a JSON body, ``GET /info``).
Both are driven by ``repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import math
import sys

from .. import perf
from ..cache import model_schema_hash
from ..errors import OptimizationError, ParameterError, ReproError
from ..device.corners import Corner
from ..scaling.roadmap import node_by_name
from .contract import (
    ALL_METRICS,
    CORNERS,
    ERROR_CODES,
    FLAVOUR_MULTIPLIERS,
    PROTOCOL_VERSION,
    QUERY_TYPES,
    REQUEST_FIELDS,
)
from .exact import corner_snm_vmin, exact_design, exact_point, in_domain
from .surrogate import Surrogate

__all__ = ["DesignSpaceService", "serve_stdio", "serve_http"]


def _jsonable(value: float) -> float | None:
    """NaN becomes null on the wire (JSON has no NaN)."""
    return None if math.isnan(value) else value


class DesignSpaceService:
    """Query dispatcher over an optional surrogate plus the exact tier.

    With ``surrogate=None`` every data query answers from the exact
    tier (the degraded no-grid mode ``repro serve`` falls back to when
    the cache holds no tensors for the current model schema hash).
    """

    def __init__(self, surrogate: Surrogate | None = None) -> None:
        self.surrogate = surrogate
        self.schema_hash = model_schema_hash()

    # -- envelopes ----------------------------------------------------

    def _error(self, code: str, message: str, request) -> dict:
        assert code in ERROR_CODES
        perf.bump("service.errors")
        envelope = {"ok": False, "error": code, "message": message}
        if isinstance(request, dict) and "id" in request:
            envelope["id"] = request["id"]
        return envelope

    def _provenance(self, source: str,
                    metrics: tuple[str, ...]) -> dict:
        grid_id = None
        bound: dict[str, float | None] | None = None
        if source != "exact" and self.surrogate is not None:
            grid_id = self.surrogate.grid.spec.grid_id()
            recorded = self.surrogate.grid.error_bounds_rel or {}
            bound = {m: recorded.get(m) for m in metrics}
        return {
            "schema_hash": self.schema_hash,
            "source": source,
            "grid_id": grid_id,
            "error_bound_rel": bound,
            "protocol": PROTOCOL_VERSION,
        }

    # -- request validation -------------------------------------------

    def _validate(self, request: dict, query: str):
        """Contract check; returns an error envelope or None.

        Field presence and JSON types are checked against
        :data:`repro.service.contract.REQUEST_FIELDS`; ``metrics``
        entries against the served set; a pinned ``schema_hash``
        against the live model sources.
        """
        fields = REQUEST_FIELDS[query]
        for name, (kind, required, _doc) in fields.items():
            if name not in request:
                if required:
                    return self._error(
                        "bad_request",
                        f"missing required field {name!r}", request)
                continue
            value = request[name]
            if kind == "number" and not (isinstance(value, (int, float))
                                         and not isinstance(value, bool)):
                return self._error(
                    "bad_request", f"field {name!r} must be a number",
                    request)
            if kind == "string" and not isinstance(value, str):
                return self._error(
                    "bad_request", f"field {name!r} must be a string",
                    request)
            if kind == "array[string]" and not (
                    isinstance(value, list)
                    and all(isinstance(v, str) for v in value)):
                return self._error(
                    "bad_request",
                    f"field {name!r} must be an array of strings", request)
        unknown = sorted(set(request) - set(fields))
        if unknown:
            return self._error(
                "bad_request", f"unknown field(s): {', '.join(unknown)}",
                request)
        pinned = request.get("schema_hash")
        if pinned is not None and pinned != self.schema_hash:
            return self._error(
                "stale_schema",
                f"request pinned schema {pinned!r} but the server's "
                f"model sources hash to {self.schema_hash!r}", request)
        for metric in request.get("metrics", ()):
            if metric not in ALL_METRICS:
                return self._error(
                    "unknown_metric",
                    f"{metric!r} is not served; metrics: "
                    f"{', '.join(ALL_METRICS)}", request)
        return None

    # -- the two answer tiers -----------------------------------------

    def _point_values(self, node, l_poly_nm: float, ioff: float,
                      vdd_v: float, metrics: tuple[str, ...]
                      ) -> tuple[dict[str, float], str]:
        """Metric values at one point, surrogate-first.

        The surrogate answers only when it covers the node and every
        requested value comes back finite; a NaN from any metric —
        out-of-hull coordinates or a NaN-contaminated cell — sends the
        whole point to the exact tier so one query never mixes tiers.
        Returns ``(values, source)``.
        """
        if self.surrogate is not None:
            approx = self.surrogate.query(
                node.name, l_poly_nm / node.l_poly_nm,
                math.log10(ioff), vdd_v, metrics)
            if approx is not None and not any(
                    math.isnan(v) for v in approx.values()):
                perf.bump("service.surrogate_hits")
                return approx, "surrogate"
        perf.bump("service.exact_fallbacks")
        values = exact_point(node, l_poly_nm, ioff, vdd_v)
        return {m: values[m] for m in metrics}, "exact"

    # -- query handlers -----------------------------------------------

    def _handle_info(self, request: dict) -> dict:
        grid = None
        bounds = None
        if self.surrogate is not None:
            spec = self.surrogate.grid.spec
            grid = {"grid_id": spec.grid_id(), "axes": spec.to_meta()}
            bounds = self.surrogate.grid.error_bounds_rel
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "schema_hash": self.schema_hash,
            "grid": grid,
            "metrics": list(ALL_METRICS),
            "error_bounds_rel": bounds,
        }

    def _point_args(self, request: dict):
        """Resolve and domain-check the shared point fields.

        Returns ``(node, l_poly_nm, ioff, vdd_v)`` or an error
        envelope (``unknown_node`` / ``out_of_hull``).
        """
        try:
            node = node_by_name(str(request["node"]))
        except ParameterError as err:
            return self._error("unknown_node", str(err), request)
        l_poly_nm = float(request["l_poly_nm"])
        ioff = float(request["ioff_target_a_per_um"])
        vdd_v = float(request["vdd_v"])
        if not in_domain(node, l_poly_nm, ioff, vdd_v):
            return self._error(
                "out_of_hull",
                f"point (L_poly = {l_poly_nm:g} nm, I_off = {ioff:g} "
                f"A/um, V_dd = {vdd_v:g} V) lies outside the exact "
                f"tier's validated domain for {node.name}", request)
        return node, l_poly_nm, ioff, vdd_v

    def _handle_metrics(self, request: dict) -> dict:
        resolved = self._point_args(request)
        if isinstance(resolved, dict):
            return resolved
        node, l_poly_nm, ioff, vdd_v = resolved
        metrics = tuple(request.get("metrics", ALL_METRICS))
        values, source = self._point_values(
            node, l_poly_nm, ioff, vdd_v, metrics)
        return {
            "ok": True,
            "values": {m: _jsonable(values[m]) for m in metrics},
            "provenance": self._provenance(source, metrics),
        }

    def _handle_flavour_menu(self, request: dict) -> dict:
        resolved = self._point_args(request)
        if isinstance(resolved, dict):
            return resolved
        node, l_poly_nm, base_ioff, vdd_v = resolved
        metrics = tuple(request.get("metrics", ALL_METRICS))
        flavours: dict[str, dict] = {}
        sources = set()
        for flavour, multiplier in FLAVOUR_MULTIPLIERS.items():
            ioff = base_ioff * multiplier
            if not in_domain(node, l_poly_nm, ioff, vdd_v):
                return self._error(
                    "out_of_hull",
                    f"the {flavour} target {ioff:g} A/um (x{multiplier:g} "
                    f"of the base) leaves the validated domain", request)
            values, source = self._point_values(
                node, l_poly_nm, ioff, vdd_v, metrics)
            sources.add(source)
            flavours[flavour] = {
                "ioff_target_a_per_um": ioff,
                "values": {m: _jsonable(values[m]) for m in metrics},
                "source": source,
            }
        source = sources.pop() if len(sources) == 1 else "mixed"
        return {
            "ok": True,
            "flavours": flavours,
            "provenance": self._provenance(source, metrics),
        }

    def _handle_snm_vmin(self, request: dict) -> dict:
        corner_name = str(request.get("corner", "tt")).lower()
        if corner_name not in CORNERS:
            return self._error(
                "bad_request",
                f"corner must be one of {', '.join(CORNERS)}", request)
        resolved = self._point_args(request)
        if isinstance(resolved, dict):
            return resolved
        node, l_poly_nm, ioff, vdd_v = resolved
        metrics = ("snm_mv", "vmin_v")
        if corner_name == "tt":
            values, source = self._point_values(
                node, l_poly_nm, ioff, vdd_v, metrics)
        else:
            # Shifted corners re-dope the device pair, which the grid
            # axes do not cover: always the exact tier.
            perf.bump("service.exact_fallbacks")
            design = exact_design(node, l_poly_nm, ioff)
            values = corner_snm_vmin(design, vdd_v,
                                     Corner(corner_name))
            source = "exact"
        return {
            "ok": True,
            "corner": corner_name,
            "values": {m: _jsonable(values[m]) for m in metrics},
            "provenance": self._provenance(source, metrics),
        }

    # -- dispatch -----------------------------------------------------

    def handle(self, request) -> dict:
        """Answer one decoded request; never raises.

        The entry point both transports call.  Contract violations map
        to the error taxonomy; anything unexpected is caught and
        reported as ``internal`` so one bad query cannot take the
        server down.
        """
        perf.bump("service.queries")
        if not isinstance(request, dict):
            return self._error(
                "bad_request", "request must be a JSON object", request)
        query = request.get("query")
        if query not in QUERY_TYPES:
            return self._error(
                "unknown_query",
                f"unknown query {query!r}; expected one of "
                f"{', '.join(QUERY_TYPES)}", request)
        envelope = self._validate(request, query)
        if envelope is not None:
            return envelope
        try:
            if query == "info":
                response = self._handle_info(request)
            elif query == "metrics":
                response = self._handle_metrics(request)
            elif query == "flavour_menu":
                response = self._handle_flavour_menu(request)
            else:
                response = self._handle_snm_vmin(request)
        except OptimizationError as err:
            response = self._error("solver_failure", str(err), request)
        except ReproError as err:
            response = self._error("internal", str(err), request)
        except Exception as err:  # repro: noqa[RPR002] served as an 'internal' error envelope; the server must survive any query
            response = self._error(
                "internal", f"{type(err).__name__}: {err}", request)
        if response.get("ok") and "id" in request:
            response["id"] = request["id"]
        return response

    def handle_line(self, line: str) -> dict:
        """Decode one JSON line and answer it (stdio transport core)."""
        try:
            request = json.loads(line)
        except ValueError as err:
            return self._error("bad_request",
                               f"malformed JSON: {err}", None)
        return self.handle(request)


# -- transports --------------------------------------------------------

async def serve_stdio(service: DesignSpaceService,
                      reader: asyncio.StreamReader | None = None,
                      writer=None) -> None:
    """Serve newline-delimited JSON until EOF.

    One request object per input line, one response object per output
    line.  ``reader``/``writer`` default to this process's stdio
    (injectable in tests: any object with ``readline``/``write``).
    Responses are flushed per line, so a driving process can pipeline
    synchronously.
    """
    if reader is None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin)
    while True:
        raw = await reader.readline()
        if not raw:
            break
        line = raw.decode() if isinstance(raw, bytes) else raw
        if not line.strip():
            continue
        payload = json.dumps(service.handle_line(line), sort_keys=True)
        if writer is None:
            sys.stdout.write(payload + "\n")
            sys.stdout.flush()
        else:
            writer.write((payload + "\n").encode())
            drain = getattr(writer, "drain", None)
            if drain is not None:
                await drain()


_HTTP_MAX_BODY = 1 << 20


async def _handle_http_client(service: DesignSpaceService,
                              reader: asyncio.StreamReader,
                              writer: asyncio.StreamWriter) -> None:
    """One HTTP/1.1 connection: ``POST /query`` or ``GET /info``."""
    try:
        while True:
            request_line = await reader.readline()
            if not request_line:
                break
            parts = request_line.decode("latin-1").split()
            method = parts[0].upper() if parts else ""
            target = parts[1] if len(parts) > 1 else ""
            length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _sep, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = min(int(value.strip()), _HTTP_MAX_BODY)
            body = await reader.readexactly(length) if length else b""
            if method == "GET" and target == "/info":
                response = service.handle({"query": "info"})
                status = "200 OK"
            elif method == "POST" and target == "/query":
                response = service.handle_line(body.decode())
                status = "200 OK" if response.get("ok") else "400 Bad Request"
            else:
                response = {"ok": False, "error": "bad_request",
                            "message": "use POST /query or GET /info"}
                status = "404 Not Found"
            payload = json.dumps(response, sort_keys=True).encode()
            writer.write(
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: keep-alive\r\n\r\n".encode() + payload)
            await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError, ValueError):
        pass
    finally:
        writer.close()


async def serve_http(service: DesignSpaceService, host: str = "127.0.0.1",
                     port: int = 8337) -> None:
    """Serve the HTTP transport until cancelled.

    Prints the bound address (the OS picks the port when ``port=0``,
    which the smoke tooling uses to avoid collisions).
    """
    async def client(reader, writer):
        await _handle_http_client(service, reader, writer)

    server = await asyncio.start_server(client, host, port)
    bound = server.sockets[0].getsockname()
    print(f"serving design space on http://{bound[0]}:{bound[1]} "
          f"(schema {service.schema_hash})", flush=True)
    async with server:
        await server.serve_forever()
