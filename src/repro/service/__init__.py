"""Design-space-as-a-service: precomputed grids, surrogate, server.

The "experiment runner -> service" tier (ROADMAP item 1).  Four
modules, layered bottom-up:

* :mod:`~repro.service.contract` — the wire protocol: query/response
  schemas, error taxonomy, provenance fields.  Rendered into
  ``docs/SERVICE.md`` by the docs pipeline.
* :mod:`~repro.service.exact` — the exact tier: batched doping
  root-solves composed from the public flow APIs, bitwise equal to
  direct library calls.
* :mod:`~repro.service.grid` — sharded precompute of dense metric
  tensors over (node x L_poly x I_off target x V_dd), spilled into
  the schema-hash-keyed disk cache.
* :mod:`~repro.service.surrogate` — regular-grid interpolants over
  the tensors with measured worst-case error vs the exact tier.
* :mod:`~repro.service.server` — the asyncio query server (stdio-JSON
  and HTTP) behind ``repro serve``: surrogate-first, exact fallback,
  per-query provenance.

Quickstart::

    REPRO_CACHE_DIR=/tmp/repro python -m repro grid build --quick
    REPRO_CACHE_DIR=/tmp/repro python -m repro serve --quick
"""

from .contract import ALL_METRICS, ERROR_CODES, PROTOCOL_VERSION
from .exact import exact_design, exact_point
from .grid import Grid, GridSpec, build_grid, load_grid, store_grid
from .server import DesignSpaceService, serve_http, serve_stdio
from .surrogate import (
    SURROGATE_TOL_REL,
    Surrogate,
    fit_surrogate,
    validate_surrogate,
)

__all__ = [
    "ALL_METRICS",
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "exact_design",
    "exact_point",
    "Grid",
    "GridSpec",
    "build_grid",
    "load_grid",
    "store_grid",
    "DesignSpaceService",
    "serve_http",
    "serve_stdio",
    "SURROGATE_TOL_REL",
    "Surrogate",
    "fit_surrogate",
    "validate_surrogate",
]
