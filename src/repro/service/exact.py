"""Exact tier of the design-space service: batched root-solve answers.

The serving fallback for cache misses, out-of-hull points and shifted
corners — and the oracle the surrogate's recorded error bounds are
measured against.  Every function here composes the same public flow
APIs the experiments use (``optimize_doping_groups`` for the doping,
the scalar :class:`~repro.device.mosfet.MOSFET` metrics,
``noise_margins`` / ``find_vmin`` for the circuit figures), with
:func:`repro.scaling.batch.reset_warm_starts` called on entry, so an
exact service answer is *bitwise* the answer a direct library call
produces — a property the service tests assert.
"""

from __future__ import annotations

import math

from ..circuit.energy import chain_energy_per_cycle, find_vmin
from ..circuit.snm import noise_margins
from ..device.corners import Corner, at_corner
from ..device.mosfet import Polarity
from ..errors import LostRegenerationError, ParameterError
from ..scaling.batch import optimize_doping_groups, reset_warm_starts
from ..scaling.roadmap import NodeSpec
from ..scaling.strategy import DeviceDesign
from ..scaling.subvth import HALO_RATIO_GRID, SS_TIE_TOLERANCE
from ..scaling.supervth import PFET_WIDTH_RATIO

__all__ = [
    "DOMAIN_L_RATIO",
    "DOMAIN_LOG10_IOFF",
    "DOMAIN_VDD_V",
    "exact_design",
    "design_metrics",
    "exact_point",
    "corner_design",
    "corner_snm_vmin",
    "in_domain",
]

#: Validated domain of the exact tier, as (lo, hi) bounds.  Queries
#: outside these are ``out_of_hull`` *errors*; inside them but off the
#: precomputed grid they fall back to the solves below.
DOMAIN_L_RATIO: tuple[float, float] = (1.0, 4.0)
DOMAIN_LOG10_IOFF: tuple[float, float] = (-13.0, -8.0)
DOMAIN_VDD_V: tuple[float, float] = (0.10, 0.70)


def in_domain(node: NodeSpec, l_poly_nm: float,
              ioff_target_a_per_um: float, vdd_v: float) -> bool:
    """Whether a query point is inside the exact tier's domain.

    ``l_poly_nm`` [nm] is validated as a multiple of the node's etched
    length (:data:`DOMAIN_L_RATIO`), ``ioff_target_a_per_um`` [A/um]
    in log10 against :data:`DOMAIN_LOG10_IOFF`, and ``vdd_v`` [V]
    against :data:`DOMAIN_VDD_V`.
    """
    if ioff_target_a_per_um <= 0.0 or vdd_v <= 0.0 or l_poly_nm <= 0.0:
        return False
    ratio = l_poly_nm / node.l_poly_nm
    log_ioff = math.log10(ioff_target_a_per_um)
    return (DOMAIN_L_RATIO[0] <= ratio <= DOMAIN_L_RATIO[1]
            and DOMAIN_LOG10_IOFF[0] <= log_ioff <= DOMAIN_LOG10_IOFF[1]
            and DOMAIN_VDD_V[0] <= vdd_v <= DOMAIN_VDD_V[1])


def exact_design(node: NodeSpec, l_poly_nm: float,
                 ioff_target_a_per_um: float) -> DeviceDesign:
    """Solve the optimised device pair for one design-space point.

    Minimum-S_S doping meeting ``ioff_target_a_per_um`` [A/um] at the
    node's nominal rail, for the NFET (1 um) and the 2-um PFET, at gate
    length ``l_poly_nm`` [nm] — one cold batched root-solve over the
    ``2 x len(HALO_RATIO_GRID)`` candidate stack.  Lanes of a cold
    masked solve are independent, so each polarity's winner is bitwise
    the device ``optimize_doping_for_length`` returns on its own
    (asserted by ``tests/test_service_server.py``).
    """
    reset_warm_starts()
    groups = [
        (float(l_poly_nm), Polarity.NFET, 1.0,
         float(ioff_target_a_per_um), node.vdd_nominal),
        (float(l_poly_nm), Polarity.PFET, PFET_WIDTH_RATIO,
         float(ioff_target_a_per_um), node.vdd_nominal),
    ]
    n_dev, p_dev = optimize_doping_groups(node, groups, HALO_RATIO_GRID,
                                          SS_TIE_TOLERANCE)
    return DeviceDesign(node=node, nfet=n_dev, pfet=p_dev,
                        strategy="service", vdd=node.vdd_nominal)


def _snm_mv(design: DeviceDesign, vdd_v: float) -> float:
    """Inverter SNM ``min(NM_L, NM_H)`` [mV]; NaN once regeneration
    is lost (served as a null value, not an error)."""
    try:
        margins = noise_margins(design.inverter(vdd_v))
    except LostRegenerationError:
        return math.nan
    return 1000.0 * min(margins.nm_low, margins.nm_high)


def _vmin_v(design: DeviceDesign) -> float:
    """Minimum-energy supply of the reference chain [V]; NaN when the
    minimum sits on the sweep boundary (no interior V_min)."""
    try:
        return find_vmin(design.inverter(design.vdd)).vmin
    except ParameterError as err:
        if str(err).startswith("energy minimum at sweep boundary"):
            return math.nan
        raise


def design_metrics(design: DeviceDesign, vdd_v: float) -> dict[str, float]:
    """Every served metric of a design, evaluated at ``vdd_v`` [V].

    Scalar composition of the public metric APIs — the same numbers
    :meth:`repro.scaling.strategy.DeviceDesign.summary` and the
    experiment layer report.  Values follow
    :data:`repro.service.contract.METRIC_DOC`; ``snm_mv`` / ``vmin_v``
    are NaN where the model reports no answer.
    """
    nfet = design.nfet
    energy_j = chain_energy_per_cycle(design.inverter(vdd_v)).total_j
    return {
        "ioff_a_per_um": nfet.i_off_per_um(vdd_v),
        "ion_a_per_um": nfet.i_on_per_um(vdd_v),
        "vth_v": nfet.vth(vdd_v),
        "snm_mv": _snm_mv(design, vdd_v),
        "delay_ps": 1e12 * nfet.intrinsic_delay(vdd_v),
        "energy_fj_per_op": 1e15 * energy_j,
        "ss_mv_per_dec": nfet.ss_mv_per_dec,
        "vmin_v": _vmin_v(design),
    }


def exact_point(node: NodeSpec, l_poly_nm: float,
                ioff_target_a_per_um: float,
                vdd_v: float) -> dict[str, float]:
    """Solve one design-space point exactly and evaluate all metrics.

    The full fallback path: doping solve at (``l_poly_nm`` [nm],
    ``ioff_target_a_per_um`` [A/um]) then metric evaluation at
    ``vdd_v`` [V].  Raises
    :class:`~repro.errors.OptimizationError` when no doping meets the
    target (the server maps it to the ``solver_failure`` code).
    """
    design = exact_design(node, l_poly_nm, ioff_target_a_per_um)
    return design_metrics(design, vdd_v)


def corner_design(design: DeviceDesign, corner: Corner) -> DeviceDesign:
    """The design with both devices shifted to a global process corner.

    Applies :func:`repro.device.corners.at_corner` to the pair; TT
    returns the design unchanged.
    """
    if corner is Corner.TT:
        return design
    return DeviceDesign(
        node=design.node,
        nfet=at_corner(design.nfet, corner),
        pfet=at_corner(design.pfet, corner),
        strategy=design.strategy,
        vdd=design.vdd,
    )


def corner_snm_vmin(design: DeviceDesign, vdd_v: float,
                    corner: Corner) -> dict[str, float]:
    """SNM [mV] and V_min [V] of a design at a global process corner.

    Evaluated at supply ``vdd_v`` [V] on the corner-shifted pair.
    """
    shifted = corner_design(design, corner)
    return {"snm_mv": _snm_mv(shifted, vdd_v),
            "vmin_v": _vmin_v(shifted)}
