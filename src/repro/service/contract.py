"""The design-space service contract: queries, fields, error taxonomy.

Single source of truth for the wire protocol of ``repro serve``.  The
server (:mod:`repro.service.server`) validates requests against these
tables and the docs pipeline (:func:`repro.analysis.docgen.build_service_md`)
renders them into ``docs/SERVICE.md`` — the generated contract document
that ``repro report --check`` gates against drift, exactly like
``docs/RESULTS.md``.

Every quantity on the wire carries its unit in the field name, using
the same suffix vocabulary as the library identifiers
(:mod:`repro.units`): ``l_poly_nm`` [nm], ``ioff_target_a_per_um``
[A/um], ``vdd_v`` [V].  Responses echo the request ``id`` (when given)
and attach a provenance footer tying every answer to the physics-model
schema hash, the answering tier (surrogate vs exact), and the
surrogate's recorded worst-case error bound.
"""

from __future__ import annotations

#: Wire-protocol version; bumped on incompatible contract changes.
PROTOCOL_VERSION: int = 1

#: Metrics with a V_dd axis (tensor shape ``node x L x target x V_dd``).
VDD_METRICS: tuple[str, ...] = (
    "ioff_a_per_um",
    "ion_a_per_um",
    "vth_v",
    "snm_mv",
    "delay_ps",
    "energy_fj_per_op",
)

#: Per-design metrics without a V_dd axis (``node x L x target``).
DESIGN_METRICS: tuple[str, ...] = (
    "ss_mv_per_dec",
    "vmin_v",
)

#: Every metric the service can answer for.
ALL_METRICS: tuple[str, ...] = VDD_METRICS + DESIGN_METRICS

#: Metric -> (unit, one-line meaning).  NFET-referenced device metrics
#: follow the paper's Table 2/3 conventions; SNM / V_min / E_op are
#: evaluated on the symmetric inverter built from the optimised pair.
METRIC_DOC: dict[str, tuple[str, str]] = {
    "ioff_a_per_um": ("A/um", "NFET leakage per um of width at V_dd"),
    "ion_a_per_um": ("A/um", "NFET on-current per um of width at V_dd"),
    "vth_v": ("V", "NFET threshold voltage at drain bias V_dd "
                   "(DIBL included)"),
    "snm_mv": ("mV", "inverter static noise margin min(NM_L, NM_H) at "
                     "V_dd (null when regeneration is lost)"),
    "delay_ps": ("ps", "NFET intrinsic delay C_g V_dd / I_on at V_dd"),
    "energy_fj_per_op": ("fJ", "Eq. 7 energy per cycle of the 30-stage "
                               "reference chain at V_dd"),
    "ss_mv_per_dec": ("mV/dec", "NFET inverse subthreshold slope"),
    "vmin_v": ("V", "minimum-energy supply of the reference chain "
                    "(null when the minimum sits outside the sweep)"),
}

#: Query types the server answers.
QUERY_TYPES: tuple[str, ...] = ("info", "metrics", "flavour_menu",
                               "snm_vmin")

#: Process corners accepted by ``snm_vmin`` (``tt`` is served from the
#: surrogate; shifted corners always run the exact tier).
CORNERS: tuple[str, ...] = ("tt", "ff", "ss")

#: field -> (type, required, description).  Shared request fields.
_POINT_FIELDS: dict[str, tuple[str, bool, str]] = {
    "node": ("string", True,
             "technology node label (90nm / 65nm / 45nm / 32nm)"),
    "l_poly_nm": ("number", True, "gate length [nm]"),
    "ioff_target_a_per_um": ("number", True,
                             "leakage target the doping is solved "
                             "for [A/um], enforced at nominal rail"),
    "vdd_v": ("number", True, "supply voltage the metrics are "
                              "evaluated at [V]"),
}

#: Request schema per query type: field -> (type, required, description).
REQUEST_FIELDS: dict[str, dict[str, tuple[str, bool, str]]] = {
    "info": {
        "query": ("string", True, 'constant "info"'),
        "id": ("any", False, "opaque client token, echoed back"),
    },
    "metrics": {
        "query": ("string", True, 'constant "metrics"'),
        **_POINT_FIELDS,
        "metrics": ("array[string]", False,
                    "subset of the served metrics (default: all)"),
        "schema_hash": ("string", False,
                        "expected model schema hash; mismatch is a "
                        "stale_schema error"),
        "id": ("any", False, "opaque client token, echoed back"),
    },
    "flavour_menu": {
        "query": ("string", True, 'constant "flavour_menu"'),
        **_POINT_FIELDS,
        "metrics": ("array[string]", False,
                    "subset of the served metrics (default: all)"),
        "schema_hash": ("string", False,
                        "expected model schema hash; mismatch is a "
                        "stale_schema error"),
        "id": ("any", False, "opaque client token, echoed back"),
    },
    "snm_vmin": {
        "query": ("string", True, 'constant "snm_vmin"'),
        **_POINT_FIELDS,
        "corner": ("string", False,
                   "process corner tt / ff / ss (default tt; shifted "
                   "corners always answer from the exact tier)"),
        "schema_hash": ("string", False,
                        "expected model schema hash; mismatch is a "
                        "stale_schema error"),
        "id": ("any", False, "opaque client token, echoed back"),
    },
}

#: Response schema per query type: field -> description.
RESPONSE_FIELDS: dict[str, dict[str, str]] = {
    "info": {
        "ok": "true",
        "protocol": "wire-protocol version",
        "schema_hash": "current physics-model schema hash",
        "grid": "loaded grid axes + id, or null when serving exact-only",
        "metrics": "list of served metric names",
        "error_bounds_rel": "per-metric recorded worst-case relative "
                            "error of the surrogate, or null",
        "id": "echoed client token (when sent)",
    },
    "metrics": {
        "ok": "true",
        "values": "metric -> value (null where the model reports "
                  "no answer, e.g. lost regeneration)",
        "provenance": "provenance footer (see below)",
        "id": "echoed client token (when sent)",
    },
    "flavour_menu": {
        "ok": "true",
        "flavours": "flavour -> {ioff_target_a_per_um, values, source} "
                    "for the lvt/rvt/hvt menu scaled from the base "
                    "target (x10 / x1 / x0.1)",
        "provenance": "provenance footer; source is 'mixed' when "
                      "flavours answered from different tiers",
        "id": "echoed client token (when sent)",
    },
    "snm_vmin": {
        "ok": "true",
        "corner": "the corner answered for",
        "values": "{snm_mv, vmin_v}",
        "provenance": "provenance footer (see below)",
        "id": "echoed client token (when sent)",
    },
}

#: Provenance footer attached to every successful data response.
PROVENANCE_FIELDS: dict[str, str] = {
    "schema_hash": "physics-model schema hash the answer derives from "
                   "(repro.cache.model_schema_hash)",
    "source": "'surrogate' (interpolated from the precomputed grid), "
              "'exact' (batched root-solve fallback), or 'mixed'",
    "grid_id": "identity digest of the serving grid spec, or null for "
               "exact answers",
    "error_bound_rel": "per-metric recorded worst-case relative error "
                       "of the surrogate vs the exact tier (null for "
                       "exact answers)",
    "protocol": "wire-protocol version",
}

#: Error taxonomy: code -> (meaning, typical trigger).
ERROR_CODES: dict[str, tuple[str, str]] = {
    "bad_request": ("request is not a JSON object or is missing / "
                    "mistyping a required field",
                    "malformed JSON line, l_poly_nm as a string"),
    "unknown_query": ("the query type is not in the contract",
                      '"query": "foo"'),
    "unknown_node": ("the node label is not in the roadmap",
                     '"node": "28nm"'),
    "unknown_metric": ("a requested metric is not served",
                       '"metrics": ["iddq"]'),
    "out_of_hull": ("the point lies outside even the exact tier's "
                    "validated domain (not merely off the grid — "
                    "off-grid interior points silently fall back to "
                    "the exact solve)",
                    "l_poly_nm below the node's etched length, "
                    "non-positive V_dd or leakage target"),
    "stale_schema": ("the request pinned a schema_hash that differs "
                     "from the server's current model sources",
                     "client built against an older model revision"),
    "solver_failure": ("the exact tier's optimiser could not satisfy "
                       "the constraints at this point",
                       "leakage target unreachable at this length"),
    "internal": ("unexpected server-side failure",
                 "bug; the message carries the exception text"),
}

#: Flavour menu multipliers mirrored from repro.scaling.multivth.
FLAVOUR_MULTIPLIERS: dict[str, float] = {"lvt": 10.0, "rvt": 1.0,
                                         "hvt": 0.1}
