"""Surrogate tier: regular-grid interpolants over the metric tensors.

Per technology node (the categorical axis is never interpolated
across), the served metrics are stacked into two multi-channel
interpolants — (L_poly ratio, log10 leakage target, V_dd) for the
V_dd metrics, (L_poly ratio, log10 leakage target) for the per-design
ones — so one query costs two interpolator calls, not eight.
Strictly positive metrics (leakage, drive, delay, energy) interpolate
in log10 space, where the design-space curves are close to linear;
sign-changing or near-zero-crossing metrics (V_th, SNM, V_min, S_S)
interpolate directly.

Accuracy and latency are decoupled by a fit-time densify pass: when a
node's tensor slice is pchip-eligible (>= 4 points on every axis, no
NaN cells — PCHIP derivative estimation would smear a NaN beyond its
own cell), a pchip interpolant is evaluated once, vectorised, on a
:data:`REFINE`-x refined mesh, and the server interpolates *linearly*
on that mesh.  Linear calls are ~10x cheaper than pchip calls
(sub-0.2 ms per query) while the refined spacing keeps the linear
truncation error below the pchip fit error.  NaN-carrying or
too-coarse slices serve plain linear interpolation on the original
axes, where a NaN stays confined to its neighbouring cells.

Outside the hull — and anywhere a NaN cell contaminates the answer —
the served interpolant returns NaN, which the server treats as a miss
and routes to the exact tier.

:func:`validate_surrogate` measures the worst-case relative error of
the *served* interpolants (densify pass included) against the exact
tier at interior cell midpoints of the original grid; the recorded
per-metric bounds ride along in every query's provenance footer.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.interpolate import PchipInterpolator, RegularGridInterpolator

from ..scaling.roadmap import node_by_name
from .contract import ALL_METRICS, DESIGN_METRICS, VDD_METRICS
from .exact import exact_point
from .grid import Grid

__all__ = ["Surrogate", "fit_surrogate", "validate_surrogate",
           "SURROGATE_TOL_REL", "POSITIVE_METRICS", "REFINE"]

#: The stated surrogate accuracy target [relative error]: the serving
#: grid is sized so the recorded worst-case bound stays at or below
#: this on every served metric.
SURROGATE_TOL_REL: float = 1e-3

#: Metrics interpolated in log10 space (strictly positive by
#: construction; their design-space curves are near-linear in log10).
POSITIVE_METRICS: tuple[str, ...] = (
    "ioff_a_per_um", "ion_a_per_um", "delay_ps", "energy_fj_per_op")

#: Points per axis pchip needs for its derivative estimates.
_PCHIP_MIN_POINTS = 4

#: Fit-time mesh refinement: each grid cell of a pchip-eligible slice
#: is subdivided this many times before the serving (linear) fit.
REFINE: int = 4


def _refine_axis(axis: np.ndarray, factor: int) -> np.ndarray:
    """Subdivide every cell of ``axis`` into ``factor`` segments,
    keeping the original knots bitwise (segment interiors are fresh
    ``linspace`` points)."""
    pieces = [axis[:1]]
    for a, b in zip(axis, axis[1:]):
        pieces.append(np.linspace(a, b, factor + 1)[1:])
    return np.concatenate(pieces)


def _fit_slice(axes: tuple[np.ndarray, ...],
               values: np.ndarray) -> RegularGridInterpolator:
    """The served interpolant for one node's stacked channel tensor.

    pchip-eligible slices are densified (pchip evaluated on the
    refined mesh, linear served over it); the rest serve linear on
    the original axes.  ``values`` carries a trailing channel axis.
    """
    eligible = (all(axis.shape[0] >= _PCHIP_MIN_POINTS for axis in axes)
                and not np.any(np.isnan(values)))
    if eligible:
        # Tensor-product pchip, one vectorised 1-D pass per axis (the
        # whole tensor rides along as trailing dimensions), instead of
        # per-point recursive evaluation — ~100x faster to densify.
        fine_axes = tuple(_refine_axis(axis, REFINE) for axis in axes)
        for dim, (axis, fine) in enumerate(zip(axes, fine_axes)):
            values = PchipInterpolator(axis, values, axis=dim)(fine)
        axes = fine_axes
    return RegularGridInterpolator(
        axes, values, method="linear",
        bounds_error=False, fill_value=np.nan)


class Surrogate:
    """Fitted interpolants for every (node, metric) of a grid.

    Query coordinates mirror the grid axes: L_poly ratio
    (dimensionless multiple of the node's etched length), log10 of the
    leakage target [A/um], and supply [V] for the V_dd metrics.
    """

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        spec = grid.spec
        l_axis = np.asarray(spec.l_ratios, dtype=float)
        t_axis = np.asarray(spec.log10_ioff, dtype=float)
        v_axis = np.asarray(spec.vdd_v, dtype=float)
        self._vdd_channel = {m: i for i, m in enumerate(VDD_METRICS)}
        self._design_channel = {m: i for i, m in enumerate(DESIGN_METRICS)}
        self._vdd_interp: dict[str, RegularGridInterpolator] = {}
        self._design_interp: dict[str, RegularGridInterpolator] = {}
        for n, name in enumerate(spec.nodes):
            stacked = np.stack(
                [self._transform(m, grid.tensors[m][n])
                 for m in VDD_METRICS], axis=-1)
            self._vdd_interp[name] = _fit_slice(
                (l_axis, t_axis, v_axis), stacked)
            stacked = np.stack(
                [self._transform(m, grid.tensors[m][n])
                 for m in DESIGN_METRICS], axis=-1)
            self._design_interp[name] = _fit_slice(
                (l_axis, t_axis), stacked)

    @staticmethod
    def _transform(metric: str, values: np.ndarray) -> np.ndarray:
        if metric in POSITIVE_METRICS:
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.log10(values)
        return values

    @property
    def nodes(self) -> tuple[str, ...]:
        """Node labels the surrogate can answer for."""
        return self.grid.spec.nodes

    def query(self, node: str, l_ratio: float, log10_ioff: float,
              vdd_v: float, metrics: tuple[str, ...] = ALL_METRICS
              ) -> dict[str, float] | None:
        """Interpolated metric values at one design-space point.

        Coordinates are (L_poly ratio, log10 I_off target [A/um],
        supply ``vdd_v`` [V]).  Returns None when the node is not on
        the grid; individual values are NaN outside the hull or where
        a NaN grid cell contaminates the answer (the server falls back
        to the exact tier on any NaN).
        """
        if node not in self._vdd_interp:
            return None
        out: dict[str, float] = {}
        if any(m in self._vdd_channel for m in metrics):
            row = self._vdd_interp[node](
                np.array([[l_ratio, log10_ioff, vdd_v]]))[0]
            for m in metrics:
                channel = self._vdd_channel.get(m)
                if channel is not None:
                    value = float(row[channel])
                    out[m] = 10.0 ** value if m in POSITIVE_METRICS \
                        else value
        if any(m in self._design_channel for m in metrics):
            row = self._design_interp[node](
                np.array([[l_ratio, log10_ioff]]))[0]
            for m in metrics:
                channel = self._design_channel.get(m)
                if channel is not None:
                    out[m] = float(row[channel])
        return out


def fit_surrogate(grid: Grid) -> Surrogate:
    """Fit (and densify) the interpolant set over a filled grid."""
    return Surrogate(grid)


def _midpoints(axis: tuple[float, ...]) -> list[float]:
    return [0.5 * (a + b) for a, b in zip(axis, axis[1:])]


def validate_surrogate(surrogate: Surrogate,
                       max_points_per_node: int = 32) -> dict[str, float]:
    """Worst-case relative error of the surrogate vs the exact tier.

    Evaluates both tiers at interior cell midpoints of the original
    grid — the worst case of a cell-wise interpolant — and records,
    per metric, the largest ``|surrogate - exact| / |exact|``
    observed.  Midpoint sets larger than ``max_points_per_node`` are
    strided deterministically (the subsample is a pure function of the
    spec, so rebuilt grids record identical bounds).  Point pairs
    where either tier reports NaN are skipped: a NaN surrogate answer
    is served from the exact tier anyway, and an exact NaN marks a
    region where the metric is undefined at the grid's own resolution.

    The result is attached to ``surrogate.grid.error_bounds_rel`` and
    returned.
    """
    spec = surrogate.grid.spec
    bounds = {metric: 0.0 for metric in ALL_METRICS}
    for name in spec.nodes:
        node = node_by_name(name)
        points = [(lr, ti, vv)
                  for lr in _midpoints(spec.l_ratios)
                  for ti in _midpoints(spec.log10_ioff)
                  for vv in _midpoints(spec.vdd_v)]
        if len(points) > max_points_per_node:
            stride = -(-len(points) // max_points_per_node)
            points = points[::stride]
        for l_ratio, log_t, vdd in points:
            approx = surrogate.query(name, l_ratio, log_t, vdd)
            assert approx is not None
            exact = exact_point(node, l_ratio * node.l_poly_nm,
                                10.0 ** log_t, vdd)
            for metric in ALL_METRICS:
                a, e = approx[metric], exact[metric]
                if math.isnan(a) or math.isnan(e):
                    continue
                scale = max(abs(e), 1e-30)
                bounds[metric] = max(bounds[metric], abs(a - e) / scale)
    surrogate.grid.error_bounds_rel = bounds
    return bounds
