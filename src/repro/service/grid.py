"""Precomputed design-space metric grids: fill, spill, reload.

The service's warm tier is a set of dense metric tensors over the
design-space axes — technology node (categorical), drawn gate length
(as a multiple of the node's etched length), log10 of the leakage
target, and supply voltage.  One **shard** is one (node, L_poly)
pair: a shard resets the solver warm starts, runs one batched doping
root-solve over every leakage target and both polarities
(:func:`repro.scaling.batch.optimize_doping_groups`), then evaluates
all served metrics over the V_dd axis — the NFET curves through one
:meth:`repro.device.batch.ParameterStack.from_devices` stack, the
circuit figures through the same scalar helpers the exact tier uses.

Because every shard starts from :func:`reset_warm_starts` and shards
are assembled in spec order, the tensors are byte-identical however
the shards are distributed over worker processes — the same
``reset_warm_starts()`` contract that makes ``repro report --jobs N``
order-independent, asserted by ``tests/test_service_grid.py``.

Grids spill to the disk cache as ``grid-{grid_id}-{schema_hash}.npz``
(:func:`repro.cache.grid_path`): the axes digest names the spec, the
model schema hash versions the physics, so editing any model source
orphans old tensors exactly like stale family entries.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

import numpy as np

from .. import perf
from ..cache import grid_path, model_schema_hash
from ..device.batch import ParameterStack
from ..device.mosfet import Polarity
from ..errors import OptimizationError, ParameterError
from ..scaling.batch import optimize_doping_groups, reset_warm_starts
from ..scaling.roadmap import PRIMARY_NODES, node_by_name
from ..scaling.strategy import DeviceDesign
from ..scaling.subvth import HALO_RATIO_GRID, SS_TIE_TOLERANCE
from ..scaling.supervth import PFET_WIDTH_RATIO
from ..circuit.energy import chain_energy_sweep
from .contract import ALL_METRICS, DESIGN_METRICS, VDD_METRICS
from .exact import _snm_mv, _vmin_v

__all__ = ["GridSpec", "Grid", "build_grid", "fill_shard",
           "store_grid", "load_grid"]


@dataclass(frozen=True)
class GridSpec:
    """Axes of one precomputed design-space grid.

    Attributes
    ----------
    nodes:
        Technology node labels (categorical axis; the surrogate never
        interpolates across nodes).
    l_ratios:
        Drawn gate length as multiples of each node's etched length
        (dimensionless; ``l_poly_nm = ratio * node.l_poly_nm`` [nm]).
    log10_ioff:
        log10 of the leakage target [A/um] the doping is solved for.
    vdd_v:
        Supply voltages [V] the V_dd-axis metrics are evaluated at.
    """

    nodes: tuple[str, ...]
    l_ratios: tuple[float, ...]
    log10_ioff: tuple[float, ...]
    vdd_v: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ParameterError("grid needs at least one node")
        for name, axis in (("l_ratios", self.l_ratios),
                           ("log10_ioff", self.log10_ioff),
                           ("vdd_v", self.vdd_v)):
            if len(axis) < 2:
                raise ParameterError(f"{name} needs >= 2 points")
            if any(b <= a for a, b in zip(axis, axis[1:])):
                raise ParameterError(f"{name} must be strictly increasing")
        if self.l_ratios[0] < 1.0:
            raise ParameterError("l_ratios below 1.0 draw the gate "
                                 "shorter than the node's etched length")
        if self.vdd_v[0] <= 0.0:
            raise ParameterError("vdd_v must be positive")

    @classmethod
    def default(cls) -> "GridSpec":
        """The full serving grid over the paper's four primary nodes.

        Axis spacings (0.05 in L ratio, ~0.19 decade in leakage
        target, 20 mV in supply) match the densities at which the
        surrogate's measured worst-case error stays within
        ``SURROGATE_TOL_REL`` on every served metric.  Filling it is
        an offline job — minutes with ``repro grid build --jobs N``.
        """
        return cls(
            nodes=tuple(PRIMARY_NODES),
            l_ratios=tuple(round(1.0 + 0.05 * i, 4) for i in range(21)),
            log10_ioff=tuple(round(-11.5 + 2.5 * i / 13.0, 6)
                             for i in range(14)),
            vdd_v=tuple(round(0.16 + 0.02 * i, 4) for i in range(18)),
        )

    @classmethod
    def quick(cls) -> "GridSpec":
        """A small grid for tests and the CI smoke job: two nodes over
        a narrow design-space window, but at the same axis densities
        as :meth:`default` so the pchip densify pass engages and the
        recorded error bounds stay within ``SURROGATE_TOL_REL``.
        Fills in seconds, not minutes."""
        return cls(
            nodes=("90nm", "65nm"),
            l_ratios=tuple(round(1.5 + 0.05 * i, 4) for i in range(11)),
            log10_ioff=(-10.6, -10.4, -10.2, -10.0),
            vdd_v=(0.24, 0.26, 0.28, 0.30, 0.32),
        )

    @property
    def shape(self) -> tuple[int, int, int, int]:
        """Tensor shape ``(nodes, l_ratios, targets, vdds)``."""
        return (len(self.nodes), len(self.l_ratios),
                len(self.log10_ioff), len(self.vdd_v))

    def grid_id(self) -> str:
        """Axes digest naming this spec in cache filenames."""
        payload = json.dumps(self.to_meta(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:12]

    def to_meta(self) -> dict:
        """JSON-serialisable axes record (round-trips via
        :meth:`from_meta`; float axes serialise via ``repr`` so the
        round trip is bitwise)."""
        return {
            "nodes": list(self.nodes),
            "l_ratios": list(self.l_ratios),
            "log10_ioff": list(self.log10_ioff),
            "vdd_v": list(self.vdd_v),
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "GridSpec":
        return cls(
            nodes=tuple(str(n) for n in meta["nodes"]),
            l_ratios=tuple(float(x) for x in meta["l_ratios"]),
            log10_ioff=tuple(float(x) for x in meta["log10_ioff"]),
            vdd_v=tuple(float(x) for x in meta["vdd_v"]),
        )


@dataclass
class Grid:
    """Filled metric tensors for one :class:`GridSpec`.

    ``tensors`` maps each V_dd metric to a ``(N, L, T, V)`` array and
    each per-design metric to ``(N, L, T)``; NaN cells mark points
    where the model reports no answer (lost regeneration, boundary
    V_min) or the doping solve found no feasible candidate.
    ``error_bounds_rel`` is attached after surrogate validation
    (:func:`repro.service.surrogate.validate_surrogate`).
    """

    spec: GridSpec
    schema_hash: str
    tensors: dict[str, np.ndarray]
    error_bounds_rel: dict[str, float] | None = field(default=None)


def _shard_designs(node, l_poly_nm: float,
                   targets: tuple[float, ...]) -> list[DeviceDesign | None]:
    """Optimised designs for every leakage target of one shard.

    One batched root-solve covers the whole ``2 x targets x halo``
    stack; when any target is infeasible the call degrades to
    per-target solves so the feasible rows still fill (cold lanes are
    independent, so the per-target answers are bitwise the batched
    ones).  Infeasible targets yield None (a NaN grid row).
    """
    def groups_for(subset: tuple[float, ...]):
        return ([(l_poly_nm, Polarity.NFET, 1.0, t, node.vdd_nominal)
                 for t in subset]
                + [(l_poly_nm, Polarity.PFET, PFET_WIDTH_RATIO, t,
                    node.vdd_nominal) for t in subset])

    try:
        devices = optimize_doping_groups(node, groups_for(targets),
                                         HALO_RATIO_GRID, SS_TIE_TOLERANCE)
    except OptimizationError:
        designs: list[DeviceDesign | None] = []
        for target in targets:
            try:
                pair = optimize_doping_groups(
                    node, groups_for((target,)),
                    HALO_RATIO_GRID, SS_TIE_TOLERANCE)
            except OptimizationError:
                designs.append(None)
                continue
            designs.append(DeviceDesign(
                node=node, nfet=pair[0], pfet=pair[1],
                strategy="service", vdd=node.vdd_nominal))
        return designs
    n_targets = len(targets)
    return [DeviceDesign(node=node, nfet=devices[i],
                         pfet=devices[n_targets + i],
                         strategy="service", vdd=node.vdd_nominal)
            for i in range(n_targets)]


def fill_shard(spec: GridSpec, node_name: str,
               l_ratio: float) -> dict[str, np.ndarray]:
    """Fill one (node, L_poly) shard of the grid.

    Solves the doping for every leakage target [A/um] at drawn length
    ``l_ratio * node.l_poly_nm`` [nm], then evaluates every served
    metric over the V_dd axis [V]: leakage/drive/threshold through one
    parameter-axis device stack, energy through the vectorised Eq. 7
    sweep, SNM/delay/V_min through the exact tier's scalar helpers.
    Starts from :func:`reset_warm_starts`, so the result is a pure
    function of (spec, node, ratio) — the sharding determinism
    contract.
    """
    node = node_by_name(node_name)
    l_poly_nm = l_ratio * node.l_poly_nm
    targets = tuple(10.0 ** t for t in spec.log10_ioff)
    vdd = np.asarray(spec.vdd_v, dtype=float)
    n_targets, n_vdd = len(targets), vdd.shape[0]

    reset_warm_starts()
    designs = _shard_designs(node, l_poly_nm, targets)

    out = {metric: np.full((n_targets, n_vdd), np.nan)
           for metric in VDD_METRICS}
    out.update({metric: np.full(n_targets, np.nan)
                for metric in DESIGN_METRICS})

    solved = [(i, d) for i, d in enumerate(designs) if d is not None]
    if solved:
        # NFET device curves for the whole shard in one stacked pass:
        # lanes are the solved targets, broadcast against the V_dd row.
        stack = ParameterStack.from_devices([d.nfet for _i, d in solved])
        metrics = stack.metrics(
            np.array([d.nfet.profile.n_sub_cm3 for _i, d in solved]),
            np.array([d.nfet.profile.n_p_halo_cm3 for _i, d in solved]),
        )
        rows = [i for i, _d in solved]
        out["ioff_a_per_um"][rows] = metrics.i_off_per_um(vdd[:, None]).T
        out["ion_a_per_um"][rows] = metrics.i_on_per_um(vdd[:, None]).T
        out["vth_v"][rows] = metrics.vth(vdd[:, None]).T

    for i, design in solved:
        out["energy_fj_per_op"][i] = 1e15 * chain_energy_sweep(
            design.inverter(float(vdd[0])), vdd)
        for j in range(n_vdd):
            v = float(vdd[j])
            out["snm_mv"][i, j] = _snm_mv(design, v)
            out["delay_ps"][i, j] = 1e12 * design.nfet.intrinsic_delay(v)
        out["ss_mv_per_dec"][i] = design.nfet.ss_mv_per_dec
        out["vmin_v"][i] = _vmin_v(design)

    perf.bump("service.grid.shards")
    perf.bump("service.grid.points", n_targets * n_vdd)
    return out


def _fill_shard_worker(args: tuple[GridSpec, str, float]):
    """Worker body for the sharded grid fill.

    Module-level so it pickles into :class:`ProcessPoolExecutor`
    workers; mirrors :func:`repro.cli._run_one_worker` — counters are
    reset first (a forked worker inherits the parent's totals) and the
    shard's snapshot rides back for the parent to merge.
    """
    spec, node_name, l_ratio = args
    perf.reset()
    payload = fill_shard(spec, node_name, l_ratio)
    return payload, perf.snapshot()


def build_grid(spec: GridSpec, jobs: int = 1) -> Grid:
    """Fill every tensor of ``spec``, optionally sharded over processes.

    Shards — (node, L_poly ratio) pairs — are submitted in spec order
    and assembled in spec order (``pool.map`` preserves submission
    order), and each shard resets its own warm starts, so the tensors
    are byte-identical for any ``jobs`` value.
    """
    if jobs < 1:
        raise ParameterError("jobs must be >= 1")
    shards = [(spec, name, ratio)
              for name in spec.nodes for ratio in spec.l_ratios]
    if jobs == 1 or len(shards) == 1:
        payloads = [fill_shard(*args) for args in shards]
    else:
        from concurrent.futures import ProcessPoolExecutor
        workers = min(jobs, len(shards))
        payloads = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for payload, counts in pool.map(_fill_shard_worker, shards):
                perf.merge(counts)
                payloads.append(payload)

    n_nodes, n_ratios, n_targets, n_vdd = spec.shape
    tensors = {metric: np.full((n_nodes, n_ratios, n_targets, n_vdd),
                               np.nan)
               for metric in VDD_METRICS}
    tensors.update({metric: np.full((n_nodes, n_ratios, n_targets), np.nan)
                    for metric in DESIGN_METRICS})
    for flat, payload in enumerate(payloads):
        node_idx, ratio_idx = divmod(flat, n_ratios)
        for metric in ALL_METRICS:
            tensors[metric][node_idx, ratio_idx] = payload[metric]
    return Grid(spec=spec, schema_hash=model_schema_hash(),
                tensors=tensors)


def store_grid(grid: Grid):
    """Spill a grid into the disk cache; returns the path or None.

    The ``.npz`` bundles every tensor plus a JSON meta record (axes,
    schema hash, recorded error bounds, wire-protocol version).  A
    no-op returning None when the disk cache is disabled.
    """
    path = grid_path(grid.spec.grid_id())
    if path is None:
        return None
    from .contract import PROTOCOL_VERSION
    meta = {
        "schema": 1,
        "protocol": PROTOCOL_VERSION,
        "grid_id": grid.spec.grid_id(),
        "schema_hash": grid.schema_hash,
        "spec": grid.spec.to_meta(),
        "error_bounds_rel": grid.error_bounds_rel,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".npz.tmp")
    with tmp.open("wb") as handle:
        np.savez(handle, meta=np.frombuffer(
            json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8),
            **grid.tensors)
    tmp.replace(path)
    perf.bump("cache.grid.stores")
    return path


def load_grid(spec: GridSpec) -> Grid | None:
    """Reload a spilled grid, or None on miss.

    A miss is any of: disk cache disabled, no entry for this spec
    under the *current* model schema hash (the filename carries the
    hash, so stale-schema entries are invisible), or an unreadable /
    structurally wrong file.  The caller rebuilds or serves exact.
    """
    path = grid_path(spec.grid_id())
    if path is None:
        return None
    try:
        with np.load(path) as payload:
            meta = json.loads(bytes(payload["meta"]).decode())
            tensors = {metric: payload[metric] for metric in ALL_METRICS}
        stale = (meta.get("schema") != 1
                 or meta.get("schema_hash") != model_schema_hash()
                 or GridSpec.from_meta(meta["spec"]) != spec
                 or any(tensors[m].shape != spec.shape
                        for m in VDD_METRICS))
    except (OSError, ValueError, KeyError):
        perf.bump("cache.grid.misses")
        return None
    if stale:
        perf.bump("cache.grid.misses")
        return None
    bounds = meta.get("error_bounds_rel")
    if bounds is not None:
        bounds = {str(k): float(v) for k, v in bounds.items()
                  if v is not None and math.isfinite(float(v))}
    perf.bump("cache.grid.hits")
    return Grid(spec=spec, schema_hash=str(meta["schema_hash"]),
                tensors=tensors, error_bounds_rel=bounds)
