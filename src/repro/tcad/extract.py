"""Parameter extraction from simulated I-V curves.

Mirrors the post-processing one applies to MEDICI (or measurement)
output: constant-current threshold voltage, log-slope inverse
subthreshold swing, DIBL from a linear/saturation curve pair, and the
on/off currents the paper's figures are built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError


@dataclass(frozen=True)
class IdVgCurve:
    """A transfer (I_d vs V_gs) curve at fixed V_ds.

    Attributes
    ----------
    vgs:
        Gate voltages [V], strictly increasing.
    ids:
        Drain currents [A], positive.
    vds:
        Drain bias of the sweep [V].
    width_um:
        Device width, for per-µm normalisation.
    """

    vgs: np.ndarray
    ids: np.ndarray
    vds: float
    width_um: float = 1.0

    def __post_init__(self) -> None:
        vgs = np.asarray(self.vgs, dtype=float)
        ids = np.asarray(self.ids, dtype=float)
        if vgs.ndim != 1 or vgs.size < 4 or ids.shape != vgs.shape:
            raise ParameterError("curve needs matching 1-D arrays, >= 4 points")
        if np.any(np.diff(vgs) <= 0.0):
            raise ParameterError("vgs must be strictly increasing")
        if np.any(ids <= 0.0):
            raise ParameterError("currents must be positive for extraction")
        object.__setattr__(self, "vgs", vgs)
        object.__setattr__(self, "ids", ids)

    @property
    def i_off(self) -> float:
        """Current at the lowest swept gate voltage [A]."""
        return float(self.ids[0])

    def current_at(self, vgs: float) -> float:
        """Log-linear interpolated current at an arbitrary V_gs [A]."""
        if vgs < self.vgs[0] or vgs > self.vgs[-1]:
            raise ParameterError("vgs outside the swept range")
        return float(np.exp(np.interp(vgs, self.vgs, np.log(self.ids))))


def extract_vth_constant_current(curve: IdVgCurve,
                                 criterion_a: float) -> float:
    """Constant-current V_th: the V_gs where I_d crosses
    ``criterion_a`` [A].

    Uses log-linear interpolation between bracketing sweep points.
    """
    if criterion_a <= 0.0:
        raise ParameterError("criterion current must be positive")
    log_i = np.log(curve.ids)
    log_c = np.log(criterion_a)
    if log_c < log_i[0] or log_c > log_i[-1]:
        raise ParameterError(
            f"criterion {criterion_a:.3g} A outside curve range "
            f"[{curve.ids[0]:.3g}, {curve.ids[-1]:.3g}] A"
        )
    return float(np.interp(log_c, log_i, curve.vgs))


def extract_ss(curve: IdVgCurve, decade_low: float = 3.0,
               decade_high: float = 1.0) -> float:
    """Inverse subthreshold slope [V/dec] from the log-linear region.

    Fits ``V_gs`` against ``log10(I_d)`` over the window from
    ``decade_low`` decades below to ``decade_high`` decades below the
    curve maximum — the standard swing-extraction recipe.
    """
    if decade_low <= decade_high:
        raise ParameterError("decade_low must exceed decade_high")
    log_i = np.log10(curve.ids)
    top = log_i[-1]
    mask = (log_i >= top - decade_low) & (log_i <= top - decade_high)
    if np.count_nonzero(mask) < 3:
        raise ParameterError("not enough points in the subthreshold window")
    slope, _ = np.polyfit(log_i[mask], curve.vgs[mask], 1)
    if slope <= 0.0:
        raise ParameterError("non-physical (non-increasing) transfer curve")
    return float(slope)


def extract_dibl(lin_curve: IdVgCurve, sat_curve: IdVgCurve,
                 criterion_a: float) -> float:
    """DIBL [mV/V] from a linear/saturation pair of transfer curves
    at the constant-current criterion ``criterion_a`` [A]."""
    if sat_curve.vds <= lin_curve.vds:
        raise ParameterError("saturation curve must have the larger vds")
    vth_lin = extract_vth_constant_current(lin_curve, criterion_a)
    vth_sat = extract_vth_constant_current(sat_curve, criterion_a)
    return 1000.0 * (vth_lin - vth_sat) / (sat_curve.vds - lin_curve.vds)


def on_off_from_curve(curve: IdVgCurve, vdd: float) -> tuple[float, float]:
    """(I_on, I_off) at supply ``vdd`` from a saturation transfer curve."""
    i_on = curve.current_at(vdd)
    i_off = curve.current_at(0.0) if curve.vgs[0] < 0.0 else curve.i_off
    return i_on, i_off
