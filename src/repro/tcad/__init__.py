"""Numerical device-simulation substrate (the MEDICI substitute).

The paper evaluates its devices in MEDICI, a commercial 2-D TCAD
simulator we cannot ship.  This package provides the replacement used
throughout the reproduction:

* :mod:`repro.tcad.grid` — nonuniform 1-D meshes,
* :mod:`repro.tcad.poisson1d` — a Newton solver for the nonlinear 1-D
  Poisson equation through the vertical MOS stack with an arbitrary
  vertical doping profile (halo included),
* :mod:`repro.tcad.charge` — inversion/depletion sheet charges from the
  converged potential,
* :mod:`repro.tcad.quasi2d` — the quasi-2-D characteristic-length model
  that injects short-channel effects into the 1-D solution,
* :mod:`repro.tcad.extract` — V_th / S_S / DIBL extraction from I-V
  data, mirroring what one does with MEDICI output decks,
* :mod:`repro.tcad.simulator` — :class:`DeviceSimulator`, the top-level
  "run a device, get curves" API.
"""

from .grid import Mesh1D
from .poisson1d import (
    BatchPoissonSolution,
    PoissonSolution,
    solve_mos_poisson,
    solve_mos_poisson_batch,
)
from .charge import sheet_charges, sheet_charges_batch
from .quasi2d import sce_vth_shift
from .extract import (
    extract_vth_constant_current,
    extract_ss,
    extract_dibl,
    IdVgCurve,
)
from .simulator import DeviceSimulator

__all__ = [
    "Mesh1D",
    "BatchPoissonSolution",
    "PoissonSolution",
    "solve_mos_poisson",
    "solve_mos_poisson_batch",
    "sheet_charges",
    "sheet_charges_batch",
    "sce_vth_shift",
    "extract_vth_constant_current",
    "extract_ss",
    "extract_dibl",
    "IdVgCurve",
    "DeviceSimulator",
]
