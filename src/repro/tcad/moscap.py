"""Quasi-static MOS C-V simulation.

The low-frequency gate capacitance is the derivative of the total
semiconductor sheet charge with respect to gate voltage, in series with
nothing (the oxide is included through the boundary condition).  This
module computes C_gg(V_g) numerically from the Poisson solver and is
the library's ground truth for the *weak-inversion capacitance
collapse* — the effect that makes the sub-V_th strategy's longer gates
cheap (see :meth:`repro.device.capacitance.CapacitanceModel.c_gate_weak`)
and therefore underpins the Fig. 12 energy result.

The classic low-frequency C-V shape emerges: accumulation at C_ox,
a depletion minimum, and recovery to C_ox in strong inversion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from .charge import sheet_charges
from .simulator import DeviceSimulator


@dataclass(frozen=True)
class CVCurve:
    """A quasi-static C-V characteristic.

    Attributes
    ----------
    vg:
        Gate voltages [V].
    c_gg_per_area:
        Gate capacitance per area [F/cm^2].
    c_ox_per_area:
        The oxide capacitance bound [F/cm^2].
    """

    vg: np.ndarray
    c_gg_per_area: np.ndarray
    c_ox_per_area: float

    def minimum(self) -> tuple[float, float]:
        """(V_g, C) at the depletion minimum."""
        idx = int(np.argmin(self.c_gg_per_area))
        return float(self.vg[idx]), float(self.c_gg_per_area[idx])

    def at(self, vg: float) -> float:
        """Interpolated capacitance at ``vg`` [F/cm^2]."""
        return float(np.interp(vg, self.vg, self.c_gg_per_area))


def simulate_cv(simulator: DeviceSimulator, vg_lo: float, vg_hi: float,
                n_points: int = 61) -> CVCurve:
    """Quasi-static C-V by charge differentiation.

    ``C_gg = dQ_s/dV_g`` with ``Q_s`` the total (inversion + depletion)
    semiconductor sheet charge from the converged Poisson solution at
    each bias.  Low-frequency limit: minority carriers follow the gate.
    """
    if vg_hi <= vg_lo:
        raise ParameterError("need vg_hi > vg_lo")
    if n_points < 9:
        raise ParameterError("need at least 9 C-V points")
    vg = np.linspace(vg_lo, vg_hi, n_points)
    q_total = np.empty_like(vg)
    warm = None
    for i, v in enumerate(vg):
        sol = simulator.solve(float(v), initial_psi=warm)
        warm = sol.psi_v
        q_total[i] = sheet_charges(sol).total
    c_gg = np.gradient(q_total, vg)
    c_ox = simulator.device.stack.capacitance_per_area
    # Numerical differentiation of a monotone charge: clip tiny
    # negative noise at the flat ends.
    c_gg = np.clip(c_gg, 0.0, None)
    return CVCurve(vg=vg, c_gg_per_area=c_gg, c_ox_per_area=c_ox)


def weak_inversion_capacitance_ratio(simulator: DeviceSimulator) -> float:
    """Numeric ``C_gg(weak inversion) / C_ox`` for the bound device.

    Evaluated midway between the depletion minimum and threshold; this
    is the quantity the compact model approximates as ``(m-1)/m`` and
    the sub-V_th energy argument rides on.
    """
    dev = simulator.device
    vth0 = dev.threshold.vth0()
    curve = simulate_cv(simulator, vth0 - 0.5, vth0 + 0.4, n_points=46)
    return curve.at(vth0 - 0.15) / curve.c_ox_per_area


def compare_with_compact(simulator: DeviceSimulator) -> dict[str, float]:
    """Numeric vs compact weak-inversion intrinsic-capacitance ratio.

    The compact model uses ``(m-1)/m`` for the intrinsic area term; the
    numeric value is the C-V curve in weak inversion.  Returns both and
    their relative difference.
    """
    numeric = weak_inversion_capacitance_ratio(simulator)
    m = simulator.device.slope_factor
    compact = (m - 1.0) / m
    return {
        "numeric_ratio": numeric,
        "compact_ratio": compact,
        "relative_difference": abs(numeric - compact) / compact,
    }
