"""Nonlinear 1-D Poisson solver for the vertical MOS stack.

Solves, by damped Newton iteration on a finite-volume discretisation,

``eps_si * d^2 psi / dy^2 = -q * (p(psi) - n(psi) - N_A(y))``

for the band bending ``psi(y)`` in the silicon under the gate, with

* a Robin boundary at the Si/SiO2 interface enforcing displacement
  continuity with the oxide field
  ``eps_ox (V_g - V_FB - psi_s)/T_ox = -eps_si dpsi/dy|_0``, and
* ``psi = 0`` deep in the neutral bulk.

Carriers are in equilibrium with the (grounded) bulk:
``p = n_i exp((phi_B - psi)/v_T)``, ``n = n_i exp((psi - phi_B)/v_T)``
where ``phi_B`` is the bulk Fermi potential.  The doping profile
``N_A(y)`` is arbitrary — in this library it is the halo-augmented
vertical cut produced by
:meth:`repro.device.doping.DopingProfile.vertical_profile`, which is
precisely what makes this a (1-D) stand-in for the paper's MEDICI
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_banded

from .. import perf
from ..constants import EPS_SI, Q, T_ROOM, thermal_voltage
from ..errors import ConvergenceError, ParameterError
from ..materials.oxide import GateStack
from ..materials.silicon import intrinsic_concentration
from .grid import Mesh1D


@dataclass(frozen=True)
class PoissonSolution:
    """Converged solution of the vertical Poisson problem.

    Attributes
    ----------
    mesh:
        The mesh the problem was solved on.
    psi_v:
        Band bending at each node [V].
    vg:
        Applied gate voltage [V].
    surface_potential_v:
        ``psi(0)``, the surface potential [V].
    electron_cm3 / hole_cm3:
        Carrier densities at each node [cm^-3].
    doping_cm3:
        Acceptor profile used [cm^-3].
    iterations:
        Newton iterations to convergence.
    """

    mesh: Mesh1D
    psi_v: np.ndarray
    vg: float
    surface_potential_v: float
    electron_cm3: np.ndarray
    hole_cm3: np.ndarray
    doping_cm3: np.ndarray
    iterations: int
    channel_potential_v: float = 0.0


def solve_mos_poisson(
    mesh: Mesh1D,
    doping_cm3: np.ndarray,
    stack: GateStack,
    vg: float,
    vfb: float,
    temperature_k: float = T_ROOM,
    initial_psi: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 200,
    channel_potential_v: float = 0.0,
) -> PoissonSolution:
    """Solve the MOS Poisson problem at one gate bias.

    Parameters
    ----------
    mesh:
        Vertical mesh (node 0 at the interface).
    doping_cm3:
        Acceptor concentration [cm3] at each mesh node (p-type body).
    stack:
        Gate dielectric.
    vg:
        Gate voltage [V].
    vfb:
        Flat-band voltage [V].
    temperature_k:
        Lattice temperature [K].
    initial_psi:
        Optional warm start (e.g. the solution at the previous bias in
        a sweep); dramatically cuts Newton iterations.
    tol:
        Convergence tolerance on the max |update| in volts.
    channel_potential_v:
        Electron quasi-Fermi shift ``V_ch`` [V].  ``0`` models the
        source end of the channel; passing ``V_ds`` models the drain
        end, which is how the simulator forms the drain-end inversion
        charge for the charge-sheet current.

    Returns
    -------
    PoissonSolution

    Raises
    ------
    ConvergenceError
        If the damped Newton iteration fails to converge.
    """
    nodes = mesh.nodes_cm
    n_nodes = nodes.size
    doping = np.asarray(doping_cm3, dtype=float)
    if doping.shape != nodes.shape:
        raise ParameterError("doping profile must match the mesh")
    if np.any(doping <= 0.0):
        raise ParameterError("acceptor profile must be positive everywhere")

    vt = thermal_voltage(temperature_k)
    ni = intrinsic_concentration(temperature_k)
    # Bulk reference: deep-node doping sets the Fermi level.
    phi_b = vt * np.log(doping[-1] / ni)
    c_ox = stack.capacitance_per_area
    h = mesh.spacings_cm
    volumes = mesh.control_volumes_cm()

    if initial_psi is None:
        psi = np.zeros(n_nodes)
        # Depletion-style initial guess toward the expected surface value.
        psi_s_guess = np.clip(vg - vfb, -0.2, 2.0 * phi_b + 10.0 * vt)
        w_guess = max(np.sqrt(2.0 * EPS_SI * max(psi_s_guess, vt)
                              / (Q * doping[0])), nodes[1])
        inside = nodes < w_guess
        psi[inside] = psi_s_guess * (1.0 - nodes[inside] / w_guess) ** 2
    else:
        psi = np.array(initial_psi, dtype=float)
        if psi.shape != nodes.shape:
            raise ParameterError("initial psi must match the mesh")

    def carriers(psi_arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Clamp the exponent to keep the Newton loop finite-valued even
        # for wild intermediate iterates.
        up = np.clip((psi_arr - phi_b - channel_potential_v) / vt,
                     -120.0, 120.0)
        dn = np.clip((phi_b - psi_arr) / vt, -120.0, 120.0)
        return ni * np.exp(up), ni * np.exp(dn)

    for iteration in range(1, max_iter + 1):
        n_e, p_h = carriers(psi)
        rho = Q * (p_h - n_e - doping)           # space charge [C/cm^3]
        drho = -Q * (p_h + n_e) / vt             # d rho / d psi

        # Residual F(psi) = flux divergence + integrated charge = 0.
        residual = np.zeros(n_nodes)
        flux = EPS_SI * np.diff(psi) / h         # eps * dpsi/dy on edges
        residual[1:-1] = (flux[1:] - flux[:-1]) + rho[1:-1] * volumes[1:-1]
        # Interface node: oxide displacement + silicon flux + half-cell charge.
        residual[0] = (c_ox * (vg - vfb - psi[0]) + flux[0]
                       + rho[0] * volumes[0])
        # Deep bulk Dirichlet.
        residual[-1] = psi[-1]

        # Tridiagonal Jacobian in banded storage.
        banded = np.zeros((3, n_nodes))
        # Interior rows.
        banded[0, 2:] = EPS_SI / h[1:]                       # superdiag
        banded[2, :-2] = EPS_SI / h[:-1]                     # subdiag
        banded[1, 1:-1] = (-EPS_SI / h[:-1] - EPS_SI / h[1:]
                           + drho[1:-1] * volumes[1:-1])
        # Interface row.
        banded[1, 0] = -c_ox - EPS_SI / h[0] + drho[0] * volumes[0]
        banded[0, 1] = EPS_SI / h[0]
        # Bulk Dirichlet row.
        banded[1, -1] = 1.0
        banded[2, -2] = 0.0

        update = solve_banded((1, 1), banded, -residual)
        # Damp to at most a few thermal voltages per node per step.
        max_step = 10.0 * vt
        scale = min(1.0, max_step / max(np.max(np.abs(update)), 1e-30))
        psi = psi + scale * update

        if np.max(np.abs(update)) < tol:
            n_e, p_h = carriers(psi)
            perf.bump("poisson.solves")
            perf.bump("poisson.newton_iterations", iteration)
            return PoissonSolution(
                mesh=mesh, psi_v=psi, vg=vg,
                surface_potential_v=float(psi[0]),
                electron_cm3=n_e, hole_cm3=p_h,
                doping_cm3=doping, iterations=iteration,
                channel_potential_v=channel_potential_v,
            )

    raise ConvergenceError(
        f"Poisson solver did not converge at Vg={vg:.3f} V",
        iterations=max_iter, residual=float(np.max(np.abs(residual))),
    )


@dataclass(frozen=True)
class BatchPoissonSolution:
    """Converged solutions of the vertical Poisson problem at many biases.

    The batch counterpart of :class:`PoissonSolution`: all per-bias
    quantities are stacked along a leading bias axis.

    Attributes
    ----------
    mesh:
        The mesh the problems were solved on.
    psi_v:
        Band bending, shape ``(n_bias, n_nodes)`` [V].
    vgs:
        Applied gate voltages, shape ``(n_bias,)`` [V].
    surface_potential_v:
        ``psi(0)`` per bias, shape ``(n_bias,)`` [V].
    electron_cm3 / hole_cm3:
        Carrier densities, shape ``(n_bias, n_nodes)`` [cm^-3].
    doping_cm3:
        Acceptor profile shared by all biases [cm^-3].
    iterations:
        Newton iterations to convergence per bias, shape ``(n_bias,)``.
    channel_potential_v:
        Electron quasi-Fermi shift per bias, shape ``(n_bias,)`` [V].
    """

    mesh: Mesh1D
    psi_v: np.ndarray
    vgs: np.ndarray
    surface_potential_v: np.ndarray
    electron_cm3: np.ndarray
    hole_cm3: np.ndarray
    doping_cm3: np.ndarray
    iterations: np.ndarray
    channel_potential_v: np.ndarray

    @property
    def n_bias(self) -> int:
        """Number of gate biases in the batch."""
        return self.vgs.size

    def solution(self, index: int) -> PoissonSolution:
        """The ``index``-th bias point as a scalar :class:`PoissonSolution`."""
        return PoissonSolution(
            mesh=self.mesh,
            psi_v=self.psi_v[index],
            vg=float(self.vgs[index]),
            surface_potential_v=float(self.surface_potential_v[index]),
            electron_cm3=self.electron_cm3[index],
            hole_cm3=self.hole_cm3[index],
            doping_cm3=self.doping_cm3,
            iterations=int(self.iterations[index]),
            channel_potential_v=float(self.channel_potential_v[index]),
        )

    def solutions(self) -> list[PoissonSolution]:
        """All bias points as scalar solutions, in batch order."""
        return [self.solution(i) for i in range(self.n_bias)]


def _initial_guess_batch(nodes: np.ndarray, doping: np.ndarray,
                         vgs: np.ndarray, vfb: float, phi_b: float,
                         vt: float) -> np.ndarray:
    """Vectorised depletion-style initial guess (one row per bias)."""
    psi_s_guess = np.clip(vgs - vfb, -0.2, 2.0 * phi_b + 10.0 * vt)
    w_guess = np.maximum(
        np.sqrt(2.0 * EPS_SI * np.maximum(psi_s_guess, vt)
                / (Q * doping[0])),
        nodes[1],
    )
    ramp = np.clip(1.0 - nodes[np.newaxis, :] / w_guess[:, np.newaxis],
                   0.0, None)
    return psi_s_guess[:, np.newaxis] * ramp ** 2


def solve_mos_poisson_batch(
    mesh: Mesh1D,
    doping_cm3: np.ndarray,
    stack: GateStack,
    vgs: np.ndarray,
    vfb: float,
    temperature_k: float = T_ROOM,
    initial_psi: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 200,
    channel_potential_v: float | np.ndarray = 0.0,
) -> BatchPoissonSolution:
    """Solve the MOS Poisson problem at many gate biases at once.

    The batch kernel behind the :class:`~repro.tcad.simulator.
    DeviceSimulator` sweeps: damped Newton runs on every bias
    simultaneously, with vectorised residual/carrier evaluation across
    the batch and the per-bias tridiagonal Jacobians stacked into one
    block-diagonal banded system solved by a single LAPACK call per
    iteration.  A convergence mask retires finished biases so late
    iterations only pay for the stragglers.

    Each bias converges to the same fixed point as
    :func:`solve_mos_poisson` (the residual equations are identical),
    so the batch path is interchangeable with a warm-started sequential
    sweep to solver tolerance.

    Parameters
    ----------
    mesh, doping_cm3, stack, vfb, temperature_k, tol, max_iter:
        As for :func:`solve_mos_poisson` (``doping_cm3`` [cm3],
        ``temperature_k`` [K]).
    vgs:
        Gate voltages, shape ``(n_bias,)`` [V].
    initial_psi:
        Optional warm start: either one profile ``(n_nodes,)`` shared
        by every bias or a full ``(n_bias, n_nodes)`` stack.
    channel_potential_v:
        Electron quasi-Fermi shift ``V_ch`` [V]; a scalar applied to
        every bias or a per-bias array of shape ``(n_bias,)`` (used by
        ``id_vd`` where each point pairs its own ``V_ds`` with its own
        effective gate voltage).

    Raises
    ------
    ConvergenceError
        If any bias fails to converge within ``max_iter``.
    """
    nodes = mesh.nodes_cm
    n_nodes = nodes.size
    doping = np.asarray(doping_cm3, dtype=float)
    if doping.shape != nodes.shape:
        raise ParameterError("doping profile must match the mesh")
    if np.any(doping <= 0.0):
        raise ParameterError("acceptor profile must be positive everywhere")
    vgs_arr = np.atleast_1d(np.asarray(vgs, dtype=float))
    if vgs_arr.ndim != 1:
        raise ParameterError("vgs must be a 1-D array of gate biases")
    n_bias = vgs_arr.size
    ch_pot = np.broadcast_to(
        np.asarray(channel_potential_v, dtype=float), (n_bias,)
    ).copy()

    vt = thermal_voltage(temperature_k)
    ni = intrinsic_concentration(temperature_k)
    phi_b = vt * np.log(doping[-1] / ni)
    c_ox = stack.capacitance_per_area
    h = mesh.spacings_cm
    volumes = mesh.control_volumes_cm()

    if initial_psi is None:
        psi = _initial_guess_batch(nodes, doping, vgs_arr, vfb, phi_b, vt)
    else:
        psi = np.array(initial_psi, dtype=float)
        if psi.shape == nodes.shape:
            psi = np.broadcast_to(psi, (n_bias, n_nodes)).copy()
        elif psi.shape != (n_bias, n_nodes):
            raise ParameterError(
                "initial psi must have shape (n_nodes,) or (n_bias, n_nodes)"
            )

    if n_bias == 0:
        empty = np.empty((0, n_nodes))
        return BatchPoissonSolution(
            mesh=mesh, psi_v=empty, vgs=vgs_arr,
            surface_potential_v=np.empty(0), electron_cm3=empty,
            hole_cm3=empty, doping_cm3=doping,
            iterations=np.empty(0, dtype=int), channel_potential_v=ch_pot,
        )

    def carriers(psi_arr: np.ndarray, ch: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
        up = np.clip((psi_arr - phi_b - ch[:, np.newaxis]) / vt,
                     -120.0, 120.0)
        dn = np.clip((phi_b - psi_arr) / vt, -120.0, 120.0)
        return ni * np.exp(up), ni * np.exp(dn)

    # Bias-independent Jacobian bands (only the diagonal varies).
    superdiag = np.zeros(n_nodes)
    superdiag[2:] = EPS_SI / h[1:]
    superdiag[1] = EPS_SI / h[0]
    subdiag = np.zeros(n_nodes)
    subdiag[:-2] = EPS_SI / h[:-1]
    subdiag[-2] = 0.0                       # Dirichlet row decouples the bulk
    diag_lap = np.zeros(n_nodes)
    diag_lap[1:-1] = -EPS_SI / h[:-1] - EPS_SI / h[1:]
    diag_lap[0] = -c_ox - EPS_SI / h[0]
    # superdiag[0] and subdiag[-1] stay zero: in the stacked block-
    # diagonal system they sit between blocks and must not couple
    # neighbouring biases.

    active = np.ones(n_bias, dtype=bool)
    iterations = np.zeros(n_bias, dtype=int)
    residual = np.zeros((n_bias, n_nodes))
    max_step = 10.0 * vt

    perf.bump("poisson.batch_solves")
    perf.bump("poisson.solves", n_bias)

    for iteration in range(1, max_iter + 1):
        idx = np.flatnonzero(active)
        if idx.size == 0:
            break
        psi_a = psi[idx]
        ch_a = ch_pot[idx]
        k = idx.size
        perf.bump("poisson.newton_iterations", k)

        n_e, p_h = carriers(psi_a, ch_a)
        rho = Q * (p_h - n_e - doping)
        drho = -Q * (p_h + n_e) / vt

        res = np.zeros((k, n_nodes))
        flux = EPS_SI * np.diff(psi_a, axis=1) / h
        res[:, 1:-1] = (flux[:, 1:] - flux[:, :-1]
                        + rho[:, 1:-1] * volumes[1:-1])
        res[:, 0] = (c_ox * (vgs_arr[idx] - vfb - psi_a[:, 0]) + flux[:, 0]
                     + rho[:, 0] * volumes[0])
        res[:, -1] = psi_a[:, -1]
        residual[idx] = res

        diag = diag_lap + drho * volumes
        diag[:, -1] = 1.0

        # One block-diagonal banded solve for the whole active batch.
        banded = np.empty((3, k * n_nodes))
        banded[0] = np.broadcast_to(superdiag, (k, n_nodes)).reshape(-1)
        banded[1] = diag.reshape(-1)
        banded[2] = np.broadcast_to(subdiag, (k, n_nodes)).reshape(-1)
        update = solve_banded((1, 1), banded,
                              -res.reshape(-1)).reshape(k, n_nodes)

        step = np.max(np.abs(update), axis=1)
        scale = np.minimum(1.0, max_step / np.maximum(step, 1e-30))
        psi[idx] = psi_a + scale[:, np.newaxis] * update

        done = step < tol
        if np.any(done):
            finished = idx[done]
            iterations[finished] = iteration
            active[finished] = False

    if np.any(active):
        stuck = np.flatnonzero(active)
        worst = float(np.max(np.abs(residual[stuck])))
        raise ConvergenceError(
            f"Poisson batch solver did not converge for {stuck.size} of "
            f"{n_bias} biases (first stuck Vg={vgs_arr[stuck[0]]:.3f} V)",
            iterations=max_iter, residual=worst,
        )

    n_e, p_h = carriers(psi, ch_pot)
    return BatchPoissonSolution(
        mesh=mesh, psi_v=psi, vgs=vgs_arr,
        surface_potential_v=psi[:, 0].copy(),
        electron_cm3=n_e, hole_cm3=p_h, doping_cm3=doping,
        iterations=iterations, channel_potential_v=ch_pot,
    )
