"""Nonlinear 1-D Poisson solver for the vertical MOS stack.

Solves, by damped Newton iteration on a finite-volume discretisation,

``eps_si * d^2 psi / dy^2 = -q * (p(psi) - n(psi) - N_A(y))``

for the band bending ``psi(y)`` in the silicon under the gate, with

* a Robin boundary at the Si/SiO2 interface enforcing displacement
  continuity with the oxide field
  ``eps_ox (V_g - V_FB - psi_s)/T_ox = -eps_si dpsi/dy|_0``, and
* ``psi = 0`` deep in the neutral bulk.

Carriers are in equilibrium with the (grounded) bulk:
``p = n_i exp((phi_B - psi)/v_T)``, ``n = n_i exp((psi - phi_B)/v_T)``
where ``phi_B`` is the bulk Fermi potential.  The doping profile
``N_A(y)`` is arbitrary — in this library it is the halo-augmented
vertical cut produced by
:meth:`repro.device.doping.DopingProfile.vertical_profile`, which is
precisely what makes this a (1-D) stand-in for the paper's MEDICI
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_banded

from ..constants import EPS_SI, Q, T_ROOM, thermal_voltage
from ..errors import ConvergenceError, ParameterError
from ..materials.oxide import GateStack
from ..materials.silicon import intrinsic_concentration
from .grid import Mesh1D


@dataclass(frozen=True)
class PoissonSolution:
    """Converged solution of the vertical Poisson problem.

    Attributes
    ----------
    mesh:
        The mesh the problem was solved on.
    psi_v:
        Band bending at each node [V].
    vg:
        Applied gate voltage [V].
    surface_potential_v:
        ``psi(0)``, the surface potential [V].
    electron_cm3 / hole_cm3:
        Carrier densities at each node [cm^-3].
    doping_cm3:
        Acceptor profile used [cm^-3].
    iterations:
        Newton iterations to convergence.
    """

    mesh: Mesh1D
    psi_v: np.ndarray
    vg: float
    surface_potential_v: float
    electron_cm3: np.ndarray
    hole_cm3: np.ndarray
    doping_cm3: np.ndarray
    iterations: int
    channel_potential_v: float = 0.0


def solve_mos_poisson(
    mesh: Mesh1D,
    doping_cm3: np.ndarray,
    stack: GateStack,
    vg: float,
    vfb: float,
    temperature_k: float = T_ROOM,
    initial_psi: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 200,
    channel_potential_v: float = 0.0,
) -> PoissonSolution:
    """Solve the MOS Poisson problem at one gate bias.

    Parameters
    ----------
    mesh:
        Vertical mesh (node 0 at the interface).
    doping_cm3:
        Acceptor concentration at each mesh node (p-type body).
    stack:
        Gate dielectric.
    vg:
        Gate voltage [V].
    vfb:
        Flat-band voltage [V].
    initial_psi:
        Optional warm start (e.g. the solution at the previous bias in
        a sweep); dramatically cuts Newton iterations.
    tol:
        Convergence tolerance on the max |update| in volts.
    channel_potential_v:
        Electron quasi-Fermi shift ``V_ch`` [V].  ``0`` models the
        source end of the channel; passing ``V_ds`` models the drain
        end, which is how the simulator forms the drain-end inversion
        charge for the charge-sheet current.

    Returns
    -------
    PoissonSolution

    Raises
    ------
    ConvergenceError
        If the damped Newton iteration fails to converge.
    """
    nodes = mesh.nodes_cm
    n_nodes = nodes.size
    doping = np.asarray(doping_cm3, dtype=float)
    if doping.shape != nodes.shape:
        raise ParameterError("doping profile must match the mesh")
    if np.any(doping <= 0.0):
        raise ParameterError("acceptor profile must be positive everywhere")

    vt = thermal_voltage(temperature_k)
    ni = intrinsic_concentration(temperature_k)
    # Bulk reference: deep-node doping sets the Fermi level.
    phi_b = vt * np.log(doping[-1] / ni)
    c_ox = stack.capacitance_per_area
    h = mesh.spacings_cm
    volumes = mesh.control_volumes_cm()

    if initial_psi is None:
        psi = np.zeros(n_nodes)
        # Depletion-style initial guess toward the expected surface value.
        psi_s_guess = np.clip(vg - vfb, -0.2, 2.0 * phi_b + 10.0 * vt)
        w_guess = max(np.sqrt(2.0 * EPS_SI * max(psi_s_guess, vt)
                              / (Q * doping[0])), nodes[1])
        inside = nodes < w_guess
        psi[inside] = psi_s_guess * (1.0 - nodes[inside] / w_guess) ** 2
    else:
        psi = np.array(initial_psi, dtype=float)
        if psi.shape != nodes.shape:
            raise ParameterError("initial psi must match the mesh")

    def carriers(psi_arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        # Clamp the exponent to keep the Newton loop finite-valued even
        # for wild intermediate iterates.
        up = np.clip((psi_arr - phi_b - channel_potential_v) / vt,
                     -120.0, 120.0)
        dn = np.clip((phi_b - psi_arr) / vt, -120.0, 120.0)
        return ni * np.exp(up), ni * np.exp(dn)

    for iteration in range(1, max_iter + 1):
        n_e, p_h = carriers(psi)
        rho = Q * (p_h - n_e - doping)           # space charge [C/cm^3]
        drho = -Q * (p_h + n_e) / vt             # d rho / d psi

        # Residual F(psi) = flux divergence + integrated charge = 0.
        residual = np.zeros(n_nodes)
        flux = EPS_SI * np.diff(psi) / h         # eps * dpsi/dy on edges
        residual[1:-1] = (flux[1:] - flux[:-1]) + rho[1:-1] * volumes[1:-1]
        # Interface node: oxide displacement + silicon flux + half-cell charge.
        residual[0] = (c_ox * (vg - vfb - psi[0]) + flux[0]
                       + rho[0] * volumes[0])
        # Deep bulk Dirichlet.
        residual[-1] = psi[-1]

        # Tridiagonal Jacobian in banded storage.
        banded = np.zeros((3, n_nodes))
        # Interior rows.
        banded[0, 2:] = EPS_SI / h[1:]                       # superdiag
        banded[2, :-2] = EPS_SI / h[:-1]                     # subdiag
        banded[1, 1:-1] = (-EPS_SI / h[:-1] - EPS_SI / h[1:]
                           + drho[1:-1] * volumes[1:-1])
        # Interface row.
        banded[1, 0] = -c_ox - EPS_SI / h[0] + drho[0] * volumes[0]
        banded[0, 1] = EPS_SI / h[0]
        # Bulk Dirichlet row.
        banded[1, -1] = 1.0
        banded[2, -2] = 0.0

        update = solve_banded((1, 1), banded, -residual)
        # Damp to at most a few thermal voltages per node per step.
        max_step = 10.0 * vt
        scale = min(1.0, max_step / max(np.max(np.abs(update)), 1e-30))
        psi = psi + scale * update

        if np.max(np.abs(update)) < tol:
            n_e, p_h = carriers(psi)
            return PoissonSolution(
                mesh=mesh, psi_v=psi, vg=vg,
                surface_potential_v=float(psi[0]),
                electron_cm3=n_e, hole_cm3=p_h,
                doping_cm3=doping, iterations=iteration,
                channel_potential_v=channel_potential_v,
            )

    raise ConvergenceError(
        f"Poisson solver did not converge at Vg={vg:.3f} V",
        iterations=max_iter, residual=float(np.max(np.abs(residual))),
    )
