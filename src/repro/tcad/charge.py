"""Sheet charges and small-signal quantities from a Poisson solution."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import Q
from .poisson1d import BatchPoissonSolution, PoissonSolution


@dataclass(frozen=True)
class SheetCharges:
    """Integrated sheet charges under the gate [C/cm^2].

    Attributes
    ----------
    inversion:
        Mobile electron sheet charge (positive magnitude).
    depletion:
        Ionised-acceptor depletion sheet charge (positive magnitude).
    total:
        Net semiconductor sheet charge magnitude.
    """

    inversion: float
    depletion: float
    total: float


def sheet_charges(solution: PoissonSolution) -> SheetCharges:
    """Integrate carrier and depletion charges over depth.

    The inversion charge is the integral of the electron excess over
    its (negligible) bulk value; the depletion charge integrates the
    uncompensated acceptors ``N_A - p`` where holes are depleted.
    """
    y = solution.mesh.nodes_cm
    n_e = solution.electron_cm3
    p_h = solution.hole_cm3
    n_a = solution.doping_cm3

    n_bulk = n_e[-1]
    inversion = Q * float(np.trapezoid(np.maximum(n_e - n_bulk, 0.0), y))
    depletion = Q * float(np.trapezoid(np.maximum(n_a - p_h, 0.0), y))
    return SheetCharges(inversion=inversion, depletion=depletion,
                        total=inversion + depletion)


@dataclass(frozen=True)
class SheetChargesBatch:
    """Per-bias integrated sheet charges for a batch solution [C/cm^2].

    The batch counterpart of :class:`SheetCharges`: each attribute is
    an array of shape ``(n_bias,)`` in the batch's bias order.
    """

    inversion: np.ndarray
    depletion: np.ndarray
    total: np.ndarray


def sheet_charges_batch(batch: BatchPoissonSolution) -> SheetChargesBatch:
    """Vectorised :func:`sheet_charges` over every bias in a batch.

    Bias ``i`` of the result equals ``sheet_charges(batch.solution(i))``
    exactly — the integrals just run along the trailing axis.
    """
    y = batch.mesh.nodes_cm
    n_e = batch.electron_cm3
    p_h = batch.hole_cm3
    n_a = batch.doping_cm3

    n_bulk = n_e[:, -1:]
    inversion = Q * np.trapezoid(np.maximum(n_e - n_bulk, 0.0), y, axis=1)
    depletion = Q * np.trapezoid(np.maximum(n_a - p_h, 0.0), y, axis=1)
    return SheetChargesBatch(inversion=inversion, depletion=depletion,
                             total=inversion + depletion)


def surface_field_v_per_cm(solution: PoissonSolution) -> float:
    """Electric field at the silicon surface [V/cm] (into the bulk)."""
    y = solution.mesh.nodes_cm
    psi = solution.psi_v
    return float(-(psi[1] - psi[0]) / (y[1] - y[0]))


def depletion_depth_cm(solution: PoissonSolution,
                       fraction: float = 0.10) -> float:
    """Depth at which hole depletion has recovered to ``1 - fraction``.

    A numerical analogue of the textbook depletion width: the first
    depth where ``p >= (1 - fraction) * N_A`` holds and keeps holding.
    """
    p_h = solution.hole_cm3
    n_a = solution.doping_cm3
    y = solution.mesh.nodes_cm
    recovered = p_h >= (1.0 - fraction) * n_a
    idx = np.argmax(recovered)
    if not recovered.any():
        return float(y[-1])
    if idx == 0:
        return 0.0
    return float(y[idx])
