"""Quasi-2-D short-channel corrections for the 1-D solver.

A full 2-D Poisson solution (what MEDICI does) is approximated by the
standard quasi-2-D decomposition: the 1-D vertical solution gives the
long-channel electrostatics, and the lateral source/drain field
penetration is captured by a characteristic length
``l_t = sqrt((eps_si/eps_ox) T_ox W_dep)`` that shifts the barrier
(threshold) and degrades the subthreshold slope.  This is the same
physics behind the paper's Eq. 2(b) and its DIBL discussion, so the
"simulated" curves produced this way have the right functional
dependence on every scaling parameter.
"""

from __future__ import annotations

import math

from ..constants import T_ROOM
from ..errors import ParameterError
from ..materials.oxide import GateStack
from ..materials.silicon import built_in_potential, fermi_potential
from ..device.threshold import N_SOURCE_DRAIN, characteristic_length


def sce_vth_shift(l_eff_cm: float, stack: GateStack, w_dep_cm: float,
                  n_eff_cm3: float, vds: float,
                  temperature_k: float = T_ROOM) -> float:
    """Threshold reduction from charge sharing + DIBL [V] (positive)
    for a channel of ``l_eff_cm`` [cm], depletion width ``w_dep_cm``
    [cm], doping ``n_eff_cm3`` [cm3], at ``temperature_k`` [K].

    Same quasi-2-D expression as the compact model — duplicated here so
    the TCAD layer stands alone (mirrors how one would calibrate a
    compact model against MEDICI output).
    """
    if l_eff_cm <= 0.0:
        raise ParameterError("channel length must be positive")
    psi_s = 2.0 * fermi_potential(n_eff_cm3, temperature_k)
    vbi = built_in_potential(N_SOURCE_DRAIN, n_eff_cm3, temperature_k)
    barrier = max(vbi - psi_s, 0.0)
    lt = characteristic_length(stack, w_dep_cm)
    first = (2.0 * barrier + max(vds, 0.0)) * math.exp(-l_eff_cm / (2.0 * lt))
    second = (2.0 * math.sqrt(barrier * (barrier + max(vds, 0.0)))
              * math.exp(-l_eff_cm / lt))
    return first + second


def slope_degradation_factor(l_eff_cm: float, stack: GateStack,
                             w_dep_cm: float) -> float:
    """Short-channel subthreshold-swing degradation factor (>= 1) for
    a channel of ``l_eff_cm`` [cm] and depletion width ``w_dep_cm``
    [cm].

    The paper's Eq. 2(b) second parenthesis with the same calibrated
    prefactor the compact model uses, so TCAD and compact S_S agree.
    """
    from ..device.subthreshold import short_channel_slope_degradation

    if l_eff_cm <= 0.0:
        raise ParameterError("channel length must be positive")
    return short_channel_slope_degradation(stack.eot_cm, w_dep_cm, l_eff_cm)
