"""DeviceSimulator — the top-level MEDICI-replacement API.

Given a :class:`repro.device.mosfet.MOSFET`, the simulator:

1. builds a vertical mesh and the halo-augmented vertical doping cut,
2. solves the nonlinear 1-D Poisson equation at each gate bias (warm-
   started sweeps) for source-end and drain-end inversion charges,
3. assembles the drain current from the charge-sheet expression

   ``I_d = (W/L_eff) mu [ v_T (Q_s - Q_d) + (Q_s^2 - Q_d^2)/(2 m C_ox) ]``

   which is exact in weak inversion (diffusion) and reduces to the
   square law in strong inversion (drift), and
4. injects short-channel behaviour through the quasi-2-D V_th shift and
   swing-degradation factor.

The result is an :class:`repro.tcad.extract.IdVgCurve` that downstream
extraction treats exactly like a MEDICI output deck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..constants import thermal_voltage
from ..device.mosfet import MOSFET
from ..device.electrostatics import flatband_voltage
from ..errors import ParameterError
from .charge import sheet_charges, sheet_charges_batch
from .extract import IdVgCurve, extract_ss, extract_vth_constant_current
from .grid import Mesh1D
from .poisson1d import (
    BatchPoissonSolution,
    PoissonSolution,
    solve_mos_poisson,
    solve_mos_poisson_batch,
)
from .quasi2d import sce_vth_shift, slope_degradation_factor

#: Valid values of :attr:`DeviceSimulator.solver`.
SOLVER_MODES = ("batch", "sequential")


@dataclass
class DeviceSimulator:
    """Numerical simulator bound to one device.

    Parameters
    ----------
    device:
        The MOSFET to simulate.
    n_nodes:
        Vertical mesh nodes; 161 keeps charges accurate to <1 %.
    depth_factor:
        Mesh depth as a multiple of the zero-order depletion width.
    solver:
        ``"batch"`` (default) runs every gate bias of a sweep through
        the vectorised batch kernel; ``"sequential"`` keeps the
        original warm-started bias-by-bias loop, which serves as the
        correctness oracle for the batch path.  Both converge to the
        same fixed points, so extracted metrics agree to solver
        tolerance.
    """

    device: MOSFET
    n_nodes: int = 161
    depth_factor: float = 6.0
    solver: str = "batch"

    _mesh: Mesh1D = field(init=False, repr=False, default=None)
    _doping: np.ndarray = field(init=False, repr=False, default=None)
    _vfb: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if self.n_nodes < 21:
            raise ParameterError("need at least 21 mesh nodes")
        if self.solver not in SOLVER_MODES:
            raise ParameterError(
                f"solver must be one of {SOLVER_MODES}, got {self.solver!r}"
            )
        dev = self.device
        w_dep = dev.iv.w_dep_cm
        halo_reach = 0.0
        if dev.profile.halo is not None:
            halo_reach = (dev.profile.halo.depth_cm
                          + 3.0 * dev.profile.halo.sigma_y_cm)
        depth = max(self.depth_factor * w_dep, 2.0 * halo_reach, 5.0e-6)
        self._mesh = Mesh1D.geometric(depth, n_nodes=self.n_nodes)
        self._doping = dev.profile.vertical_profile(
            self._mesh.nodes_cm, dev.geometry.l_eff_cm
        )
        self._vfb = flatband_voltage(float(self._doping[-1]),
                                     dev.temperature_k)

    # -- raw vertical solves ---------------------------------------------------

    def solve(self, vg: float, channel_potential_v: float = 0.0,
              initial_psi: np.ndarray | None = None) -> PoissonSolution:
        """Solve the vertical Poisson problem at one gate bias, with
        quasi-Fermi shift ``channel_potential_v`` [V]."""
        return solve_mos_poisson(
            self._mesh, self._doping, self.device.stack, vg, self._vfb,
            temperature_k=self.device.temperature_k,
            initial_psi=initial_psi,
            channel_potential_v=channel_potential_v,
        )

    def solve_batch(self, vgs_grid: np.ndarray,
                    channel_potential_v: float | np.ndarray = 0.0
                    ) -> BatchPoissonSolution:
        """Solve the vertical Poisson problem at every bias in one
        batch, with quasi-Fermi shift ``channel_potential_v`` [V]."""
        return solve_mos_poisson_batch(
            self._mesh, self._doping, self.device.stack,
            np.asarray(vgs_grid, dtype=float), self._vfb,
            temperature_k=self.device.temperature_k,
            channel_potential_v=channel_potential_v,
        )

    def _sweep_sequential(self, vgs_grid: np.ndarray,
                          channel_potential_v: float,
                          extract: Callable[[PoissonSolution], float]
                          ) -> np.ndarray:
        """Warm-started bias-by-bias sweep, one scalar per solution.

        The shared fallback (and correctness oracle) behind the sweep
        methods when ``solver="sequential"``.
        """
        vgs = np.asarray(vgs_grid, dtype=float)
        values = np.empty_like(vgs)
        warm = None
        for i, vg in enumerate(vgs):
            sol = self.solve(float(vg), channel_potential_v, initial_psi=warm)
            values[i] = extract(sol)
            warm = sol.psi_v
        return values

    def surface_potential_sweep(self, vgs_grid: np.ndarray,
                                channel_potential_v: float = 0.0
                                ) -> np.ndarray:
        """Surface potential psi_s at each gate voltage, with
        quasi-Fermi shift ``channel_potential_v`` [V]."""
        if self.solver == "batch":
            batch = self.solve_batch(vgs_grid, channel_potential_v)
            return batch.surface_potential_v
        return self._sweep_sequential(vgs_grid, channel_potential_v,
                                      lambda sol: sol.surface_potential_v)

    def inversion_charge_sweep(self, vgs_grid: np.ndarray,
                               channel_potential_v: float = 0.0
                               ) -> np.ndarray:
        """Inversion sheet charge [C/cm2] at each gate voltage, with
        quasi-Fermi shift ``channel_potential_v`` [V]."""
        if self.solver == "batch":
            batch = self.solve_batch(vgs_grid, channel_potential_v)
            return sheet_charges_batch(batch).inversion
        return self._sweep_sequential(
            vgs_grid, channel_potential_v,
            lambda sol: sheet_charges(sol).inversion)

    # -- assembled curves -------------------------------------------------------

    def id_vg(self, vds: float, vgs_grid: np.ndarray) -> IdVgCurve:
        """Numerically simulated transfer curve at fixed ``vds``.

        Short-channel effects enter as an effective-gate-voltage map:
        the quasi-2-D V_th shift moves the curve left (DIBL) and the
        swing-degradation factor stretches the subthreshold region.
        """
        if vds < 0.0:
            raise ParameterError("vds must be >= 0")
        dev = self.device
        vgs = np.asarray(vgs_grid, dtype=float)
        iv = dev.iv
        shift = sce_vth_shift(dev.geometry.l_eff_cm, dev.stack, iv.w_dep_cm,
                              iv.n_eff_cm3, vds, dev.temperature_k)
        factor = slope_degradation_factor(dev.geometry.l_eff_cm, dev.stack,
                                          iv.w_dep_cm)
        # Pivot the swing stretch around the long-channel threshold so
        # strong inversion is barely affected.
        pivot = dev.threshold.vth0()
        vg_eff = pivot + (vgs + shift - pivot) / factor

        q_source = self.inversion_charge_sweep(vg_eff, 0.0)
        q_drain = self.inversion_charge_sweep(vg_eff, vds)

        vt = thermal_voltage(dev.temperature_k)
        mu = iv.mobility.low_field(iv.n_eff_cm3)
        cox = dev.stack.capacitance_per_area
        m = iv.slope_factor
        aspect = dev.geometry.aspect_ratio
        diffusion = vt * (q_source - q_drain)
        drift = (q_source ** 2 - q_drain ** 2) / (2.0 * m * cox)
        current = aspect * mu * (diffusion + drift)
        current = np.maximum(current, 1e-30)
        return IdVgCurve(vgs=vgs, ids=current, vds=vds,
                         width_um=dev.geometry.width_um)

    def id_vd(self, vgs: float, vds_grid: np.ndarray) -> np.ndarray:
        """Numerically simulated output characteristic I_d(V_ds) [A].

        One source-end solve per gate bias plus a drain-end solve per
        ``vds`` point; same charge-sheet assembly as :meth:`id_vg`.
        """
        dev = self.device
        vds_arr = np.asarray(vds_grid, dtype=float)
        if np.any(vds_arr < 0.0):
            raise ParameterError("vds grid must be >= 0")
        iv = dev.iv
        vt = thermal_voltage(dev.temperature_k)
        mu = iv.mobility.low_field(iv.n_eff_cm3)
        cox = dev.stack.capacitance_per_area
        m = iv.slope_factor
        aspect = dev.geometry.aspect_ratio
        pivot = dev.threshold.vth0()
        factor = slope_degradation_factor(dev.geometry.l_eff_cm, dev.stack,
                                          iv.w_dep_cm)
        shifts = np.array([
            sce_vth_shift(dev.geometry.l_eff_cm, dev.stack, iv.w_dep_cm,
                          iv.n_eff_cm3, float(vds), dev.temperature_k)
            for vds in vds_arr
        ])
        vg_eff = pivot + (vgs + shifts - pivot) / factor
        if self.solver == "batch":
            q_s = sheet_charges_batch(self.solve_batch(vg_eff, 0.0)).inversion
            q_d = sheet_charges_batch(
                self.solve_batch(vg_eff, vds_arr)).inversion
        else:
            q_s = np.empty_like(vds_arr)
            q_d = np.empty_like(vds_arr)
            warm = None
            for i, vds in enumerate(vds_arr):
                sol_s = self.solve(float(vg_eff[i]), 0.0, initial_psi=warm)
                warm = sol_s.psi_v
                q_s[i] = sheet_charges(sol_s).inversion
                sol_d = self.solve(float(vg_eff[i]), float(vds))
                q_d[i] = sheet_charges(sol_d).inversion
        diffusion = vt * (q_s - q_d)
        drift = (q_s ** 2 - q_d ** 2) / (2.0 * m * cox)
        return np.maximum(aspect * mu * (diffusion + drift), 1e-30)

    # -- extracted metrics --------------------------------------------------------

    def numeric_ss(self, vds: float = 0.05) -> float:
        """Numerically extracted inverse subthreshold slope [V/dec]."""
        dev = self.device
        vth = dev.threshold.vth0()
        vgs = np.linspace(vth - 0.45, vth + 0.15, 41)
        curve = self.id_vg(vds, vgs)
        return extract_ss(curve, decade_low=4.0, decade_high=1.5)

    def numeric_vth(self, vds: float, criterion_a_per_sq: float = 1.0e-7
                    ) -> float:
        """Constant-current threshold [V] from the simulated curve at
        width-normalised criterion ``criterion_a_per_sq`` [a/sq]."""
        dev = self.device
        vth_guess = dev.threshold.vth0()
        vgs = np.linspace(vth_guess - 0.5, vth_guess + 0.5, 61)
        curve = self.id_vg(vds, vgs)
        criterion = criterion_a_per_sq * dev.geometry.aspect_ratio
        return extract_vth_constant_current(curve, criterion)
