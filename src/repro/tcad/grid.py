"""Nonuniform 1-D meshes for the vertical Poisson problem.

The inversion layer lives in the first nanometre below the Si/SiO2
interface while the depletion region extends tens of nanometres, so a
geometrically graded mesh (fine at the surface, coarse at depth) gives
accurate charges with few nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError


@dataclass(frozen=True)
class Mesh1D:
    """A strictly increasing 1-D mesh starting at 0 (the interface).

    Attributes
    ----------
    nodes_cm:
        Node coordinates [cm]; ``nodes_cm[0] == 0``.
    """

    nodes_cm: np.ndarray

    def __post_init__(self) -> None:
        nodes = np.asarray(self.nodes_cm, dtype=float)
        if nodes.ndim != 1 or nodes.size < 3:
            raise ParameterError("mesh needs at least 3 nodes")
        if nodes[0] != 0:
            raise ParameterError("mesh must start at the interface (0)")
        if np.any(np.diff(nodes) <= 0.0):
            raise ParameterError("mesh nodes must be strictly increasing")
        object.__setattr__(self, "nodes_cm", nodes)

    @classmethod
    def geometric(cls, depth_cm: float, n_nodes: int = 201,
                  first_step_cm: float = 1.0e-8) -> "Mesh1D":
        """Geometrically graded mesh over [0, ``depth_cm`` [cm]] with a
        fine surface step.

        The growth ratio is solved so that ``n_nodes - 1`` steps starting
        at ``first_step_cm`` [cm] exactly span ``depth_cm``.
        """
        if depth_cm <= 0.0:
            raise ParameterError("depth must be positive")
        if n_nodes < 3:
            raise ParameterError("need at least 3 nodes")
        if first_step_cm <= 0.0 or first_step_cm >= depth_cm:
            raise ParameterError("first step must be in (0, depth)")
        n_steps = n_nodes - 1

        def span(ratio: float) -> float:
            if abs(ratio - 1.0) < 1e-12:
                return first_step_cm * n_steps
            return first_step_cm * (ratio ** n_steps - 1.0) / (ratio - 1.0)

        lo, hi = 1.0, 2.0
        while span(hi) < depth_cm:
            hi *= 1.5
            if hi > 1e3:
                raise ParameterError("cannot grade mesh: depth too large")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if span(mid) < depth_cm:
                lo = mid
            else:
                hi = mid
        ratio = 0.5 * (lo + hi)
        steps = first_step_cm * ratio ** np.arange(n_steps)
        nodes = np.concatenate(([0.0], np.cumsum(steps)))
        nodes[-1] = depth_cm
        return cls(nodes)

    @property
    def n_nodes(self) -> int:
        """Number of mesh nodes."""
        return self.nodes_cm.size

    @property
    def spacings_cm(self) -> np.ndarray:
        """Inter-node spacings, length ``n_nodes - 1``."""
        return np.diff(self.nodes_cm)

    def control_volumes_cm(self) -> np.ndarray:
        """Finite-volume cell sizes (half-cells at the boundaries)."""
        h = self.spacings_cm
        volumes = np.empty(self.n_nodes)
        volumes[0] = 0.5 * h[0]
        volumes[-1] = 0.5 * h[-1]
        volumes[1:-1] = 0.5 * (h[:-1] + h[1:])
        return volumes
