"""Extension — the limit of dynamic voltage scaling (paper ref [17]).

The paper's V_min machinery comes from Zhai et al.'s DVS-limit work:
below the minimum-energy voltage, scaling the supply further wastes
both time and energy, so a slower-than-V_min workload should compute
at V_min and idle.  This experiment traces the full E(throughput)
curve for both 32nm strategy designs and verifies the signature shape:

* energy per cycle falls as throughput drops toward the V_min rate,
* then *saturates* (the DVS limit) below it,
* the sub-V_th design's curve sits below the super-V_th design's over
  the shared throughput range.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.chain import InverterChain
from ..circuit.dvs import chain_rate_hz, dvs_curve
from .families import sub_vth_family, super_vth_family
from .registry import experiment

#: Throughput probes as multiples of each design's own V_min rate.
RATE_MULTIPLES = (0.05, 0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def _curve(design, power_gated: bool = False
           ) -> tuple[np.ndarray, np.ndarray, float]:
    chain = InverterChain(design.inverter(0.3), n_stages=30, activity=0.1)
    mep = chain.minimum_energy_point()
    f_vmin = chain_rate_hz(chain, mep.vmin)
    rates = np.array([m * f_vmin for m in RATE_MULTIPLES])
    # All above-V_min probes share one gathered supply bisection; the
    # duty-cycled floor lanes are pure array arithmetic.
    energies = dvs_curve(chain, rates, mep, power_gated=power_gated)
    return rates, energies, f_vmin


@experiment("ext_dvs", "Extension: the DVS limit (ref [17])")
def run() -> ExperimentResult:
    """Trace E(throughput) for both 32nm designs."""
    sup = super_vth_family().design("32nm")
    sub = sub_vth_family().design("32nm")
    rates_sup, e_sup, f_vmin_sup = _curve(sup)
    rates_sub, e_sub, f_vmin_sub = _curve(sub)
    _rates_g, e_sub_gated, _f = _curve(sub, power_gated=True)

    series = (
        Series(label="E(throughput) super-vth", x=rates_sup, y=e_sup,
               x_label="cycle rate [Hz]", y_label="energy/cycle [J]"),
        Series(label="E(throughput) sub-vth", x=rates_sub, y=e_sub,
               x_label="cycle rate [Hz]", y_label="energy/cycle [J]"),
        Series(label="E(throughput) sub-vth, power-gated", x=rates_sub,
               y=e_sub_gated, x_label="cycle rate [Hz]",
               y_label="energy/cycle [J]"),
    )

    idx_vmin = RATE_MULTIPLES.index(1.0)
    ungated_blowup = float(e_sub[0] / e_sub[idx_vmin])
    gated_floor = float(e_sub_gated[0] / e_sub_gated[idx_vmin])
    above_slope = float(e_sub[-1] / e_sub[idx_vmin])

    # Strategy comparison in the deep duty-cycled regime: without
    # gating, idle leakage dominates and the higher-V_th super device
    # actually wins standby; with gating each design sits at its own
    # V_min floor and the sub-V_th advantage returns.
    _r, e_sup_gated, _f2 = _curve(sup, power_gated=True)
    lo = max(rates_sup[0], rates_sub[0])
    probe = 2.0 * lo
    chain_sup = InverterChain(sup.inverter(0.3))
    chain_sub = InverterChain(sub.inverter(0.3))
    e_slow_sup = float(dvs_curve(chain_sup, np.array([probe]))[0])
    e_slow_sub = float(dvs_curve(chain_sub, np.array([probe]))[0])
    gated_advantage = 1.0 - e_sub_gated[0] / e_sup_gated[0]

    comparisons = (
        Comparison(
            claim="without power gating, idling below the V_min rate "
                  "blows up energy per cycle (why Insomniac stays awake)",
            paper_value=float("nan"),
            measured_value=ungated_blowup,
            holds=ungated_blowup > 2.0,
            note="E(0.05 f_Vmin)/E(f_Vmin), idle leakage retained",
        ),
        Comparison(
            claim="with ideal power gating, energy saturates at the V_min "
                  "floor (the DVS limit)",
            paper_value=1.0,
            measured_value=gated_floor,
            holds=abs(gated_floor - 1.0) < 0.02,
        ),
        Comparison(
            claim="energy rises steeply above the V_min rate",
            paper_value=float("nan"),
            measured_value=above_slope,
            holds=above_slope > 1.3,
            note="E(16 f_Vmin)/E(f_Vmin)",
        ),
        Comparison(
            claim="without gating, deep duty-cycling favours the higher-"
                  "V_th super device (standby leakage rules)",
            paper_value=float("nan"),
            measured_value=e_slow_sub / e_slow_sup,
            holds=e_slow_sub > e_slow_sup,
            note="matched slow rate, idle leakage retained — the flip "
                 "side of the sub-V_th at-speed win in ext_pareto",
        ),
        Comparison(
            claim="with power gating the sub-V_th energy floor wins again",
            paper_value=0.23,
            measured_value=gated_advantage,
            holds=gated_advantage > 0.05,
            note="each design idles for free at its own V_min floor",
        ),
        Comparison(
            claim="the sub-V_th design's V_min rate is faster (more of the "
                  "rate axis enjoys minimum-energy operation)",
            paper_value=float("nan"),
            measured_value=f_vmin_sub / f_vmin_sup,
            holds=f_vmin_sub > f_vmin_sup,
        ),
    )
    return ExperimentResult(
        experiment_id="ext_dvs",
        title="The DVS limit at the 32nm node",
        series=series,
        comparisons=comparisons,
    )
