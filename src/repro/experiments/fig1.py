"""Fig. 1(b) — the 2-D doping profile of the optimised 90nm NFET.

Fig. 1(a) is a schematic cross-section and Fig. 1(c) the optimiser
flow-chart (implemented as :mod:`repro.scaling.supervth`); the
quantitative panel is (b): the doping contours of a representative
90nm device.  This experiment rasterises the optimised 90nm NFET's
profile on a lateral x vertical grid and checks its structure — halo
pockets peaked at the channel edges near the junction depth, decaying
to the uniform substrate level at mid-channel and at depth.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from .families import super_vth_family
from .registry import experiment

#: Raster resolution.
N_X, N_Y = 121, 81


@experiment("fig1", "2-D doping profile of the 90nm NFET (Fig. 1b)")
def run() -> ExperimentResult:
    """Rasterise and structurally validate the 90nm doping profile."""
    design = super_vth_family().design("90nm")
    dev = design.nfet
    l_eff = dev.geometry.l_eff_cm
    depth = 3.0 * dev.geometry.junction_depth_cm
    x = np.linspace(0.0, l_eff, N_X)
    y = np.linspace(0.0, depth, N_Y)
    field = dev.profile.raster2d(x, y, l_eff)

    # Vertical cut at the source-side channel edge (through the halo)
    # and at mid-channel.
    edge_cut = field[0, :]
    mid_cut = field[N_X // 2, :]
    series = (
        Series(label="doping at channel edge", x=1e7 * y, y=edge_cut,
               x_label="depth [nm]", y_label="N_A [cm^-3]"),
        Series(label="doping at mid-channel", x=1e7 * y, y=mid_cut,
               x_label="depth [nm]", y_label="N_A [cm^-3]"),
    )

    halo = dev.profile.halo
    peak_value = float(field.max())
    peak_ix, peak_iy = np.unravel_index(int(np.argmax(field)), field.shape)
    peak_depth = float(y[peak_iy])
    deep_value = float(field[N_X // 2, -1])

    comparisons = (
        Comparison(
            claim="peak doping equals N_sub + N_p,halo at the pocket",
            paper_value=dev.profile.n_halo_net_cm3,
            measured_value=peak_value,
            unit="cm^-3",
            holds=abs(peak_value / dev.profile.n_halo_net_cm3 - 1.0) < 0.05,
        ),
        Comparison(
            claim="halo pockets sit at the channel edges",
            paper_value=0.0,
            measured_value=float(min(x[peak_ix], l_eff - x[peak_ix])) * 1e7,
            unit="nm",
            holds=min(peak_ix, N_X - 1 - peak_ix) <= 1,
            note="lateral distance of the doping maximum from an edge",
        ),
        Comparison(
            claim="halo peak depth matches the implant specification",
            paper_value=1e7 * halo.depth_cm,
            measured_value=1e7 * peak_depth,
            unit="nm",
            holds=abs(peak_depth - halo.depth_cm) < 2.0 * (y[1] - y[0]),
        ),
        Comparison(
            claim="deep bulk relaxes to the uniform substrate doping",
            paper_value=dev.profile.n_sub_cm3,
            measured_value=deep_value,
            unit="cm^-3",
            holds=abs(deep_value / dev.profile.n_sub_cm3 - 1.0) < 0.10,
        ),
        Comparison(
            claim="mid-channel surface doping is far below the halo peak "
                  "(pockets are localised)",
            paper_value=float("nan"),
            measured_value=float(mid_cut.max() / peak_value),
            holds=mid_cut.max() < 0.8 * peak_value,
        ),
    )
    return ExperimentResult(
        experiment_id="fig1",
        title="2-D doping profile of the optimised 90nm NFET",
        series=series,
        comparisons=comparisons,
    )
