"""Experiment registry.

Experiments self-register with the :func:`experiment` decorator; the
CLI and the benchmark harness look them up by id.
"""

from __future__ import annotations

from typing import Callable

from ..analysis.report import ExperimentResult
from ..errors import ExperimentError

_REGISTRY: dict[str, tuple[str, Callable[[], ExperimentResult]]] = {}


def experiment(experiment_id: str, title: str):
    """Class-free registration decorator for experiment functions."""

    def register(func: Callable[[], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {experiment_id!r}")
        _REGISTRY[experiment_id] = (title, func)
        return func

    return register


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id and return its result."""
    try:
        _title, func = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return func()


def experiment_title(experiment_id: str) -> str:
    """Title of one registered experiment (without running it)."""
    try:
        title, _func = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return title


def experiment_ids() -> list[str]:
    """All registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def list_experiments() -> list[tuple[str, str]]:
    """(id, title) pairs for all registered experiments."""
    return [(eid, _REGISTRY[eid][0]) for eid in experiment_ids()]
