"""Fig. 8 — energy and delay factors versus gate length (45nm device).

Sweeps L_poly for the 45nm node with per-length doping optimisation and
plots the Eq. 8 energy factor ``C_L S_S^2`` and Eq. 6 delay factor
``C_L S_S`` (I_off fixed).  Both exhibit interior minima; the energy
minimum sits at a longer gate, and because the delay minimum is
shallow, picking the energy-optimal length costs almost nothing in
speed — the paper's justification for the sub-V_th strategy.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..scaling.roadmap import node_by_name
from ..scaling.subvth import SubVthOptimizer
from .registry import experiment

#: Gate-length sweep for the 45nm node [nm].
LENGTH_GRID_NM = np.linspace(32.0, 100.0, 12)


@experiment("fig8", "Energy and delay factors vs gate length (Fig. 8)")
def run() -> ExperimentResult:
    """Reproduce Fig. 8 at the 45nm node."""
    node = node_by_name("45nm")
    optimizer = SubVthOptimizer(node)
    energy = []
    delay = []
    for l_poly in LENGTH_GRID_NM:
        design = optimizer.design_for_length(float(l_poly))
        energy.append(optimizer.energy_factor(design))
        delay.append(optimizer.delay_factor(design))
    energy = np.array(energy)
    delay = np.array(delay)

    energy_series = Series(label="energy factor C_L*S_S^2",
                           x=LENGTH_GRID_NM, y=energy / energy[0],
                           x_label="L_poly [nm]", y_label="normalized")
    delay_series = Series(label="delay factor C_L*S_S",
                          x=LENGTH_GRID_NM, y=delay / delay[0],
                          x_label="L_poly [nm]", y_label="normalized")

    e_idx = int(np.argmin(energy))
    d_idx = int(np.argmin(delay))
    e_opt = float(LENGTH_GRID_NM[e_idx])
    d_opt = float(LENGTH_GRID_NM[d_idx])
    # Delay penalty of choosing the energy-optimal length.
    delay_penalty = float(delay[e_idx] / delay[d_idx] - 1.0)

    comparisons = (
        Comparison(
            claim="the energy factor has an interior minimum",
            paper_value=60.0,
            measured_value=e_opt,
            unit="nm",
            holds=0 < e_idx < len(LENGTH_GRID_NM) - 1,
            note="paper's energy-optimal L_poly is 60 nm",
        ),
        Comparison(
            claim="the delay-factor minimum is at a shorter (or equal) gate",
            paper_value=float("nan"),
            measured_value=d_opt,
            unit="nm",
            holds=d_opt <= e_opt,
        ),
        Comparison(
            claim="choosing the energy-optimal length costs little delay "
                  "(shallow delay minimum)",
            paper_value=0.0,
            measured_value=delay_penalty,
            holds=delay_penalty < 0.10,
            note="fractional delay-factor penalty at the energy optimum",
        ),
        Comparison(
            claim="the energy-optimal gate is longer than the roadmap "
                  "L_poly (32 nm)",
            paper_value=60.0 / 32.0,
            measured_value=e_opt / node.l_poly_nm,
            holds=e_opt > node.l_poly_nm,
            note="ratio to the super-V_th gate length",
        ),
    )
    return ExperimentResult(
        experiment_id="fig8",
        title="Energy and delay factors for a 45nm device",
        series=(energy_series, delay_series),
        comparisons=comparisons,
    )
