"""Fig. 6 — energy/cycle and V_min for a 30-inverter chain (super-V_th).

The paper's chain testbench: 30 stages, activity 0.1, operated at the
energy-optimal supply V_min.  Energy per cycle falls with scaling, but
V_min *rises* ~40 mV between the 90nm and 32nm nodes because
V_min tracks S_S.  The Eq. 8 factor C_L*S_S^2 is overlaid and must
track the simulated energy closely (the paper's validation of Eq. 8).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.chain import InverterChain
from .families import super_vth_family
from .registry import experiment

#: Paper claims.
PAPER_VMIN_RISE_V = 0.040
#: Chain testbench parameters (paper Fig. 6 caption).
N_STAGES = 30
ACTIVITY = 0.1


@experiment("fig6", "Chain energy/cycle and V_min vs node (Fig. 6)")
def run() -> ExperimentResult:
    """Reproduce Fig. 6 under the super-V_th strategy."""
    family = super_vth_family()
    nodes = np.array([d.node.node_nm for d in family.designs])
    energies = []
    vmins = []
    factors = []
    for design in family.designs:
        chain = InverterChain(design.inverter(0.3), n_stages=N_STAGES,
                              activity=ACTIVITY)
        mep = chain.minimum_energy_point()
        energies.append(mep.energy.total_j)
        vmins.append(mep.vmin)
        # The Eq. 8 factor, with C_L evaluated in the regime it is
        # switched in (the weak-inversion load at V_min).
        c_load = design.inverter(mep.vmin).load_capacitance(fanout=1)
        factors.append(c_load * design.nfet.ss_v_per_dec ** 2)
    energies = np.array(energies)
    vmins = np.array(vmins)
    factors = np.array(factors)

    energy_series = Series(label="energy/cycle @Vmin", x=nodes, y=energies,
                           x_label="node [nm]", y_label="E [J]")
    vmin_series = Series(label="Vmin", x=nodes, y=1000.0 * vmins,
                         x_label="node [nm]", y_label="V_min [mV]")
    factor_series = Series(label="C_L*S_S^2 (normalized to energy)",
                           x=nodes,
                           y=factors * energies[0] / factors[0],
                           x_label="node [nm]", y_label="E [J]")

    corr = energy_series.pearson_r(factor_series)
    vmin_rise = float(vmins[-1] - vmins[0])
    comparisons = (
        Comparison(
            claim="energy/cycle at V_min falls 90nm -> 32nm",
            paper_value=float("nan"),
            measured_value=float(energies[-1] / energies[0]),
            holds=energies[-1] < energies[0],
            note="32nm-to-90nm energy ratio",
        ),
        Comparison(
            claim="V_min rises ~40 mV between the 90nm and 32nm nodes",
            paper_value=PAPER_VMIN_RISE_V,
            measured_value=vmin_rise,
            unit="V",
            holds=0.020 < vmin_rise < 0.080,
        ),
        Comparison(
            claim="the factor C_L*S_S^2 tracks simulated energy (Eq. 8)",
            paper_value=1.0,
            measured_value=corr,
            holds=corr > 0.90,
            note="Pearson correlation across nodes",
        ),
    )
    return ExperimentResult(
        experiment_id="fig6",
        title="Chain energy per cycle and V_min (30 stages, alpha=0.1)",
        series=(energy_series, vmin_series, factor_series),
        comparisons=comparisons,
    )
