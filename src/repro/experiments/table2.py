"""Table 2 — NFET parameters under super-V_th scaling.

Runs the Fig. 1(c) optimiser at every node and tabulates the same
columns the paper prints: L_poly, T_ox, N_sub, N_halo, V_dd, V_th,sat,
I_off and the intrinsic delay tau = C_g V_dd / I_on.
"""

from __future__ import annotations

from ..analysis.report import Comparison, ExperimentResult
from .families import super_vth_family
from .registry import experiment

#: Paper Table 2 reference values, 90nm -> 32nm order.
PAPER_VTH_SAT_MV = (403.0, 420.0, 438.0, 461.0)
PAPER_IOFF_PA = (100.0, 125.0, 156.0, 195.0)
PAPER_TAU_PS = (1.3, 0.97, 0.75, 0.62)
PAPER_NSUB = (1.52e18, 1.97e18, 2.52e18, 3.31e18)
PAPER_NHALO = (3.63e18, 5.17e18, 7.83e18, 12.0e18)


@experiment("table2", "NFET parameters under super-V_th scaling (Table 2)")
def run() -> ExperimentResult:
    """Reproduce Table 2 and check its trend claims."""
    family = super_vth_family()
    rows = []
    summaries = []
    for design in family.designs:
        s = design.summary()
        summaries.append(s)
        rows.append((
            design.node.name,
            f"{s['l_poly_nm']:.0f}",
            f"{s['t_ox_nm']:.2f}",
            f"{s['n_sub_cm3']:.3g}",
            f"{s['n_halo_cm3']:.3g}",
            f"{s['vdd']:.1f}",
            f"{s['vth_sat_mv']:.0f}",
            f"{s['ioff_pa_per_um']:.0f}",
            f"{s['tau_ps']:.2f}",
        ))

    vth = [s["vth_sat_mv"] for s in summaries]
    ioff = [s["ioff_pa_per_um"] for s in summaries]
    tau = [s["tau_ps"] for s in summaries]
    nsub = [s["n_sub_cm3"] for s in summaries]
    nhalo = [s["n_halo_cm3"] for s in summaries]

    comparisons = (
        Comparison(
            claim="I_off meets the 100 pA/um +25%/gen budget at every node",
            paper_value=PAPER_IOFF_PA[-1],
            measured_value=ioff[-1],
            unit="pA/um",
            holds=all(abs(m - p) / p < 0.05
                      for m, p in zip(ioff, PAPER_IOFF_PA)),
            note="budget is an optimiser constraint; must bind exactly",
        ),
        Comparison(
            claim="V_th,sat increases monotonically with scaling",
            paper_value=PAPER_VTH_SAT_MV[-1] - PAPER_VTH_SAT_MV[0],
            measured_value=vth[-1] - vth[0],
            unit="mV",
            holds=all(b > a for a, b in zip(vth, vth[1:])),
            note="paper: +58 mV over three generations",
        ),
        Comparison(
            claim="channel doping (N_sub, N_halo) grows every generation",
            paper_value=PAPER_NHALO[-1] / PAPER_NHALO[0],
            measured_value=nhalo[-1] / nhalo[0],
            holds=(all(b > a for a, b in zip(nsub, nsub[1:]))
                   and all(b > a for a, b in zip(nhalo, nhalo[1:]))),
            note="ratio of 32nm to 90nm net halo doping",
        ),
        Comparison(
            claim="intrinsic delay tau improves with scaling at nominal V_dd",
            paper_value=PAPER_TAU_PS[-1] / PAPER_TAU_PS[0],
            measured_value=tau[-1] / tau[0],
            holds=tau[-1] < tau[0],
            note="absolute tau differs (mobility/velocity-saturation "
                 "calibration); the scaling ratio is the claim",
        ),
    )
    return ExperimentResult(
        experiment_id="table2",
        title="NFET parameters under super-V_th scaling",
        headers=("node", "L_poly nm", "T_ox nm", "N_sub cm-3", "N_halo cm-3",
                 "V_dd", "V_th,sat mV", "I_off pA/um", "tau ps"),
        rows=tuple(rows),
        comparisons=comparisons,
    )
