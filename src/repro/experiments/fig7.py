"""Fig. 7 — S_S versus gate length for a 45nm device.

Two curves:

* **fixed doping profile** — the super-V_th 45nm doping with halo
  geometry scaling along with the drawn gate (lengthening the device
  without touching the implants); S_S saturates at a halo-degraded
  value because the heavy channel doping keeps the depletion width
  small, and
* **optimized doping** — the sub-V_th inner loop re-optimises the
  doping at every length under the fixed I_off target; the halo backs
  off as the channel lengthens and S_S keeps improving.

The gap between the curves at long L is the paper's point: "it is not
sufficient to simply lengthen L_poly without considering the doping".
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.mosfet import Polarity, nfet
from ..scaling.roadmap import node_by_name
from ..scaling.subvth import SUB_VTH_EVAL_VDD, optimize_doping_for_length
from .registry import experiment

#: Gate-length sweep for the 45nm node [nm].
LENGTH_GRID_NM = np.linspace(32.0, 96.0, 9)


@experiment("fig7", "S_S vs gate length, fixed vs optimized doping (Fig. 7)")
def run() -> ExperimentResult:
    """Reproduce Fig. 7 at the 45nm node."""
    node = node_by_name("45nm")
    reference = optimize_doping_for_length(
        node, node.l_poly_nm, polarity=Polarity.NFET,
        vdd_leak=SUB_VTH_EVAL_VDD,
    )
    n_sub = reference.profile.n_sub_cm3
    n_p_halo = reference.profile.n_p_halo_cm3

    fixed = []
    optimized = []
    for l_poly in LENGTH_GRID_NM:
        # Fixed profile: same dopings, proportional geometry (halo and
        # junctions stretch with the drawn gate).
        dev_fixed = nfet(float(l_poly), node.t_ox_nm, n_sub, n_p_halo)
        fixed.append(dev_fixed.ss_mv_per_dec)
        dev_opt = optimize_doping_for_length(
            node, float(l_poly), polarity=Polarity.NFET,
            vdd_leak=SUB_VTH_EVAL_VDD,
        )
        optimized.append(dev_opt.ss_mv_per_dec)
    fixed = np.array(fixed)
    optimized = np.array(optimized)

    fixed_series = Series(label="fixed doping profile", x=LENGTH_GRID_NM,
                          y=fixed, x_label="L_poly [nm]",
                          y_label="S_S [mV/dec]")
    opt_series = Series(label="optimized doping", x=LENGTH_GRID_NM,
                        y=optimized, x_label="L_poly [nm]",
                        y_label="S_S [mV/dec]")

    gap_long = float(fixed[-1] - optimized[-1])
    comparisons = (
        Comparison(
            claim="optimized doping beats the fixed profile at long L_poly",
            paper_value=float("nan"),
            measured_value=gap_long,
            unit="mV/dec",
            holds=gap_long > 0.5,
            note="S_S gap at the longest swept gate",
        ),
        Comparison(
            claim="optimized S_S improves monotonically with gate length",
            paper_value=float("nan"),
            measured_value=float(optimized[0] - optimized[-1]),
            unit="mV/dec",
            holds=bool(np.all(np.diff(optimized) < 0.3)),
            note="improvement from the shortest to longest gate",
        ),
        Comparison(
            claim="the fixed profile saturates: lengthening alone stops "
                  "helping",
            paper_value=float("nan"),
            measured_value=float(fixed[-1] - fixed[-2]),
            unit="mV/dec",
            holds=abs(fixed[-1] - fixed[-2]) < abs(fixed[1] - fixed[0]),
        ),
    )
    return ExperimentResult(
        experiment_id="fig7",
        title="S_S vs gate length for a 45nm device",
        series=(fixed_series, opt_series),
        comparisons=comparisons,
    )
