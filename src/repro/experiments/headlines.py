"""The paper's headline numbers, in one table.

Aggregates the four quantitative claims the abstract makes into a
single experiment (convenient for ``python -m repro run headlines``):

* 60 % I_on/I_off reduction between 90nm and 32nm (Fig. 2),
* >10 % SNM degradation under super-V_th scaling (Fig. 4),
* 19 % SNM improvement under the proposed strategy at 32nm (Fig. 10),
* 23 % energy improvement at 32nm (Fig. 12),
* 18 %/generation delay reduction under the proposed strategy (Fig. 11).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..circuit.chain import InverterChain
from ..circuit.delay import fo1_delay
from ..circuit.snm import noise_margins
from .families import SUB_VTH_SUPPLY, sub_vth_family, super_vth_family
from .registry import experiment


@experiment("headlines", "The abstract's headline numbers")
def run() -> ExperimentResult:
    """Compute all five abstract claims from the cached families."""
    sup = super_vth_family()
    sub = sub_vth_family()
    sup90, sup32 = sup.design("90nm"), sup.design("32nm")
    sub32 = sub.design("32nm")

    ratio90 = sup90.nfet.ids(SUB_VTH_SUPPLY, SUB_VTH_SUPPLY) \
        / sup90.nfet.ids(0.0, SUB_VTH_SUPPLY)
    ratio32 = sup32.nfet.ids(SUB_VTH_SUPPLY, SUB_VTH_SUPPLY) \
        / sup32.nfet.ids(0.0, SUB_VTH_SUPPLY)
    onoff_loss = 1.0 - ratio32 / ratio90

    snm_sup90 = noise_margins(sup90.inverter(SUB_VTH_SUPPLY)).snm
    snm_sup32 = noise_margins(sup32.inverter(SUB_VTH_SUPPLY)).snm
    snm_sub32 = noise_margins(sub32.inverter(SUB_VTH_SUPPLY)).snm
    snm_loss = 1.0 - snm_sup32 / snm_sup90
    snm_gain = snm_sub32 / snm_sup32 - 1.0

    e_sup = InverterChain(sup32.inverter(0.3)).minimum_energy_point() \
        .energy.total_j
    e_sub = InverterChain(sub32.inverter(0.3)).minimum_energy_point() \
        .energy.total_j
    energy_gain = 1.0 - e_sub / e_sup

    delays = [fo1_delay(d.inverter(SUB_VTH_SUPPLY),
                        transient=False).analytic_s
              for d in sub.designs]
    rates = np.diff(delays) / np.array(delays[:-1])
    delay_rate = float(rates.mean())

    rows = (
        ("Ion/Ioff loss 90->32nm @250mV", "60 %", f"{100 * onoff_loss:.0f} %"),
        ("SNM loss under super-V_th", ">10 %", f"{100 * snm_loss:.0f} %"),
        ("SNM gain of sub-V_th @32nm", "19 %", f"{100 * snm_gain:.0f} %"),
        ("energy gain of sub-V_th @32nm", "23 %",
         f"{100 * energy_gain:.0f} %"),
        ("sub-V_th delay change per gen", "-18 %",
         f"{100 * delay_rate:.0f} %"),
    )
    comparisons = (
        Comparison(claim="60% Ion/Ioff reduction", paper_value=0.60,
                   measured_value=onoff_loss, holds=onoff_loss > 0.45),
        Comparison(claim=">10% SNM degradation", paper_value=0.10,
                   measured_value=snm_loss, holds=snm_loss > 0.10),
        Comparison(claim="19% SNM improvement", paper_value=0.19,
                   measured_value=snm_gain, holds=snm_gain > 0.10),
        Comparison(claim="23% energy improvement", paper_value=0.23,
                   measured_value=energy_gain, holds=energy_gain > 0.08),
        Comparison(claim="18%/gen delay reduction", paper_value=-0.18,
                   measured_value=delay_rate,
                   holds=bool(np.all(rates < 0.0)),
                   note="monotone improvement; model rate is shallower"),
    )
    return ExperimentResult(
        experiment_id="headlines",
        title="The abstract's headline numbers",
        headers=("claim", "paper", "measured"),
        rows=rows,
        comparisons=comparisons,
    )
