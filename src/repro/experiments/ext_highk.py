"""Extension — high-k gate stacks: "may be the only solution".

The paper's Section 2.2 observes that conventional SiO2 stacks are
limited to ~1 nm and that "high-k dielectrics may be the only
solution" to resume oxide scaling.  This experiment quantifies both
halves of that sentence at the 32nm node:

1. *EOT scaling fixes the slope*: re-running the super-V_th flow with
   progressively thinner EOT recovers S_S toward its 90nm value.
2. *Only high-k can afford it*: the direct-tunnelling leakage of a
   physical SiO2 film at those EOTs exceeds the channel's entire
   100 pA/µm budget by orders of magnitude, while an HfO2 stack of
   equal EOT (4-5x physically thicker) stays negligible.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..constants import nm_to_cm
from ..device.mosfet import Polarity
from ..materials.oxide import hfo2, sio2
from ..scaling.roadmap import NodeSpec, node_by_name
from ..scaling.supervth import SuperVthOptimizer
from .registry import experiment

#: EOT values swept at the 32nm node [nm]; 1.53 is the roadmap value.
EOT_GRID_NM = (1.53, 1.2, 0.9, 0.7)


def _node_with_eot(eot_nm: float) -> NodeSpec:
    base = node_by_name("32nm")
    return NodeSpec(
        name=f"32nm@eot-{eot_nm:.2f}",
        node_nm=base.node_nm,
        l_poly_nm=base.l_poly_nm,
        t_ox_nm=eot_nm,
        vdd_nominal=base.vdd_nominal,
        ioff_target_a_per_um=base.ioff_target_a_per_um,
        generation=base.generation,
    )


def _gate_leakage_per_um(stack, l_poly_nm: float, vdd: float) -> float:
    """Gate tunnelling current per µm of width [A/µm].

    Gate area per µm of width is ``L_poly x 1 µm`` in cm².
    """
    area_cm2_per_um = nm_to_cm(l_poly_nm) * 1.0e-4
    return stack.tunneling_leakage_a_cm2(vdd) * area_cm2_per_um


@experiment("ext_highk", "Extension: high-k gate stacks at 32nm")
def run() -> ExperimentResult:
    """EOT scaling vs S_S, and SiO2-vs-HfO2 gate leakage."""
    base = node_by_name("32nm")
    eots = np.array(EOT_GRID_NM)
    ss = []
    for eot in EOT_GRID_NM:
        device = SuperVthOptimizer(_node_with_eot(eot),
                                   Polarity.NFET).optimize()
        ss.append(device.ss_mv_per_dec)
    ss = np.array(ss)

    sio2_leak = np.array([
        _gate_leakage_per_um(sio2(nm_to_cm(e)), base.l_poly_nm,
                             base.vdd_nominal)
        for e in EOT_GRID_NM
    ])
    hfo2_leak = np.array([
        _gate_leakage_per_um(hfo2(nm_to_cm(e)), base.l_poly_nm,
                             base.vdd_nominal)
        for e in EOT_GRID_NM
    ])

    series = (
        Series(label="S_S at 32nm vs EOT", x=eots, y=ss,
               x_label="EOT [nm]", y_label="S_S [mV/dec]"),
        Series(label="SiO2 gate leakage", x=eots, y=sio2_leak,
               x_label="EOT [nm]", y_label="I_gate [A/um]"),
        Series(label="HfO2 gate leakage", x=eots, y=hfo2_leak,
               x_label="EOT [nm]", y_label="I_gate [A/um]"),
    )

    budget = base.ioff_target_a_per_um
    ss_90nm_reference = 80.0
    comparisons = (
        Comparison(
            claim="thinner EOT monotonically recovers the 32nm slope",
            paper_value=float("nan"),
            measured_value=float(ss[0] - ss[-1]),
            unit="mV/dec",
            holds=bool(np.all(np.diff(ss) < 0.0)),
            note="S_S recovered from EOT 1.53 nm to 0.7 nm",
        ),
        Comparison(
            claim="aggressive EOT restores ~90nm-class slope",
            paper_value=ss_90nm_reference,
            measured_value=float(ss[-1]),
            unit="mV/dec",
            holds=ss[-1] < ss[0] - 4.0,
        ),
        Comparison(
            claim="SiO2 at sub-nm EOT tunnels far beyond the channel "
                  "leakage budget",
            paper_value=budget,
            measured_value=float(sio2_leak[-1]),
            unit="A/um",
            holds=sio2_leak[-1] > 100.0 * budget,
        ),
        Comparison(
            claim="HfO2 at the same EOT stays below the budget",
            paper_value=budget,
            measured_value=float(hfo2_leak[-1]),
            unit="A/um",
            holds=hfo2_leak[-1] < budget,
        ),
    )
    return ExperimentResult(
        experiment_id="ext_highk",
        title="High-k gate stacks: EOT scaling vs slope and gate leakage",
        series=series,
        comparisons=comparisons,
    )
