"""Extension — projecting both strategies to 22nm and 16nm.

Tests the paper's closing claim ("sub-V_th circuits may be able to
reliably scale deep into the nanometer regime") by extrapolating the
roadmap two generations past the paper's horizon and re-running both
optimisers:

* the super-V_th flow still *converges*, but only by pushing the halo
  toward solid-solubility-class concentrations while the slope sails
  past 100 mV/dec — a device no designer would accept below threshold;
* the sub-V_th flow keeps trading gate length for slope and holds
  S_S ≈ 78 mV/dec through 16nm with manufacturable doping.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..scaling.projection import project_sub_vth, project_super_vth
from .families import sub_vth_family, super_vth_family
from .registry import experiment

#: Activated-dopant ceiling for p-type silicon [cm^-3]; halo demands in
#: this range are not manufacturable.
SOLUBILITY_CLASS = 3.0e19


@experiment("ext_projection", "Extension: projecting to 22nm and 16nm")
def run() -> ExperimentResult:
    """Extrapolate both strategies two generations past 32nm."""
    sup32 = super_vth_family().design("32nm")
    sub32 = sub_vth_family().design("32nm")
    sup_out = project_super_vth()
    sub_out = project_sub_vth()

    sup_feasible = [o for o in sup_out if o.feasible]
    sub_feasible = [o for o in sub_out if o.feasible]

    nodes = np.array([32.0] + [o.node.node_nm for o in sup_feasible])
    ss_sup = np.array([sup32.nfet.ss_mv_per_dec]
                      + [o.design.nfet.ss_mv_per_dec for o in sup_feasible])
    nodes_sub = np.array([32.0] + [o.node.node_nm for o in sub_feasible])
    ss_sub = np.array([sub32.nfet.ss_mv_per_dec]
                      + [o.design.nfet.ss_mv_per_dec for o in sub_feasible])
    halo_sup = np.array([sup32.nfet.profile.n_halo_net_cm3]
                        + [o.design.nfet.profile.n_halo_net_cm3
                           for o in sup_feasible])
    halo_sub = np.array([sub32.nfet.profile.n_halo_net_cm3]
                        + [o.design.nfet.profile.n_halo_net_cm3
                           for o in sub_feasible])

    series = (
        Series(label="S_S projection super-vth", x=nodes, y=ss_sup,
               x_label="node [nm]", y_label="S_S [mV/dec]"),
        Series(label="S_S projection sub-vth", x=nodes_sub, y=ss_sub,
               x_label="node [nm]", y_label="S_S [mV/dec]"),
        Series(label="N_halo projection super-vth", x=nodes, y=halo_sup,
               x_label="node [nm]", y_label="N_halo [cm^-3]"),
        Series(label="N_halo projection sub-vth", x=nodes_sub, y=halo_sub,
               x_label="node [nm]", y_label="N_halo [cm^-3]"),
    )

    sub_drift = float(ss_sub.max() - ss_sub.min())
    comparisons = (
        Comparison(
            claim="sub-V_th S_S stays flat two generations past the paper",
            paper_value=1.2,
            measured_value=sub_drift,
            unit="mV/dec",
            holds=len(sub_feasible) == 2 and sub_drift < 3.0,
            note="spread across 32nm -> 16nm",
        ),
        Comparison(
            claim="super-V_th S_S keeps degrading past 100 mV/dec",
            paper_value=float("nan"),
            measured_value=float(ss_sup[-1]),
            unit="mV/dec",
            holds=bool(np.all(np.diff(ss_sup) > 0.0) and ss_sup[-1] > 100.0),
        ),
        Comparison(
            claim="super-V_th halo demand reaches solubility-class doping",
            paper_value=SOLUBILITY_CLASS,
            measured_value=float(halo_sup[-1]),
            unit="cm^-3",
            holds=halo_sup[-1] > SOLUBILITY_CLASS,
            note="no longer a 'simple modification of existing devices'",
        ),
        Comparison(
            claim="sub-V_th halo demand stays manufacturable",
            paper_value=SOLUBILITY_CLASS,
            measured_value=float(halo_sub[-1]),
            unit="cm^-3",
            holds=halo_sub[-1] < 0.7 * SOLUBILITY_CLASS,
        ),
    )
    return ExperimentResult(
        experiment_id="ext_projection",
        title="Both strategies projected to 22nm and 16nm",
        series=series,
        comparisons=comparisons,
    )
