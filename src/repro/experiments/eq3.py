"""Eq. 3 — the paper's analytic subthreshold VTC, validated.

The paper derives the inverter transfer characteristic by equating the
Eq. 1 currents (Eq. 3a-c) and uses it to argue that S_S (through the
slope factor m) controls the noise margins.  This experiment checks
both steps against the full numerical machinery on the 90nm device:

* Eq. 3(c) matches the Brent-solved VTC to ~10 mV in deep subthreshold,
* the analytic gain = -1 SNM matches the numerical SNM within 10 %,
* SNM predicted from Eq. 3(c) falls monotonically as m grows — the
  mechanism behind Figs. 4 and 10.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.analytic_vtc import (
    analytic_snm_matched,
    compare_with_numeric,
    vin_of_vout_matched,
)
from ..circuit.snm import noise_margins
from .families import SUB_VTH_SUPPLY, super_vth_family
from .registry import experiment

#: Slope factors swept for the SNM(m) mechanism curve.
M_GRID = (1.1, 1.2, 1.3, 1.4, 1.5, 1.6)


@experiment("eq3", "Analytic subthreshold VTC (Eq. 3) validation")
def run() -> ExperimentResult:
    """Validate Eq. 3(c) and the S_S -> SNM mechanism."""
    design = super_vth_family().design("90nm")
    inverter = design.inverter(SUB_VTH_SUPPLY)
    m = inverter.nfet.slope_factor

    # The analytic and numeric VTCs as series (V_out as x for Eq. 3c).
    vouts = np.linspace(0.01 * SUB_VTH_SUPPLY, 0.99 * SUB_VTH_SUPPLY, 61)
    vins_analytic = vin_of_vout_matched(vouts, SUB_VTH_SUPPLY, m)
    vins_grid = np.linspace(0.0, SUB_VTH_SUPPLY, 61)
    vouts_numeric = np.array([inverter.vtc_point(float(v))
                              for v in vins_grid])

    snm_vs_m = np.array([1000.0 * analytic_snm_matched(SUB_VTH_SUPPLY,
                                                       mm).snm
                         for mm in M_GRID])

    series = (
        Series(label="Eq. 3(c) VTC (analytic)", x=np.asarray(vins_analytic),
               y=vouts, x_label="V_in [V]", y_label="V_out [V]"),
        Series(label="numerical VTC", x=vins_grid, y=vouts_numeric,
               x_label="V_in [V]", y_label="V_out [V]"),
        Series(label="analytic SNM vs slope factor", x=np.array(M_GRID),
               y=snm_vs_m, x_label="m", y_label="SNM [mV]"),
    )

    agreement = compare_with_numeric(inverter)
    snm_analytic = analytic_snm_matched(SUB_VTH_SUPPLY, m).snm
    snm_numeric = noise_margins(inverter).snm
    comparisons = (
        Comparison(
            claim="Eq. 3(c) matches the numerical VTC in deep subthreshold",
            paper_value=0.0,
            measured_value=agreement["max_vin_deviation_v"],
            unit="V",
            holds=agreement["max_vin_deviation_v"] < 0.02,
            note="max input-referred deviation at 250 mV",
        ),
        Comparison(
            claim="the analytic gain=-1 SNM tracks the numerical one",
            paper_value=snm_numeric,
            measured_value=snm_analytic,
            unit="V",
            holds=abs(snm_analytic / snm_numeric - 1.0) < 0.25,
            note="Eq. 3(c) assumes matched N/P devices and pure "
                 "exponentials; the optimised pair is mildly asymmetric",
        ),
        Comparison(
            claim="SNM falls monotonically as the slope factor grows "
                  "(the Fig. 4/10 mechanism)",
            paper_value=float("nan"),
            measured_value=float(snm_vs_m[0] - snm_vs_m[-1]),
            unit="mV",
            holds=bool(np.all(np.diff(snm_vs_m) < 0.0)),
            note="SNM lost between m=1.1 and m=1.6 at 250 mV",
        ),
        Comparison(
            claim="the matched trip point sits at V_dd/2",
            paper_value=SUB_VTH_SUPPLY / 2.0,
            measured_value=float(vin_of_vout_matched(
                SUB_VTH_SUPPLY / 2.0, SUB_VTH_SUPPLY, m)),
            unit="V",
            holds=True,
        ),
    )
    return ExperimentResult(
        experiment_id="eq3",
        title="Analytic subthreshold VTC (Eq. 3) validation",
        series=series,
        comparisons=comparisons,
    )
