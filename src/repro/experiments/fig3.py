"""Fig. 3 — NFET on-current at nominal V_dd and at 250 mV.

Under the leakage-constrained super-V_th strategy the on-current
*falls* between generations, and the loss is more dramatic measured in
the sub-V_th regime (250 mV) — the delay warning behind Fig. 5.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from .families import SUB_VTH_SUPPLY, super_vth_family
from .registry import experiment


@experiment("fig3", "NFET on-current vs node (Fig. 3)")
def run() -> ExperimentResult:
    """Reproduce Fig. 3 under the super-V_th strategy."""
    family = super_vth_family()
    nodes = np.array([d.node.node_nm for d in family.designs])
    ion_nominal = np.array([
        d.nfet.i_on_per_um(d.node.vdd_nominal) for d in family.designs
    ])
    ion_sub = np.array([
        d.nfet.i_on_per_um(SUB_VTH_SUPPLY) for d in family.designs
    ])

    nominal_series = Series(label="Ion @nominal Vdd", x=nodes,
                            y=ion_nominal, x_label="node [nm]",
                            y_label="I_on [A/um]")
    sub_series = Series(label="Ion @250mV", x=nodes, y=ion_sub,
                        x_label="node [nm]", y_label="I_on [A/um]")

    nominal_drop = float(1.0 - ion_nominal[-1] / ion_nominal[0])
    sub_drop = float(1.0 - ion_sub[-1] / ion_sub[0])
    comparisons = (
        Comparison(
            claim="I_on at nominal V_dd falls with scaling under the "
                  "leakage-constrained strategy",
            paper_value=float("nan"),
            measured_value=nominal_drop,
            holds=ion_nominal[-1] < ion_nominal[0],
            note="fraction lost 90nm -> 32nm",
        ),
        Comparison(
            claim="the current reduction is more dramatic at 250 mV",
            paper_value=float("nan"),
            measured_value=sub_drop - nominal_drop,
            holds=sub_drop > nominal_drop,
            note="difference of fractional losses (sub minus nominal)",
        ),
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="NFET on-current at nominal V_dd and 250 mV",
        series=(nominal_series, sub_series),
        comparisons=comparisons,
    )
