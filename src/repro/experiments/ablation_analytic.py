"""Ablation — analytic Eq. 2(b) vs the numerical Poisson simulator.

Cross-validates the compact model against the TCAD substitute: for
every super-V_th device, the inverse subthreshold slope from the
calibrated Eq. 2(b) expression is compared with the slope extracted
from the 1-D Poisson drift-diffusion transfer curve (the "MEDICI"
path), and likewise for the textbook (prefactor 11) variant.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.subthreshold import (
    TAUR_NING_PREFACTOR,
    inverse_subthreshold_slope,
)
from ..tcad.simulator import DeviceSimulator
from .families import super_vth_family
from .registry import experiment


@experiment("ablation_analytic", "Ablation: analytic vs numeric S_S")
def run() -> ExperimentResult:
    """Compare S_S from three routes on the super-V_th family."""
    family = super_vth_family()
    nodes = np.array([d.node.node_nm for d in family.designs])
    analytic = []
    textbook = []
    numeric = []
    for design in family.designs:
        dev = design.nfet
        analytic.append(dev.ss_mv_per_dec)
        textbook.append(1000.0 * inverse_subthreshold_slope(
            dev.stack, dev.iv.w_dep_cm, dev.geometry.l_eff_cm,
            prefactor=TAUR_NING_PREFACTOR,
        ))
        numeric.append(1000.0 * DeviceSimulator(dev).numeric_ss())
    analytic = np.array(analytic)
    textbook = np.array(textbook)
    numeric = np.array(numeric)

    series = (
        Series(label="S_S analytic (calibrated Eq. 2b)", x=nodes, y=analytic,
               x_label="node [nm]", y_label="S_S [mV/dec]"),
        Series(label="S_S analytic (textbook prefactor 11)", x=nodes,
               y=textbook, x_label="node [nm]", y_label="S_S [mV/dec]"),
        Series(label="S_S numeric (Poisson)", x=nodes, y=numeric,
               x_label="node [nm]", y_label="S_S [mV/dec]"),
    )

    max_err = float(np.max(np.abs(numeric - analytic) / analytic))
    comparisons = (
        Comparison(
            claim="numeric and calibrated-analytic S_S agree within 10%",
            paper_value=0.0,
            measured_value=max_err,
            holds=max_err < 0.10,
            note="worst relative error across nodes",
        ),
        Comparison(
            claim="the textbook prefactor over-predicts short-channel "
                  "degradation at scaled nodes",
            paper_value=float("nan"),
            measured_value=float(textbook[-1] - analytic[-1]),
            unit="mV/dec",
            holds=textbook[-1] > analytic[-1],
        ),
        Comparison(
            claim="all three routes agree on the direction: S_S degrades "
                  "with scaling",
            paper_value=float("nan"),
            measured_value=float(numeric[-1] - numeric[0]),
            unit="mV/dec",
            holds=(numeric[-1] > numeric[0] and analytic[-1] > analytic[0]
                   and textbook[-1] > textbook[0]),
        ),
    )
    return ExperimentResult(
        experiment_id="ablation_analytic",
        title="Analytic vs numeric subthreshold slope",
        series=series,
        comparisons=comparisons,
    )
