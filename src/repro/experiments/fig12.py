"""Fig. 12 — chain energy and V_min under both scaling strategies.

The headline energy result: at the 32nm node the sub-V_th strategy
consumes ~23 % less energy per cycle at V_min, and its V_min stays
nearly flat across generations while the super-V_th V_min climbs.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.chain import InverterChain
from .families import sub_vth_family, super_vth_family
from .fig6 import ACTIVITY, N_STAGES
from .registry import experiment

#: The paper's 32nm energy advantage and V_min flatness.
PAPER_ENERGY_ADVANTAGE = 0.23
PAPER_SUB_VMIN_SHIFT_V = 0.010


def _chain_points(family) -> tuple[np.ndarray, np.ndarray]:
    energies = []
    vmins = []
    for design in family.designs:
        chain = InverterChain(design.inverter(0.3), n_stages=N_STAGES,
                              activity=ACTIVITY)
        mep = chain.minimum_energy_point()
        energies.append(mep.energy.total_j)
        vmins.append(mep.vmin)
    return np.array(energies), np.array(vmins)


@experiment("fig12", "Chain energy and V_min under both strategies (Fig. 12)")
def run() -> ExperimentResult:
    """Reproduce Fig. 12."""
    sup = super_vth_family()
    sub = sub_vth_family()
    nodes = np.array([d.node.node_nm for d in sup.designs])
    e_sup, v_sup = _chain_points(sup)
    e_sub, v_sub = _chain_points(sub)

    series = (
        Series(label="energy super-vth @Vmin", x=nodes, y=e_sup,
               x_label="node [nm]", y_label="E [J]"),
        Series(label="energy sub-vth @Vmin", x=nodes, y=e_sub,
               x_label="node [nm]", y_label="E [J]"),
        Series(label="Vmin super-vth", x=nodes, y=1000.0 * v_sup,
               x_label="node [nm]", y_label="V_min [mV]"),
        Series(label="Vmin sub-vth", x=nodes, y=1000.0 * v_sub,
               x_label="node [nm]", y_label="V_min [mV]"),
    )

    advantage_32 = float(1.0 - e_sub[-1] / e_sup[-1])
    sub_vmin_shift = float(v_sub.max() - v_sub.min())
    sup_vmin_rise = float(v_sup[-1] - v_sup[0])
    comparisons = (
        Comparison(
            claim="sub-V_th consumes ~23% less energy at the 32nm node",
            paper_value=PAPER_ENERGY_ADVANTAGE,
            measured_value=advantage_32,
            holds=advantage_32 > 0.08,
            note="measured at each strategy's own V_min",
        ),
        Comparison(
            claim="sub-V_th V_min stays nearly constant across nodes",
            paper_value=PAPER_SUB_VMIN_SHIFT_V,
            measured_value=sub_vmin_shift,
            unit="V",
            holds=sub_vmin_shift < 0.015,
            note="paper: ~10 mV shift (130nm-32nm)",
        ),
        Comparison(
            claim="super-V_th V_min climbs with scaling",
            paper_value=0.040,
            measured_value=sup_vmin_rise,
            unit="V",
            holds=sup_vmin_rise > 0.020,
        ),
        Comparison(
            claim="the energy advantage grows with scaling",
            paper_value=float("nan"),
            measured_value=advantage_32,
            holds=bool(np.all(np.diff(1.0 - e_sub / e_sup) > -0.02)),
            note="advantage per node is (quasi) monotone increasing",
        ),
    )
    return ExperimentResult(
        experiment_id="fig12",
        title="Chain energy and V_min under both strategies",
        series=series,
        comparisons=comparisons,
    )
