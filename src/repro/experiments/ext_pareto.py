"""Extension — the full energy-delay Pareto picture at 32nm.

The paper compares the strategies at single operating points (V_min,
250 mV).  A stronger statement for an adopter: sweep the supply and
compare the whole energy-delay frontiers.  Result in this model: the
sub-V_th strategy *dominates* the low-energy (slow) region of the
plane — any energy budget in that region buys more speed, and any
speed target costs less energy — while the super-V_th device only wins
back the high-speed end that sub-V_th designs never operate in.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..scaling.pareto import dominance_fraction, sweep_design
from .families import sub_vth_family, super_vth_family
from .registry import experiment


@experiment("ext_pareto", "Extension: energy-delay frontiers at 32nm")
def run() -> ExperimentResult:
    """Sweep both 32nm designs and compare frontiers."""
    sup = sweep_design(super_vth_family().design("32nm"))
    sub = sweep_design(sub_vth_family().design("32nm"))

    series = (
        Series(label="frontier super-vth",
               x=np.array([p.delay_s for p in sup.frontier]),
               y=np.array([p.energy_j for p in sup.frontier]),
               x_label="chain delay [s]", y_label="energy/cycle [J]"),
        Series(label="frontier sub-vth",
               x=np.array([p.delay_s for p in sub.frontier]),
               y=np.array([p.energy_j for p in sub.frontier]),
               x_label="chain delay [s]", y_label="energy/cycle [J]"),
    )

    overall = dominance_fraction(sub, sup)

    # Dominance over the slow (sub-V_th-relevant) half of the shared
    # delay range.
    shared_lo = max(min(p.delay_s for p in sub.frontier),
                    min(p.delay_s for p in sup.frontier))
    shared_hi = min(max(p.delay_s for p in sub.frontier),
                    max(p.delay_s for p in sup.frontier))
    slow_probes = np.geomspace(np.sqrt(shared_lo * shared_hi), shared_hi, 15)
    slow_wins = sum(
        1 for d in slow_probes
        if sub.energy_at_delay(float(d)) < sup.energy_at_delay(float(d))
    )
    slow_dominance = slow_wins / slow_probes.size

    # Energy saving at a matched mid-frontier delay.
    probe_delay = float(np.sqrt(shared_lo * shared_hi))
    saving = 1.0 - (sub.energy_at_delay(probe_delay)
                    / sup.energy_at_delay(probe_delay))

    comparisons = (
        Comparison(
            claim="sub-V_th scaling dominates the slow/low-energy half of "
                  "the frontier",
            paper_value=1.0,
            measured_value=slow_dominance,
            holds=slow_dominance > 0.90,
        ),
        Comparison(
            claim="sub-V_th wins the majority of the full shared range",
            paper_value=float("nan"),
            measured_value=overall,
            holds=overall > 0.50,
            note="the super-V_th device only wins back the fast end",
        ),
        Comparison(
            claim="at a matched mid-frontier delay, sub-V_th needs less "
                  "energy",
            paper_value=0.23,
            measured_value=saving,
            holds=saving > 0.05,
            note="iso-delay energy saving; paper's iso-nothing V_min "
                 "comparison gives 23%",
        ),
    )
    return ExperimentResult(
        experiment_id="ext_pareto",
        title="Energy-delay Pareto frontiers at the 32nm node",
        series=series,
        comparisons=comparisons,
    )
