"""Ablation — the leakage budget policy.

Section 2's super-V_th strategy lets I_off grow 25 %/generation;
Section 3's strategy pins it at 100 pA/µm.  This ablation isolates the
policy choice: the same super-V_th flow run under both budgets, showing
how the relaxed budget trades V_th (and sub-V_th drive) for leakage.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.mosfet import Polarity
from ..scaling.roadmap import NodeSpec, roadmap_nodes
from ..scaling.supervth import SuperVthOptimizer
from .registry import experiment

#: The fixed-budget alternative [A/µm].
FIXED_IOFF = 100e-12
#: Sub-threshold evaluation supply [V].
EVAL_VDD = 0.25


def _fixed_budget_node(node: NodeSpec) -> NodeSpec:
    return NodeSpec(
        name=f"{node.name}-fixed-ioff",
        node_nm=node.node_nm,
        l_poly_nm=node.l_poly_nm,
        t_ox_nm=node.t_ox_nm,
        vdd_nominal=node.vdd_nominal,
        ioff_target_a_per_um=FIXED_IOFF,
        generation=node.generation,
    )


@experiment("ablation_leakage", "Ablation: growing vs fixed leakage budget")
def run() -> ExperimentResult:
    """Run the super-V_th flow under both leakage policies."""
    nodes = roadmap_nodes()
    node_nm = np.array([n.node_nm for n in nodes])
    vth_grow, vth_fixed = [], []
    drive_grow, drive_fixed = [], []
    for node in nodes:
        dev_grow = SuperVthOptimizer(node, Polarity.NFET).optimize()
        dev_fixed = SuperVthOptimizer(_fixed_budget_node(node),
                                      Polarity.NFET).optimize()
        vth_grow.append(1000.0 * dev_grow.vth_sat_cc(node.vdd_nominal))
        vth_fixed.append(1000.0 * dev_fixed.vth_sat_cc(node.vdd_nominal))
        drive_grow.append(dev_grow.i_on_per_um(EVAL_VDD))
        drive_fixed.append(dev_fixed.i_on_per_um(EVAL_VDD))
    vth_grow = np.array(vth_grow)
    vth_fixed = np.array(vth_fixed)
    drive_grow = np.array(drive_grow)
    drive_fixed = np.array(drive_fixed)

    series = (
        Series(label="Vth,sat (+25%/gen budget)", x=node_nm, y=vth_grow,
               x_label="node [nm]", y_label="V_th,sat [mV]"),
        Series(label="Vth,sat (fixed 100pA budget)", x=node_nm, y=vth_fixed,
               x_label="node [nm]", y_label="V_th,sat [mV]"),
        Series(label="Ion@250mV (+25%/gen budget)", x=node_nm, y=drive_grow,
               x_label="node [nm]", y_label="I_on [A/um]"),
        Series(label="Ion@250mV (fixed budget)", x=node_nm, y=drive_fixed,
               x_label="node [nm]", y_label="I_on [A/um]"),
    )

    comparisons = (
        Comparison(
            claim="the relaxed budget buys lower V_th at every scaled node",
            paper_value=float("nan"),
            measured_value=float((vth_fixed - vth_grow)[1:].min()),
            unit="mV",
            holds=bool(np.all(vth_fixed[1:] > vth_grow[1:])),
            note="V_th difference, fixed minus growing budget",
        ),
        Comparison(
            claim="the relaxed budget buys sub-V_th drive current",
            paper_value=float("nan"),
            measured_value=float((drive_grow / drive_fixed)[1:].min()),
            holds=bool(np.all(drive_grow[1:] > drive_fixed[1:])),
            note="drive ratio at 250 mV, growing over fixed",
        ),
        Comparison(
            claim="even the relaxed budget cannot stop V_th from rising "
                  "with scaling",
            paper_value=58.0,
            measured_value=float(vth_grow[-1] - vth_grow[0]),
            unit="mV",
            holds=vth_grow[-1] > vth_grow[0],
            note="the S_S degradation forces V_th up regardless of policy",
        ),
    )
    return ExperimentResult(
        experiment_id="ablation_leakage",
        title="Leakage-budget policy ablation",
        series=series,
        comparisons=comparisons,
    )
