"""Extension — the multi-V_th flavour menu of the sub-V_th process.

Both strategies state that performance levels are targeted "by offering
multiple thresholds" (Sections 2.2 and 3.2).  This experiment derives
the LVT/RVT/HVT menu for the 45nm sub-V_th device and checks the
properties a designer relies on:

* V_th steps of roughly ``S_S`` per leakage decade,
* the 100x leakage window buys a comparable drive window at 250 mV,
* S_S itself is flavour-independent (it is a geometry property).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.corners import Corner, corner_grid
from ..scaling.multivth import derive_flavours
from ..scaling.roadmap import node_by_name
from .families import SUB_VTH_SUPPLY, sub_vth_family
from .registry import experiment


@experiment("ext_multivth", "Extension: LVT/RVT/HVT menu at 45nm")
def run() -> ExperimentResult:
    """Derive and validate the threshold-flavour menu."""
    node = node_by_name("45nm")
    base = sub_vth_family().design("45nm")
    l_poly = base.nfet.geometry.l_poly_nm
    menu = derive_flavours(node, l_poly)

    # The menu's NFETs as one parameter stack: the TT "grid" of a
    # device list is just its stacked nominal evaluation, so all four
    # metric columns come from a single batched pass.
    order = ("lvt", "rvt", "hvt")
    stacked = corner_grid([menu[f].design.nfet for f in order],
                          (Corner.TT,))
    vth = 1000.0 * stacked.vth(0.05)
    ioff = stacked.i_off_per_um(SUB_VTH_SUPPLY)
    ion = stacked.i_on_per_um(SUB_VTH_SUPPLY)
    ss = 1000.0 * stacked.ss_v_per_dec
    index = np.array([0.0, 1.0, 2.0])

    series = (
        Series(label="Vth by flavour", x=index, y=vth,
               x_label="flavour (lvt=0, rvt=1, hvt=2)", y_label="V_th [mV]"),
        Series(label="Ioff by flavour @250mV", x=index, y=ioff,
               x_label="flavour", y_label="I_off [A/um]"),
        Series(label="Ion by flavour @250mV", x=index, y=ion,
               x_label="flavour", y_label="I_on [A/um]"),
    )

    # V_th step per leakage decade should be ~S_S.
    step_lvt_rvt = vth[1] - vth[0]
    step_rvt_hvt = vth[2] - vth[1]
    spread = float(ion[0] / ion[2])
    leak_window = float(ioff[0] / ioff[2])

    comparisons = (
        Comparison(
            claim="V_th steps ~S_S per decade of leakage",
            paper_value=float(ss[1]),
            measured_value=float(step_lvt_rvt),
            unit="mV",
            holds=(0.6 * ss[1] < step_lvt_rvt < 1.4 * ss[1]
                   and 0.6 * ss[1] < step_rvt_hvt < 1.4 * ss[1]),
            note="LVT->RVT step; RVT->HVT behaves the same",
        ),
        Comparison(
            claim="the 100x leakage window buys a comparable sub-V_th "
                  "drive window",
            paper_value=leak_window,
            measured_value=spread,
            holds=spread > 0.3 * leak_window,
            note="drive compresses slightly as LVT nears threshold",
        ),
        Comparison(
            claim="S_S varies only slightly across flavours (it is mostly "
                  "a geometry property; the HVT implant costs a little "
                  "depletion width)",
            paper_value=float(ss[1]),
            measured_value=float(ss.max() - ss.min()),
            unit="mV/dec",
            holds=(ss.max() - ss.min()) < 5.0,
            note="spread across the three flavours",
        ),
        Comparison(
            claim="flavour ordering: LVT leaks most, HVT least",
            paper_value=float("nan"),
            measured_value=leak_window,
            holds=bool(ioff[0] > ioff[1] > ioff[2]),
        ),
    )
    return ExperimentResult(
        experiment_id="ext_multivth",
        title="Multi-threshold flavour menu (45nm, sub-V_th process)",
        series=series,
        comparisons=comparisons,
    )
