"""Cached device families shared across experiments.

Building the sub-V_th family runs hundreds of doping optimisations;
experiments share one cached instance per configuration so running the
whole suite stays fast.  Two layers:

* an in-process ``lru_cache`` (always on), and
* the opt-in on-disk JSON cache from :mod:`repro.cache`, which lets a
  fresh process (``repro run table2``, a parallel worker) skip the
  optimiser entirely when a previous run already solved this model
  version.  Enable with ``REPRO_CACHE=1`` or ``REPRO_CACHE_DIR=...``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from .. import perf
from ..cache import load_family, store_family
from ..scaling.strategy import DeviceFamily
from ..scaling.subvth import build_sub_vth_family
from ..scaling.supervth import build_super_vth_family


def _cached_family(tag: str, build: Callable[[bool], DeviceFamily],
                   include_130nm: bool) -> DeviceFamily:
    if include_130nm:
        tag = f"{tag}-130"
    family = load_family(tag)
    if family is None:
        # Reattribute the optimiser's scaling.* / numerics.* counters
        # to a *.family.* namespace: which experiment happens to
        # trigger the lazy family build depends on run order, and the
        # per-experiment footers only stay deterministic if family
        # construction work is not billed to that experiment.
        before = perf.snapshot()
        family = build(include_130nm)
        for name, inc in perf.delta(before).items():
            for prefix in ("scaling.", "numerics."):
                if name.startswith(prefix):
                    # Reverse the observed counters, then re-bill them
                    # to the family namespace.
                    perf.bump(name, -inc)  # repro: noqa[RPR006] startswith guard pins the family
                    perf.bump(prefix + "family."  # repro: noqa[RPR006] prefix is scaling./numerics., both registered families
                              + name[len(prefix):], inc)
                    break
        store_family(tag, family)
    return family


@lru_cache(maxsize=4)
def super_vth_family(include_130nm: bool = False) -> DeviceFamily:
    """The (cached) Table 2 family."""
    return _cached_family("family-super-vth", build_super_vth_family,
                          include_130nm)


@lru_cache(maxsize=4)
def sub_vth_family(include_130nm: bool = False) -> DeviceFamily:
    """The (cached) Table 3 family."""
    return _cached_family("family-sub-vth", build_sub_vth_family,
                          include_130nm)


#: Sub-threshold evaluation supply used by the figure experiments [V].
SUB_VTH_SUPPLY: float = 0.25
