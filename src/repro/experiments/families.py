"""Cached device families shared across experiments.

Building the sub-V_th family runs hundreds of doping optimisations;
experiments share one cached instance per configuration so running the
whole suite stays fast.
"""

from __future__ import annotations

from functools import lru_cache

from ..scaling.strategy import DeviceFamily
from ..scaling.subvth import build_sub_vth_family
from ..scaling.supervth import build_super_vth_family


@lru_cache(maxsize=4)
def super_vth_family(include_130nm: bool = False) -> DeviceFamily:
    """The (cached) Table 2 family."""
    return build_super_vth_family(include_130nm)


@lru_cache(maxsize=4)
def sub_vth_family(include_130nm: bool = False) -> DeviceFamily:
    """The (cached) Table 3 family."""
    return build_sub_vth_family(include_130nm)


#: Sub-threshold evaluation supply used by the figure experiments [V].
SUB_VTH_SUPPLY: float = 0.25
