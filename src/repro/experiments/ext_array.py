"""Extension — array-scale characterisation on the batched MNA engine.

The paper sizes single cells; an SRAM macro ships as *columns*.  This
experiment drives the compiled batched MNA engine
(:mod:`repro.circuit.mna_batch`) over full N-row bitline-loaded
columns and transistor-level gates for both 32nm scaling flows:

* **leakage under loading** (Mukhopadhyay et al., PAPERS.md): total
  bitline leakage grows sub-linearly with array height because the
  sagging bitline strips each cell's access device of drain bias and
  DIBL — per-cell leakage falls monotonically as rows are added;
* **read SNM vs height**: the unaccessed '1'-storing rows hold the
  floating bitline near the rail during a read, so loaded read SNM
  degrades monotonically with height toward the pinned-bitline limit;
* **write margins across variation corners**: the quasistatic-ramp
  write trip and the binary-searched minimum wordline pulse both
  worsen monotonically as the access NFET weakens (ΔV_th,n up) —
  every corner one batch lane;
* **the stacking effect** at the gate level: a NAND2 with both inputs
  low leaks less than with either input alone, a second-order effect
  the equivalent-inverter reduction of :mod:`repro.circuit.gates`
  cannot represent.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.gate_netlists import gate_leakage, nand2_netlist
from ..circuit.sram import SramCell
from ..circuit.sram_array import (bitline_leakage_vs_height,
                                  min_write_pulse, read_snm_vs_height,
                                  write_trip_voltage)
from .families import sub_vth_family, super_vth_family
from .registry import experiment

#: Common array supply [V] — the iso-supply point both flows are
#: compared at (the sub-vth examples' operating point).
ARRAY_VDD = 0.30

#: Array heights of the leakage-under-loading sweep.
LEAKAGE_HEIGHTS = (2, 4, 8, 16, 32)

#: Array heights of the read-SNM sweep (each height is two batched
#: butterfly-lobe sweeps, so the grid is shorter).
SNM_HEIGHTS = (2, 4, 8, 16)
SNM_POINTS = 25

#: Write characterisation: access-NFET threshold corners [V] and the
#: column height the write studies run at.
WRITE_CORNERS_V = (-0.02, -0.01, 0.0, 0.01, 0.02)
WRITE_ROWS = 4
WRITE_PROBES = 7


def _cell(design) -> SramCell:
    """The examples' 6T sizing (2/1/1 µm PD/PU/AX) on a flow's pair."""
    return SramCell(pulldown=design.nfet.with_width_um(2.0),
                    pullup=design.pfet.with_width_um(1.0),
                    access=design.nfet.with_width_um(1.0),
                    vdd=ARRAY_VDD)


@experiment("ext_array", "Extension: array-scale batched-MNA characterisation")
def run() -> ExperimentResult:
    """Column leakage/SNM vs height, write corners, gate stacking."""
    sub = sub_vth_family().design("32nm")
    sup = super_vth_family().design("32nm")
    cell_sub = _cell(sub)
    cell_sup = _cell(sup)

    leak_sub = bitline_leakage_vs_height(cell_sub, LEAKAGE_HEIGHTS)
    leak_sup = bitline_leakage_vs_height(cell_sup, LEAKAGE_HEIGHTS)
    heights, snm_sub, pinned_sub = read_snm_vs_height(
        cell_sub, SNM_HEIGHTS, n_points=SNM_POINTS)

    corners = np.array(WRITE_CORNERS_V)
    trip = write_trip_voltage(cell_sub, WRITE_ROWS, dvth_n_v=corners)
    pulse = min_write_pulse(cell_sub, WRITE_ROWS, dvth_n_v=corners,
                            n_probes=WRITE_PROBES)

    nand = nand2_netlist(sub.nfet, sub.pfet, ARRAY_VDD)
    a = np.array([0.0, 0.0, ARRAY_VDD])
    b = np.array([0.0, ARRAY_VDD, 0.0])
    nand_leak = gate_leakage(nand, {"a": a, "b": b})

    series = (
        Series(label="per-cell bitline leakage, sub-vth",
               x=np.array(LEAKAGE_HEIGHTS, dtype=float),
               y=leak_sub.per_cell_a,
               x_label="array height [rows]",
               y_label="leakage per cell [A]"),
        Series(label="per-cell bitline leakage, super-vth",
               x=np.array(LEAKAGE_HEIGHTS, dtype=float),
               y=leak_sup.per_cell_a,
               x_label="array height [rows]",
               y_label="leakage per cell [A]"),
        Series(label="loaded read SNM, sub-vth",
               x=heights.astype(float), y=snm_sub,
               x_label="array height [rows]", y_label="read SNM [V]"),
        Series(label="write trip vs access dVth, sub-vth",
               x=corners, y=trip,
               x_label="access dVth,n [V]", y_label="trip voltage [V]"),
        Series(label="min write pulse vs access dVth, sub-vth",
               x=corners, y=pulse,
               x_label="access dVth,n [V]", y_label="pulse width [s]"),
    )

    sub_ratio = float(leak_sub.per_cell_a[-1] / leak_sub.per_cell_a[0])
    sup_ratio = float(leak_sup.per_cell_a[-1] / leak_sup.per_cell_a[0])
    snm_drop_mv = float((snm_sub[0] - snm_sub[-1]) * 1e3)

    comparisons = (
        Comparison(
            claim="bitline leakage grows sub-linearly with array "
                  "height: per-cell leakage falls monotonically as "
                  "rows are added (loading effect, sub-vth flow)",
            paper_value=float("nan"),
            measured_value=sub_ratio,
            holds=bool(np.all(np.diff(leak_sub.per_cell_a) < 0.0)
                       and sub_ratio < 1.0),
            note=f"per-cell leakage at {LEAKAGE_HEIGHTS[-1]} rows is "
                 f"{sub_ratio:.3f}x the {LEAKAGE_HEIGHTS[0]}-row value",
        ),
        Comparison(
            claim="the loading effect is flow-independent: the "
                  "super-vth column's per-cell leakage also falls "
                  "monotonically with height",
            paper_value=float("nan"),
            measured_value=sup_ratio,
            holds=bool(np.all(np.diff(leak_sup.per_cell_a) < 0.0)
                       and sup_ratio < 1.0),
        ),
        Comparison(
            claim="loaded read SNM degrades monotonically with array "
                  "height ('1'-storing rows stiffen the bitline "
                  "disturb)",
            paper_value=float("nan"),
            measured_value=snm_drop_mv,
            holds=bool(np.all(np.diff(snm_sub) < 0.0)),
            note=f"SNM drop from {SNM_HEIGHTS[0]} to {SNM_HEIGHTS[-1]} "
                 f"rows [mV]",
        ),
        Comparison(
            claim="the loaded read SNM stays above the pinned-bitline "
                  "limit it degrades toward",
            paper_value=float("nan"),
            measured_value=float(np.min(snm_sub) - pinned_sub),
            holds=bool(np.all(snm_sub > pinned_sub)),
            note=f"pinned-bitline read SNM {pinned_sub * 1e3:.1f} mV",
        ),
        Comparison(
            claim="the write trip voltage falls monotonically as the "
                  "access NFET weakens (dVth,n up): slow-NFET corners "
                  "are the write-limited ones",
            paper_value=float("nan"),
            measured_value=float(trip[0] - trip[-1]),
            holds=bool(np.all(np.isfinite(trip))
                       and np.all(np.diff(trip) < 0.0)),
            note="trip spread across +/-20 mV access corners [V]",
        ),
        Comparison(
            claim="the binary-searched minimum write pulse is "
                  "monotonically non-decreasing in the access dVth,n "
                  "corner and finite at every corner",
            paper_value=float("nan"),
            measured_value=float(pulse[-1] / pulse[0]),
            holds=bool(np.all(np.isfinite(pulse))
                       and np.all(np.diff(pulse) >= 0.0)),
            note="slowest/fastest-corner pulse-width ratio",
        ),
        Comparison(
            claim="transistor-level NAND2 shows the stacking effect: "
                  "both-inputs-low leakage is below either "
                  "single-input-low state",
            paper_value=float("nan"),
            measured_value=float(nand_leak[0] / min(nand_leak[1],
                                                    nand_leak[2])),
            holds=bool(nand_leak[0] < nand_leak[1]
                       and nand_leak[0] < nand_leak[2]),
            note="A=B=0 supply current over the best one-low state",
        ),
    )
    return ExperimentResult(
        experiment_id="ext_array",
        title="Array-scale characterisation (compiled batched MNA)",
        series=series,
        comparisons=comparisons,
    )
