"""Reproduced experiments: every table and figure in the paper.

Each module reproduces one artefact and returns an
:class:`repro.analysis.report.ExperimentResult` with the data plus
paper-vs-measured comparison records.  Use:

>>> from repro.experiments import run_experiment
>>> result = run_experiment("fig2")     # doctest: +SKIP

or ``python -m repro run fig2`` from the command line.
"""

from .registry import (
    run_experiment,
    list_experiments,
    experiment_ids,
    experiment_title,
)
# Importing the modules registers them.
from . import (  # noqa: F401  -- imported for registration side effect
    table1,
    table2,
    table3,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    ablation_tox,
    ablation_halo,
    ablation_leakage,
    ablation_analytic,
    ext_multivth,
    ext_highk,
    ext_temperature,
    ext_corners,
    ext_pareto,
    ext_projection,
    ext_sensitivity,
    ext_dvs,
    ext_yield,
    ext_array,
    eq3,
    headlines,
)

__all__ = ["run_experiment", "list_experiments", "experiment_ids",
           "experiment_title"]
