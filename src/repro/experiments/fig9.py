"""Fig. 9 — L_poly and S_S trajectories under both scaling strategies.

The visual summary of the proposed strategy: the sub-V_th gate length
is longer and scales more slowly (20-25 %/generation vs 30 %), and in
exchange S_S stays essentially flat near 80 mV/dec while the super-V_th
slope degrades every generation.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..scaling.metrics import per_generation_change
from .families import sub_vth_family, super_vth_family
from .registry import experiment

#: Paper claims.
PAPER_SS_SPREAD_MV = 1.2
PAPER_SUB_RATE_RANGE = (-0.25, -0.10)


@experiment("fig9", "L_poly and S_S under both strategies (Fig. 9)")
def run() -> ExperimentResult:
    """Reproduce Fig. 9."""
    sup = super_vth_family()
    sub = sub_vth_family()
    nodes = np.array([d.node.node_nm for d in sup.designs])

    l_sup = np.array([d.nfet.geometry.l_poly_nm for d in sup.designs])
    l_sub = np.array([d.nfet.geometry.l_poly_nm for d in sub.designs])
    ss_sup = np.array([d.nfet.ss_mv_per_dec for d in sup.designs])
    ss_sub = np.array([d.nfet.ss_mv_per_dec for d in sub.designs])

    series = (
        Series(label="L_poly super-vth", x=nodes, y=l_sup,
               x_label="node [nm]", y_label="L_poly [nm]"),
        Series(label="L_poly sub-vth", x=nodes, y=l_sub,
               x_label="node [nm]", y_label="L_poly [nm]"),
        Series(label="S_S super-vth", x=nodes, y=ss_sup,
               x_label="node [nm]", y_label="S_S [mV/dec]"),
        Series(label="S_S sub-vth", x=nodes, y=ss_sub,
               x_label="node [nm]", y_label="S_S [mV/dec]"),
    )

    sub_rates = per_generation_change(list(l_sub))
    ss_spread = float(ss_sub.max() - ss_sub.min())
    comparisons = (
        Comparison(
            claim="sub-V_th L_poly is larger than super-V_th at scaled nodes",
            paper_value=45.0 / 22.0,
            measured_value=float(l_sub[-1] / l_sup[-1]),
            holds=bool(np.all(l_sub[1:] > l_sup[1:])),
            note="32nm-node gate-length ratio",
        ),
        Comparison(
            claim="sub-V_th L_poly scales slower than 30%/generation",
            paper_value=-0.225,
            measured_value=float(np.mean(sub_rates)),
            holds=all(r > -0.30 for r in sub_rates),
            note="paper: 20-25%/generation",
        ),
        Comparison(
            claim="sub-V_th S_S stays ~flat near 80 mV/dec",
            paper_value=PAPER_SS_SPREAD_MV,
            measured_value=ss_spread,
            unit="mV/dec",
            holds=ss_spread < 5.0 and 70.0 < float(ss_sub.mean()) < 90.0,
            note="spread across nodes; paper quotes 1.2 mV/dec",
        ),
        Comparison(
            claim="super-V_th S_S degrades monotonically",
            paper_value=0.11,
            measured_value=float(ss_sup[-1] / ss_sup[0] - 1.0),
            holds=bool(np.all(np.diff(ss_sup) > 0.0)),
        ),
    )
    return ExperimentResult(
        experiment_id="fig9",
        title="L_poly and S_S for sub-V_th and super-V_th scaling",
        series=series,
        comparisons=comparisons,
    )
