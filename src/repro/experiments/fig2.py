"""Fig. 2 — NFET inverse subthreshold slope and I_on/I_off ratio.

Under super-V_th scaling: S_S per node, and the on/off current ratio at
V_dd = 250 mV.  The paper's headline device-level finding: S_S degrades
~11 % between the 90nm and 32nm nodes, which at 250 mV costs ~60 % of
the I_on/I_off ratio.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from .families import SUB_VTH_SUPPLY, super_vth_family
from .registry import experiment

#: Paper claims.
PAPER_SS_DEGRADATION = 0.11
PAPER_ON_OFF_REDUCTION = 0.60


@experiment("fig2", "S_S and I_on/I_off vs node (Fig. 2)")
def run() -> ExperimentResult:
    """Reproduce Fig. 2 under the super-V_th strategy."""
    family = super_vth_family()
    nodes = np.array([d.node.node_nm for d in family.designs])
    ss = np.array([d.nfet.ss_mv_per_dec for d in family.designs])
    ratio = np.array([
        d.nfet.ids(SUB_VTH_SUPPLY, SUB_VTH_SUPPLY)
        / d.nfet.ids(0.0, SUB_VTH_SUPPLY)
        for d in family.designs
    ])

    ss_series = Series(label="S_S (super-vth)", x=nodes, y=ss,
                       x_label="node [nm]", y_label="S_S [mV/dec]")
    ratio_series = Series(label="Ion/Ioff @250mV (super-vth)", x=nodes,
                          y=ratio, x_label="node [nm]",
                          y_label="I_on/I_off")

    ss_change = float(ss[-1] / ss[0] - 1.0)
    ratio_change = float(1.0 - ratio[-1] / ratio[0])
    comparisons = (
        Comparison(
            claim="S_S degrades between the 90nm and 32nm nodes",
            paper_value=PAPER_SS_DEGRADATION,
            measured_value=ss_change,
            holds=0.05 < ss_change < 0.35,
            note="paper ~11%; model calibration gives a steeper but "
                 "same-direction trajectory",
        ),
        Comparison(
            claim="I_on/I_off at 250 mV drops sharply 90nm -> 32nm",
            paper_value=PAPER_ON_OFF_REDUCTION,
            measured_value=ratio_change,
            holds=ratio_change > 0.45,
            note="paper ~60% reduction",
        ),
        Comparison(
            claim="S_S degradation accelerates (convex in generation)",
            paper_value=float("nan"),
            measured_value=float(np.diff(ss).max()),
            unit="mV/dec",
            holds=bool(np.all(np.diff(np.diff(ss)) > -1e-9)),
            note="each generation loses more slope than the last",
        ),
    )
    return ExperimentResult(
        experiment_id="fig2",
        title="NFET inverse subthreshold slope and on/off ratio",
        series=(ss_series, ratio_series),
        comparisons=comparisons,
    )
