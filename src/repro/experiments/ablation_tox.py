"""Ablation — how the T_ox scaling rate drives S_S degradation.

The paper's root-cause claim: S_S degrades because T_ox shrinks only
~10 %/generation while L_poly shrinks 30 %.  This ablation re-runs the
super-V_th flow to the 32nm node under alternative T_ox rates
(0-30 %/generation) and shows that faster oxide scaling directly
removes the slope degradation.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.mosfet import Polarity
from ..scaling.roadmap import NodeSpec, node_by_name
from ..scaling.supervth import SuperVthOptimizer
from .registry import experiment

#: T_ox shrink rates per generation to ablate.
TOX_RATES = (0.0, 0.10, 0.20, 0.30)
#: Generations from the 90nm reference to the 32nm node.
GENERATIONS = 3


def _node_32nm_with_tox_rate(rate: float) -> NodeSpec:
    base90 = node_by_name("90nm")
    base32 = node_by_name("32nm")
    t_ox = base90.t_ox_nm * (1.0 - rate) ** GENERATIONS
    return NodeSpec(
        name=f"32nm@tox-{int(rate * 100)}pct",
        node_nm=base32.node_nm,
        l_poly_nm=base32.l_poly_nm,
        t_ox_nm=t_ox,
        vdd_nominal=base32.vdd_nominal,
        ioff_target_a_per_um=base32.ioff_target_a_per_um,
        generation=base32.generation,
    )


@experiment("ablation_tox", "Ablation: T_ox scaling rate vs S_S at 32nm")
def run() -> ExperimentResult:
    """Sweep the oxide-thinning rate and optimise the 32nm device."""
    baseline_ss = SuperVthOptimizer(node_by_name("90nm"),
                                    Polarity.NFET).optimize().ss_mv_per_dec
    rates = np.array(TOX_RATES)
    ss32 = []
    for rate in TOX_RATES:
        node = _node_32nm_with_tox_rate(rate)
        device = SuperVthOptimizer(node, Polarity.NFET).optimize()
        ss32.append(device.ss_mv_per_dec)
    ss32 = np.array(ss32)

    series = (
        Series(label="S_S at 32nm vs T_ox rate", x=100.0 * rates, y=ss32,
               x_label="T_ox shrink [%/gen]", y_label="S_S [mV/dec]"),
    )
    degradation_slow = float(ss32[1] / baseline_ss - 1.0)   # 10%/gen
    degradation_fast = float(ss32[-1] / baseline_ss - 1.0)  # 30%/gen
    comparisons = (
        Comparison(
            claim="faster T_ox scaling monotonically improves S_S at 32nm",
            paper_value=float("nan"),
            measured_value=float(ss32[0] - ss32[-1]),
            unit="mV/dec",
            holds=bool(np.all(np.diff(ss32) < 0.0)),
            note="S_S recovered between 0%/gen and 30%/gen oxide scaling",
        ),
        Comparison(
            claim="at 30%/gen T_ox scaling (matching L_poly) the slope "
                  "degradation largely disappears",
            paper_value=0.0,
            measured_value=degradation_fast,
            holds=degradation_fast < 0.5 * degradation_slow,
            note="relative S_S degradation vs the 90nm baseline",
        ),
    )
    return ExperimentResult(
        experiment_id="ablation_tox",
        title="T_ox scaling rate vs 32nm subthreshold slope",
        series=series,
        comparisons=comparisons,
    )
