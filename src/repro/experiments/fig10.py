"""Fig. 10 — inverter SNM under super-V_th vs sub-V_th scaling.

The payoff of the flat S_S: sub-V_th-scaled inverters keep their noise
margins while super-V_th-scaled ones lose them; at the 32nm node the
paper reports a 19 % SNM advantage.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.snm import noise_margins
from .families import SUB_VTH_SUPPLY, sub_vth_family, super_vth_family
from .registry import experiment

#: The paper's 32nm-node SNM advantage.
PAPER_SNM_ADVANTAGE = 0.19


@experiment("fig10", "Inverter SNM under both strategies (Fig. 10)")
def run() -> ExperimentResult:
    """Reproduce Fig. 10 at V_dd = 250 mV."""
    sup = super_vth_family()
    sub = sub_vth_family()
    nodes = np.array([d.node.node_nm for d in sup.designs])
    snm_sup = np.array([
        noise_margins(d.inverter(SUB_VTH_SUPPLY)).snm for d in sup.designs
    ])
    snm_sub = np.array([
        noise_margins(d.inverter(SUB_VTH_SUPPLY)).snm for d in sub.designs
    ])

    series = (
        Series(label="SNM super-vth @250mV", x=nodes, y=1000.0 * snm_sup,
               x_label="node [nm]", y_label="SNM [mV]"),
        Series(label="SNM sub-vth @250mV", x=nodes, y=1000.0 * snm_sub,
               x_label="node [nm]", y_label="SNM [mV]"),
    )

    advantage_32 = float(snm_sub[-1] / snm_sup[-1] - 1.0)
    sub_spread = float((snm_sub.max() - snm_sub.min()) / snm_sub.max())
    comparisons = (
        Comparison(
            claim="sub-V_th scaling yields ~19% larger SNM at the 32nm node",
            paper_value=PAPER_SNM_ADVANTAGE,
            measured_value=advantage_32,
            holds=advantage_32 > 0.10,
        ),
        Comparison(
            claim="sub-V_th SNM is at least as good at every node",
            paper_value=float("nan"),
            measured_value=float(np.min(snm_sub - snm_sup)) * 1000.0,
            unit="mV",
            holds=bool(np.all(snm_sub >= snm_sup - 1e-4)),
            note="minimum margin difference across nodes",
        ),
        Comparison(
            claim="sub-V_th SNM remains nearly constant with scaling",
            paper_value=float("nan"),
            measured_value=sub_spread,
            holds=sub_spread < 0.08,
            note="relative spread of the sub-V_th SNM across nodes",
        ),
    )
    return ExperimentResult(
        experiment_id="fig10",
        title="Inverter SNM under super-V_th and sub-V_th scaling",
        series=series,
        comparisons=comparisons,
    )
