"""Extension — are the conclusions calibration-robust?

Three constants in this reproduction are calibrated (DESIGN.md §2).
This experiment perturbs each across a generous range, re-runs both
strategy optimisers and the headline comparisons from scratch, and
asserts that the paper's conclusions never flip:

* the sub-V_th SNM advantage at 32nm stays > 8 % (paper: 19 %),
* the energy advantage at V_min stays > 5 % (paper: 23 %),
* super-V_th S_S degradation stays positive everywhere.

Notably, the *textbook* Eq. 2(b) prefactor (11, uncalibrated) lands
closest to the paper's energy number — the calibration moves
magnitudes, never signs.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..scaling.sensitivity import headline_under_calibration
from .registry import experiment

#: The calibration grid: (label, kwargs) pairs.
CALIBRATION_GRID: tuple[tuple[str, dict], ...] = (
    ("default", {}),
    ("prefactor=6", {"sce_prefactor": 6.0}),
    ("prefactor=11 (textbook)", {"sce_prefactor": 11.0}),
    ("lt=0.35", {"lt_calibration": 0.35}),
    ("lt=0.60", {"lt_calibration": 0.60}),
    ("overlap=0.15", {"overlap_fraction": 0.15}),
)


@experiment("ext_sensitivity", "Extension: calibration robustness")
def run() -> ExperimentResult:
    """Sweep the calibration grid and re-measure the headlines."""
    labels = []
    snm = []
    energy = []
    ss_deg = []
    for label, kwargs in CALIBRATION_GRID:
        result = headline_under_calibration(**kwargs)
        labels.append(label)
        snm.append(result.snm_advantage)
        energy.append(result.energy_advantage)
        ss_deg.append(result.ss_degradation)
    index = np.arange(len(labels), dtype=float)
    snm = np.array(snm)
    energy = np.array(energy)
    ss_deg = np.array(ss_deg)

    series = (
        Series(label="SNM advantage vs calibration", x=index, y=snm,
               x_label="calibration index", y_label="fraction"),
        Series(label="energy advantage vs calibration", x=index, y=energy,
               x_label="calibration index", y_label="fraction"),
        Series(label="super-vth S_S degradation vs calibration", x=index,
               y=ss_deg, x_label="calibration index", y_label="fraction"),
    )

    comparisons = (
        Comparison(
            claim="the 32nm SNM advantage never drops below 8%",
            paper_value=0.19,
            measured_value=float(snm.min()),
            holds=bool(np.all(snm > 0.08)),
            note=f"range {snm.min():.2f}..{snm.max():.2f} over "
                 f"{len(labels)} calibrations",
        ),
        Comparison(
            claim="the 32nm energy advantage never drops below 5%",
            paper_value=0.23,
            measured_value=float(energy.min()),
            holds=bool(np.all(energy > 0.05)),
            note=f"range {energy.min():.2f}..{energy.max():.2f}",
        ),
        Comparison(
            claim="super-V_th S_S degradation is positive at every "
                  "calibration",
            paper_value=0.11,
            measured_value=float(ss_deg.min()),
            holds=bool(np.all(ss_deg > 0.0)),
        ),
        Comparison(
            claim="the uncalibrated textbook prefactor reproduces the "
                  "paper's energy number most closely",
            paper_value=0.23,
            measured_value=float(energy[2]),
            holds=abs(energy[2] - 0.23) < 0.05,
            note="prefactor=11 grid point",
        ),
    )
    return ExperimentResult(
        experiment_id="ext_sensitivity",
        title="Calibration robustness of the headline conclusions",
        series=series,
        comparisons=comparisons,
    )
