"""Fig. 4 — simulated SNM for a scaled inverter (super-V_th).

Gain = -1 noise margins of the inverter at nominal V_dd and at 250 mV.
The S_S degradation of Fig. 2 shows up directly: SNM at 250 mV drops
by more than 10 % between the 90nm and 32nm nodes.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.snm import noise_margins
from .families import SUB_VTH_SUPPLY, super_vth_family
from .registry import experiment

#: The paper's claim: >10 % SNM degradation 90nm -> 32nm.
PAPER_SNM_DEGRADATION = 0.10


@experiment("fig4", "Inverter SNM vs node (Fig. 4)")
def run() -> ExperimentResult:
    """Reproduce Fig. 4 under the super-V_th strategy."""
    family = super_vth_family()
    nodes = np.array([d.node.node_nm for d in family.designs])
    snm_nominal = np.array([
        noise_margins(d.inverter(d.node.vdd_nominal)).snm
        for d in family.designs
    ])
    snm_sub = np.array([
        noise_margins(d.inverter(SUB_VTH_SUPPLY)).snm
        for d in family.designs
    ])

    nominal_series = Series(label="SNM @nominal Vdd", x=nodes,
                            y=1000.0 * snm_nominal, x_label="node [nm]",
                            y_label="SNM [mV]")
    sub_series = Series(label="SNM @250mV", x=nodes, y=1000.0 * snm_sub,
                        x_label="node [nm]", y_label="SNM [mV]")

    degradation = float(1.0 - snm_sub[-1] / snm_sub[0])
    comparisons = (
        Comparison(
            claim="SNM at 250 mV degrades by more than 10% 90nm -> 32nm",
            paper_value=PAPER_SNM_DEGRADATION,
            measured_value=degradation,
            holds=degradation > PAPER_SNM_DEGRADATION,
        ),
        Comparison(
            claim="absolute sub-V_th noise margins are a small fraction "
                  "of nominal-V_dd margins",
            paper_value=float("nan"),
            measured_value=float(snm_sub[0] / snm_nominal[0]),
            holds=snm_sub[0] < 0.5 * snm_nominal[0],
            note="ratio of 90nm SNM at 250 mV to SNM at nominal",
        ),
        Comparison(
            claim="SNM at 250 mV falls monotonically with scaling",
            paper_value=float("nan"),
            measured_value=float(1000.0 * (snm_sub[0] - snm_sub[-1])),
            unit="mV",
            holds=bool(np.all(np.diff(snm_sub) < 0.0)),
        ),
    )
    return ExperimentResult(
        experiment_id="fig4",
        title="Simulated SNM for a scaled inverter",
        series=(nominal_series, sub_series),
        comparisons=comparisons,
    )
