"""Extension — temperature behaviour of the scaled sub-V_th circuits.

Sub-V_th operation is acutely temperature-sensitive: S_S is
proportional to absolute temperature, leakage is exponential in it,
and — unlike super-threshold logic — sub-V_th gates get *faster* when
hot (temperature inversion: V_th drops while the supply stays fixed).
This experiment sweeps the 32nm sub-V_th design from 250 K to 400 K
and verifies all three signatures, which any deployment of the paper's
proposed devices (sensor nodes in uncontrolled environments) would
need to budget for.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.delay import analytic_delay
from ..circuit.inverter import Inverter
from ..device.mosfet import MOSFET
from .families import SUB_VTH_SUPPLY, sub_vth_family
from .registry import experiment

#: Temperature sweep [K].
TEMPERATURES_K = (250.0, 275.0, 300.0, 325.0, 350.0, 375.0, 400.0)


def _at_temperature(device: MOSFET, temperature_k: float) -> MOSFET:
    """Rebuild a device at a different lattice temperature."""
    return MOSFET(
        polarity=device.polarity,
        geometry=device.geometry,
        profile=device.profile,
        stack=device.stack,
        temperature_k=temperature_k,
        vth_offset_v=device.vth_offset_v,
    )


@experiment("ext_temperature", "Extension: temperature behaviour at 32nm")
def run() -> ExperimentResult:
    """Sweep temperature for the 32nm sub-V_th design."""
    design = sub_vth_family().design("32nm")
    temps = np.array(TEMPERATURES_K)
    ss = []
    ioff = []
    delay = []
    for t in TEMPERATURES_K:
        n_dev = _at_temperature(design.nfet, t)
        p_dev = _at_temperature(design.pfet, t)
        inv = Inverter(nfet=n_dev, pfet=p_dev, vdd=SUB_VTH_SUPPLY)
        ss.append(n_dev.ss_mv_per_dec)
        ioff.append(n_dev.i_off_per_um(SUB_VTH_SUPPLY))
        delay.append(analytic_delay(inv))
    ss = np.array(ss)
    ioff = np.array(ioff)
    delay = np.array(delay)

    series = (
        Series(label="S_S vs T", x=temps, y=ss, x_label="T [K]",
               y_label="S_S [mV/dec]"),
        Series(label="Ioff vs T @250mV", x=temps, y=ioff, x_label="T [K]",
               y_label="I_off [A/um]"),
        Series(label="FO1 delay vs T @250mV", x=temps, y=delay,
               x_label="T [K]", y_label="t_p [s]"),
    )

    idx_300 = list(TEMPERATURES_K).index(300.0)
    ss_ratio = float(ss[-1] / ss[idx_300])
    t_ratio = 400.0 / 300.0
    comparisons = (
        Comparison(
            claim="S_S grows proportionally to absolute temperature",
            paper_value=t_ratio,
            measured_value=ss_ratio,
            holds=abs(ss_ratio - t_ratio) / t_ratio < 0.10,
            note="S_S(400K)/S_S(300K) vs T ratio; small deviation from "
                 "the v_T term via W_dep(T)",
        ),
        Comparison(
            claim="leakage grows steeply with temperature",
            paper_value=float("nan"),
            measured_value=float(ioff[-1] / ioff[idx_300]),
            holds=ioff[-1] > 5.0 * ioff[idx_300],
            note="I_off(400K)/I_off(300K)",
        ),
        Comparison(
            claim="temperature inversion: sub-V_th gates speed up when hot",
            paper_value=float("nan"),
            measured_value=float(delay[idx_300] / delay[-1]),
            holds=bool(np.all(np.diff(delay) < 0.0)),
            note="speedup from 300K to 400K; delay monotone in T",
        ),
    )
    return ExperimentResult(
        experiment_id="ext_temperature",
        title="Temperature behaviour of the 32nm sub-V_th design",
        series=series,
        comparisons=comparisons,
    )
