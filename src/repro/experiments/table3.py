"""Table 3 — NFET parameters under the proposed sub-V_th scaling.

Runs the Section 3 optimiser (energy-optimal L_poly, minimum-S_S doping
at fixed I_off) and tabulates L_poly, T_ox, dopings and the normalized
energy (C_L S_S^2) and delay (C_L S_S) factors the paper lists.
"""

from __future__ import annotations

from ..analysis.report import Comparison, ExperimentResult
from ..scaling.metrics import per_generation_change
from .families import sub_vth_family, super_vth_family
from .registry import experiment

#: Paper Table 3 reference values (90nm -> 32nm).
PAPER_L_POLY_NM = (95.0, 75.0, 60.0, 45.0)
#: Paper's normalized energy factors (90nm row normalised to 1).
PAPER_ENERGY_FACTOR = (1.0, 0.80, 0.65, 0.51)
PAPER_DELAY_FACTOR = (1.0, 0.80, 0.65, 0.50)


@experiment("table3", "NFET parameters under sub-V_th scaling (Table 3)")
def run() -> ExperimentResult:
    """Reproduce Table 3 and its scaling-trend claims."""
    family = sub_vth_family()
    reference = super_vth_family()

    l_poly = [d.nfet.geometry.l_poly_nm for d in family.designs]
    ss = [d.nfet.ss_v_per_dec for d in family.designs]
    c_load = [d.load_capacitance() for d in family.designs]
    energy_factor = [c * s ** 2 for c, s in zip(c_load, ss)]
    delay_factor = [c * s for c, s in zip(c_load, ss)]
    ef_norm = [v / energy_factor[0] for v in energy_factor]
    df_norm = [v / delay_factor[0] for v in delay_factor]

    rows = []
    for i, design in enumerate(family.designs):
        s = design.summary()
        rows.append((
            design.node.name,
            f"{s['l_poly_nm']:.0f}",
            f"{s['t_ox_nm']:.2f}",
            f"{s['n_sub_cm3']:.3g}",
            f"{s['n_halo_cm3']:.3g}",
            f"{ef_norm[i]:.2f}",
            f"{df_norm[i]:.2f}",
            f"{s['ss_mv_per_dec']:.1f}",
        ))

    super_l = [d.nfet.geometry.l_poly_nm for d in reference.designs]
    sub_rates = per_generation_change(l_poly)
    super_rates = per_generation_change(super_l)

    comparisons = (
        Comparison(
            claim="sub-V_th L_poly exceeds the super-V_th L_poly at scaled nodes",
            paper_value=PAPER_L_POLY_NM[-1],
            measured_value=l_poly[-1],
            unit="nm",
            holds=all(ls > lp for ls, lp in zip(l_poly[1:], super_l[1:])),
            note="paper 32nm: 45 vs 22 nm",
        ),
        Comparison(
            claim="sub-V_th L_poly scales slower than the 30%/gen super rate",
            paper_value=-0.225,
            measured_value=sum(sub_rates) / len(sub_rates),
            holds=all(abs(r) < abs(s) for r, s in zip(sub_rates, super_rates)),
            note="paper: 20-25%/gen vs 30%/gen",
        ),
        Comparison(
            claim="normalized energy factor C_L*S_S^2 falls every generation",
            paper_value=PAPER_ENERGY_FACTOR[-1],
            measured_value=ef_norm[-1],
            holds=all(b < a for a, b in zip(ef_norm, ef_norm[1:])),
            note="paper reaches 0.51 at 32nm",
        ),
        Comparison(
            claim="normalized delay factor C_L*S_S falls every generation",
            paper_value=PAPER_DELAY_FACTOR[-1],
            measured_value=df_norm[-1],
            holds=all(b < a for a, b in zip(df_norm, df_norm[1:])),
            note="I_off fixed, so the Eq. 6 factor reduces to C_L*S_S",
        ),
        Comparison(
            claim="S_S stays approximately constant across nodes",
            paper_value=1.2,
            measured_value=1000.0 * (max(ss) - min(ss)),
            unit="mV/dec",
            holds=(max(ss) - min(ss)) < 0.005,
            note="paper: 1.2 mV/dec spread between 90nm and 32nm",
        ),
    )
    return ExperimentResult(
        experiment_id="table3",
        title="NFET parameters under sub-V_th scaling",
        headers=("node", "L_poly nm", "T_ox nm", "N_sub cm-3", "N_halo cm-3",
                 "C_L*S_S^2 (norm)", "C_L*S_S (norm)", "S_S mV/dec"),
        rows=tuple(rows),
        comparisons=comparisons,
    )
