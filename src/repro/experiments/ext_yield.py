"""Extension — six-sigma yield from ~10^3 trials (QMC + IS).

The paper's variability discussion ends where a product decision
begins: a million-cell subthreshold memory ships on its *per-cell*
failure rate at 5-6 sigma, which brute-force Monte Carlo cannot reach
(10^9-10^11 trials).  This experiment drives the rare-event engine of
:mod:`repro.variability` over both 32nm scaling flows and reports
cell-failure-rate-vs-V_dd curves for the two physical failure modes:

* **delay exceedance** — the cell misses a 1.5x timing window
  (Eq. 4 delay, exponential in ΔV_th deep in subthreshold), and
* **SNM collapse** — the perturbed inverter loses bistability
  outright (SNM <= 0 or no gain = -1 points).

The estimator is mean-shift importance sampling on replicated
scrambled-Sobol' streams; at a brute-force-verifiable point
(p ~ 1e-4) the experiment cross-checks it against plain batched Monte
Carlo and records the equal-accuracy trial compression.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..variability.importance import estimate_failure_probability
from ..variability.tails import failure_indicator, failure_rate_curve
from .families import sub_vth_family, super_vth_family
from .registry import experiment

#: Supply grid of the delay-exceedance curves [V] (operating range).
DELAY_VDD_GRID = (0.15, 0.20, 0.25, 0.30, 0.40)

#: Timing window of the delay failure mode, as a multiple of the
#: nominal cell delay.  With 32nm RDF sigmas (~3-5 mV) a 1.5x
#: slowdown sits 4-8 sigma out — the regime margins are signed off in.
DELAY_SLOWDOWN = 1.5

#: Supply grid of the SNM-collapse curves [V] (the regeneration
#: limit: nominal SNM is single-digit mV here).
SNM_VDD_GRID = (0.10, 0.115, 0.13, 0.14)

#: Trial budgets.  Delay trials are vectorised Eq. 4 evaluations
#: (cheap); SNM trials each carry a batched VTC extraction, so the
#: budget is smaller and split over fewer scrambling replicates.
DELAY_TRIALS = 2048
SNM_TRIALS = 256
SNM_REPLICATES = 4

#: Search horizon of the minimum-norm failure-point search [sigma].
R_MAX_SIGMA = 10.0

#: Brute-force cross-check budget at the p ~ 1e-4 agreement point.
BRUTE_TRIALS = 1 << 21


def _curves(design, label: str):
    delay = failure_rate_curve(
        design.inverter, DELAY_VDD_GRID, label=label, mode="delay",
        slowdown=DELAY_SLOWDOWN, n_trials=DELAY_TRIALS,
        r_max_sigma=R_MAX_SIGMA)
    snm = failure_rate_curve(
        design.inverter, SNM_VDD_GRID, label=label, mode="snm",
        n_trials=SNM_TRIALS, n_replicates=SNM_REPLICATES,
        r_max_sigma=R_MAX_SIGMA)
    return delay, snm


@experiment("ext_yield", "Extension: six-sigma yield (QMC + IS)")
def run() -> ExperimentResult:
    """Failure-rate-vs-V_dd curves per flow, plus the brute cross-check."""
    sub = sub_vth_family().design("32nm")
    sup = super_vth_family().design("32nm")
    delay_sub, snm_sub = _curves(sub, "sub-vth 32nm")
    delay_sup, snm_sup = _curves(sup, "super-vth 32nm")

    # Brute-force agreement point: a slightly looser timing window
    # pulls the tail up to p ~ 1e-4, where 2^21 plain trials resolve
    # it to a few percent and the unbiasedness of the
    # likelihood-ratio estimator is directly checkable.
    inv = sub.inverter(0.25)
    agree_ind = failure_indicator(inv, mode="delay", slowdown=1.3)
    est = estimate_failure_probability(agree_ind, method="qmc-is",
                                       n_trials=DELAY_TRIALS)
    brute = estimate_failure_probability(agree_ind, method="mc",
                                         n_trials=BRUTE_TRIALS)
    # Trials plain MC would need to match the IS estimator's relative
    # CI width: N = (1 - p) / (p rel^2).
    bf_equal_trials = (1.0 - est.p_fail) / (est.p_fail * est.rel_err ** 2)
    trial_compression = bf_equal_trials / est.n_trials

    series = (
        Series(label="delay-exceedance sigma, sub-vth",
               x=delay_sub.vdd_v, y=delay_sub.sigma,
               x_label="V_dd [V]", y_label="failure sigma level"),
        Series(label="delay-exceedance sigma, super-vth",
               x=delay_sup.vdd_v, y=delay_sup.sigma,
               x_label="V_dd [V]", y_label="failure sigma level"),
        Series(label="SNM-collapse sigma, sub-vth",
               x=snm_sub.vdd_v, y=snm_sub.sigma,
               x_label="V_dd [V]", y_label="failure sigma level"),
        Series(label="SNM-collapse sigma, super-vth",
               x=snm_sup.vdd_v, y=snm_sup.sigma,
               x_label="V_dd [V]", y_label="failure sigma level"),
    )

    idx_025 = DELAY_VDD_GRID.index(0.25)
    sigma_sub_025 = float(delay_sub.sigma[idx_025])
    snm_gap = float(np.min(snm_sub.sigma - snm_sup.sigma))

    comparisons = (
        Comparison(
            claim="the importance-sampling estimate is unbiased: it "
                  "agrees with 2^21-trial brute force inside both 95% "
                  "CIs at p ~ 1e-4",
            paper_value=1.0,
            measured_value=est.p_fail / brute.p_fail,
            holds=est.agrees_with(brute),
            note=f"IS {est.p_fail:.3e} (rel {est.rel_err:.1%}) vs "
                 f"MC {brute.p_fail:.3e} (rel {brute.rel_err:.1%})",
        ),
        Comparison(
            claim="equal-CI-width trial compression vs plain MC is "
                  ">= 100x at the agreement point",
            paper_value=float("nan"),
            measured_value=trial_compression,
            holds=trial_compression >= 100.0,
            note=f"{est.n_trials} IS trials vs {bf_equal_trials:.0f} "
                 "matched-accuracy MC trials",
        ),
        Comparison(
            claim="a 1.5x timing window at the sub-vth design's 0.25 V "
                  "operating point is a > 5 sigma margin (the "
                  "'pessimistic design practices' quantified)",
            paper_value=float("nan"),
            measured_value=sigma_sub_025,
            holds=sigma_sub_025 > 5.0,
        ),
        Comparison(
            claim="delay-exceedance yield improves monotonically with "
                  "V_dd (sub-vth flow)",
            paper_value=float("nan"),
            measured_value=float(np.min(np.diff(delay_sub.sigma))),
            holds=bool(np.all(np.diff(delay_sub.sigma) > 0.0)),
            note="min sigma gain per supply step over the grid",
        ),
        Comparison(
            claim="at iso-supply the sub-vth flow's SNM-collapse yield "
                  "beats the super-vth flow's by > 2 sigma (smaller "
                  "RDF sigma from higher doping/area tradeoff)",
            paper_value=float("nan"),
            measured_value=snm_gap,
            holds=snm_gap > 2.0,
        ),
        Comparison(
            claim="SNM collapse is a sub-0.15 V phenomenon for the "
                  "sub-vth design: > 8 sigma by V_dd = 0.14 V",
            paper_value=float("nan"),
            measured_value=float(snm_sub.sigma[-1]),
            holds=float(snm_sub.sigma[-1]) > 8.0,
            note="the paper's ~0.1 V regeneration limit, as yield",
        ),
    )
    return ExperimentResult(
        experiment_id="ext_yield",
        title="Six-sigma yield over supply voltage (QMC + IS)",
        series=series,
        comparisons=comparisons,
    )
