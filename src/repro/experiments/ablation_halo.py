"""Ablation — what the halo implant is for (and what it is not).

The super-V_th flow (Fig. 1c) sets ``N_sub`` from the *long-channel*
device and then relies on the halo to rescue the *short-channel*
leakage: without it, V_th roll-off makes the scaled device miss the
I_off budget by a wide margin.  This ablation quantifies that at the
45nm node:

1. a halo-free 32nm-gate device built on the long-channel ``N_sub``
   leaks far beyond the budget;
2. the halo solve restores the budget exactly;
3. given the leakage target and the gate length, S_S is *pinned*
   regardless of how the doping is split between substrate and halo —
   in a channel-averaged model the split is a free variable, so the
   only real S_S lever is the gate length (which is exactly why the
   sub-V_th strategy optimises L_poly).

Point 3 is a deliberate, documented deviation from the paper's stronger
2-D claim that heavy halo *degrades* long-channel S_S; see DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.mosfet import Polarity
from ..scaling.roadmap import node_by_name
from ..scaling.subvth import (
    HALO_RATIO_GRID,
    SUB_VTH_EVAL_VDD,
    _solve_substrate_for_ioff,
)
from ..scaling.supervth import SuperVthOptimizer
from .registry import experiment

#: Long gate used for the S_S-pinning demonstration [nm].
LONG_GATE_NM = 96.0


def _ss_vs_ratio(node, l_poly_nm: float) -> tuple[np.ndarray, np.ndarray]:
    ratios = []
    slopes = []
    for ratio in HALO_RATIO_GRID:
        device = _solve_substrate_for_ioff(
            node, l_poly_nm, ratio, node.ioff_target_a_per_um,
            Polarity.NFET, 1.0, SUB_VTH_EVAL_VDD,
        )
        if device is None:
            continue
        ratios.append(ratio)
        slopes.append(device.ss_mv_per_dec)
    return np.array(ratios), np.array(slopes)


@experiment("ablation_halo", "Ablation: role of the halo implant")
def run() -> ExperimentResult:
    """Quantify the halo's leakage-rescue role and the S_S pinning."""
    node = node_by_name("45nm")
    optimizer = SuperVthOptimizer(node, Polarity.NFET)
    n_sub = optimizer.solve_substrate()

    halo_free = optimizer._device(n_sub, 0.0)
    leak_ratio = (halo_free.i_off_per_um(node.vdd_nominal)
                  / node.ioff_target_a_per_um)

    optimized = optimizer.optimize()
    budget_ratio = (optimized.i_off_per_um(node.vdd_nominal)
                    / node.ioff_target_a_per_um)

    r_short, ss_short = _ss_vs_ratio(node, node.l_poly_nm)
    r_long, ss_long = _ss_vs_ratio(node, LONG_GATE_NM)

    series = (
        Series(label=f"S_S vs halo ratio, L={node.l_poly_nm:.0f}nm",
               x=r_short, y=ss_short, x_label="N_p,halo/N_sub",
               y_label="S_S [mV/dec]"),
        Series(label=f"S_S vs halo ratio, L={LONG_GATE_NM:.0f}nm",
               x=r_long, y=ss_long, x_label="N_p,halo/N_sub",
               y_label="S_S [mV/dec]"),
    )

    spread_short = float(ss_short.max() - ss_short.min())
    comparisons = (
        Comparison(
            claim="without halo, the short device blows the leakage budget",
            paper_value=float("nan"),
            measured_value=leak_ratio,
            holds=leak_ratio > 2.0,
            note="halo-free I_off over budget, long-channel N_sub",
        ),
        Comparison(
            claim="the halo solve restores the budget exactly",
            paper_value=1.0,
            measured_value=budget_ratio,
            holds=abs(budget_ratio - 1.0) < 0.02,
        ),
        Comparison(
            claim="at fixed I_off and L, S_S is pinned regardless of the "
                  "doping split (channel-averaged model property)",
            paper_value=float("nan"),
            measured_value=spread_short,
            unit="mV/dec",
            holds=spread_short < 0.1,
            note="the real S_S lever is L_poly, not the split — the "
                 "basis of the sub-V_th strategy",
        ),
        Comparison(
            claim="the short device cannot reach the long device's S_S at "
                  "any doping",
            paper_value=float("nan"),
            measured_value=float(ss_short.min() - ss_long.min()),
            unit="mV/dec",
            holds=ss_short.min() > ss_long.min(),
        ),
    )
    return ExperimentResult(
        experiment_id="ablation_halo",
        title="Role of the halo implant (45nm node)",
        series=series,
        comparisons=comparisons,
    )
