"""Fig. 11 — FO1 inverter delay at 250 mV under both strategies.

Normalized transient delay.  Under super-V_th scaling the trajectory is
erratic (V_th and I_off both move); under the proposed strategy the
pinned I_off and flat S_S give a graceful, monotonic improvement
(~18 %/generation in the paper).
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.delay import fo1_delay
from .families import SUB_VTH_SUPPLY, sub_vth_family, super_vth_family
from .registry import experiment

#: The paper's per-generation delay improvement under sub-V_th scaling.
PAPER_DELAY_RATE = -0.18


@experiment("fig11", "FO1 delay at 250 mV under both strategies (Fig. 11)")
def run() -> ExperimentResult:
    """Reproduce Fig. 11."""
    sup = super_vth_family()
    sub = sub_vth_family()
    nodes = np.array([d.node.node_nm for d in sup.designs])
    t_sup = np.array([
        fo1_delay(d.inverter(SUB_VTH_SUPPLY), transient=True).transient_s
        for d in sup.designs
    ])
    t_sub = np.array([
        fo1_delay(d.inverter(SUB_VTH_SUPPLY), transient=True).transient_s
        for d in sub.designs
    ])

    series = (
        Series(label="delay super-vth @250mV (normalized)", x=nodes,
               y=t_sup / t_sup[0], x_label="node [nm]",
               y_label="normalized t_p"),
        Series(label="delay sub-vth @250mV (normalized)", x=nodes,
               y=t_sub / t_sub[0], x_label="node [nm]",
               y_label="normalized t_p"),
    )

    sub_rates = np.diff(t_sub) / t_sub[:-1]
    comparisons = (
        Comparison(
            claim="sub-V_th delay improves every generation",
            paper_value=PAPER_DELAY_RATE,
            measured_value=float(sub_rates.mean()),
            holds=bool(np.all(sub_rates < 0.0)),
            note="paper: ~-18%/generation; model improves more slowly "
                 "but monotonically",
        ),
        Comparison(
            claim="super-V_th delay scales poorly at 250 mV",
            paper_value=float("nan"),
            measured_value=float(t_sup[-1] / t_sup[0]),
            holds=t_sup[-1] > t_sup[0],
            note="32nm-to-90nm delay ratio under super-V_th scaling",
        ),
        Comparison(
            claim="sub-V_th is faster than super-V_th at the 32nm node",
            paper_value=float("nan"),
            measured_value=float(t_sup[-1] / t_sub[-1]),
            holds=t_sub[-1] < t_sup[-1],
            note="speedup factor at 32nm",
        ),
    )
    return ExperimentResult(
        experiment_id="fig11",
        title="FO1 inverter delay at 250 mV under both strategies",
        series=series,
        comparisons=comparisons,
    )
