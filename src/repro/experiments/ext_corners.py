"""Extension — global process corners at the 32nm node.

The paper's variability remark concerns local fluctuation; the other
half of a real sign-off is the global FF/SS corner spread, which in
subthreshold is exponential in the corner V_th shift.  This experiment
quantifies the corner drive spread for both scaling strategies' 32nm
devices at 250 mV and at nominal supply:

* both strategies see a far larger spread at 250 mV than at the
  nominal rail (the sub-V_th sign-off problem),
* the sub-V_th strategy's lighter channel doping makes its corner
  spread smaller than the super-V_th device's.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.corners import Corner, corner_grid
from .families import SUB_VTH_SUPPLY, sub_vth_family, super_vth_family
from .registry import experiment


@experiment("ext_corners", "Extension: FF/SS corner spread at 32nm")
def run() -> ExperimentResult:
    """Corner spreads for both strategies, sub-V_th vs nominal."""
    sup = super_vth_family().design("32nm")
    sub = sub_vth_family().design("32nm")
    nominal_vdd = sup.node.vdd_nominal

    # One (device x corner) parameter stack covers every metric below:
    # lanes are device-major over [super, sub] x [FF, TT, SS].
    corners = (Corner.FF, Corner.TT, Corner.SS)
    grid = corner_grid((sup.nfet, sub.nfet), corners)
    ion_sub = grid.i_on_per_um(SUB_VTH_SUPPLY).reshape(2, 3)
    ion_nom = grid.i_on_per_um(nominal_vdd).reshape(2, 3)
    ff, ss = 0, 2

    spread_sup_sub = float(ion_sub[0, ff] / ion_sub[0, ss])
    spread_sub_sub = float(ion_sub[1, ff] / ion_sub[1, ss])
    spread_sup_nom = float(ion_nom[0, ff] / ion_nom[0, ss])
    spread_sub_nom = float(ion_nom[1, ff] / ion_nom[1, ss])

    # Corner V_th trajectories for the series payload.
    idx = np.array([0.0, 1.0, 2.0])
    vth_grid = 1000.0 * grid.vth(SUB_VTH_SUPPLY).reshape(2, 3)
    vth_sup = vth_grid[0]
    vth_sub = vth_grid[1]

    series = (
        Series(label="Vth by corner (super-vth)", x=idx, y=vth_sup,
               x_label="corner (ff=0, tt=1, ss=2)", y_label="V_th [mV]"),
        Series(label="Vth by corner (sub-vth)", x=idx, y=vth_sub,
               x_label="corner (ff=0, tt=1, ss=2)", y_label="V_th [mV]"),
    )

    comparisons = (
        Comparison(
            claim="corner spread at 250 mV dwarfs the nominal-rail spread "
                  "(super-V_th device)",
            paper_value=spread_sup_nom,
            measured_value=spread_sup_sub,
            holds=spread_sup_sub > 2.0 * spread_sup_nom,
            note="FF/SS drive ratio, 250 mV vs nominal",
        ),
        Comparison(
            claim="the same holds for the sub-V_th device",
            paper_value=spread_sub_nom,
            measured_value=spread_sub_sub,
            holds=spread_sub_sub > 2.0 * spread_sub_nom,
        ),
        Comparison(
            claim="the sub-V_th strategy's lighter doping shrinks the "
                  "sub-V_th corner spread",
            paper_value=spread_sup_sub,
            measured_value=spread_sub_sub,
            holds=spread_sub_sub < spread_sup_sub,
            note="FF/SS drive ratio at 250 mV, sub vs super strategy",
        ),
        Comparison(
            claim="corner V_th ordering FF < TT < SS holds for both",
            paper_value=float("nan"),
            measured_value=float(vth_sup[2] - vth_sup[0]),
            unit="mV",
            holds=bool(np.all(np.diff(vth_sup) > 0.0)
                       and np.all(np.diff(vth_sub) > 0.0)),
            note="SS-FF V_th window of the super-V_th device",
        ),
    )
    return ExperimentResult(
        experiment_id="ext_corners",
        title="Global FF/SS corner spread at the 32nm node",
        series=series,
        comparisons=comparisons,
    )
