"""Extension — global process corners at the 32nm node.

The paper's variability remark concerns local fluctuation; the other
half of a real sign-off is the global FF/SS corner spread, which in
subthreshold is exponential in the corner V_th shift.  This experiment
quantifies the corner drive spread for both scaling strategies' 32nm
devices at 250 mV and at nominal supply:

* both strategies see a far larger spread at 250 mV than at the
  nominal rail (the sub-V_th sign-off problem),
* the sub-V_th strategy's lighter channel doping makes its corner
  spread smaller than the super-V_th device's.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..device.corners import Corner, at_corner, ff_ss_delay_spread
from .families import SUB_VTH_SUPPLY, sub_vth_family, super_vth_family
from .registry import experiment


@experiment("ext_corners", "Extension: FF/SS corner spread at 32nm")
def run() -> ExperimentResult:
    """Corner spreads for both strategies, sub-V_th vs nominal."""
    sup = super_vth_family().design("32nm")
    sub = sub_vth_family().design("32nm")
    nominal_vdd = sup.node.vdd_nominal

    spread_sup_sub = ff_ss_delay_spread(sup.nfet, SUB_VTH_SUPPLY)
    spread_sub_sub = ff_ss_delay_spread(sub.nfet, SUB_VTH_SUPPLY)
    spread_sup_nom = ff_ss_delay_spread(sup.nfet, nominal_vdd)
    spread_sub_nom = ff_ss_delay_spread(sub.nfet, nominal_vdd)

    # Corner V_th trajectories for the series payload.
    corners = (Corner.FF, Corner.TT, Corner.SS)
    idx = np.array([0.0, 1.0, 2.0])
    vth_sup = np.array([
        1000.0 * at_corner(sup.nfet, c).vth(SUB_VTH_SUPPLY) for c in corners
    ])
    vth_sub = np.array([
        1000.0 * at_corner(sub.nfet, c).vth(SUB_VTH_SUPPLY) for c in corners
    ])

    series = (
        Series(label="Vth by corner (super-vth)", x=idx, y=vth_sup,
               x_label="corner (ff=0, tt=1, ss=2)", y_label="V_th [mV]"),
        Series(label="Vth by corner (sub-vth)", x=idx, y=vth_sub,
               x_label="corner (ff=0, tt=1, ss=2)", y_label="V_th [mV]"),
    )

    comparisons = (
        Comparison(
            claim="corner spread at 250 mV dwarfs the nominal-rail spread "
                  "(super-V_th device)",
            paper_value=spread_sup_nom,
            measured_value=spread_sup_sub,
            holds=spread_sup_sub > 2.0 * spread_sup_nom,
            note="FF/SS drive ratio, 250 mV vs nominal",
        ),
        Comparison(
            claim="the same holds for the sub-V_th device",
            paper_value=spread_sub_nom,
            measured_value=spread_sub_sub,
            holds=spread_sub_sub > 2.0 * spread_sub_nom,
        ),
        Comparison(
            claim="the sub-V_th strategy's lighter doping shrinks the "
                  "sub-V_th corner spread",
            paper_value=spread_sup_sub,
            measured_value=spread_sub_sub,
            holds=spread_sub_sub < spread_sup_sub,
            note="FF/SS drive ratio at 250 mV, sub vs super strategy",
        ),
        Comparison(
            claim="corner V_th ordering FF < TT < SS holds for both",
            paper_value=float("nan"),
            measured_value=float(vth_sup[2] - vth_sup[0]),
            unit="mV",
            holds=bool(np.all(np.diff(vth_sup) > 0.0)
                       and np.all(np.diff(vth_sub) > 0.0)),
            note="SS-FF V_th window of the super-V_th device",
        ),
    )
    return ExperimentResult(
        experiment_id="ext_corners",
        title="Global FF/SS corner spread at the 32nm node",
        series=series,
        comparisons=comparisons,
    )
