"""Fig. 5 — simulated FO1 inverter delay (super-V_th).

Transient 50 %-crossing delay at nominal V_dd and at 250 mV.  At
nominal supply, scaling still helps (though slower than the generalized
-scaling 30 %/generation target); at 250 mV the leakage-constrained
V_th growth makes delay *worse* with scaling.
"""

from __future__ import annotations

import numpy as np

from ..analysis.report import Comparison, ExperimentResult
from ..analysis.series import Series
from ..circuit.delay import fo1_delay
from .families import SUB_VTH_SUPPLY, super_vth_family
from .registry import experiment

#: Generalized scaling's per-generation delay target (1/alpha = 0.7).
GENERALIZED_DELAY_RATE = -0.30


@experiment("fig5", "FO1 inverter delay vs node (Fig. 5)")
def run() -> ExperimentResult:
    """Reproduce Fig. 5 under the super-V_th strategy."""
    family = super_vth_family()
    nodes = np.array([d.node.node_nm for d in family.designs])
    delay_nominal = np.array([
        fo1_delay(d.inverter(d.node.vdd_nominal), transient=True).transient_s
        for d in family.designs
    ])
    delay_sub = np.array([
        fo1_delay(d.inverter(SUB_VTH_SUPPLY), transient=True).transient_s
        for d in family.designs
    ])

    nominal_series = Series(label="delay @nominal Vdd", x=nodes,
                            y=delay_nominal, x_label="node [nm]",
                            y_label="t_p [s]")
    sub_series = Series(label="delay @250mV", x=nodes, y=delay_sub,
                        x_label="node [nm]", y_label="t_p [s]")

    nominal_rates = np.diff(delay_nominal) / delay_nominal[:-1]
    comparisons = (
        Comparison(
            claim="delay at nominal V_dd improves with scaling",
            paper_value=float("nan"),
            measured_value=float(delay_nominal[-1] / delay_nominal[0]),
            holds=delay_nominal[-1] < delay_nominal[0],
            note="32nm-to-90nm delay ratio at nominal V_dd",
        ),
        Comparison(
            claim="nominal-V_dd delay improves slower than the 30%/gen "
                  "generalized-scaling target",
            paper_value=GENERALIZED_DELAY_RATE,
            measured_value=float(nominal_rates.mean()),
            holds=bool(np.all(nominal_rates > GENERALIZED_DELAY_RATE)),
        ),
        Comparison(
            claim="delay at 250 mV gets worse with scaling (V_th growth "
                  "dominates)",
            paper_value=float("nan"),
            measured_value=float(delay_sub[-1] / delay_sub[0]),
            holds=delay_sub[-1] > delay_sub[0],
            note="paper: increases except at the 32nm point",
        ),
    )
    return ExperimentResult(
        experiment_id="fig5",
        title="Simulated FO1 delay for a scaled inverter",
        series=(nominal_series, sub_series),
        comparisons=comparisons,
    )
