"""Table 1 — generalized scaling rules.

A consistency demonstration rather than a measurement: the
:class:`repro.scaling.generalized.GeneralizedScaling` algebra is
evaluated at the classic per-generation shrink (alpha = 1/0.7) and the
resulting factors are checked against the paper's table.
"""

from __future__ import annotations

from ..analysis.report import Comparison, ExperimentResult
from ..scaling.generalized import GeneralizedScaling
from .registry import experiment

#: The classic per-generation shrink (0.7x dimensions).
ALPHA = 1.0 / 0.7
#: A representative field-growth factor for generalized scaling.
EPSILON = 1.1


@experiment("table1", "Generalized scaling rules (Table 1)")
def run() -> ExperimentResult:
    """Evaluate the Table 1 factors and verify the paper's algebra."""
    rule = GeneralizedScaling(alpha=ALPHA, epsilon=EPSILON)
    table = rule.table()
    rows = tuple(
        (name, f"{factor:.4f}") for name, factor in table.items()
    )
    comparisons = (
        Comparison(
            claim="physical dimensions scale as 1/alpha",
            paper_value=1.0 / ALPHA,
            measured_value=table["physical_dimensions"],
            holds=abs(table["physical_dimensions"] - 1.0 / ALPHA) < 1e-12,
        ),
        Comparison(
            claim="channel doping scales as epsilon*alpha",
            paper_value=EPSILON * ALPHA,
            measured_value=table["channel_doping"],
            holds=abs(table["channel_doping"] - EPSILON * ALPHA) < 1e-12,
        ),
        Comparison(
            claim="V_dd scales as epsilon/alpha",
            paper_value=EPSILON / ALPHA,
            measured_value=table["vdd"],
            holds=abs(table["vdd"] - EPSILON / ALPHA) < 1e-12,
        ),
        Comparison(
            claim="area scales as 1/alpha^2",
            paper_value=ALPHA ** -2,
            measured_value=table["area"],
            holds=abs(table["area"] - ALPHA ** -2) < 1e-12,
        ),
        Comparison(
            claim="power scales as epsilon^2/alpha^2",
            paper_value=(EPSILON / ALPHA) ** 2,
            measured_value=table["power"],
            holds=abs(table["power"] - (EPSILON / ALPHA) ** 2) < 1e-12,
        ),
        Comparison(
            claim="peak field grows by epsilon",
            paper_value=EPSILON,
            measured_value=rule.field_factor,
            holds=abs(rule.field_factor - EPSILON) < 1e-12,
        ),
    )
    return ExperimentResult(
        experiment_id="table1",
        title="Generalized scaling rules",
        headers=("parameter", "scaling factor"),
        rows=rows,
        comparisons=comparisons,
    )
