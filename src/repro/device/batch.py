"""Parameter-axis vectorised device evaluation.

The batch kernels in :mod:`repro.circuit.batch` vectorise the *bias*
axis of one device; the scaling flows need the orthogonal axis: many
(N_sub, N_p,halo, L_poly) parameter points evaluated at a few biases.
:class:`ParameterStack` maps arrays of doping/geometry inputs through
the same doping -> halo/depletion self-consistency -> threshold -> EKV
chain as :class:`repro.device.iv.IVModel`, without constructing a
per-point :class:`repro.device.mosfet.MOSFET`.

The arithmetic replicates the scalar models term for term — same
association order, same constants, same fixed-point iteration with each
point frozen at its *first* converged iterate — so batched root-solves
land on the same doping as the scalar `brentq` loops to well below the
1e-9 relative agreement the equivalence tests enforce.  The only
deliberate divergence is ``scipy.special.erf`` vs ``math.erf``
(ulp-level).

Used by :mod:`repro.scaling.batch` for the batched doping root-solves.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erf

from .. import perf
from ..numerics import bisect_masked
from ..constants import (
    CM_PER_NM,
    CM_PER_UM,
    EPS_0,
    EPS_OX_REL,
    EPS_SI,
    EPS_SI_REL,
    LN10,
    Q,
    T_ROOM,
    VSAT_ELECTRON,
    VSAT_HOLE,
    thermal_voltage,
)
from ..errors import ParameterError
from ..materials.mobility import _MASETTI
from ..materials.silicon import bandgap_ev, intrinsic_concentration
from .doping import (
    _SQRT_2PI,
    HALO_DEPTH_FRACTION,
    HALO_SIGMA_X_FRACTION,
    HALO_SIGMA_Y_FRACTION,
)
from .geometry import JUNCTION_DEPTH_FRACTION
from .iv import _ekv_f
from .mosfet import VTH_CC_A, Polarity
from .subthreshold import _EPS_RATIO
from .threshold import N_SOURCE_DRAIN

_SQRT2 = math.sqrt(2.0)

#: Fixed-point tolerance/iteration cap, mirroring
#: :func:`repro.device.electrostatics.self_consistent_channel_doping`.
_FP_TOL = 1e-4
_FP_MAX_ITER = 60


def _masetti(doping: np.ndarray, params: dict) -> np.ndarray:
    """Masetti low-field mobility, replicated from materials.mobility."""
    mu = params["mu_min1"] + (
        (params["mu_max"] - params["mu_min2"])
        / (1.0 + (doping / params["cr"]) ** params["alpha"])
    ) - params["mu1"] / (1.0 + (params["cs"] / doping) ** params["beta"])
    return np.maximum(mu, 10.0)


class ParameterStack:
    """Fixed geometry/stack/polarity arrays for a batch of devices.

    One instance holds everything about the candidate points that does
    *not* change during a doping root-solve (lengths, oxide, widths,
    polarities); :meth:`metrics` then evaluates any (N_sub, N_p,halo)
    assignment over the whole stack at once.

    All array inputs broadcast against each other.  ``reference_nm``
    follows the :meth:`repro.device.geometry.DeviceGeometry.from_nm`
    convention: junction depth, overlap and halo dimensions are
    proportional to the reference length (``None`` -> ``l_poly_nm``).

    The calibration module globals (overlap fraction, ``l_t``
    multiplier, SCE slope prefactor) are read once at construction,
    exactly as scalar device construction reads them — stacks built
    inside a :func:`repro.scaling.sensitivity.calibration` scope bake
    the overrides in the same way.
    """

    def __init__(self, l_poly_nm, t_ox_nm, *, is_nfet=True, width_um=1.0,
                 reference_nm=None, temperature_k: float = T_ROOM):
        from . import geometry as geometry_mod
        from . import subthreshold as subthreshold_mod
        from . import threshold as threshold_mod

        if reference_nm is None:
            reference_nm = l_poly_nm
        (l_poly_nm, t_ox_nm, width_um, reference_nm, is_nfet) = (
            np.broadcast_arrays(
                np.asarray(l_poly_nm, dtype=float),
                np.asarray(t_ox_nm, dtype=float),
                np.asarray(width_um, dtype=float),
                np.asarray(reference_nm, dtype=float),
                np.asarray(is_nfet, dtype=bool),
            )
        )
        if np.any(l_poly_nm <= 0.0) or np.any(t_ox_nm <= 0.0):
            raise ParameterError("gate length and T_ox must be positive")
        if np.any(width_um <= 0.0) or np.any(reference_nm <= 0.0):
            raise ParameterError("width and reference length must be positive")
        self.shape = l_poly_nm.shape
        self.is_nfet = is_nfet
        self.temperature_k = float(temperature_k)

        self._overlap_fraction = geometry_mod.OVERLAP_FRACTION
        self._lt_calibration = threshold_mod.LT_CALIBRATION
        self._sce_prefactor = subthreshold_mod.SCE_PREFACTOR_DEFAULT

        ref_cm = reference_nm * CM_PER_NM
        l_poly_cm = l_poly_nm * CM_PER_NM
        self.l_eff_cm = l_poly_cm - 2.0 * (self._overlap_fraction * ref_cm)
        if np.any(self.l_eff_cm <= 0.0):
            raise ParameterError("overlap consumes the whole gate")
        xj_cm = JUNCTION_DEPTH_FRACTION * ref_cm
        self.sigma_x_cm = HALO_SIGMA_X_FRACTION * xj_cm
        self.sigma_y_cm = HALO_SIGMA_Y_FRACTION * xj_cm
        self.halo_depth_cm = HALO_DEPTH_FRACTION * xj_cm

        width_cm = width_um * CM_PER_UM
        self.aspect_ratio = width_cm / self.l_eff_cm
        # Report widths the way DeviceGeometry.width_um does (cm-domain
        # round trip), so per-um normalisation is bitwise identical.
        self.width_um = width_cm / CM_PER_UM

        # SiO2 stack: EOT equals the physical thickness (replicate the
        # GateStack expressions rather than simplifying them).
        t_ox_cm = t_ox_nm * CM_PER_NM
        self.eot_cm = t_ox_cm * EPS_OX_REL / EPS_OX_REL
        self.cox = EPS_OX_REL * EPS_0 / t_ox_cm

        self.vt = thermal_voltage(self.temperature_k)
        self.ni = intrinsic_concentration(self.temperature_k)
        self.half_gap = bandgap_ev(self.temperature_k) / 2.0
        self.vsat = np.where(is_nfet, VSAT_ELECTRON, VSAT_HOLE)
        self._mu_temp = (self.temperature_k / 300.0) ** -2.2

    @classmethod
    def from_devices(cls, devices) -> "ParameterStack":
        """A stack whose lanes replicate constructed MOSFETs.

        Lane ``i`` carries ``devices[i]``'s geometry, oxide and
        polarity, with the reference length recovered from the stored
        overlap (the inverse of :meth:`DeviceGeometry.proportional`),
        so ``stack.metrics(n_sub, n_p_halo)`` with the devices' own
        dopings reproduces their scalar metrics to the batch layer's
        usual ulp-level agreement.  Used by the design-space grid fill
        (:mod:`repro.service.grid`) to evaluate optimised devices over
        a whole V_dd axis at once; :func:`repro.device.corners.corner_grid`
        applies the same reconstruction with corner shifts folded in.

        All devices must share a temperature and carry no per-device
        V_th offset (offsets have no stack representation).
        """
        from . import geometry as geometry_mod
        devices = tuple(devices)
        if not devices:
            raise ParameterError("need at least one device")
        for dev in devices:
            if dev.vth_offset_v:
                raise ParameterError(
                    "stacks cannot carry per-device V_th offsets")
            if dev.temperature_k != devices[0].temperature_k:
                raise ParameterError("stack devices must share T")
        as_array = np.asarray
        return cls(
            l_poly_nm=as_array([d.geometry.l_poly_nm for d in devices]),
            t_ox_nm=as_array([d.stack.thickness_cm / CM_PER_NM
                              for d in devices]),
            is_nfet=as_array([d.polarity is Polarity.NFET for d in devices]),
            width_um=as_array([d.geometry.width_um for d in devices]),
            reference_nm=as_array([
                d.geometry.overlap_cm / geometry_mod.OVERLAP_FRACTION
                / CM_PER_NM
                for d in devices
            ]),
            temperature_k=devices[0].temperature_k,
        )

    def take(self, idx) -> "ParameterStack":
        """The sub-stack at flat lane indices ``idx`` (1-D result).

        Per-lane arrays are gathered, shared scalars are kept; the
        result evaluates exactly like the corresponding lanes of the
        full stack, which is what lets the root-solve core hand
        residual callbacks only the active subset.
        """
        idx = np.asarray(idx)
        clone = object.__new__(ParameterStack)
        for name, value in self.__dict__.items():
            if isinstance(value, np.ndarray) and value.shape == self.shape:
                clone.__dict__[name] = np.ravel(value)[idx]
            else:
                clone.__dict__[name] = value
        clone.shape = idx.shape
        return clone

    # -- pieces of the scalar model, vectorised -----------------------------

    def _depletion_width(self, doping: np.ndarray) -> np.ndarray:
        psi = 2.0 * (self.vt * np.log(doping / self.ni))
        return np.sqrt(2.0 * EPS_SI * psi / (Q * doping))

    def _low_field_mobility(self, doping: np.ndarray) -> np.ndarray:
        mu = np.where(self.is_nfet,
                      _masetti(doping, _MASETTI["electron"]),
                      _masetti(doping, _MASETTI["hole"]))
        return mu * self._mu_temp

    def _channel_state(self, n_sub: np.ndarray, peak: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """The N_eff <-> W_dep fixed point, each point frozen at its
        *first* converged iterate (matching the scalar early return)."""
        shape = np.broadcast_shapes(n_sub.shape, self.shape)

        def flat(values: np.ndarray) -> np.ndarray:
            return np.ravel(np.broadcast_to(values, shape))

        lateral = flat(peak * _SQRT_2PI * self.sigma_x_cm
                       * erf(self.l_eff_cm / (_SQRT2 * self.sigma_x_cm))
                       / self.l_eff_cm)
        erf_a = flat(erf((0.0 - self.halo_depth_cm)
                         / (_SQRT2 * self.sigma_y_cm)))
        sy_factor = flat(self.sigma_y_cm * math.sqrt(math.pi / 2.0))
        halo_depth = flat(self.halo_depth_cm)
        sigma_y = flat(self.sigma_y_cm)
        n_sub_f = flat(n_sub)

        # Active-set compression: only the unconverged lanes are carried
        # through each iteration; a lane's iterate sequence is unchanged
        # (the update is elementwise), so freezing at the first converged
        # iterate lands on the same value as the scalar early return.
        n_eff = n_sub_f + lateral * 1.0
        w_dep = self._depletion_width(n_eff)
        out_n = np.empty_like(n_eff)
        out_w = np.empty_like(w_dep)
        idx = np.arange(n_eff.shape[0])
        for _ in range(_FP_MAX_ITER):
            erf_b = erf((w_dep - halo_depth[idx]) / (_SQRT2 * sigma_y[idx]))
            vertical = sy_factor[idx] * (erf_b - erf_a[idx]) / w_dep
            n_next = n_sub_f[idx] + lateral[idx] * vertical
            w_next = self._depletion_width(n_next)
            converged = np.abs(n_next - n_eff) <= _FP_TOL * n_eff
            done = np.flatnonzero(converged)
            out_n[idx[done]] = n_next[done]
            out_w[idx[done]] = w_next[done]
            keep = np.flatnonzero(~converged)
            idx = idx[keep]
            if not idx.shape[0]:
                break
            n_eff = n_next[keep]
            w_dep = w_next[keep]
        # Non-converged stragglers keep their last iterate, as scalar.
        if idx.shape[0]:
            out_n[idx] = n_eff
            out_w[idx] = w_dep
        return out_n.reshape(shape), out_w.reshape(shape)

    def metrics(self, n_sub_cm3, n_p_halo_cm3) -> "BatchDeviceMetrics":
        """Evaluate the stack at one (N_sub, N_p,halo) assignment:
        ``n_sub_cm3`` [cm3] substrate doping, ``n_p_halo_cm3`` [cm3]
        halo peak (0 disables the halo)."""
        n_sub, peak, _ = np.broadcast_arrays(
            np.asarray(n_sub_cm3, dtype=float),
            np.asarray(n_p_halo_cm3, dtype=float),
            np.empty(self.shape),
        )
        if np.any(n_sub <= 0.0) or np.any(peak < 0.0):
            raise ParameterError("N_sub must be > 0 and N_p,halo >= 0")
        perf.bump("scaling.device_eval_points", int(n_sub.size))

        n_eff, w_dep = self._channel_state(n_sub, peak)
        phi_f = self.vt * np.log(n_eff / self.ni)
        gamma = np.sqrt(2.0 * Q * EPS_SI * n_eff) / self.cox
        vfb = -(self.half_gap + phi_f)
        vth0 = vfb + 2.0 * phi_f + gamma * np.sqrt(2.0 * phi_f)

        psi_s = 2.0 * phi_f
        vbi = self.vt * np.log(N_SOURCE_DRAIN * n_eff / self.ni ** 2)
        barrier = np.maximum(vbi - psi_s, 0.0)
        lt = self._lt_calibration * np.sqrt(
            (EPS_SI_REL / EPS_OX_REL) * self.eot_cm * w_dep)
        e1 = np.exp(-self.l_eff_cm / (2.0 * lt))
        e2 = np.exp(-self.l_eff_cm / lt)

        m0 = 1.0 + _EPS_RATIO * self.eot_cm / w_dep
        scale = w_dep + _EPS_RATIO * self.eot_cm
        degradation = 1.0 + self._sce_prefactor * (self.eot_cm / w_dep) \
            * np.exp(-math.pi * self.l_eff_cm / (2.0 * scale))
        slope = LN10 * self.vt * m0
        slope = slope * degradation
        m = slope / (LN10 * self.vt)

        return BatchDeviceMetrics(
            stack=self, n_eff_cm3=n_eff, w_dep_cm=w_dep, vth0_v=vth0,
            sce_barrier_v=barrier, sce_e1=e1, sce_e2=e2, slope_factor=m,
            mu_low=self._low_field_mobility(n_eff),
        )


class BatchDeviceMetrics:
    """Vectorised device metrics at one (N_sub, N_p,halo) assignment.

    Mirrors the cached state of :class:`repro.device.iv.IVModel`
    (``n_eff``, ``w_dep``, ``vth0``, SCE coefficients, slope factor)
    for every point of a :class:`ParameterStack` and evaluates the same
    EKV current expression over the whole stack.
    """

    __slots__ = ("stack", "n_eff_cm3", "w_dep_cm", "vth0_v", "sce_barrier_v",
                 "sce_e1", "sce_e2", "slope_factor", "mu_low")

    def __init__(self, stack: ParameterStack, n_eff_cm3, w_dep_cm, vth0_v,
                 sce_barrier_v, sce_e1, sce_e2, slope_factor, mu_low):
        self.stack = stack
        self.n_eff_cm3 = n_eff_cm3
        self.w_dep_cm = w_dep_cm
        self.vth0_v = vth0_v
        self.sce_barrier_v = sce_barrier_v
        self.sce_e1 = sce_e1
        self.sce_e2 = sce_e2
        self.slope_factor = slope_factor
        self.mu_low = mu_low

    def take(self, idx) -> "BatchDeviceMetrics":
        """The metrics of flat lanes ``idx`` (gathered stack included)."""
        idx = np.asarray(idx)

        def flat(values: np.ndarray) -> np.ndarray:
            return np.ravel(values)[idx]

        return BatchDeviceMetrics(
            stack=self.stack.take(idx),
            n_eff_cm3=flat(self.n_eff_cm3), w_dep_cm=flat(self.w_dep_cm),
            vth0_v=flat(self.vth0_v), sce_barrier_v=flat(self.sce_barrier_v),
            sce_e1=flat(self.sce_e1), sce_e2=flat(self.sce_e2),
            slope_factor=flat(self.slope_factor), mu_low=flat(self.mu_low),
        )

    @property
    def ss_v_per_dec(self) -> np.ndarray:
        """Inverse subthreshold slope [V/dec] (equals Eq. 2(b))."""
        return LN10 * thermal_voltage(self.stack.temperature_k) \
            * self.slope_factor

    def vth(self, vds) -> np.ndarray:
        """Threshold voltage at drain bias ``vds`` [V] (DIBL included)."""
        vds_arr = np.maximum(np.asarray(vds, dtype=float), 0.0)
        b = self.sce_barrier_v
        dv = ((2.0 * b + vds_arr) * self.sce_e1
              + 2.0 * np.sqrt(b * (b + vds_arr)) * self.sce_e2)
        return self.vth0_v - dv

    def ids(self, vgs, vds) -> np.ndarray:
        """Drain current [A] for NFET-referenced terminal voltages."""
        s = self.stack
        vgs_arr = np.asarray(vgs, dtype=float)
        vds_arr = np.maximum(np.asarray(vds, dtype=float), 0.0)
        vt = s.vt
        vth = self.vth(vds_arr)
        vp = (vgs_arr - vth) / self.slope_factor
        i_f = _ekv_f(vp / vt)
        i_r = _ekv_f((vp - vds_arr) / vt)

        e_eff = np.maximum(vgs_arr + self.vth0_v, 0.0) / (6.0 * s.eot_cm)
        mu = self.mu_low / np.where(
            s.is_nfet,
            1.0 + (e_eff / 6.7e5) ** 1.6,
            1.0 + (e_eff / 7.0e5) ** 1.0,
        )
        ispec = (2.0 * self.slope_factor * mu * s.cox * vt ** 2
                 * s.aspect_ratio)
        current = ispec * (i_f - i_r)
        severity = i_f / (1.0 + i_f)
        v_drive = np.maximum(vp, 2.0 * vt)
        v_dsat = vds_arr * v_drive / (vds_arr + v_drive + 1e-12)
        vsat_term = (self.mu_low * v_dsat) / (s.vsat * s.l_eff_cm)
        return current / (1.0 + severity * vsat_term)

    def i_off_per_um(self, vdd) -> np.ndarray:
        """Leakage per µm of width at supply ``vdd`` [A/µm]."""
        return self.ids(0.0, vdd) / self.stack.width_um

    def i_on_per_um(self, vdd) -> np.ndarray:
        """On-current per µm of width at supply ``vdd`` [A/µm]."""
        return self.ids(vdd, vdd) / self.stack.width_um

    def vth_sat_cc(self, vdd, xtol: float = 1e-9) -> np.ndarray:
        """Constant-current saturation V_th over the stack [V].

        Gathered bisection (:func:`repro.numerics.bisect_masked`) of
        the same increasing residual the scalar
        :meth:`repro.device.mosfet.MOSFET.vth_sat_cc` hands to
        ``brentq`` (criterion ``I = VTH_CC_A * W/L_eff`` at
        ``V_ds = V_dd``), over the same [-0.5, 2.0] V bracket.
        """
        shape = self.stack.shape
        n = int(np.prod(shape, dtype=int))
        vdd_flat = np.ravel(np.broadcast_to(np.asarray(vdd, float), shape))
        target = np.ravel(np.broadcast_to(
            VTH_CC_A * self.stack.aspect_ratio, shape))
        flat = self.take(np.arange(n))

        def residual(vgs: np.ndarray, idx: np.ndarray) -> np.ndarray:
            return flat.take(idx).ids(vgs, vdd_flat[idx]) - target[idx]

        all_lanes = np.arange(n)
        lo = np.full(n, -0.5)
        hi = np.full(n, 2.0)
        if np.any(residual(lo, all_lanes) > 0.0) \
                or np.any(residual(hi, all_lanes) < 0.0):
            raise ParameterError(
                "constant-current criterion not bracketed; device far "
                "outside calibrated regime"
            )
        return bisect_masked(residual, lo, hi, xtol=xtol).reshape(shape)


def device_metrics(l_poly_nm, t_ox_nm, n_sub_cm3, n_p_halo_cm3=0.0, *,
                   polarity: Polarity = Polarity.NFET, width_um=1.0,
                   reference_nm=None, temperature_k: float = T_ROOM
                   ) -> BatchDeviceMetrics:
    """One-shot parameter-axis evaluation (convenience wrapper).

    Maps arrays of (N_sub, N_p,halo, L_poly, ...) to vectorised device
    metrics without constructing per-point MOSFET objects.  Geometry
    arrives as ``l_poly_nm`` [nm] / ``t_ox_nm`` [nm] / ``width_um``
    [um] against the ``reference_nm`` [nm] node; doping as
    ``n_sub_cm3`` [cm3] and ``n_p_halo_cm3`` [cm3]; the stack is
    evaluated at ``temperature_k`` [K]:

    >>> import numpy as np
    >>> m = device_metrics(65.0, 2.1, np.array([5e17, 1e18, 2e18]))
    >>> bool(np.all(np.diff(m.i_off_per_um(1.1)) < 0.0))
    True
    """
    stack = ParameterStack(
        l_poly_nm, t_ox_nm, is_nfet=(polarity is Polarity.NFET),
        width_um=width_um, reference_nm=reference_nm,
        temperature_k=temperature_k,
    )
    return stack.metrics(n_sub_cm3, n_p_halo_cm3)
