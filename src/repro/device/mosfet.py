"""The MOSFET facade: one object per device, tying together geometry,
doping, gate stack, threshold, capacitance and I-V sub-models.

PFETs are modelled "analogously" to NFETs exactly as the paper does
(Section 2.2): the same electrostatic formulation with hole mobility
and a p+ gate; the circuit layer maps PFET terminal voltages onto the
source-referenced magnitudes this model expects.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from scipy.optimize import brentq

from ..cache import device_cache_enabled, device_memo
from ..constants import T_ROOM, nm_to_cm, CM_PER_UM
from ..errors import ParameterError
from ..materials.mobility import MobilityModel
from ..materials.oxide import GateStack, sio2
from .capacitance import CapacitanceModel
from .doping import DopingProfile, HaloImplant
from .geometry import DeviceGeometry
from .iv import IVModel
from .threshold import ThresholdModel

#: Constant-current V_th extraction criterion: I = VTH_CC_A * W/L_eff.
VTH_CC_A: float = 1.0e-7


class Polarity(enum.Enum):
    """Channel polarity of a MOSFET."""

    NFET = "nfet"
    PFET = "pfet"


@dataclass(frozen=True)
class MOSFET:
    """A bulk MOSFET with the paper's four scaling parameters.

    Construction resolves the halo/depletion self-consistency once; all
    derived metrics (S_S, V_th, I_on, I_off, capacitances) are then
    cheap property accesses.  Use :func:`nfet` / :func:`pfet` for the
    common construction path from nanometre inputs.
    """

    polarity: Polarity
    geometry: DeviceGeometry
    profile: DopingProfile
    stack: GateStack
    temperature_k: float = T_ROOM
    #: Additive V_th perturbation [V] for variability studies.
    vth_offset_v: float = 0.0

    _iv: IVModel = field(init=False, repr=False, default=None)
    _cap: CapacitanceModel = field(init=False, repr=False, default=None)
    _threshold: ThresholdModel = field(init=False, repr=False, default=None)
    #: Per-instance memo for scalar metrics (i_off/i_on/vth_sat_cc).
    #: Devices are immutable and shared through the construction memo,
    #: so the optimiser root-solves re-request the same metric at the
    #: same bias thousands of times.
    _metrics: dict = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        carrier = "electron" if self.polarity is Polarity.NFET else "hole"
        gate = "n+poly" if self.polarity is Polarity.NFET else "p+poly"
        mobility = MobilityModel(carrier=carrier,
                                 temperature_k=self.temperature_k)
        # For the PFET we reuse the n-channel-referenced electrostatics
        # (symmetric device assumption, as in the paper); the p+ gate on
        # an n-body yields the mirror-image flat band, so magnitudes match
        # when we keep the n+poly formulation with hole mobility.
        iv = IVModel(self.geometry, self.profile, self.stack,
                     mobility=mobility, temperature_k=self.temperature_k,
                     gate="n+poly", vth_offset_v=self.vth_offset_v)
        object.__setattr__(self, "_iv", iv)
        object.__setattr__(self, "_cap", CapacitanceModel(
            self.geometry, self.profile, self.stack, self.temperature_k))
        object.__setattr__(self, "_threshold", ThresholdModel(
            self.geometry, self.profile, self.stack, self.temperature_k,
            gate="n+poly"))
        object.__setattr__(self, "_metrics", {})

    # -- sub-models ----------------------------------------------------------

    @property
    def iv(self) -> IVModel:
        """The unified I-V model."""
        return self._iv

    @property
    def capacitance(self) -> CapacitanceModel:
        """The capacitance model."""
        return self._cap

    @property
    def threshold(self) -> ThresholdModel:
        """The threshold (roll-off/roll-up) model."""
        return self._threshold

    # -- derived metrics -------------------------------------------------------

    @property
    def ss_v_per_dec(self) -> float:
        """Inverse subthreshold slope [V/decade]."""
        return self._iv.ss_v_per_decade

    @property
    def ss_mv_per_dec(self) -> float:
        """Inverse subthreshold slope [mV/decade]."""
        return 1000.0 * self._iv.ss_v_per_decade

    @property
    def slope_factor(self) -> float:
        """Effective slope factor m."""
        return self._iv.slope_factor

    @property
    def n_eff_cm3(self) -> float:
        """Effective channel doping [cm^-3]."""
        return self._iv.n_eff_cm3

    def vth(self, vds: float = 0.05) -> float:
        """Model threshold voltage at drain bias ``vds`` [V]."""
        return float(self._iv.vth(vds))

    def vth_sat_cc(self, vdd: float) -> float:
        """Saturation V_th by the constant-current criterion [V].

        The industrial extraction the paper's Table 2 reports: the gate
        voltage at which ``I_ds = 100 nA x W/L_eff`` with
        ``V_ds = V_dd``.
        """
        key = ("vth_sat_cc", vdd)
        if key in self._metrics:
            return self._metrics[key]
        target = VTH_CC_A * self.geometry.aspect_ratio

        def residual(vgs: float) -> float:
            return self.ids(vgs, vdd) - target

        lo, hi = -0.5, 2.0
        if residual(lo) > 0.0 or residual(hi) < 0.0:
            raise ParameterError(
                "constant-current criterion not bracketed; device far "
                "outside calibrated regime"
            )
        value = float(brentq(residual, lo, hi, xtol=1e-6))
        self._metrics[key] = value
        return value

    def ids(self, vgs, vds, vth_shift_v=0.0):
        """Drain current [A] for source-referenced voltage magnitudes.

        For a PFET pass ``vgs = V_sg`` and ``vds = V_sd`` (both
        positive in normal operation).  ``vth_shift_v`` [V] perturbs V_th
        per evaluation point (array-native Monte Carlo; see
        :meth:`IVModel.ids`).
        """
        return self._iv.ids(vgs, vds, vth_shift_v)

    def i_off(self, vdd: float) -> float:
        """Leakage at V_gs = 0, V_ds = V_dd [A]."""
        key = ("i_off", vdd)
        if key not in self._metrics:
            self._metrics[key] = self._iv.i_off(vdd)
        return self._metrics[key]

    def i_on(self, vdd: float) -> float:
        """On current at V_gs = V_ds = V_dd [A]."""
        key = ("i_on", vdd)
        if key not in self._metrics:
            self._metrics[key] = self._iv.i_on(vdd)
        return self._metrics[key]

    def i_off_per_um(self, vdd: float) -> float:
        """Leakage normalised per µm of width [A/µm]."""
        return self.i_off(vdd) / self.geometry.width_um

    def i_on_per_um(self, vdd: float) -> float:
        """On current normalised per µm of width [A/µm]."""
        return self.i_on(vdd) / self.geometry.width_um

    def on_off_ratio(self, vdd: float) -> float:
        """I_on / I_off at supply ``vdd``."""
        return self.i_on(vdd) / self.i_off(vdd)

    def intrinsic_delay(self, vdd: float) -> float:
        """Intrinsic delay metric ``tau = C_g V_dd / I_on`` [s] (Table 2)."""
        return self._cap.c_gate * vdd / self.i_on(vdd)

    def c_gate_eff(self, vdd: float) -> float:
        """Bias-aware gate input capacitance at supply ``vdd`` [F].

        Deep subthreshold supplies see the depletion-limited weak-
        inversion capacitance; nominal supplies the full C_ox-based
        value (see :meth:`CapacitanceModel.c_gate_effective`).
        """
        return self._cap.c_gate_effective(vdd, self.vth(vdd),
                                          self.slope_factor)

    # -- transforms ---------------------------------------------------------

    def with_profile(self, profile: DopingProfile) -> "MOSFET":
        """Copy with a different doping profile."""
        return replace(self, profile=profile)

    def with_geometry(self, geometry: DeviceGeometry) -> "MOSFET":
        """Copy with a different geometry."""
        return replace(self, geometry=geometry)

    def with_width_um(self, width_um: float) -> "MOSFET":
        """Copy resized to ``width_um`` [um]."""
        return replace(
            self, geometry=self.geometry.with_width(width_um * CM_PER_UM)
        )

    def with_vth_offset(self, offset_v: float) -> "MOSFET":
        """Copy with an additive V_th perturbation ``offset_v`` [V]
        (variability studies)."""
        return replace(self, vth_offset_v=offset_v)


def _build(polarity: Polarity, l_poly_nm: float, t_ox_nm: float,
           n_sub_cm3: float, n_p_halo_cm3: float, width_um: float,
           reference_nm: float | None, temperature_k: float) -> MOSFET:
    # Construction is memoised: MOSFETs are immutable, and the scaling
    # root-solves rebuild the same parameter points over and over.  The
    # calibration constants are module globals that the sensitivity
    # context manager overrides in place, so they belong to the key.
    from . import geometry as geometry_mod
    from . import subthreshold as subthreshold_mod
    from . import threshold as threshold_mod

    memoise = device_cache_enabled()
    key = (polarity.value, l_poly_nm, t_ox_nm, n_sub_cm3, n_p_halo_cm3,
           width_um, reference_nm, temperature_k,
           geometry_mod.OVERLAP_FRACTION, threshold_mod.LT_CALIBRATION,
           subthreshold_mod.SCE_PREFACTOR_DEFAULT)
    if memoise:
        cached = device_memo.get(key)
        if cached is not None:
            return cached
    geometry = DeviceGeometry.from_nm(l_poly_nm, width_um=width_um,
                                      reference_nm=reference_nm)
    halo = None
    if n_p_halo_cm3 > 0.0:
        halo = HaloImplant.for_geometry(geometry, n_p_halo_cm3)
    profile = DopingProfile(n_sub_cm3=n_sub_cm3, halo=halo)
    stack = sio2(nm_to_cm(t_ox_nm))
    device = MOSFET(polarity=polarity, geometry=geometry, profile=profile,
                    stack=stack, temperature_k=temperature_k)
    if memoise:
        device_memo.put(key, device)
    return device


def nfet(l_poly_nm: float, t_ox_nm: float, n_sub_cm3: float,
         n_p_halo_cm3: float = 0.0, width_um: float = 1.0,
         reference_nm: float | None = None,
         temperature_k: float = T_ROOM) -> MOSFET:
    """Build an NFET from nanometre-scale inputs.

    Geometry: gate ``l_poly_nm`` [nm], oxide ``t_ox_nm`` [nm],
    ``width_um`` [um], parasitics scaled from ``reference_nm``
    [nm].  Doping: substrate ``n_sub_cm3`` [cm3], halo peak
    ``n_p_halo_cm3`` [cm3].  Evaluated at ``temperature_k`` [K].

    >>> dev = nfet(l_poly_nm=65, t_ox_nm=2.1, n_sub_cm3=1.5e18,
    ...            n_p_halo_cm3=2.1e18)
    >>> 0.06 < dev.ss_v_per_dec < 0.11
    True
    """
    return _build(Polarity.NFET, l_poly_nm, t_ox_nm, n_sub_cm3,
                  n_p_halo_cm3, width_um, reference_nm, temperature_k)


def pfet(l_poly_nm: float, t_ox_nm: float, n_sub_cm3: float,
         n_p_halo_cm3: float = 0.0, width_um: float = 2.0,
         reference_nm: float | None = None,
         temperature_k: float = T_ROOM) -> MOSFET:
    """Build a PFET; the default width compensates hole mobility.

    Geometry: gate ``l_poly_nm`` [nm], oxide ``t_ox_nm`` [nm],
    ``width_um`` [um], parasitics scaled from ``reference_nm``
    [nm].  Doping: substrate ``n_sub_cm3`` [cm3], halo peak
    ``n_p_halo_cm3`` [cm3].  Evaluated at ``temperature_k`` [K].
    """
    return _build(Polarity.PFET, l_poly_nm, t_ox_nm, n_sub_cm3,
                  n_p_halo_cm3, width_um, reference_nm, temperature_k)
