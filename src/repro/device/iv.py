"""Unified weak-to-strong inversion I-V model (EKV-style interpolation).

The circuits in the paper operate both deep in subthreshold
(V_dd = 250 mV, V_th > 400 mV) and at nominal supply (0.9-1.2 V), so a
single current expression must cover both regimes smoothly:

``I_ds = I_spec [ F((V_p - V_s)/v_T) - F((V_p - V_d)/v_T) ]``

with the EKV interpolation function ``F(u) = ln(1 + e^{u/2})^2``, pinch
-off voltage ``V_p = (V_gs - V_th)/m`` and specific current
``I_spec = 2 m mu_eff C_ox v_T^2 W / L_eff``.

* In weak inversion this reduces exactly to the paper's Eq. 1
  (exponential in ``(V_gs - V_th)/(m v_T)`` with the
  ``1 - e^{-V_ds/v_T}`` drain factor).
* In strong inversion it reduces to the square-law with saturation.

Short-channel reality enters through three hooks: the slope factor
``m`` is derived from the *short-channel* Eq. 2(b) slope (so extracted
S_S matches the analytic model), V_th carries DIBL from the quasi-2-D
model, and an inversion-level-weighted velocity-saturation factor
limits the strong-inversion current.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import LN10, T_ROOM, thermal_voltage
from ..errors import ParameterError
from ..materials.mobility import MobilityModel
from ..materials.oxide import GateStack
from .doping import DopingProfile
from .geometry import DeviceGeometry
from .subthreshold import inverse_subthreshold_slope
from .threshold import ThresholdModel


def _ekv_f(u: np.ndarray) -> np.ndarray:
    """EKV interpolation function ``ln(1 + exp(u/2))^2``, overflow-safe."""
    half = 0.5 * u
    # log1p(exp(x)) == x + log1p(exp(-x)) for large x.
    out = np.where(half > 30.0, half + np.log1p(np.exp(-np.abs(half))),
                   np.log1p(np.exp(np.minimum(half, 30.0))))
    return out ** 2


@dataclass(frozen=True)
class IVModel:
    """Compact I-V model bound to one device description.

    All expensive self-consistency (halo <-> depletion width) is
    resolved once at construction; per-call evaluation is vectorised
    numpy, cheap enough for Newton loops and transient integration.

    The model is polarity-agnostic: it always computes an n-channel-
    referenced current, and :class:`repro.device.mosfet.MOSFET` maps
    PFET terminal voltages onto it by symmetry.
    """

    geometry: DeviceGeometry
    profile: DopingProfile
    stack: GateStack
    mobility: MobilityModel = field(default_factory=MobilityModel)
    temperature_k: float = T_ROOM
    gate: str = "n+poly"
    #: Additive V_th perturbation [V] — the hook Monte-Carlo variability
    #: analysis uses to model random dopant fluctuation.
    vth_offset_v: float = 0.0

    # Derived, filled in __post_init__ (frozen dataclass -> object.__setattr__).
    _m: float = field(init=False, repr=False, default=0.0)
    _vth0: float = field(init=False, repr=False, default=0.0)
    _sce_barrier: float = field(init=False, repr=False, default=0.0)
    _sce_e1: float = field(init=False, repr=False, default=0.0)
    _sce_e2: float = field(init=False, repr=False, default=0.0)
    _n_eff: float = field(init=False, repr=False, default=0.0)
    _w_dep: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        tm = ThresholdModel(self.geometry, self.profile, self.stack,
                            self.temperature_k, gate=self.gate)
        n_eff, w_dep = tm.channel_state()
        object.__setattr__(self, "_n_eff", n_eff)
        object.__setattr__(self, "_w_dep", w_dep)
        object.__setattr__(self, "_vth0", tm.vth0())
        # Cache the pieces of delta_vth_sce so vth(vds) is closed-form.
        from ..materials.silicon import built_in_potential, fermi_potential
        from .threshold import N_SOURCE_DRAIN, characteristic_length
        psi_s = 2.0 * fermi_potential(n_eff, self.temperature_k)
        vbi = built_in_potential(N_SOURCE_DRAIN, n_eff, self.temperature_k)
        barrier = max(vbi - psi_s, 0.0)
        lt = characteristic_length(self.stack, w_dep)
        l_eff = self.geometry.l_eff_cm
        object.__setattr__(self, "_sce_barrier", barrier)
        object.__setattr__(self, "_sce_e1", np.exp(-l_eff / (2.0 * lt)))
        object.__setattr__(self, "_sce_e2", np.exp(-l_eff / lt))
        # Slope factor from the short-channel Eq. 2(b) slope so that
        # S_S extracted from this model's I-V matches the analytic S_S.
        ss = inverse_subthreshold_slope(self.stack, w_dep, l_eff,
                                        self.temperature_k)
        vt = thermal_voltage(self.temperature_k)
        object.__setattr__(self, "_m", ss / (LN10 * vt))

    # -- cached device state ------------------------------------------------

    @property
    def n_eff_cm3(self) -> float:
        """Self-consistent effective channel doping [cm^-3]."""
        return self._n_eff

    @property
    def w_dep_cm(self) -> float:
        """Self-consistent depletion width [cm]."""
        return self._w_dep

    @property
    def slope_factor(self) -> float:
        """Effective slope factor m (includes short-channel degradation)."""
        return self._m

    @property
    def ss_v_per_decade(self) -> float:
        """Inverse subthreshold slope [V/dec] (equals Eq. 2(b))."""
        return LN10 * thermal_voltage(self.temperature_k) * self._m

    def vth(self, vds: float | np.ndarray = 0.05) -> float | np.ndarray:
        """Threshold voltage at drain bias ``vds`` [V] (DIBL included)."""
        vds_arr = np.maximum(np.asarray(vds, dtype=float), 0.0)
        b = self._sce_barrier
        dv = ((2.0 * b + vds_arr) * self._sce_e1
              + 2.0 * np.sqrt(b * (b + vds_arr)) * self._sce_e2)
        out = self._vth0 + self.vth_offset_v - dv
        return float(out) if np.isscalar(vds) else out

    # -- current -------------------------------------------------------------

    def i_spec(self, vgs: float | np.ndarray) -> float | np.ndarray:
        """Specific current ``2 m mu_eff C_ox v_T^2 W/L_eff`` [A]."""
        vt = thermal_voltage(self.temperature_k)
        e_eff = np.maximum(np.asarray(vgs, dtype=float) + self._vth0, 0.0) / (
            6.0 * self.stack.eot_cm
        )
        mu = self.mobility.low_field(self._n_eff) / (
            1.0 + (e_eff / 6.7e5) ** 1.6
            if self.mobility.carrier == "electron"
            else 1.0 + (e_eff / 7.0e5) ** 1.0
        )
        cox = self.stack.capacitance_per_area
        return (2.0 * self._m * mu * cox * vt ** 2
                * self.geometry.aspect_ratio)

    def i0(self) -> float:
        """Eq. 1 prefactor equivalent: the current at V_gs = V_th [A]."""
        return float(self.i_spec(self._vth0)) * np.log(2.0) ** 2

    def ids(self, vgs, vds, vth_shift_v=0.0):
        """Drain current [A] for NFET-referenced terminal voltages.

        Accepts scalars or broadcastable arrays.  ``vds`` must be >= 0
        (the model is source-referenced; the MOSFET facade handles the
        swap for reverse operation).

        ``vth_shift_v`` [V] is an additive V_th perturbation applied per
        evaluation point; an array here is equivalent to evaluating a
        :meth:`vth`-offset copy of the device at each element (the
        offset enters only through V_th, never ``i_spec``), which is
        what lets Monte-Carlo trials share one device object.
        """
        vgs_arr = np.asarray(vgs, dtype=float)
        vds_arr = np.asarray(vds, dtype=float)
        shift_arr = np.asarray(vth_shift_v, dtype=float)
        if np.any(vds_arr < -1e-12):
            raise ParameterError("ids() requires vds >= 0; swap terminals")
        vds_arr = np.maximum(vds_arr, 0.0)
        vt = thermal_voltage(self.temperature_k)
        vth = self.vth(vds_arr) + shift_arr
        vp = (vgs_arr - vth) / self._m
        i_f = _ekv_f(vp / vt)
        i_r = _ekv_f((vp - vds_arr) / vt)
        ispec = self.i_spec(vgs_arr)
        current = ispec * (i_f - i_r)
        # Velocity saturation, weighted by inversion level so that weak
        # inversion (diffusion-dominated) is unaffected.
        severity = i_f / (1.0 + i_f)
        v_drive = np.maximum(vp, 2.0 * vt)
        v_dsat = vds_arr * v_drive / (vds_arr + v_drive + 1e-12)
        mu_over = self.mobility.low_field(self._n_eff)
        vsat_term = (mu_over * v_dsat) / (self.mobility.vsat()
                                          * self.geometry.l_eff_cm)
        current = current / (1.0 + severity * vsat_term)
        if np.isscalar(vgs) and np.isscalar(vds) and shift_arr.ndim == 0:
            return float(current)
        return current

    def i_off(self, vdd: float) -> float:
        """Off-state leakage ``I(V_gs=0, V_ds=V_dd)`` [A]."""
        return float(self.ids(0.0, vdd))

    def i_on(self, vdd: float) -> float:
        """On-current ``I(V_gs=V_ds=V_dd)`` [A]."""
        return float(self.ids(vdd, vdd))

    def id_vg_curve(self, vds: float, vgs_grid: np.ndarray) -> np.ndarray:
        """Transfer curve I(V_gs) at fixed ``vds``; returns currents [A]."""
        return np.asarray(self.ids(np.asarray(vgs_grid, dtype=float),
                                   np.full_like(np.asarray(vgs_grid,
                                                           dtype=float), vds)))
