"""Device geometry.

The paper's convention (Section 2.2): ``L_poly`` is the etched length of
the poly gate; every other physical dimension except ``T_ox`` —
source/drain junction depth, lateral source/drain diffusion (gate
overlap), halo dimensions — scales *in proportion to* ``L_poly`` under
the super-V_th strategy, and by the fixed 30 %/generation node factor
under the sub-V_th strategy (where ``L_poly`` itself scales slower).

:class:`DeviceGeometry` therefore stores the junction/overlap dimensions
explicitly and provides two constructors:

* :meth:`DeviceGeometry.proportional` — dimensions tied to ``L_poly``
  (super-V_th convention),
* the plain constructor — dimensions chosen independently
  (sub-V_th convention).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..constants import CM_PER_UM, nm_to_cm
from ..errors import ParameterError

#: Gate/source-drain overlap per side, as a fraction of the reference
#: gate length.  With 0.10 per side, L_eff = 0.8 * L_poly under the
#: proportional convention — calibrated (together with the short-
#: channel constants in `threshold` and `subthreshold`) so the scaled
#: device family tracks the paper's simulated S_S/V_th trajectories.
OVERLAP_FRACTION: float = 0.10

#: Source/drain junction depth as a fraction of the reference length.
JUNCTION_DEPTH_FRACTION: float = 0.50

#: Lateral extent of the drain/source diffusion beyond the gate edge,
#: as a fraction of the reference length (sets junction capacitance).
EXTENSION_FRACTION: float = 1.0

#: Gate (poly) height as a fraction of the reference length; sets the
#: outer-fringe capacitance.
GATE_HEIGHT_FRACTION: float = 0.8


@dataclass(frozen=True)
class DeviceGeometry:
    """Physical dimensions of a bulk MOSFET (all lengths in cm).

    Parameters
    ----------
    l_poly_cm:
        Etched physical gate length.
    width_cm:
        Device width.  Currents are often normalised per µm of width;
        the default width is 1 µm so device currents read directly in
        A/µm.
    junction_depth_cm:
        Source/drain junction depth ``X_j``.
    overlap_cm:
        Gate-to-source/drain overlap per side (``L_ov``); the effective
        channel length is ``L_poly - 2 * L_ov``.
    extension_cm:
        Lateral extent of the source/drain diffusion beyond the gate
        edge; only affects parasitic junction capacitance.
    gate_height_cm:
        Poly gate height; only affects outer fringe capacitance.
    """

    l_poly_cm: float
    width_cm: float = CM_PER_UM
    junction_depth_cm: float = 0.0
    overlap_cm: float = 0.0
    extension_cm: float = 0.0
    gate_height_cm: float = 0.0

    def __post_init__(self) -> None:
        if self.l_poly_cm <= 0.0:
            raise ParameterError(f"l_poly must be positive, got {self.l_poly_cm}")
        if self.width_cm <= 0.0:
            raise ParameterError(f"width must be positive, got {self.width_cm}")
        for name in ("junction_depth_cm", "overlap_cm", "extension_cm",
                     "gate_height_cm"):
            if getattr(self, name) < 0.0:
                raise ParameterError(f"{name} must be >= 0")
        if self.l_eff_cm <= 0.0:
            raise ParameterError(
                "overlap consumes the whole gate: "
                f"L_poly={self.l_poly_cm:.3g} cm, L_ov={self.overlap_cm:.3g} cm"
            )

    # -- constructors --------------------------------------------------

    @classmethod
    def proportional(cls, l_poly_cm: float, width_cm: float = CM_PER_UM,
                     reference_cm: float | None = None) -> "DeviceGeometry":
        """Geometry with all dimensions proportional to a reference length:
        gate ``l_poly_cm`` [cm], device ``width_cm`` [cm].

        ``reference_cm`` [cm] defaults to ``l_poly_cm`` (the super-V_th
        convention).  Passing a different reference implements the
        sub-V_th convention, where junctions/overlap follow the *node*
        scaling while the gate is drawn longer.
        """
        ref = l_poly_cm if reference_cm is None else reference_cm
        if ref <= 0.0:
            raise ParameterError("reference length must be positive")
        return cls(
            l_poly_cm=l_poly_cm,
            width_cm=width_cm,
            junction_depth_cm=JUNCTION_DEPTH_FRACTION * ref,
            overlap_cm=OVERLAP_FRACTION * ref,
            extension_cm=EXTENSION_FRACTION * ref,
            gate_height_cm=GATE_HEIGHT_FRACTION * ref,
        )

    @classmethod
    def from_nm(cls, l_poly_nm: float, width_um: float = 1.0,
                reference_nm: float | None = None) -> "DeviceGeometry":
        """Proportional geometry from ``l_poly_nm`` / ``reference_nm``
        [nm] and ``width_um`` [um] inputs (convenience)."""
        ref = None if reference_nm is None else nm_to_cm(reference_nm)
        return cls.proportional(
            nm_to_cm(l_poly_nm), width_cm=width_um * CM_PER_UM, reference_cm=ref
        )

    # -- derived quantities ---------------------------------------------

    @property
    def l_eff_cm(self) -> float:
        """Effective (electrical) channel length ``L_poly - 2 L_ov``."""
        return self.l_poly_cm - 2.0 * self.overlap_cm

    @property
    def l_poly_nm(self) -> float:
        """Physical gate length in nm (for reports)."""
        return self.l_poly_cm / nm_to_cm(1.0)

    @property
    def l_eff_nm(self) -> float:
        """Effective channel length in nm (for reports)."""
        return self.l_eff_cm / nm_to_cm(1.0)

    @property
    def width_um(self) -> float:
        """Device width in µm (for reports)."""
        return self.width_cm / CM_PER_UM

    @property
    def aspect_ratio(self) -> float:
        """W / L_eff, the current-scaling aspect ratio."""
        return self.width_cm / self.l_eff_cm

    # -- transforms ------------------------------------------------------

    def with_gate_length(self, l_poly_cm: float,
                         rescale_parasitics: bool = False) -> "DeviceGeometry":
        """Return a copy with gate length ``l_poly_cm`` [cm].

        When ``rescale_parasitics`` is true, junction depth, overlap,
        extension and gate height are re-derived proportionally from the
        new length (super-V_th convention); otherwise they are kept,
        which is the sub-V_th convention of drawing a longer gate on an
        otherwise fixed process.
        """
        if rescale_parasitics:
            return DeviceGeometry.proportional(l_poly_cm, width_cm=self.width_cm)
        return replace(self, l_poly_cm=l_poly_cm)

    def with_width(self, width_cm: float) -> "DeviceGeometry":
        """Return a copy with device width ``width_cm`` [cm]."""
        return replace(self, width_cm=width_cm)

    def scaled(self, factor: float) -> "DeviceGeometry":
        """Uniformly scale every dimension (width included) by ``factor``."""
        if factor <= 0.0:
            raise ParameterError("scaling factor must be positive")
        return DeviceGeometry(
            l_poly_cm=self.l_poly_cm * factor,
            width_cm=self.width_cm * factor,
            junction_depth_cm=self.junction_depth_cm * factor,
            overlap_cm=self.overlap_cm * factor,
            extension_cm=self.extension_cm * factor,
            gate_height_cm=self.gate_height_cm * factor,
        )
