"""Process corners: global (die-to-die) variants of a device pair.

Complementing the *local* RDF statistics in :mod:`repro.variability`,
foundries sign off designs at global corners — correlated shifts of
oxide thickness and channel doping that move whole wafers fast (FF),
slow (SS) or typical (TT).  Sub-V_th designs are notoriously
corner-sensitive: delay is exponential in V_th, so the FF/SS delay
ratio spans an order of magnitude where a super-V_th design sees tens
of percent.

The corner model shifts T_ox by ``tox_sigma_pct`` and the channel
doping by ``doping_sigma_pct`` (3-sigma magnitudes typical of the
technology generation), in the correlated directions that make both
devices fast or slow together.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from ..errors import ParameterError
from ..materials.oxide import GateStack
from .mosfet import MOSFET

#: Default 3-sigma global variation magnitudes.
TOX_SIGMA_PCT: float = 4.0
DOPING_SIGMA_PCT: float = 5.0


class Corner(enum.Enum):
    """Standard global process corners."""

    TT = "tt"
    FF = "ff"
    SS = "ss"


#: Corner -> (T_ox shift sign, doping shift sign).  A fast device has
#: thinner oxide (more drive per volt of gate overdrive) and lighter
#: channel doping (lower V_th).
_SIGNS: dict[Corner, tuple[float, float]] = {
    Corner.TT: (0.0, 0.0),
    Corner.FF: (-1.0, -1.0),
    Corner.SS: (+1.0, +1.0),
}


@dataclass(frozen=True)
class CornerSpec:
    """Magnitudes of the global shifts (3-sigma, percent)."""

    tox_sigma_pct: float = TOX_SIGMA_PCT
    doping_sigma_pct: float = DOPING_SIGMA_PCT

    def __post_init__(self) -> None:
        if self.tox_sigma_pct < 0.0 or self.doping_sigma_pct < 0.0:
            raise ParameterError("corner sigmas must be >= 0")
        if self.tox_sigma_pct >= 50.0 or self.doping_sigma_pct >= 50.0:
            raise ParameterError("corner sigmas above 50% are unphysical")


def at_corner(device: MOSFET, corner: Corner,
              spec: CornerSpec | None = None) -> MOSFET:
    """Return the device shifted to a global corner.

    >>> from repro.device import nfet
    >>> dev = nfet(65, 2.1, 1.2e18, 1.5e18)
    >>> at_corner(dev, Corner.FF).vth(0.1) < dev.vth(0.1)
    True
    """
    spec = spec or CornerSpec()
    tox_sign, dope_sign = _SIGNS[corner]
    if tox_sign == 0 and dope_sign == 0:
        return device
    tox_factor = 1.0 + tox_sign * spec.tox_sigma_pct / 100.0
    dope_factor = 1.0 + dope_sign * spec.doping_sigma_pct / 100.0

    stack = GateStack(
        thickness_cm=device.stack.thickness_cm * tox_factor,
        rel_permittivity=device.stack.rel_permittivity,
        name=device.stack.name,
    )
    profile = device.profile.with_substrate(
        device.profile.n_sub_cm3 * dope_factor
    )
    if device.profile.halo is not None:
        profile = replace(
            profile,
            halo=device.profile.halo.scaled(1.0, peak_factor=dope_factor),
        )
    return MOSFET(
        polarity=device.polarity,
        geometry=device.geometry,
        profile=profile,
        stack=stack,
        temperature_k=device.temperature_k,
        vth_offset_v=device.vth_offset_v,
    )


def corner_report(device: MOSFET, vdd: float,
                  spec: CornerSpec | None = None
                  ) -> dict[str, dict[str, float]]:
    """Drive/leakage/V_th at all three corners.

    Returns ``{corner: {"vth_mv", "ion_a_per_um", "ioff_a_per_um"}}``.
    """
    if vdd <= 0.0:
        raise ParameterError("vdd must be positive")
    report: dict[str, dict[str, float]] = {}
    for corner in Corner:
        shifted = at_corner(device, corner, spec)
        report[corner.value] = {
            "vth_mv": 1000.0 * shifted.vth(vdd),
            "ion_a_per_um": shifted.i_on_per_um(vdd),
            "ioff_a_per_um": shifted.i_off_per_um(vdd),
        }
    return report


def ff_ss_delay_spread(device: MOSFET, vdd: float,
                       spec: CornerSpec | None = None) -> float:
    """FF-to-SS drive-current ratio at ``vdd`` — the corner delay spread.

    In subthreshold this is exponential in the corner V_th shift; at
    nominal supply it is a far tamer linear-ish factor.  The contrast
    is the classic sub-V_th sign-off headache.
    """
    ff = at_corner(device, Corner.FF, spec)
    ss = at_corner(device, Corner.SS, spec)
    return ff.i_on_per_um(vdd) / ss.i_on_per_um(vdd)
