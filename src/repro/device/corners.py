"""Process corners: global (die-to-die) variants of a device pair.

Complementing the *local* RDF statistics in :mod:`repro.variability`,
foundries sign off designs at global corners — correlated shifts of
oxide thickness and channel doping that move whole wafers fast (FF),
slow (SS) or typical (TT).  Sub-V_th designs are notoriously
corner-sensitive: delay is exponential in V_th, so the FF/SS delay
ratio spans an order of magnitude where a super-V_th design sees tens
of percent.

The corner model shifts T_ox by ``tox_sigma_pct`` and the channel
doping by ``doping_sigma_pct`` (3-sigma magnitudes typical of the
technology generation), in the correlated directions that make both
devices fast or slow together.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from ..constants import CM_PER_NM
from ..errors import ParameterError
from ..materials.oxide import GateStack
from .batch import BatchDeviceMetrics, ParameterStack
from .mosfet import MOSFET, Polarity

#: Default 3-sigma global variation magnitudes.
TOX_SIGMA_PCT: float = 4.0
DOPING_SIGMA_PCT: float = 5.0


class Corner(enum.Enum):
    """Standard global process corners."""

    TT = "tt"
    FF = "ff"
    SS = "ss"


#: Corner -> (T_ox shift sign, doping shift sign).  A fast device has
#: thinner oxide (more drive per volt of gate overdrive) and lighter
#: channel doping (lower V_th).
_SIGNS: dict[Corner, tuple[float, float]] = {
    Corner.TT: (0.0, 0.0),
    Corner.FF: (-1.0, -1.0),
    Corner.SS: (+1.0, +1.0),
}


@dataclass(frozen=True)
class CornerSpec:
    """Magnitudes of the global shifts (3-sigma, percent)."""

    tox_sigma_pct: float = TOX_SIGMA_PCT
    doping_sigma_pct: float = DOPING_SIGMA_PCT

    def __post_init__(self) -> None:
        if self.tox_sigma_pct < 0.0 or self.doping_sigma_pct < 0.0:
            raise ParameterError("corner sigmas must be >= 0")
        if self.tox_sigma_pct >= 50.0 or self.doping_sigma_pct >= 50.0:
            raise ParameterError("corner sigmas above 50% are unphysical")


def at_corner(device: MOSFET, corner: Corner,
              spec: CornerSpec | None = None) -> MOSFET:
    """Return the device shifted to a global corner.

    >>> from repro.device import nfet
    >>> dev = nfet(65, 2.1, 1.2e18, 1.5e18)
    >>> at_corner(dev, Corner.FF).vth(0.1) < dev.vth(0.1)
    True
    """
    spec = spec or CornerSpec()
    tox_sign, dope_sign = _SIGNS[corner]
    if tox_sign == 0 and dope_sign == 0:
        return device
    tox_factor = 1.0 + tox_sign * spec.tox_sigma_pct / 100.0
    dope_factor = 1.0 + dope_sign * spec.doping_sigma_pct / 100.0

    stack = GateStack(
        thickness_cm=device.stack.thickness_cm * tox_factor,
        rel_permittivity=device.stack.rel_permittivity,
        name=device.stack.name,
    )
    profile = device.profile.with_substrate(
        device.profile.n_sub_cm3 * dope_factor
    )
    if device.profile.halo is not None:
        profile = replace(
            profile,
            halo=device.profile.halo.scaled(1.0, peak_factor=dope_factor),
        )
    return MOSFET(
        polarity=device.polarity,
        geometry=device.geometry,
        profile=profile,
        stack=stack,
        temperature_k=device.temperature_k,
        vth_offset_v=device.vth_offset_v,
    )


def corner_grid(devices: Sequence[MOSFET], corners: Sequence[Corner],
                spec: CornerSpec | None = None) -> BatchDeviceMetrics:
    """All ``devices x corners`` variants as one stacked evaluation.

    Builds a :class:`~repro.device.batch.ParameterStack` over the full
    product grid — lanes ordered device-major, so lane ``i * len(corners)
    + j`` is ``devices[i]`` at ``corners[j]`` — and evaluates it in one
    batched metrics pass.  The stack inputs are reconstructed from each
    device's own geometry/stack/profile and shifted by the same
    ``tox_factor`` / ``dope_factor`` multipliers :func:`at_corner`
    applies, so grid metrics agree with the shifted scalar devices to
    the batch layer's equivalence budget.
    """
    spec = spec or CornerSpec()
    devices = tuple(devices)
    corners = tuple(corners)
    if not devices or not corners:
        raise ParameterError("corner grid needs devices and corners")
    for dev in devices:
        if dev.vth_offset_v:
            raise ParameterError(
                "corner grids cannot carry per-device V_th offsets"
            )
        if dev.temperature_k != devices[0].temperature_k:
            raise ParameterError("corner grid devices must share T")

    signs = np.array([_SIGNS[c] for c in corners], dtype=float)
    tox_factor = np.tile(1.0 + signs[:, 0] * spec.tox_sigma_pct / 100.0,
                         len(devices))
    dope_factor = np.tile(1.0 + signs[:, 1] * spec.doping_sigma_pct / 100.0,
                          len(devices))

    def per_device(values: Sequence[float]) -> np.ndarray:
        return np.repeat(np.asarray(values, dtype=float), len(corners))

    from . import geometry as geometry_mod
    stack = ParameterStack(
        l_poly_nm=per_device([d.geometry.l_poly_nm for d in devices]),
        t_ox_nm=per_device([d.stack.thickness_cm / CM_PER_NM
                            for d in devices]) * tox_factor,
        is_nfet=np.repeat([d.polarity is Polarity.NFET for d in devices],
                          len(corners)),
        width_um=per_device([d.geometry.width_um for d in devices]),
        reference_nm=per_device([
            d.geometry.overlap_cm / geometry_mod.OVERLAP_FRACTION / CM_PER_NM
            for d in devices
        ]),
        temperature_k=devices[0].temperature_k,
    )
    return stack.metrics(
        per_device([d.profile.n_sub_cm3 for d in devices]) * dope_factor,
        per_device([d.profile.n_p_halo_cm3 for d in devices]) * dope_factor,
    )


def corner_report(device: MOSFET, vdd: float,
                  spec: CornerSpec | None = None
                  ) -> dict[str, dict[str, float]]:
    """Drive/leakage/V_th at all three corners.

    Returns ``{corner: {"vth_mv", "ion_a_per_um", "ioff_a_per_um"}}``.
    """
    if vdd <= 0.0:
        raise ParameterError("vdd must be positive")
    report: dict[str, dict[str, float]] = {}
    for corner in Corner:
        shifted = at_corner(device, corner, spec)
        report[corner.value] = {
            "vth_mv": 1000.0 * shifted.vth(vdd),
            "ion_a_per_um": shifted.i_on_per_um(vdd),
            "ioff_a_per_um": shifted.i_off_per_um(vdd),
        }
    return report


def ff_ss_delay_spread(device: MOSFET, vdd: float,
                       spec: CornerSpec | None = None,
                       solver: str = "batch") -> float:
    """FF-to-SS drive-current ratio at ``vdd`` — the corner delay spread.

    In subthreshold this is exponential in the corner V_th shift; at
    nominal supply it is a far tamer linear-ish factor.  The contrast
    is the classic sub-V_th sign-off headache.

    ``solver="batch"`` (default) evaluates both corners in one
    two-lane :func:`corner_grid` pass; ``solver="sequential"`` keeps
    the per-corner scalar devices as the correctness oracle.
    """
    # Imported lazily: the device package re-exports this module, so a
    # module-level import of the circuit layer would be circular.
    from ..circuit.batch import validate_solver
    validate_solver(solver)
    if solver == "sequential":
        ff = at_corner(device, Corner.FF, spec)
        ss = at_corner(device, Corner.SS, spec)
        return ff.i_on_per_um(vdd) / ss.i_on_per_um(vdd)
    ion = corner_grid((device,), (Corner.FF, Corner.SS),
                      spec).i_on_per_um(vdd)
    return float(ion[0] / ion[1])
