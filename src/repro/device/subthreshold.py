"""Weak-inversion (subthreshold) current and inverse subthreshold slope.

Implements the paper's Eq. 1 (weak-inversion drain current) and
Eq. 2(b) (short-channel inverse subthreshold slope):

``S_S = 2.3 v_T (1 + 3 T_ox / W_dep)
        (1 + (11 T_ox / W_dep) exp(-pi L_eff / 2 (W_dep + 3 T_ox)))``

The first parenthesis is the long-channel slope factor ``m``; the
second is the short-channel degradation that grows as ``L_eff`` shrinks
relative to ``T_ox`` and ``W_dep`` — the paper's central device-level
observation.
"""

from __future__ import annotations

import math

from ..constants import LN10, T_ROOM, thermal_voltage
from ..errors import ParameterError
from ..materials.oxide import GateStack

#: The "3 T_ox" factor is eps_si/eps_ox; keep the paper's constant name.
_EPS_RATIO = 3.0

#: Textbook (Taur & Ning / paper Eq. 2b) short-channel slope prefactor,
#: derived for uniformly doped channels.
TAUR_NING_PREFACTOR: float = 11.0

#: Calibrated short-channel slope prefactor.  Halo-engineered channels
#: confine source/drain field penetration, so the uniform-channel "11"
#: overstates swing degradation for the paper's devices; 8.0 balances
#: two calibration targets: the super-V_th family's S_S degradation
#: between the 90nm and 32nm nodes (paper: ~11 %; model: ~19 %) and a
#: short-channel S_S(L) sensitivity strong enough that the sub-V_th
#: optimiser lengthens the gate at the nanometer nodes (the paper's
#: Fig. 7/8 behaviour).  Pass ``prefactor=TAUR_NING_PREFACTOR`` to
#: recover the textbook form (the contrast is an ablation bench).
SCE_PREFACTOR_DEFAULT: float = 8.0


def slope_factor_from_widths(t_ox_eot_cm: float, w_dep_cm: float) -> float:
    """Long-channel slope factor ``m = 1 + 3 T_ox / W_dep`` from
    ``t_ox_eot_cm`` [cm] and ``w_dep_cm`` [cm]."""
    if t_ox_eot_cm <= 0.0 or w_dep_cm <= 0.0:
        raise ParameterError("T_ox and W_dep must be positive")
    return 1.0 + _EPS_RATIO * t_ox_eot_cm / w_dep_cm


def short_channel_slope_degradation(t_ox_eot_cm: float, w_dep_cm: float,
                                    l_eff_cm: float,
                                    prefactor: float | None = None
                                    ) -> float:
    """The second parenthesis of Eq. 2(b) (>= 1), from
    ``t_ox_eot_cm`` / ``w_dep_cm`` / ``l_eff_cm`` [cm].

    ``prefactor=None`` resolves the module-level
    :data:`SCE_PREFACTOR_DEFAULT` at call time, so calibration-
    sensitivity studies can patch it (see
    :mod:`repro.scaling.sensitivity`).
    """
    if prefactor is None:
        prefactor = SCE_PREFACTOR_DEFAULT
    if l_eff_cm <= 0.0:
        raise ParameterError("channel length must be positive")
    if prefactor < 0.0:
        raise ParameterError("prefactor must be >= 0")
    scale = w_dep_cm + _EPS_RATIO * t_ox_eot_cm
    exponent = -math.pi * l_eff_cm / (2.0 * scale)
    return 1.0 + prefactor * (t_ox_eot_cm / w_dep_cm) * math.exp(exponent)


def inverse_subthreshold_slope(stack: GateStack, w_dep_cm: float,
                               l_eff_cm: float | None = None,
                               temperature_k: float = T_ROOM,
                               prefactor: float | None = None
                               ) -> float:
    """Inverse subthreshold slope S_S [V/decade] per the paper's Eq. 2(b),
    from ``w_dep_cm`` [cm] and ``l_eff_cm`` [cm] at ``temperature_k``
    [K].

    Pass ``l_eff_cm=None`` for the long-channel limit (Eq. 2a with
    ``m = 1 + 3 T_ox/W_dep``).

    >>> from repro.materials.oxide import sio2
    >>> s = inverse_subthreshold_slope(sio2(2.1e-7), 2.4e-6, 45e-7)
    >>> 0.070 < s < 0.095    # ~80 mV/dec for a 90nm-class device
    True
    """
    vt = thermal_voltage(temperature_k)
    eot = stack.eot_cm
    m = slope_factor_from_widths(eot, w_dep_cm)
    slope = LN10 * vt * m
    if l_eff_cm is not None:
        slope *= short_channel_slope_degradation(eot, w_dep_cm, l_eff_cm,
                                                 prefactor)
    return slope


def slope_mv_per_decade(slope_v_per_decade: float) -> float:
    """Convenience: ``slope_v_per_decade`` [v/decade] -> mV/dec for
    reports."""
    return 1000.0 * slope_v_per_decade


def subthreshold_current(i0_a: float, vgs: float, vds: float, vth: float,
                         m: float, temperature_k: float = T_ROOM) -> float:
    """Weak-inversion drain current per the paper's Eq. 1 [A], from
    prefactor ``i0_a`` [A] at ``temperature_k`` [K].

    ``I = I_0 exp((V_gs - V_th)/(m v_T)) (1 - exp(-V_ds / v_T))``

    where ``I_0 = (W/L) mu_eff C_dep v_T^2`` is pre-computed by the
    caller (see :class:`repro.device.iv.IVModel.i0`).
    """
    if i0_a < 0.0:
        raise ParameterError("I_0 must be >= 0")
    if m < 1.0:
        raise ParameterError(f"slope factor must be >= 1, got {m}")
    vt = thermal_voltage(temperature_k)
    drive = math.exp((vgs - vth) / (m * vt))
    drain = 1.0 - math.exp(-vds / vt) if vds >= 0.0 else -(
        1.0 - math.exp(vds / vt)
    )
    return i0_a * drive * drain


def on_off_ratio(i_on_a: float, i_off_a: float) -> float:
    """``i_on_a`` [A] over ``i_off_a`` [A]; guards against
    non-physical inputs."""
    if i_off_a <= 0.0:
        raise ParameterError("I_off must be positive")
    if i_on_a < 0.0:
        raise ParameterError("I_on must be >= 0")
    return i_on_a / i_off_a


def decades_of_drive(vdd: float, slope_v_per_decade: float) -> float:
    """Number of current decades a supply of ``vdd`` buys:
    V_dd / ``slope_v_per_decade`` [v/decade].

    The paper uses the identity ``S_S = V_dd / log10(I_on/I_off)`` to
    rewrite delay and energy in scaling-parameter form (Eq. 6).
    """
    if slope_v_per_decade <= 0.0:
        raise ParameterError("slope must be positive")
    if vdd < 0.0:
        raise ParameterError("vdd must be >= 0")
    return vdd / slope_v_per_decade
