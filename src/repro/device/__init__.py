"""Device layer: geometry, doping, electrostatics, and compact I-V models.

The classes here form the paper's "device model" (Section 2.2): a bulk
MOSFET described by four scaling parameters — physical gate length
``L_poly``, oxide thickness ``T_ox``, substrate doping ``N_sub`` and
peak halo doping ``N_p,halo`` — plus the supply voltage ``V_dd``.
"""

from .geometry import DeviceGeometry
from .doping import DopingProfile, HaloImplant
from .electrostatics import (
    depletion_width,
    body_factor,
    slope_factor,
    flatband_voltage,
)
from .threshold import (
    vth_long_channel,
    characteristic_length,
    delta_vth_sce,
    ThresholdModel,
)
from .subthreshold import (
    inverse_subthreshold_slope,
    subthreshold_current,
    on_off_ratio,
)
from .capacitance import CapacitanceModel
from .iv import IVModel
from .mosfet import MOSFET, Polarity, nfet, pfet
from .corners import Corner, CornerSpec, at_corner, corner_report

__all__ = [
    "DeviceGeometry",
    "DopingProfile",
    "HaloImplant",
    "depletion_width",
    "body_factor",
    "slope_factor",
    "flatband_voltage",
    "vth_long_channel",
    "characteristic_length",
    "delta_vth_sce",
    "ThresholdModel",
    "inverse_subthreshold_slope",
    "subthreshold_current",
    "on_off_ratio",
    "CapacitanceModel",
    "IVModel",
    "MOSFET",
    "Polarity",
    "nfet",
    "pfet",
    "Corner",
    "CornerSpec",
    "at_corner",
    "corner_report",
]
