"""Channel doping profiles: uniform substrate plus 2-D Gaussian halos.

Following the paper (Section 2.2) and refs [3][12] therein, the channel
doping is modelled as a uniform substrate concentration ``N_sub`` with a
pair of two-dimensional Gaussian halo implants of peak concentration
``N_p,halo`` superimposed at the source and drain channel edges.  The
*net* halo doping quoted in the paper's tables is
``N_halo = N_sub + N_p,halo``.

Two reductions of the 2-D profile feed the rest of the model:

* :meth:`DopingProfile.effective_channel_doping` — the average doping
  seen by the channel depletion region for a given effective channel
  length.  As the channel shortens the two halo Gaussians occupy a
  growing fraction of the channel, so the effective doping — and with
  it the threshold voltage — *rolls up*, which is exactly the mechanism
  a halo exists to provide (it cancels short-channel V_th roll-off).
* :meth:`DopingProfile.vertical_profile` — a 1-D vertical doping cut
  used by the numerical Poisson solver in :mod:`repro.tcad`.

Both reductions are exact integrals of the Gaussian model, not fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import ParameterError
from .geometry import DeviceGeometry

#: Halo lateral straggle as a fraction of the junction depth.
HALO_SIGMA_X_FRACTION: float = 0.35
#: Halo vertical straggle as a fraction of the junction depth.
HALO_SIGMA_Y_FRACTION: float = 0.45
#: Halo peak depth as a fraction of the junction depth.
HALO_DEPTH_FRACTION: float = 0.60

_SQRT_2PI = math.sqrt(2.0 * math.pi)


@dataclass(frozen=True)
class HaloImplant:
    """One pair of Gaussian halo pockets (lengths in cm, doping in cm^-3).

    The pockets sit at the source- and drain-side channel edges
    (lateral positions 0 and ``L_eff``), centred at depth ``depth_cm``.

    Parameters
    ----------
    peak_cm3:
        Peak concentration ``N_p,halo`` of each pocket.
    sigma_x_cm:
        Lateral (along-channel) Gaussian straggle.
    sigma_y_cm:
        Vertical (into-substrate) Gaussian straggle.
    depth_cm:
        Depth of the pocket peak below the Si/SiO2 interface.
    """

    peak_cm3: float
    sigma_x_cm: float
    sigma_y_cm: float
    depth_cm: float

    def __post_init__(self) -> None:
        if self.peak_cm3 < 0.0:
            raise ParameterError(f"halo peak must be >= 0, got {self.peak_cm3}")
        if self.sigma_x_cm <= 0.0 or self.sigma_y_cm <= 0.0:
            raise ParameterError("halo straggles must be positive")
        if self.depth_cm < 0.0:
            raise ParameterError("halo depth must be >= 0")

    @classmethod
    def for_geometry(cls, geometry: DeviceGeometry, peak_cm3: float
                     ) -> "HaloImplant":
        """Halo pockets sized from the geometry's junction depth, with
        peak doping ``peak_cm3`` [cm3]."""
        xj = geometry.junction_depth_cm
        if xj <= 0.0:
            raise ParameterError(
                "geometry has no junction depth; build it with "
                "DeviceGeometry.proportional() or set junction_depth_cm"
            )
        return cls(
            peak_cm3=peak_cm3,
            sigma_x_cm=HALO_SIGMA_X_FRACTION * xj,
            sigma_y_cm=HALO_SIGMA_Y_FRACTION * xj,
            depth_cm=HALO_DEPTH_FRACTION * xj,
        )

    def lateral_average(self, l_eff_cm: float) -> float:
        """Average lateral halo weight over a channel of ``l_eff_cm``
        [cm] — dimensionless times the peak.

        The two pockets contribute
        ``(peak / L) * integral_0^L [exp(-x^2/2s^2) + exp(-(x-L)^2/2s^2)] dx``
        which evaluates to ``peak * sqrt(2*pi) * s * erf(L/(sqrt(2)*s)) / L``.
        As ``L -> 0`` this tends to ``2 * peak`` (fully merged pockets);
        as ``L -> inf`` it tends to zero.
        """
        if l_eff_cm <= 0.0:
            raise ParameterError("channel length must be positive")
        s = self.sigma_x_cm
        return (self.peak_cm3 * _SQRT_2PI * s
                * math.erf(l_eff_cm / (math.sqrt(2.0) * s)) / l_eff_cm)

    def vertical_weight(self, depth_cm: np.ndarray | float) -> np.ndarray | float:
        """Vertical Gaussian weight (0..1) at depth(s) ``depth_cm`` [cm]."""
        y = np.asarray(depth_cm, dtype=float)
        w = np.exp(-((y - self.depth_cm) ** 2) / (2.0 * self.sigma_y_cm ** 2))
        if np.isscalar(depth_cm):
            return float(w)
        return w

    def vertical_average(self, depth_limit_cm: float) -> float:
        """Average vertical weight over depths 0..``depth_limit_cm`` [cm].

        ``(1/W) * integral_0^W exp(-(y-y0)^2 / 2*sy^2) dy`` in closed form
        via the error function.
        """
        if depth_limit_cm <= 0.0:
            raise ParameterError("depth limit must be positive")
        s = self.sigma_y_cm
        y0 = self.depth_cm
        a = (0.0 - y0) / (math.sqrt(2.0) * s)
        b = (depth_limit_cm - y0) / (math.sqrt(2.0) * s)
        integral = s * math.sqrt(math.pi / 2.0) * (math.erf(b) - math.erf(a))
        return integral / depth_limit_cm

    def scaled(self, length_factor: float, peak_factor: float = 1.0
               ) -> "HaloImplant":
        """Scale pocket dimensions and/or peak concentration."""
        if length_factor <= 0.0 or peak_factor <= 0.0:
            raise ParameterError("scale factors must be positive")
        return HaloImplant(
            peak_cm3=self.peak_cm3 * peak_factor,
            sigma_x_cm=self.sigma_x_cm * length_factor,
            sigma_y_cm=self.sigma_y_cm * length_factor,
            depth_cm=self.depth_cm * length_factor,
        )


@dataclass(frozen=True)
class DopingProfile:
    """Substrate + halo doping description of one device.

    Parameters
    ----------
    n_sub_cm3:
        Uniform substrate (well) doping ``N_sub``.
    halo:
        Optional halo implant pair.  ``None`` models a halo-free
        (uniformly doped) device.
    """

    n_sub_cm3: float
    halo: HaloImplant | None = None

    def __post_init__(self) -> None:
        if self.n_sub_cm3 <= 0.0:
            raise ParameterError(f"N_sub must be positive, got {self.n_sub_cm3}")

    @property
    def n_halo_net_cm3(self) -> float:
        """Net halo doping ``N_halo = N_sub + N_p,halo`` (paper's Table 2/3)."""
        peak = 0.0 if self.halo is None else self.halo.peak_cm3
        return self.n_sub_cm3 + peak

    @property
    def n_p_halo_cm3(self) -> float:
        """Peak halo doping ``N_p,halo`` (0 when halo-free)."""
        return 0.0 if self.halo is None else self.halo.peak_cm3

    # -- reductions -------------------------------------------------------

    def effective_channel_doping(self, l_eff_cm: float,
                                 depth_limit_cm: float | None = None) -> float:
        """Channel-averaged doping ``N_eff(L)`` [cm3].

        Averages the 2-D profile laterally over the ``l_eff_cm`` [cm]
        channel and vertically over ``depth_limit_cm`` [cm] (typically
        the depletion width).  When no depth limit is given the vertical average is
        taken at the halo's most effective depth (weight 1), which
        over-weights the halo slightly and is useful as a conservative
        starting point for fixed-point iteration with the depletion
        width.
        """
        if self.halo is None:
            return self.n_sub_cm3
        lateral = self.halo.lateral_average(l_eff_cm)
        if depth_limit_cm is None:
            vertical = 1.0
        else:
            vertical = self.halo.vertical_average(depth_limit_cm)
        return self.n_sub_cm3 + lateral * vertical

    def vertical_profile(self, depths_cm: np.ndarray, l_eff_cm: float
                         ) -> np.ndarray:
        """1-D vertical doping cut N(y) [cm3] at depths ``depths_cm``
        [cm], averaged laterally over the ``l_eff_cm`` [cm] channel.

        This is the profile handed to the 1-D Poisson solver: at each
        depth the halo contribution is its vertical Gaussian weight
        times the lateral channel average.
        """
        depths = np.asarray(depths_cm, dtype=float)
        profile = np.full_like(depths, self.n_sub_cm3)
        if self.halo is not None:
            lateral = self.halo.lateral_average(l_eff_cm)
            profile = profile + lateral * np.asarray(
                self.halo.vertical_weight(depths)
            )
        return profile

    def raster2d(self, x_cm: np.ndarray, y_cm: np.ndarray, l_eff_cm: float
                 ) -> np.ndarray:
        """Full 2-D doping map N(x, y) on a lateral x vertical grid.

        ``x_cm`` [cm] runs along the channel (0 at the source edge,
        ``l_eff_cm`` [cm] at the drain edge), ``y_cm`` [cm] into the
        substrate.
        Used for visualisation (the paper's Fig. 1b) and for sanity
        checks of the analytic reductions against brute-force averages.
        """
        x = np.asarray(x_cm, dtype=float)[:, None]
        y = np.asarray(y_cm, dtype=float)[None, :]
        field = np.full((x.shape[0], y.shape[1]), self.n_sub_cm3)
        if self.halo is not None:
            h = self.halo
            lat = (np.exp(-(x ** 2) / (2.0 * h.sigma_x_cm ** 2))
                   + np.exp(-((x - l_eff_cm) ** 2) / (2.0 * h.sigma_x_cm ** 2)))
            vert = np.exp(-((y - h.depth_cm) ** 2) / (2.0 * h.sigma_y_cm ** 2))
            field = field + h.peak_cm3 * lat * vert
        return field

    # -- transforms -------------------------------------------------------

    def with_substrate(self, n_sub_cm3: float) -> "DopingProfile":
        """Return a copy with substrate doping ``n_sub_cm3`` [cm3]."""
        return replace(self, n_sub_cm3=n_sub_cm3)

    def with_halo_peak(self, peak_cm3: float) -> "DopingProfile":
        """Return a copy with halo peak ``peak_cm3`` [cm3] (halo
        geometry preserved)."""
        if self.halo is None:
            raise ParameterError(
                "profile has no halo; construct one with HaloImplant first"
            )
        return replace(self, halo=replace(self.halo, peak_cm3=peak_cm3))

    def without_halo(self) -> "DopingProfile":
        """Return a halo-free copy (ablation studies)."""
        return replace(self, halo=None)
