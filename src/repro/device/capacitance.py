"""Gate and parasitic capacitances.

``C_g`` in the paper's intrinsic-delay metric ``tau = C_g V_dd / I_on``
"includes gate/drain-source overlap"; the circuit-level load ``C_L``
additionally includes fringe and drain-junction components.  All
formulas are the standard compact-model ones; the important property
for the reproduction is how each term scales with ``L_poly``, ``T_ox``
and doping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import EPS_OX, EPS_SI, Q, T_ROOM
from ..errors import ParameterError
from ..materials.oxide import GateStack
from ..materials.silicon import built_in_potential
from .doping import DopingProfile
from .geometry import DeviceGeometry
from .threshold import N_SOURCE_DRAIN


@dataclass(frozen=True)
class CapacitanceModel:
    """Capacitances of one device (all results in farads).

    Parameters mirror :class:`~repro.device.threshold.ThresholdModel`;
    the junction capacitance needs the substrate doping to compute the
    zero-bias depletion capacitance of the drain diffusion.
    """

    geometry: DeviceGeometry
    profile: DopingProfile
    stack: GateStack
    temperature_k: float = T_ROOM

    @property
    def c_ox_per_area(self) -> float:
        """Areal gate-oxide capacitance [F/cm^2]."""
        return self.stack.capacitance_per_area

    @property
    def c_gate_intrinsic(self) -> float:
        """Intrinsic gate capacitance ``C_ox W L_eff`` [F]."""
        g = self.geometry
        return self.c_ox_per_area * g.width_cm * g.l_eff_cm

    @property
    def c_overlap(self) -> float:
        """Total (both sides) gate/source-drain overlap capacitance [F]."""
        g = self.geometry
        return 2.0 * self.c_ox_per_area * g.width_cm * g.overlap_cm

    @property
    def c_fringe(self) -> float:
        """Outer fringe capacitance, both sides [F].

        ``C_f = 2 W (2 eps_ox / pi) ln(1 + t_gate / T_ox)`` — the
        classic conformal-mapping estimate.
        """
        g = self.geometry
        t_gate = g.gate_height_cm
        if t_gate <= 0.0:
            return 0.0
        return (2.0 * g.width_cm * (2.0 * EPS_OX / math.pi)
                * math.log(1.0 + t_gate / self.stack.thickness_cm))

    @property
    def c_gate(self) -> float:
        """Strong-inversion gate input capacitance [F].

        Intrinsic + overlap + fringe; the right load for nominal-V_dd
        operation and the paper's ``tau = C_g V_dd/I_on`` metric.
        """
        return self.c_gate_intrinsic + self.c_overlap + self.c_fringe

    def c_gate_weak(self, slope_factor: float) -> float:
        """Weak-inversion (subthreshold) gate input capacitance [F].

        Below threshold the channel never inverts, so the intrinsic
        component is the series combination of C_ox and the depletion
        capacitance: ``C_ox (m-1)/m`` per area, a factor ~3-4 smaller
        than C_ox.  This collapse of the area term — while overlap and
        fringe survive — is what makes the sub-V_th strategy's longer
        gates nearly free in switched energy.
        """
        if slope_factor <= 1.0:
            raise ParameterError("slope factor must exceed 1")
        series = (slope_factor - 1.0) / slope_factor
        return (self.c_gate_intrinsic * series + self.c_overlap
                + self.c_fringe)

    def c_gate_effective(self, vdd, vth, slope_factor: float):
        """Bias-aware gate capacitance, blending weak and strong limits [F].

        A logistic blend in ``(V_dd - V_th)`` with a few-thermal-voltage
        transition width; deep subthreshold recovers
        :meth:`c_gate_weak`, nominal supply recovers :attr:`c_gate`.
        Accepts scalar or array ``vdd``/``vth`` (the batched energy
        sweep evaluates a whole supply grid at once).
        """
        vdd_arr = np.asarray(vdd, dtype=float)
        if np.any(vdd_arr <= 0.0):
            raise ParameterError("vdd must be positive")
        vt = 0.02585 * (self.temperature_k / 300.0)
        width = 3.0 * slope_factor * vt
        x = (vdd_arr - np.asarray(vth, dtype=float)) / width
        weight = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        weak = self.c_gate_weak(slope_factor)
        out = weak + weight * (self.c_gate - weak)
        return float(out) if np.isscalar(vdd) else out

    def c_junction(self, bias_v: float = 0.0) -> float:
        """Drain-junction depletion capacitance [F] at reverse bias
        ``bias_v`` [V].

        Area component over the drain diffusion footprint plus a
        sidewall component along the width, both from the abrupt
        one-sided junction formula
        ``C_j'' = sqrt(q eps_si N_sub / (2 (V_bi + V_R)))``.
        """
        if bias_v < 0.0:
            raise ParameterError("reverse bias must be >= 0")
        g = self.geometry
        n_sub = self.profile.n_sub_cm3
        vbi = built_in_potential(N_SOURCE_DRAIN, n_sub, self.temperature_k)
        cj_area = math.sqrt(Q * EPS_SI * n_sub / (2.0 * (vbi + bias_v)))
        area = g.width_cm * g.extension_cm
        sidewall = g.width_cm * g.junction_depth_cm
        return cj_area * (area + sidewall)

    def c_drain(self, bias_v: float = 0.0) -> float:
        """Drain-node self-loading at reverse bias ``bias_v`` [V]:
        junction + drain-side overlap/fringe [F]."""
        return (self.c_junction(bias_v) + 0.5 * self.c_overlap
                + 0.5 * self.c_fringe)

    def c_load_fanout(self, fanout: int = 1, receiver: "CapacitanceModel | None"
                      = None, bias_v: float = 0.0) -> float:
        """Load on the drain node when driving ``fanout`` identical gates
        [F], with the junction at reverse bias ``bias_v`` [V].

        ``C_L = fanout * C_g(receiver) + C_drain(self)``; the receiver
        defaults to this device (FO1 self-loading).
        """
        if fanout < 0:
            raise ParameterError("fanout must be >= 0")
        rx = self if receiver is None else receiver
        return fanout * rx.c_gate + self.c_drain(bias_v)
