"""One-dimensional MOS electrostatics.

Closed-form quantities for a uniformly (effectively) doped MOS system:
maximum depletion width, body factor, depletion capacitance, the
subthreshold slope factor ``m = 1 + C_dep/C_ox`` and the flat-band
voltage of an n+/p+ poly gate.  These are the building blocks for both
the analytic threshold/slope models and the self-consistency loop that
couples the halo profile to the depletion depth.
"""

from __future__ import annotations

import math

from ..constants import EPS_OX_REL, EPS_SI, EPS_SI_REL, Q, T_ROOM, thermal_voltage
from ..errors import ParameterError
from ..materials.oxide import GateStack
from ..materials.silicon import bandgap_ev, fermi_potential


def surface_potential_threshold(doping_cm3: float,
                                temperature_k: float = T_ROOM) -> float:
    """Surface potential [V] at the classical threshold condition
    ``2 phi_F``, for body doping ``doping_cm3`` [cm3] at
    ``temperature_k`` [K]."""
    return 2.0 * fermi_potential(doping_cm3, temperature_k)


def depletion_width(doping_cm3: float, surface_potential_v: float | None = None,
                    temperature_k: float = T_ROOM) -> float:
    """Depletion width [cm] at surface potential
    ``surface_potential_v`` [V], body doping ``doping_cm3`` [cm3],
    ``temperature_k`` [K].

    Defaults to the maximum depletion width at threshold
    (``psi_s = 2 phi_F``): ``W_dep = sqrt(2 eps_si psi_s / (q N))``.
    """
    if doping_cm3 <= 0.0:
        raise ParameterError(f"doping must be positive, got {doping_cm3}")
    psi = (surface_potential_threshold(doping_cm3, temperature_k)
           if surface_potential_v is None else surface_potential_v)
    if psi <= 0.0:
        raise ParameterError(f"surface potential must be positive, got {psi}")
    return math.sqrt(2.0 * EPS_SI * psi / (Q * doping_cm3))


def depletion_capacitance(doping_cm3: float,
                          surface_potential_v: float | None = None,
                          temperature_k: float = T_ROOM) -> float:
    """Depletion capacitance per area ``C_dep = eps_si / W_dep``
    [F/cm2] at ``surface_potential_v`` [V], body doping
    ``doping_cm3`` [cm3], ``temperature_k`` [K]."""
    return EPS_SI / depletion_width(doping_cm3, surface_potential_v,
                                    temperature_k)


def body_factor(doping_cm3: float, stack: GateStack) -> float:
    """Body-effect coefficient ``gamma = sqrt(2 q eps_si N) / C_ox``
    [V^0.5] for body doping ``doping_cm3`` [cm3]."""
    if doping_cm3 <= 0.0:
        raise ParameterError(f"doping must be positive, got {doping_cm3}")
    return math.sqrt(2.0 * Q * EPS_SI * doping_cm3) / stack.capacitance_per_area


def slope_factor(doping_cm3: float, stack: GateStack,
                 temperature_k: float = T_ROOM) -> float:
    """Subthreshold slope factor ``m = 1 + C_dep / C_ox`` for body
    doping ``doping_cm3`` [cm3] at ``temperature_k`` [K].

    Using the EOT, ``C_dep/C_ox = (eps_si/eps_ox) * T_ox / W_dep =
    3 * T_ox / W_dep`` — the ``3 T_ox / W_dep`` term of the paper's
    Eq. 2(b).
    """
    wdep = depletion_width(doping_cm3, temperature_k=temperature_k)
    ratio = (EPS_SI_REL / EPS_OX_REL) * stack.eot_cm / wdep
    return 1.0 + ratio


def flatband_voltage(doping_cm3: float, temperature_k: float = T_ROOM,
                     gate: str = "n+poly") -> float:
    """Flat-band voltage [V] of a degenerate poly gate over a body
    doped ``doping_cm3`` [cm3] at ``temperature_k`` [K].

    For an n+ poly gate on a p-type body,
    ``V_FB = -(E_g/2 + phi_F)``; a p+ gate on an n-type body gives the
    mirrored ``+(E_g/2 + phi_F)``.  Oxide fixed charge is neglected.
    """
    phi_f = fermi_potential(doping_cm3, temperature_k)
    half_gap = bandgap_ev(temperature_k) / 2.0
    if gate == "n+poly":
        return -(half_gap + phi_f)
    if gate == "p+poly":
        return half_gap + phi_f
    raise ParameterError(f"unknown gate type {gate!r}")


def self_consistent_channel_doping(profile, l_eff_cm: float,
                                   temperature_k: float = T_ROOM,
                                   tol: float = 1e-4,
                                   max_iter: int = 60) -> tuple[float, float]:
    """Solve the N_eff <-> W_dep fixed point for a halo'd channel of
    length ``l_eff_cm`` [cm] at ``temperature_k`` [K].

    The halo contribution to the channel-average doping depends on the
    depth over which the average is taken (the depletion width), which
    itself depends on the doping.  Iterate
    ``N_eff -> W_dep(N_eff) -> N_eff(W_dep)`` to convergence.

    Returns
    -------
    (n_eff_cm3, w_dep_cm):
        The converged effective doping and depletion width.
    """
    n_eff = profile.effective_channel_doping(l_eff_cm, depth_limit_cm=None)
    w_dep = depletion_width(n_eff, temperature_k=temperature_k)
    for _ in range(max_iter):
        n_next = profile.effective_channel_doping(l_eff_cm, depth_limit_cm=w_dep)
        w_next = depletion_width(n_next, temperature_k=temperature_k)
        if abs(n_next - n_eff) <= tol * n_eff:
            return n_next, w_next
        n_eff, w_dep = n_next, w_next
    # Fixed point is a contraction for physical parameters; if we get
    # here the parameters are extreme but the last iterate is still a
    # usable approximation.
    return n_eff, w_dep


def effective_vertical_field(vgs: float, vth: float, stack: GateStack) -> float:
    """Effective transverse field for mobility degradation [V/cm].

    The standard ``E_eff ~ (V_gs + V_th) / (6 T_ox)`` approximation for
    electrons (Taur & Ning Eq. 3.53-style), floored at zero.
    """
    eot = stack.eot_cm
    return max((vgs + vth), 0.0) / (6.0 * eot)


def thermal_voltage_v(temperature_k: float = T_ROOM) -> float:
    """``kT/q`` [V] at ``temperature_k`` [K] — alias of
    :func:`repro.constants.thermal_voltage` for device code."""
    return thermal_voltage(temperature_k)
