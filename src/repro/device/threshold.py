"""Threshold-voltage model with halo roll-up and short-channel roll-off.

Following the decomposition the paper adopts from Yu et al. [11]:

``V_th(L, V_ds) = V_th0(N_eff(L)) - dV_th,SCE(L, V_ds)``

* the *intrinsic* long-channel threshold ``V_th0`` rises as the halo
  pockets occupy a larger fraction of a shorter channel (roll-up,
  captured through the channel-averaged effective doping), and
* the *short-channel* correction ``dV_th,SCE`` (charge sharing + DIBL)
  pulls the threshold down with an exponential dependence on
  ``L_eff / l_t`` where ``l_t = sqrt((eps_si/eps_ox) T_ox W_dep)`` is the
  quasi-2-D characteristic length (Liu et al.).

In a well-optimised device the two cancel and V_th is flat in both
``L_poly`` and ``V_ds`` — which is exactly what the super-V_th
optimiser in :mod:`repro.scaling.supervth` arranges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import EPS_OX_REL, EPS_SI_REL, T_ROOM
from ..errors import ParameterError
from ..materials.oxide import GateStack
from ..materials.silicon import built_in_potential, fermi_potential
from .doping import DopingProfile
from .electrostatics import (
    body_factor,
    flatband_voltage,
    self_consistent_channel_doping,
)
from .geometry import DeviceGeometry

#: Source/drain doping used for built-in potentials [cm^-3].
N_SOURCE_DRAIN: float = 1.0e20

#: Calibration multiplier on the quasi-2-D characteristic length.
#: The textbook l_t = sqrt((eps_si/eps_ox) T_ox W_dep) assumes a
#: uniformly doped channel; halo/retrograde engineering confines the
#: source/drain field penetration and shortens the effective decay
#: length.  0.45 is calibrated so the super-V_th family's V_th,sat
#: growth (403 -> 461 mV in the paper's Table 2) is tracked.
LT_CALIBRATION: float = 0.45


def vth_long_channel(n_eff_cm3: float, stack: GateStack,
                     temperature_k: float = T_ROOM,
                     gate: str = "n+poly") -> float:
    """Long-channel threshold ``V_FB + 2 phi_F + gamma sqrt(2 phi_F)``
    [V] for channel doping ``n_eff_cm3`` [cm3] at ``temperature_k``
    [K]."""
    phi_f = fermi_potential(n_eff_cm3, temperature_k)
    gamma = body_factor(n_eff_cm3, stack)
    vfb = flatband_voltage(n_eff_cm3, temperature_k, gate=gate)
    return vfb + 2.0 * phi_f + gamma * math.sqrt(2.0 * phi_f)


def characteristic_length(stack: GateStack, w_dep_cm: float) -> float:
    """Quasi-2-D characteristic length ``l_t`` [cm], from depletion
    width ``w_dep_cm`` [cm].

    ``l_t = LT_CALIBRATION * sqrt((eps_si / eps_ox) * T_ox * W_dep)``;
    the lateral decay length of source/drain field penetration under
    the gate (see :data:`LT_CALIBRATION` for the halo-device
    calibration).
    """
    if w_dep_cm <= 0.0:
        raise ParameterError("depletion width must be positive")
    return LT_CALIBRATION * math.sqrt(
        (EPS_SI_REL / EPS_OX_REL) * stack.eot_cm * w_dep_cm
    )


def delta_vth_sce(l_eff_cm: float, stack: GateStack, w_dep_cm: float,
                  n_eff_cm3: float, vds: float,
                  temperature_k: float = T_ROOM) -> float:
    """Short-channel V_th reduction (charge sharing + DIBL) [V] for a
    channel of ``l_eff_cm`` [cm], depletion width ``w_dep_cm`` [cm],
    doping ``n_eff_cm3`` [cm3], at ``temperature_k`` [K].

    Liu's quasi-2-D result, first and second order terms:

    ``dV = [2 (V_bi - psi_s) + V_ds] exp(-L/2 l_t)
           + 2 sqrt((V_bi - psi_s)(V_bi - psi_s + V_ds)) exp(-L/l_t)``

    Positive ``dV`` means the threshold is *lowered*.
    """
    if l_eff_cm <= 0.0:
        raise ParameterError("channel length must be positive")
    if vds < 0.0:
        raise ParameterError("vds must be >= 0 for the NFET-referenced model")
    psi_s = 2.0 * fermi_potential(n_eff_cm3, temperature_k)
    vbi = built_in_potential(N_SOURCE_DRAIN, n_eff_cm3, temperature_k)
    barrier = max(vbi - psi_s, 0.0)
    lt = characteristic_length(stack, w_dep_cm)
    first = (2.0 * barrier + vds) * math.exp(-l_eff_cm / (2.0 * lt))
    second = 2.0 * math.sqrt(barrier * (barrier + vds)) * math.exp(-l_eff_cm / lt)
    return first + second


@dataclass(frozen=True)
class ThresholdModel:
    """Threshold model bound to one geometry / doping / gate stack.

    The model resolves the halo <-> depletion-width self-consistency
    once at construction-time values and exposes V_th as a function of
    drain bias and (optionally) an overridden channel length, which is
    how V_th roll-off curves are produced.
    """

    geometry: DeviceGeometry
    profile: DopingProfile
    stack: GateStack
    temperature_k: float = T_ROOM
    gate: str = "n+poly"

    def channel_state(self, l_eff_cm: float | None = None) -> tuple[float, float]:
        """Return ``(N_eff, W_dep)`` at length ``l_eff_cm`` [cm]
        (native when None)."""
        l_eff = self.geometry.l_eff_cm if l_eff_cm is None else l_eff_cm
        return self_consistent_channel_doping(
            self.profile, l_eff, temperature_k=self.temperature_k
        )

    def n_eff(self, l_eff_cm: float | None = None) -> float:
        """Effective channel doping [cm3] at length ``l_eff_cm`` [cm]."""
        return self.channel_state(l_eff_cm)[0]

    def w_dep(self, l_eff_cm: float | None = None) -> float:
        """Depletion width [cm] at length ``l_eff_cm`` [cm]."""
        return self.channel_state(l_eff_cm)[1]

    def vth0(self, l_eff_cm: float | None = None) -> float:
        """Long-channel component of V_th at length ``l_eff_cm`` [cm]
        (includes halo roll-up) [V]."""
        n_eff, _ = self.channel_state(l_eff_cm)
        return vth_long_channel(n_eff, self.stack, self.temperature_k,
                                gate=self.gate)

    def vth(self, vds: float = 0.05, l_eff_cm: float | None = None) -> float:
        """Threshold voltage [V] at the given drain bias and length
        ``l_eff_cm`` [cm]."""
        l_eff = self.geometry.l_eff_cm if l_eff_cm is None else l_eff_cm
        n_eff, w_dep = self.channel_state(l_eff)
        v0 = vth_long_channel(n_eff, self.stack, self.temperature_k,
                              gate=self.gate)
        dv = delta_vth_sce(l_eff, self.stack, w_dep, n_eff, vds,
                           self.temperature_k)
        return v0 - dv

    def dibl_mv_per_v(self, vdd: float, vds_lin: float = 0.05) -> float:
        """DIBL coefficient ``(V_th,lin - V_th,sat) / (V_dd - V_ds,lin)``
        in mV/V."""
        if vdd <= vds_lin:
            raise ParameterError("vdd must exceed the linear-region vds")
        dv = self.vth(vds_lin) - self.vth(vdd)
        return 1000.0 * dv / (vdd - vds_lin)

    def rolloff_curve(self, l_eff_values_cm, vds: float = 0.05):
        """V_th versus channel lengths ``l_eff_values_cm`` [cm]
        (roll-off/roll-up characteristic).

        Returns a list of ``(l_eff_cm, vth_v)`` pairs.
        """
        return [(float(l), self.vth(vds, l_eff_cm=float(l)))
                for l in l_eff_values_cm]
