"""Scaling figures of merit (the paper's Eqs. 4-8).

At the energy-optimal supply ``V_dd = V_min = K_Vmin S_S`` the paper
reduces delay and energy to functions of scaling parameters only:

* delay    ``t_p  ∝ C_L S_S / I_off``        (Eq. 6)
* energy   ``E    ∝ C_L S_S^2``              (Eq. 8a/8b)

so with I_off pinned (the sub-V_th strategy) the delay factor becomes
``C_L S_S``.  These factors drive the sub-V_th optimiser and are
validated against full simulations in the Fig. 6/8 experiments.
"""

from __future__ import annotations

from ..errors import ParameterError

#: V_min structure constant: V_min = K_VMIN * S_S.  For a 30-stage
#: inverter chain with alpha = 0.1 the literature (paper refs [17][18])
#: places V_min a bit above 3 decades of swing; the constant is a
#: circuit property, independent of scaling parameters.
K_VMIN_DEFAULT: float = 3.3


def intrinsic_delay(c_gate_f: float, vdd: float, i_on_a: float) -> float:
    """Device intrinsic delay ``tau = C_g V_dd / I_on`` [s] (Table 2)."""
    if c_gate_f <= 0.0 or vdd <= 0.0 or i_on_a <= 0.0:
        raise ParameterError("tau inputs must be positive")
    return c_gate_f * vdd / i_on_a


def delay_factor(c_load_f: float, ss_v_per_dec: float,
                 i_off_a: float | None = None) -> float:
    """Eq. 6 delay factor: ``C_L S_S / I_off`` (or ``C_L S_S`` at fixed I_off)."""
    if c_load_f <= 0.0 or ss_v_per_dec <= 0.0:
        raise ParameterError("C_L and S_S must be positive")
    if i_off_a is None:
        return c_load_f * ss_v_per_dec
    if i_off_a <= 0.0:
        raise ParameterError("I_off must be positive")
    return c_load_f * ss_v_per_dec / i_off_a


def energy_factor(c_load_f: float, ss_v_per_dec: float) -> float:
    """Eq. 8 energy factor ``C_L S_S^2``."""
    if c_load_f <= 0.0 or ss_v_per_dec <= 0.0:
        raise ParameterError("C_L and S_S must be positive")
    return c_load_f * ss_v_per_dec ** 2


def vmin_estimate(ss_v_per_dec: float, k_vmin: float = K_VMIN_DEFAULT) -> float:
    """The refs-[17][18] proportionality ``V_min = K_Vmin S_S`` [V]."""
    if ss_v_per_dec <= 0.0:
        raise ParameterError("S_S must be positive")
    if k_vmin <= 0.0:
        raise ParameterError("K_Vmin must be positive")
    return k_vmin * ss_v_per_dec


def delay_at_vmin(c_load_f: float, ss_v_per_dec: float, i_off_a: float,
                  k_vmin: float = K_VMIN_DEFAULT, k_d: float = 0.69) -> float:
    """Full Eq. 6 delay (not just the factor) at V_dd = V_min [s]."""
    if i_off_a <= 0.0:
        raise ParameterError("I_off must be positive")
    vmin = vmin_estimate(ss_v_per_dec, k_vmin)
    i_on = i_off_a * 10.0 ** (vmin / ss_v_per_dec)
    return k_d * c_load_f * vmin / i_on


def per_generation_change(values: list[float]) -> list[float]:
    """Fractional change between successive generations.

    ``[(v1-v0)/v0, (v2-v1)/v1, ...]``; negative entries are
    improvements for delay/energy-like metrics.
    """
    if len(values) < 2:
        raise ParameterError("need at least two generations")
    if any(v == 0 for v in values[:-1]):
        raise ParameterError("cannot normalise by a zero value")
    return [(b - a) / a for a, b in zip(values[:-1], values[1:])]


def geometric_mean_change(values: list[float]) -> float:
    """Mean per-generation ratio ``(v_last / v_first)^(1/(n-1)) - 1``."""
    if len(values) < 2:
        raise ParameterError("need at least two generations")
    if values[0] <= 0.0 or values[-1] <= 0.0:
        raise ParameterError("values must be positive")
    n_gen = len(values) - 1
    return (values[-1] / values[0]) ** (1.0 / n_gen) - 1.0
