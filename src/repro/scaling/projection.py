"""Projection beyond the paper's 32nm horizon (22nm / 16nm).

The paper closes: "with very simple process modifications, sub-V_th
circuits may be able to reliably scale deep into the nanometer
regime."  This module extrapolates the roadmap two more generations
with the same rates (30 %/gen L_poly, 10 %/gen T_ox, 100 mV/gen V_dd,
+25 %/gen super-V_th leakage budget) and runs both strategy optimisers
there, so the claim can be tested rather than asserted.

The super-V_th flow is expected to strain: at L_poly ≈ 15 nm and
T_ox ≈ 1.4 nm the halo solve needs extreme doping (or fails outright),
while the sub-V_th flow keeps trading gate length for slope.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizationError
from .roadmap import (
    IOFF_GROWTH_PER_GEN,
    L_POLY_SHRINK_PER_GEN,
    NodeSpec,
    T_OX_SHRINK_PER_GEN,
    node_by_name,
)
from .strategy import DeviceDesign
from .subvth import SubVthOptimizer
from .supervth import build_super_vth_design

#: Names given to the projected nodes, in order past 32nm.
PROJECTED_NODE_NAMES: tuple[str, ...] = ("22nm", "16nm")


def projected_node(generations_past_32nm: int) -> NodeSpec:
    """Extrapolate the roadmap ``generations_past_32nm`` nodes onward.

    >>> projected_node(1).name
    '22nm'
    >>> round(projected_node(1).l_poly_nm, 1)
    15.4
    """
    if generations_past_32nm < 1:
        raise ValueError("need at least one generation past 32nm")
    base = node_by_name("32nm")
    g = generations_past_32nm
    name = (PROJECTED_NODE_NAMES[g - 1]
            if g <= len(PROJECTED_NODE_NAMES) else f"gen+{g}")
    return NodeSpec(
        name=name,
        node_nm=base.node_nm * 0.7 ** g,
        l_poly_nm=base.l_poly_nm * (1.0 - L_POLY_SHRINK_PER_GEN) ** g,
        t_ox_nm=base.t_ox_nm * (1.0 - T_OX_SHRINK_PER_GEN) ** g,
        vdd_nominal=max(base.vdd_nominal - 0.1 * g, 0.5),
        ioff_target_a_per_um=(base.ioff_target_a_per_um
                              * (1.0 + IOFF_GROWTH_PER_GEN) ** g),
        generation=base.generation + g,
    )


@dataclass(frozen=True)
class ProjectionOutcome:
    """What happened when a strategy was pushed to a projected node.

    ``design`` is None when the optimiser could not satisfy its
    constraints (the strategy "ran out" at that node); ``failure``
    holds the reason.
    """

    node: NodeSpec
    strategy: str
    design: DeviceDesign | None
    failure: str = ""

    @property
    def feasible(self) -> bool:
        """Whether the strategy produced a device at this node."""
        return self.design is not None


def project_super_vth(generations: int = 2) -> list[ProjectionOutcome]:
    """Run the super-V_th flow on the projected nodes."""
    outcomes = []
    for g in range(1, generations + 1):
        node = projected_node(g)
        try:
            design = build_super_vth_design(node)
            outcomes.append(ProjectionOutcome(node, "super-vth", design))
        except OptimizationError as exc:
            outcomes.append(ProjectionOutcome(node, "super-vth", None,
                                              failure=str(exc)))
    return outcomes


def project_sub_vth(generations: int = 2) -> list[ProjectionOutcome]:
    """Run the sub-V_th flow on the projected nodes."""
    outcomes = []
    for g in range(1, generations + 1):
        node = projected_node(g)
        try:
            design = SubVthOptimizer(node).optimize()
            outcomes.append(ProjectionOutcome(node, "sub-vth", design))
        except OptimizationError as exc:
            outcomes.append(ProjectionOutcome(node, "sub-vth", None,
                                              failure=str(exc)))
    return outcomes
