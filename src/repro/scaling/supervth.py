"""The super-V_th (performance-driven) scaling flow — paper Fig. 1(c).

Per node, with ``L_poly``, ``T_ox`` and ``V_dd`` fixed by the roadmap,
the remaining knobs ``N_sub`` and ``N_p,halo`` are selected by the
paper's iterative heuristic:

1. ``N_sub`` is set by the **long-channel** device (where halo doping
   is largely unnecessary): find the substrate doping at which a long
   version of the device just meets the leakage budget.
2. ``N_p,halo`` is set by the **short-channel** device: find the halo
   peak at which the actual (short) device meets the same budget —
   i.e. the halo exactly cancels the short-channel V_th roll-off the
   long-channel doping cannot.

Delay is the objective and leakage the constraint; since sub- and
super-V_th drive both increase monotonically as V_th falls, the
delay-minimal design under an I_off budget is the one where the budget
binds — which is precisely what the two root-solves enforce.  The
result reproduces the paper's Table 2 trends: doping and V_th,sat grow
each generation while S_S degrades.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.optimize import brentq

from .. import perf
from ..circuit.batch import validate_solver
from ..device.mosfet import MOSFET, Polarity, nfet as build_nfet, pfet as build_pfet
from ..errors import OptimizationError
from .roadmap import NodeSpec, roadmap_nodes
from .strategy import DeviceDesign, DeviceFamily

#: Gate-length multiple used for the "long channel" reference device.
LONG_CHANNEL_MULTIPLE: float = 8.0
#: Substrate-doping search bounds [cm^-3].
N_SUB_BOUNDS: tuple[float, float] = (5e16, 1.5e19)
#: Halo-peak search bounds [cm^-3].
N_HALO_BOUNDS: tuple[float, float] = (1e15, 8e19)
#: Default PFET width multiple (mobility compensation).
PFET_WIDTH_RATIO: float = 2.0


def _builder(polarity: Polarity):
    return build_nfet if polarity is Polarity.NFET else build_pfet


@dataclass(frozen=True)
class SuperVthOptimizer:
    """Solves the Fig. 1(c) doping selection for one node and polarity.

    Parameters
    ----------
    node:
        Roadmap inputs (L_poly, T_ox, V_dd, I_off budget).
    polarity:
        Device type to optimise.
    width_um:
        Device width; the leakage budget is per µm so the width only
        affects absolute currents.
    """

    node: NodeSpec
    polarity: Polarity = Polarity.NFET
    width_um: float = 1.0

    def _device(self, n_sub: float, n_p_halo: float,
                l_poly_nm: float | None = None) -> MOSFET:
        build = _builder(self.polarity)
        return build(
            l_poly_nm=self.node.l_poly_nm if l_poly_nm is None else l_poly_nm,
            t_ox_nm=self.node.t_ox_nm,
            n_sub_cm3=n_sub,
            n_p_halo_cm3=n_p_halo,
            width_um=self.width_um,
            # Parasitics (junction depth, overlap, halo geometry) follow
            # the *short* device's L_poly — the super-V_th proportional
            # convention — even for the long-channel reference.
            reference_nm=self.node.l_poly_nm,
        )

    def _ioff_per_um(self, device: MOSFET) -> float:
        return device.i_off_per_um(self.node.vdd_nominal)

    # -- the two root solves -------------------------------------------------

    def solve_substrate(self, solver: str = "batch") -> float:
        """Step 1: N_sub from the long-channel leakage condition."""
        validate_solver(solver)
        if solver == "batch":
            from . import batch as batch_mod
            return batch_mod.super_vth_substrate(
                self.node, self.polarity, self.width_um)
        target = self.node.ioff_target_a_per_um
        long_l = LONG_CHANNEL_MULTIPLE * self.node.l_poly_nm

        def residual(log_n: float) -> float:
            perf.bump("optimizer.brentq_residual_evals")
            dev = self._device(10.0 ** log_n, 0.0, l_poly_nm=long_l)
            return math.log(self._ioff_per_um(dev) / target)

        lo, hi = (math.log10(b) for b in N_SUB_BOUNDS)
        r_lo, r_hi = residual(lo), residual(hi)
        if r_lo < 0.0:
            raise OptimizationError(
                f"{self.node.name}: long-channel leakage below target even "
                "at minimum doping — budget unreachable from above"
            )
        if r_hi > 0.0:
            raise OptimizationError(
                f"{self.node.name}: cannot meet leakage budget "
                f"{target:.3g} A/um with N_sub <= {N_SUB_BOUNDS[1]:.3g}"
            )
        return 10.0 ** brentq(residual, lo, hi, xtol=1e-12)

    def solve_halo(self, n_sub: float, solver: str = "batch") -> float:
        """Step 2: N_p,halo from the short-channel leakage condition."""
        return self._solve_halo(n_sub, solver)[0]

    def _solve_halo(self, n_sub: float,
                    solver: str) -> tuple[float, MOSFET | None]:
        """Halo solve returning the device built at the root, if any.

        The scalar path's final residual evaluation already constructed
        the converged device; handing it back lets :meth:`optimize`
        skip one halo/depletion self-consistency solve.
        """
        validate_solver(solver)
        if solver == "batch":
            from . import batch as batch_mod
            return batch_mod.super_vth_halo(
                self.node, self.polarity, self.width_um, n_sub), None
        target = self.node.ioff_target_a_per_um
        evaluated: dict[float, MOSFET] = {}

        def residual(log_n: float) -> float:
            perf.bump("optimizer.brentq_residual_evals")
            dev = self._device(n_sub, 10.0 ** log_n)
            evaluated[log_n] = dev
            return math.log(self._ioff_per_um(dev) / target)

        lo, hi = (math.log10(b) for b in N_HALO_BOUNDS)
        if residual(lo) <= 0.0:
            # The short device already meets the budget: no halo needed.
            dev = evaluated[lo]
            if dev.profile.n_p_halo_cm3 != N_HALO_BOUNDS[0]:
                dev = None  # 10**log10 round trip missed the bound
            return N_HALO_BOUNDS[0], dev
        if residual(hi) > 0.0:
            raise OptimizationError(
                f"{self.node.name}: halo cannot rescue the short-channel "
                "leakage — L_poly too short for this T_ox"
            )
        log_root = brentq(residual, lo, hi, xtol=1e-12)
        return 10.0 ** log_root, evaluated.get(log_root)

    def optimize(self, solver: str = "batch") -> MOSFET:
        """Run the full Fig. 1(c) loop and return the optimised device."""
        validate_solver(solver)
        if solver == "batch":
            from . import batch as batch_mod
            jobs = [(self.node, self.polarity, self.width_um)]
            return batch_mod.optimize_super_vth_stack(jobs)[0]
        n_sub = self.solve_substrate(solver=solver)
        n_p_halo, dev = self._solve_halo(n_sub, solver)
        if dev is not None and dev.profile.n_p_halo_cm3 == n_p_halo:
            return dev
        return self._device(n_sub, n_p_halo)


def build_super_vth_design(node: NodeSpec,
                           pfet_width_um: float = PFET_WIDTH_RATIO,
                           solver: str = "batch") -> DeviceDesign:
    """Optimise the NFET/PFET pair for one node."""
    validate_solver(solver)
    if solver == "batch":
        from . import batch as batch_mod
        n_dev, p_dev = batch_mod.optimize_super_vth_stack([
            (node, Polarity.NFET, 1.0),
            (node, Polarity.PFET, pfet_width_um),
        ])
    else:
        n_dev = SuperVthOptimizer(node, Polarity.NFET,
                                  width_um=1.0).optimize(solver=solver)
        p_dev = SuperVthOptimizer(node, Polarity.PFET,
                                  width_um=pfet_width_um).optimize(solver=solver)
    return DeviceDesign(node=node, nfet=n_dev, pfet=p_dev,
                        strategy="super-vth", vdd=node.vdd_nominal)


def build_super_vth_family(include_130nm: bool = False,
                           solver: str = "batch") -> DeviceFamily:
    """The paper's Table 2 device family (one design per node).

    >>> family = build_super_vth_family()
    >>> family.node_names()
    ('90nm', '65nm', '45nm', '32nm')
    """
    validate_solver(solver)
    nodes = tuple(roadmap_nodes(include_130nm))
    if solver == "batch":
        from . import batch as batch_mod
        jobs = [(node, pol, width) for node in nodes
                for pol, width in ((Polarity.NFET, 1.0),
                                   (Polarity.PFET, PFET_WIDTH_RATIO))]
        devices = batch_mod.optimize_super_vth_stack(jobs)
        designs = tuple(
            DeviceDesign(node=node, nfet=devices[2 * i], pfet=devices[2 * i + 1],
                         strategy="super-vth", vdd=node.vdd_nominal)
            for i, node in enumerate(nodes))
    else:
        designs = tuple(build_super_vth_design(node, solver=solver)
                        for node in nodes)
    return DeviceFamily(strategy="super-vth", designs=designs)
