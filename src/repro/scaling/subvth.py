"""The proposed sub-V_th scaling flow (paper Section 3).

Per node the strategy keeps ``T_ox`` on the industrial 10 %/generation
trajectory and the junction/overlap parasitics on the 30 %/generation
node trajectory, pins ``I_off`` at 100 pA/µm across all generations,
and then co-optimises the gate length and doping profile:

* **doping, given a length** (:func:`optimize_doping_for_length`) —
  among all (N_sub, N_p,halo) pairs that meet the I_off target at this
  L_poly, pick the one with minimum S_S.  This is the paper's Fig. 7
  observation: at long channels the halo only hurts the slope, so the
  optimum backs the halo off as the channel lengthens.
* **length** (:class:`SubVthOptimizer`) — sweep L_poly and select the
  minimum of the energy factor ``C_L S_S^2`` (Eq. 8); the delay factor
  ``C_L S_S`` minimum is so shallow that the energy-optimal length
  costs almost nothing in speed (the paper's Fig. 8 argument).

The result reproduces Table 3: longer, slower-scaling gate lengths,
reduced doping, and an S_S that stays ~80 mV/dec down to 32nm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from .. import perf
from ..circuit.batch import validate_solver
from ..circuit.inverter import Inverter
from ..device.mosfet import MOSFET, Polarity, nfet as build_nfet, pfet as build_pfet
from ..errors import OptimizationError
from .roadmap import NodeSpec, roadmap_nodes, sub_vth_ioff_target
from .strategy import DeviceDesign, DeviceFamily
from .supervth import N_SUB_BOUNDS, PFET_WIDTH_RATIO

#: Halo-to-substrate peak ratios scanned during doping optimisation.
HALO_RATIO_GRID: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 1.5, 2.25)
#: L_poly search range as multiples of the node's super-V_th L_poly.
LENGTH_RANGE: tuple[float, float] = (1.0, 3.2)
#: Supply used to evaluate/report sub-V_th designs [V].
SUB_VTH_EVAL_VDD: float = 0.30
#: The energy-factor landscape is extremely shallow around its minimum
#: (the paper makes the same observation for the delay factor).  Within
#: this relative tolerance of the minimum, the optimiser prefers the
#: *longest* gate — the flattest-S_S design — at negligible energy cost.
FLATNESS_TOLERANCE: float = 0.02
#: S_S near-ties during doping selection (relative) are broken toward
#: lower substrate doping, which minimises junction capacitance.
SS_TIE_TOLERANCE: float = 0.005


def _builder(polarity: Polarity):
    return build_nfet if polarity is Polarity.NFET else build_pfet


def _solve_substrate_for_ioff(node: NodeSpec, l_poly_nm: float,
                              halo_ratio: float, ioff_target: float,
                              polarity: Polarity, width_um: float,
                              vdd_leak: float) -> MOSFET | None:
    """Find N_sub (with N_p,halo = ratio * N_sub) meeting the I_off target.

    Returns ``None`` when no root exists in the doping bounds (that
    halo ratio cannot meet the target at this length).
    """
    build = _builder(polarity)

    def device(n_sub: float) -> MOSFET:
        return build(
            l_poly_nm=l_poly_nm,
            t_ox_nm=node.t_ox_nm,
            n_sub_cm3=n_sub,
            n_p_halo_cm3=halo_ratio * n_sub,
            width_um=width_um,
            reference_nm=node.l_poly_nm,
        )

    evaluated: dict[float, MOSFET] = {}

    def residual(log_n: float) -> float:
        perf.bump("optimizer.brentq_residual_evals")
        dev = device(10.0 ** log_n)
        evaluated[log_n] = dev
        return math.log(dev.i_off_per_um(vdd_leak) / ioff_target)

    lo, hi = (math.log10(b) for b in N_SUB_BOUNDS)
    if residual(lo) < 0.0 or residual(hi) > 0.0:
        return None
    log_n = brentq(residual, lo, hi, xtol=1e-12)
    # brentq's last evaluation is at the root it returns: reuse that
    # device instead of re-running the doping self-consistency solve.
    dev = evaluated.get(log_n)
    return device(10.0 ** log_n) if dev is None else dev


def optimize_doping_for_length(node: NodeSpec, l_poly_nm: float,
                               ioff_target: float | None = None,
                               polarity: Polarity = Polarity.NFET,
                               width_um: float = 1.0,
                               vdd_leak: float | None = None,
                               solver: str = "batch") -> MOSFET:
    """Minimum-S_S doping meeting the I_off target at a given gate length.

    This is the per-length doping co-optimisation behind the paper's
    Fig. 7 "optimized doping" curve and the inner loop of the sub-V_th
    strategy.

    Parameters
    ----------
    node:
        Node inputs (sets T_ox and the parasitic scale).
    l_poly_nm:
        Candidate gate length.
    ioff_target:
        Leakage target [A/µm]; defaults to the strategy's 100 pA/µm.
    vdd_leak:
        Drain bias for the leakage measurement; defaults to the node's
        nominal V_dd (leakage budgets are specified at full rail even
        for devices destined for sub-V_th use).
    solver:
        ``"batch"`` (default) runs the halo-ratio grid as one masked
        vectorised root-solve; ``"sequential"`` is the scalar oracle.
    """
    validate_solver(solver)
    target = sub_vth_ioff_target(node) if ioff_target is None else ioff_target
    bias = node.vdd_nominal if vdd_leak is None else vdd_leak
    if solver == "batch":
        from . import batch as batch_mod
        batch_mod.reset_warm_starts()
        return batch_mod.optimize_doping_stack(
            node, [l_poly_nm], [(polarity, width_um)], HALO_RATIO_GRID,
            target, bias, SS_TIE_TOLERANCE)[0][0]
    candidates: list[MOSFET] = []
    for ratio in HALO_RATIO_GRID:
        candidate = _solve_substrate_for_ioff(
            node, l_poly_nm, ratio, target, polarity, width_um, bias
        )
        if candidate is not None:
            candidates.append(candidate)
    best: MOSFET | None = None
    if candidates:
        ss_best = min(c.ss_v_per_dec for c in candidates)
        near = [c for c in candidates
                if c.ss_v_per_dec <= ss_best * (1.0 + SS_TIE_TOLERANCE)]
        best = min(near, key=lambda c: c.profile.n_sub_cm3)
    if best is None:
        raise OptimizationError(
            f"{node.name}: no doping meets I_off = {target:.3g} A/um at "
            f"L_poly = {l_poly_nm:.1f} nm"
        )
    return best


@dataclass(frozen=True)
class SubVthOptimizer:
    """Finds the energy-optimal gate length for one node.

    The figure of merit is the Eq. 8 energy factor ``C_L S_S^2`` with
    ``C_L`` the FO1 load of a symmetric inverter built from the
    per-length doping-optimised NFET/PFET pair.
    """

    node: NodeSpec
    ioff_target: float | None = None
    pfet_width_um: float = PFET_WIDTH_RATIO
    n_length_points: int = 9

    def design_for_length(self, l_poly_nm: float,
                          solver: str = "batch") -> DeviceDesign:
        """Doping-optimised device pair at one candidate length.

        The leakage target is enforced at the sub-V_th operating bias
        (``SUB_VTH_EVAL_VDD``) rather than at the nominal rail: a
        technology aimed at sub-V_th use specs I_off where it runs.
        This pins the 250 mV drive current across generations, which is
        what gives the strategy its graceful delay scaling (Fig. 11).
        """
        self._fresh_flow(solver)
        return self._rows_for_lengths([l_poly_nm], solver)[0][1]

    @staticmethod
    def _fresh_flow(solver: str) -> None:
        """Start a flow invocation cache-state independent (see batch)."""
        if solver == "batch":
            from . import batch as batch_mod
            batch_mod.reset_warm_starts()

    def energy_factor(self, design: DeviceDesign) -> float:
        """``C_L S_S^2`` for one candidate design (arbitrary units)."""
        c_load = design.load_capacitance()
        ss = design.nfet.ss_v_per_dec
        return c_load * ss ** 2

    def delay_factor(self, design: DeviceDesign) -> float:
        """``C_L S_S`` (constant-I_off delay factor, Eq. 6)."""
        c_load = design.load_capacitance()
        return c_load * design.nfet.ss_v_per_dec

    def _rows_for_lengths(self, lengths_nm,
                          solver: str) -> list[tuple[float, DeviceDesign, float]]:
        """``(l_poly_nm, design, energy_factor)`` rows for a length grid.

        The batch path solves the whole ``lengths x polarity x
        halo-ratio`` candidate stack in one masked bisection; the
        sequential path is the per-candidate scalar oracle.
        """
        validate_solver(solver)
        lengths = [float(l) for l in lengths_nm]
        rows: list[tuple[float, DeviceDesign, float]] = []
        if solver == "batch":
            from . import batch as batch_mod
            target = (sub_vth_ioff_target(self.node)
                      if self.ioff_target is None else self.ioff_target)
            jobs = [(Polarity.NFET, 1.0), (Polarity.PFET, self.pfet_width_um)]
            devices = batch_mod.optimize_doping_stack(
                self.node, lengths, jobs, HALO_RATIO_GRID, target,
                SUB_VTH_EVAL_VDD, SS_TIE_TOLERANCE)
            for l_poly, (n_dev, p_dev) in zip(lengths, devices):
                design = DeviceDesign(node=self.node, nfet=n_dev, pfet=p_dev,
                                      strategy="sub-vth", vdd=SUB_VTH_EVAL_VDD)
                rows.append((l_poly, design, self.energy_factor(design)))
            return rows
        for l_poly in lengths:
            n_dev = optimize_doping_for_length(
                self.node, l_poly, self.ioff_target, Polarity.NFET, 1.0,
                vdd_leak=SUB_VTH_EVAL_VDD, solver=solver,
            )
            p_dev = optimize_doping_for_length(
                self.node, l_poly, self.ioff_target, Polarity.PFET,
                self.pfet_width_um, vdd_leak=SUB_VTH_EVAL_VDD, solver=solver,
            )
            design = DeviceDesign(node=self.node, nfet=n_dev, pfet=p_dev,
                                  strategy="sub-vth", vdd=SUB_VTH_EVAL_VDD)
            rows.append((l_poly, design, self.energy_factor(design)))
        return rows

    def sweep(self, solver: str = "batch"
              ) -> list[tuple[float, DeviceDesign, float]]:
        """Evaluate the length grid: ``(l_poly_nm, design, energy_factor)``."""
        self._fresh_flow(solver)
        lengths = np.linspace(self.node.l_poly_nm * LENGTH_RANGE[0],
                              self.node.l_poly_nm * LENGTH_RANGE[1],
                              self.n_length_points)
        return self._rows_for_lengths(lengths, solver)

    def optimize(self, solver: str = "batch") -> DeviceDesign:
        """Grid search with a flatness-aware selection rule.

        The energy-factor landscape is extremely shallow around its
        minimum (the paper's Fig. 8 observation), so among all grid
        points within :data:`FLATNESS_TOLERANCE` of the minimum the
        *longest* gate is selected: it has the flattest S_S at
        negligible energy cost — the same argument the paper uses to
        pick the energy-optimal length over the delay-optimal one.
        A second, local grid refines the choice.
        """
        rows = self.sweep(solver=solver)
        chosen = self._select(rows)
        if chosen[0] == rows[-1][0] and len(rows) > 1:
            raise OptimizationError(
                f"{self.node.name}: energy factor still flat/falling at "
                f"{rows[-1][0]:.0f} nm; widen LENGTH_RANGE"
            )
        # Local refinement around the chosen length.
        step = rows[1][0] - rows[0][0] if len(rows) > 1 else 0.0
        if step > 0.0:
            lo = max(chosen[0] - step, rows[0][0])
            hi = min(chosen[0] + step, rows[-1][0])
            local = self._rows_for_lengths(np.linspace(lo, hi, 7), solver)
            chosen = self._select(local, rows)
        return chosen[1]

    @staticmethod
    def _select(rows: list[tuple[float, DeviceDesign, float]],
                reference: list[tuple[float, DeviceDesign, float]] | None = None
                ) -> tuple[float, DeviceDesign, float]:
        """Longest-length row whose energy factor is within tolerance of the min.

        The minimum is taken over ``rows`` plus the optional
        ``reference`` grid so local refinement cannot drift away from
        the global floor.  Returns the winning row itself so the caller
        never has to re-find a design by float comparison on length.
        """
        pool = rows if reference is None else rows + reference
        floor = min(r[2] for r in pool)
        eligible = [r for r in rows if r[2] <= floor * (1.0 + FLATNESS_TOLERANCE)]
        if not eligible:
            eligible = [min(rows, key=lambda r: r[2])]
        return max(eligible, key=lambda r: r[0])


def build_sub_vth_family(include_130nm: bool = False,
                         ioff_target: float | None = None,
                         solver: str = "batch") -> DeviceFamily:
    """The paper's Table 3 device family.

    Each node's design uses the energy-optimal gate length and the
    minimum-S_S doping at the fixed 100 pA/µm leakage target.
    """
    designs = []
    for node in roadmap_nodes(include_130nm):
        optimizer = SubVthOptimizer(node, ioff_target=ioff_target)
        designs.append(optimizer.optimize(solver=solver))
    return DeviceFamily(strategy="sub-vth", designs=tuple(designs))
