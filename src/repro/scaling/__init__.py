"""Scaling strategies: the paper's core contribution.

* :mod:`repro.scaling.generalized` — the Table 1 generalized-scaling
  algebra (Dennard / Baccarani rules).
* :mod:`repro.scaling.roadmap` — per-node inputs (L_poly, T_ox, V_dd,
  leakage targets) for both strategies.
* :mod:`repro.scaling.supervth` — the performance-driven flow of
  Fig. 1(c), producing Table 2 device families.
* :mod:`repro.scaling.subvth` — the proposed energy-optimal flow of
  Section 3, producing Table 3 device families.
* :mod:`repro.scaling.metrics` — tau, the delay factor ``C_L S_S`` and
  energy factor ``C_L S_S^2`` of Eqs. 4-8.
"""

from .generalized import GeneralizedScaling, CONSTANT_FIELD
from .roadmap import (
    NodeSpec,
    SUPER_VTH_ROADMAP,
    roadmap_nodes,
    node_by_name,
)
from .strategy import DeviceDesign, DeviceFamily
from .supervth import SuperVthOptimizer, build_super_vth_family
from .subvth import (
    SubVthOptimizer,
    build_sub_vth_family,
    optimize_doping_for_length,
)
from .metrics import (
    intrinsic_delay,
    delay_factor,
    energy_factor,
    per_generation_change,
)
from .multivth import derive_flavours, VthFlavour
from .compact_card import ModelCard, extract_card, family_card_table
from .pareto import sweep_design, dominance_fraction, ParetoCurve
from .projection import project_super_vth, project_sub_vth, projected_node
from .sensitivity import headline_under_calibration, calibration

__all__ = [
    "GeneralizedScaling",
    "CONSTANT_FIELD",
    "NodeSpec",
    "SUPER_VTH_ROADMAP",
    "roadmap_nodes",
    "node_by_name",
    "DeviceDesign",
    "DeviceFamily",
    "SuperVthOptimizer",
    "build_super_vth_family",
    "SubVthOptimizer",
    "build_sub_vth_family",
    "optimize_doping_for_length",
    "intrinsic_delay",
    "delay_factor",
    "energy_factor",
    "per_generation_change",
    "derive_flavours",
    "VthFlavour",
    "ModelCard",
    "extract_card",
    "family_card_table",
    "sweep_design",
    "dominance_fraction",
    "ParetoCurve",
    "project_super_vth",
    "project_sub_vth",
    "projected_node",
    "headline_under_calibration",
    "calibration",
]
