"""Containers for optimised device families.

A *design* is the NFET/PFET pair an optimiser produced for one node; a
*family* is the set of designs across nodes under one strategy.  Both
expose the summary metrics the paper tabulates so experiments and
benches never re-derive them inconsistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.batch import validate_solver
from ..circuit.inverter import Inverter
from ..device.batch import ParameterStack
from ..device.mosfet import MOSFET
from ..errors import ParameterError
from .roadmap import NodeSpec


@dataclass(frozen=True)
class DeviceDesign:
    """The optimised device pair for one node under one strategy.

    Attributes
    ----------
    node:
        The node inputs this design was optimised for.
    nfet / pfet:
        The optimised devices.
    strategy:
        "super-vth" or "sub-vth".
    vdd:
        The supply the strategy associates with this design (nominal
        V_dd for super-V_th; V_min is computed downstream for both).
    """

    node: NodeSpec
    nfet: MOSFET
    pfet: MOSFET
    strategy: str
    vdd: float

    def inverter(self, vdd: float | None = None) -> Inverter:
        """A symmetric inverter built from this design's device pair."""
        return Inverter(nfet=self.nfet, pfet=self.pfet,
                        vdd=self.vdd if vdd is None else vdd)

    def load_capacitance(self) -> float:
        """FO1 load of the design's inverter [F] (the C_L in Eqs. 6-8)."""
        return self.inverter(self.vdd).load_capacitance(fanout=1)

    def summary(self, vth_sat_v: float | None = None) -> dict[str, float]:
        """The paper's table metrics for this design (NFET-referenced).

        ``vth_sat_v`` lets :meth:`DeviceFamily.table_rows` substitute a
        batch-solved constant-current V_th; by default the design's own
        scalar (brentq) extraction is used.
        """
        vdd = self.vdd
        if vth_sat_v is None:
            vth_sat_v = self.nfet.vth_sat_cc(vdd)
        return {
            "l_poly_nm": self.nfet.geometry.l_poly_nm,
            "t_ox_nm": self.nfet.stack.thickness_cm * 1e7,
            "n_sub_cm3": self.nfet.profile.n_sub_cm3,
            "n_halo_cm3": self.nfet.profile.n_halo_net_cm3,
            "vdd": vdd,
            "vth_sat_mv": 1000.0 * vth_sat_v,
            "ioff_pa_per_um": 1e12 * self.nfet.i_off_per_um(vdd),
            "ss_mv_per_dec": self.nfet.ss_mv_per_dec,
            "tau_ps": 1e12 * self.nfet.intrinsic_delay(vdd),
        }


@dataclass(frozen=True)
class DeviceFamily:
    """Device designs across nodes under one strategy.

    Attributes
    ----------
    strategy:
        Family label ("super-vth" / "sub-vth").
    designs:
        One design per node, in roadmap order.
    """

    strategy: str
    designs: tuple[DeviceDesign, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.designs:
            raise ParameterError("family needs at least one design")

    def node_names(self) -> tuple[str, ...]:
        """Labels of the nodes in this family."""
        return tuple(d.node.name for d in self.designs)

    def design(self, node_name: str) -> DeviceDesign:
        """Look up the design for one node."""
        for d in self.designs:
            if d.node.name == node_name:
                return d
        raise ParameterError(
            f"no design for node {node_name!r} in {self.strategy} family"
        )

    def nfet_stack(self) -> ParameterStack:
        """The family's NFETs as one parameter-axis stack.

        Rebuilt from the same inputs the optimiser constructed each
        device with (gate length, node oxide, node reference length),
        so stacked metrics agree with the per-device scalar models to
        the batch layer's equivalence budget.
        """
        designs = self.designs
        return ParameterStack(
            l_poly_nm=np.array([d.nfet.geometry.l_poly_nm for d in designs]),
            t_ox_nm=np.array([d.node.t_ox_nm for d in designs]),
            is_nfet=True,
            width_um=np.array([d.nfet.geometry.width_um for d in designs]),
            reference_nm=np.array([d.node.l_poly_nm for d in designs]),
        )

    def table_rows(self, solver: str = "batch") -> list[dict[str, float]]:
        """One summary row per node (the Table 2 / Table 3 payload).

        ``solver="batch"`` (default) extracts the V_th,sat column for
        the whole family in one gathered constant-current solve
        (:meth:`repro.device.batch.BatchDeviceMetrics.vth_sat_cc`);
        ``solver="sequential"`` keeps the per-design scalar ``brentq``
        extraction as the correctness oracle.
        """
        validate_solver(solver)
        if solver == "sequential":
            return [d.summary() for d in self.designs]
        metrics = self.nfet_stack().metrics(
            np.array([d.nfet.profile.n_sub_cm3 for d in self.designs]),
            np.array([d.nfet.profile.n_p_halo_cm3 for d in self.designs]),
        )
        vth = metrics.vth_sat_cc(np.array([d.vdd for d in self.designs]))
        return [d.summary(vth_sat_v=float(v))
                for d, v in zip(self.designs, vth)]
