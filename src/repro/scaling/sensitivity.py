"""Calibration-sensitivity analysis.

Three constants in this reproduction were calibrated against the
paper's simulated trajectories (see DESIGN.md §2): the gate-overlap
fraction, the quasi-2-D characteristic-length multiplier, and the
Eq. 2(b) short-channel slope prefactor.  A fair question is whether
the paper's *conclusions* — the sub-V_th strategy's SNM and energy
advantages at 32nm — depend on those choices.

:func:`headline_under_calibration` re-runs both strategy optimisers
and the headline circuit comparisons under perturbed constants; the
``ext_sensitivity`` experiment sweeps a grid and asserts the
conclusions are calibration-robust.

Implementation note: the constants live as module globals that the
physics reads at call time, so a scoped context manager can swap them
safely (and always restores them, exception or not).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass

from ..circuit.chain import InverterChain
from ..circuit.snm import noise_margins
from ..device import geometry as geometry_mod
from ..device import subthreshold as subthreshold_mod
from ..device import threshold as threshold_mod
from ..errors import ParameterError
from .subvth import build_sub_vth_family
from .supervth import build_super_vth_family


@contextlib.contextmanager
def calibration(overlap_fraction: float | None = None,
                lt_calibration: float | None = None,
                sce_prefactor: float | None = None):
    """Temporarily override the calibrated constants.

    Only the constants passed are changed; everything is restored on
    exit.  Devices built *inside* the context bake the overridden
    values into their cached state, so comparisons must construct all
    devices within one context.
    """
    for name, value in (("overlap", overlap_fraction),
                        ("lt", lt_calibration),
                        ("prefactor", sce_prefactor)):
        if value is not None and value <= 0.0:
            raise ParameterError(f"{name} override must be positive")
    if overlap_fraction is not None and overlap_fraction >= 0.5:
        raise ParameterError("overlap fraction must be < 0.5")

    saved = (geometry_mod.OVERLAP_FRACTION,
             threshold_mod.LT_CALIBRATION,
             subthreshold_mod.SCE_PREFACTOR_DEFAULT)
    try:
        if overlap_fraction is not None:
            geometry_mod.OVERLAP_FRACTION = overlap_fraction
        if lt_calibration is not None:
            threshold_mod.LT_CALIBRATION = lt_calibration
        if sce_prefactor is not None:
            subthreshold_mod.SCE_PREFACTOR_DEFAULT = sce_prefactor
        yield
    finally:
        (geometry_mod.OVERLAP_FRACTION,
         threshold_mod.LT_CALIBRATION,
         subthreshold_mod.SCE_PREFACTOR_DEFAULT) = saved


@dataclass(frozen=True)
class HeadlineResult:
    """The paper's two headline advantages under one calibration.

    Attributes
    ----------
    snm_advantage:
        Fractional SNM advantage of the sub-V_th 32nm inverter at
        250 mV (paper: ~0.19).
    energy_advantage:
        Fractional energy saving at each strategy's V_min (paper:
        ~0.23).
    ss_degradation:
        Super-V_th fractional S_S degradation 90nm -> 32nm (paper:
        ~0.11).
    """

    snm_advantage: float
    energy_advantage: float
    ss_degradation: float
    overlap_fraction: float
    lt_calibration: float
    sce_prefactor: float


def headline_under_calibration(overlap_fraction: float | None = None,
                               lt_calibration: float | None = None,
                               sce_prefactor: float | None = None,
                               solver: str = "batch") -> HeadlineResult:
    """Re-run the headline comparisons under perturbed constants.

    Rebuilds both families from scratch inside the calibration scope
    (the cached families in :mod:`repro.experiments.families` are NOT
    used — they carry the default calibration).  ``solver`` selects the
    batched or sequential doping engine for the rebuilds; the batched
    engine's warm-start brackets are keyed by the calibration constants,
    so perturbed runs never reuse default-calibration roots.
    """
    with calibration(overlap_fraction, lt_calibration, sce_prefactor):
        sup = build_super_vth_family(solver=solver)
        sub = build_sub_vth_family(solver=solver)
        sup32, sub32 = sup.design("32nm"), sub.design("32nm")

        snm_sup = noise_margins(sup32.inverter(0.25)).snm
        snm_sub = noise_margins(sub32.inverter(0.25)).snm
        e_sup = InverterChain(sup32.inverter(0.3)) \
            .minimum_energy_point().energy.total_j
        e_sub = InverterChain(sub32.inverter(0.3)) \
            .minimum_energy_point().energy.total_j
        ss = [d.nfet.ss_v_per_dec for d in sup.designs]

        return HeadlineResult(
            snm_advantage=snm_sub / snm_sup - 1.0,
            energy_advantage=1.0 - e_sub / e_sup,
            ss_degradation=ss[-1] / ss[0] - 1.0,
            overlap_fraction=geometry_mod.OVERLAP_FRACTION,
            lt_calibration=threshold_mod.LT_CALIBRATION,
            sce_prefactor=subthreshold_mod.SCE_PREFACTOR_DEFAULT,
        )
