"""Energy-delay Pareto exploration of a technology node.

The paper fixes one operating point per strategy (minimum energy); a
designer choosing a technology wants the whole energy-delay trade
curve.  This module sweeps the supply voltage of a design's inverter
chain, records (delay, energy) pairs, extracts the Pareto-efficient
subset, and compares strategies: the proposed sub-V_th scaling should
*dominate* the super-V_th curve over the low-energy region at scaled
nodes — a strictly stronger statement than the paper's single-point
comparisons, and the `ext_pareto`-style analysis a downstream adopter
would run first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.chain import InverterChain
from ..errors import ParameterError
from .strategy import DeviceDesign


@dataclass(frozen=True)
class ParetoPoint:
    """One supply point on the energy-delay plane."""

    vdd: float
    delay_s: float
    energy_j: float


@dataclass(frozen=True)
class ParetoCurve:
    """The V_dd sweep of one design and its efficient frontier.

    Attributes
    ----------
    points:
        All swept points, ascending in V_dd.
    frontier:
        The Pareto-efficient subset (no other point is faster *and*
        lower-energy), ascending in delay.
    """

    label: str
    points: tuple[ParetoPoint, ...]
    frontier: tuple[ParetoPoint, ...]

    def energy_at_delay(self, delay_s: float) -> float:
        """Frontier energy at a given delay budget [J].

        Linear interpolation along the frontier; delays outside the
        frontier range raise.
        """
        delays = np.array([p.delay_s for p in self.frontier])
        energies = np.array([p.energy_j for p in self.frontier])
        if not delays.min() <= delay_s <= delays.max():
            raise ParameterError(
                f"delay {delay_s:.3g}s outside frontier range "
                f"[{delays.min():.3g}, {delays.max():.3g}]s"
            )
        return float(np.interp(delay_s, delays, energies))


def _pareto_filter(points: list[ParetoPoint]) -> list[ParetoPoint]:
    """Keep points not dominated in (delay, energy), sorted by delay."""
    ordered = sorted(points, key=lambda p: (p.delay_s, p.energy_j))
    frontier: list[ParetoPoint] = []
    best_energy = np.inf
    for point in ordered:
        if point.energy_j < best_energy:
            frontier.append(point)
            best_energy = point.energy_j
    return frontier


def sweep_design(design: DeviceDesign, vdd_lo: float = 0.15,
                 vdd_hi: float = 0.60, n_points: int = 19,
                 n_stages: int = 30, activity: float = 0.1,
                 label: str | None = None) -> ParetoCurve:
    """Sweep a design's chain over V_dd and build its Pareto curve.

    Delay is the chain critical path, energy the per-cycle total — the
    same testbench as the paper's Figs. 6/12, just swept instead of
    optimised.
    """
    if not 0.0 < vdd_lo < vdd_hi:
        raise ParameterError("need 0 < vdd_lo < vdd_hi")
    if n_points < 3:
        raise ParameterError("need at least 3 sweep points")
    points = []
    for vdd in np.linspace(vdd_lo, vdd_hi, n_points):
        chain = InverterChain(design.inverter(float(vdd)),
                              n_stages=n_stages, activity=activity)
        energy = chain.energy_per_cycle()
        points.append(ParetoPoint(
            vdd=float(vdd),
            delay_s=energy.cycle_time_s,
            energy_j=energy.total_j,
        ))
    name = label or f"{design.strategy}/{design.node.name}"
    return ParetoCurve(label=name, points=tuple(points),
                       frontier=tuple(_pareto_filter(points)))


def dominance_fraction(winner: ParetoCurve, loser: ParetoCurve,
                       n_probe: int = 25) -> float:
    """Fraction of the shared delay range where ``winner`` needs less
    energy than ``loser`` (1.0 = full dominance)."""
    w_delays = [p.delay_s for p in winner.frontier]
    l_delays = [p.delay_s for p in loser.frontier]
    lo = max(min(w_delays), min(l_delays))
    hi = min(max(w_delays), max(l_delays))
    if hi <= lo:
        raise ParameterError("frontiers share no delay range")
    probes = np.geomspace(lo, hi, n_probe)
    wins = sum(
        1 for d in probes
        if winner.energy_at_delay(float(d)) < loser.energy_at_delay(float(d))
    )
    return wins / n_probe
