"""Per-node scaling inputs (the paper's published-industry-data layer).

The paper fixes, per technology node:

* ``L_poly`` — shrinking 30 %/generation (Table 2: 65/46/32/22 nm),
* ``T_ox``  — shrinking 10 %/generation (2.10/1.89/1.70/1.53 nm),
* ``V_dd``  — stepping down 100 mV/generation (1.2/1.1/1.0/0.9 V),
* the leakage budget — 100 pA/µm at 90nm growing 25 %/generation under
  the super-V_th (LSTP-like) strategy, or pinned at 100 pA/µm under the
  proposed sub-V_th strategy.

A 130nm node (extrapolated backwards with the same rates) is included
because Fig. 12's V_min discussion references it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError

#: L_poly shrink rate per generation under performance-driven scaling.
L_POLY_SHRINK_PER_GEN: float = 0.30
#: T_ox shrink rate per generation (the paper's headline observation).
T_OX_SHRINK_PER_GEN: float = 0.10
#: Leakage-budget growth per generation under the super-V_th strategy.
IOFF_GROWTH_PER_GEN: float = 0.25
#: The sub-V_th strategy's fixed leakage target [A/µm].
IOFF_SUB_VTH_A_PER_UM: float = 100e-12


@dataclass(frozen=True)
class NodeSpec:
    """Fixed inputs for one technology node.

    Attributes
    ----------
    name:
        Node label ("90nm", ...).
    node_nm:
        Nominal node dimension [nm].
    l_poly_nm:
        Etched gate length under performance-driven scaling [nm].
    t_ox_nm:
        Gate oxide physical thickness [nm].
    vdd_nominal:
        Nominal (super-V_th) supply [V].
    ioff_target_a_per_um:
        Leakage budget for the super-V_th optimiser [A/µm].
    generation:
        Index from the 90nm reference (90nm = 0; 130nm = -1).
    """

    name: str
    node_nm: float
    l_poly_nm: float
    t_ox_nm: float
    vdd_nominal: float
    ioff_target_a_per_um: float
    generation: int

    def __post_init__(self) -> None:
        if any(entry <= 0.0 for entry in (
                self.node_nm, self.l_poly_nm, self.t_ox_nm,
                self.vdd_nominal, self.ioff_target_a_per_um)):
            raise ParameterError(f"non-positive entry in node {self.name!r}")


#: The paper's Table 2 input rows (L_poly, T_ox, V_dd are inputs; doping
#: is what the optimiser produces).  130nm extrapolated at the same rates.
SUPER_VTH_ROADMAP: tuple[NodeSpec, ...] = (
    NodeSpec("130nm", 130.0, 93.0, 2.33, 1.3, 80e-12, -1),
    NodeSpec("90nm", 90.0, 65.0, 2.10, 1.2, 100e-12, 0),
    NodeSpec("65nm", 65.0, 46.0, 1.89, 1.1, 125e-12, 1),
    NodeSpec("45nm", 45.0, 32.0, 1.70, 1.0, 156e-12, 2),
    NodeSpec("32nm", 32.0, 22.0, 1.53, 0.9, 195e-12, 3),
)

#: The paper's primary evaluation span.
PRIMARY_NODES: tuple[str, ...] = ("90nm", "65nm", "45nm", "32nm")


def roadmap_nodes(include_130nm: bool = False) -> tuple[NodeSpec, ...]:
    """The evaluation nodes, optionally with the 130nm back-extrapolation."""
    if include_130nm:
        return SUPER_VTH_ROADMAP
    return tuple(n for n in SUPER_VTH_ROADMAP if n.name in PRIMARY_NODES)


def node_by_name(name: str) -> NodeSpec:
    """Look up a node spec by label.

    >>> node_by_name("45nm").l_poly_nm
    32.0
    """
    for node in SUPER_VTH_ROADMAP:
        if node.name == name:
            return node
    known = ", ".join(n.name for n in SUPER_VTH_ROADMAP)
    raise ParameterError(f"unknown node {name!r}; known nodes: {known}")


def sub_vth_ioff_target(_node: NodeSpec) -> float:
    """The sub-V_th strategy's leakage target (constant across nodes)."""
    return IOFF_SUB_VTH_A_PER_UM
