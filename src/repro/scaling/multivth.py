"""Multi-threshold device offerings (paper Section 3.2 extension).

Both the paper's strategies note that "different performance levels can
be targeted by offering multiple thresholds" — the standard LVT / RVT /
HVT menu of a real PDK.  This module derives threshold variants from a
strategy design by re-solving the doping for scaled leakage targets
(an LVT device leaks ~10x more and switches correspondingly faster;
HVT the reverse), exactly how foundries expose V_th flavours of one
process.

The interesting sub-V_th property (quantified by the tests and the
``ext_multivth`` experiment): because delay is exponential in V_th
while the slope S_S barely moves across flavours, a 10x leakage step
buys a *constant multiple* of drive — the flavour spread itself is a
scaling invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit.batch import validate_solver
from ..device.mosfet import MOSFET, Polarity
from ..errors import ParameterError
from .roadmap import NodeSpec
from .strategy import DeviceDesign
from .subvth import SUB_VTH_EVAL_VDD, optimize_doping_for_length
from .supervth import PFET_WIDTH_RATIO

#: Leakage multipliers defining the standard flavour menu.
FLAVOURS: dict[str, float] = {"lvt": 10.0, "rvt": 1.0, "hvt": 0.1}


@dataclass(frozen=True)
class VthFlavour:
    """One threshold flavour of a design.

    Attributes
    ----------
    name:
        "lvt" / "rvt" / "hvt".
    design:
        The re-doped device pair.
    ioff_target_a_per_um:
        The leakage target this flavour was solved for.
    """

    name: str
    design: DeviceDesign
    ioff_target_a_per_um: float

    def vth_mv(self, vds: float = 0.05) -> float:
        """NFET threshold voltage [mV]."""
        return 1000.0 * self.design.nfet.vth(vds)

    def drive_a_per_um(self, vdd: float) -> float:
        """NFET on-current per µm at supply ``vdd`` [A/µm]."""
        return self.design.nfet.i_on_per_um(vdd)

    def leakage_a_per_um(self, vdd: float) -> float:
        """NFET off-current per µm at supply ``vdd`` [A/µm]."""
        return self.design.nfet.i_off_per_um(vdd)


def derive_flavours(node: NodeSpec, l_poly_nm: float,
                    base_ioff_a_per_um: float = 100e-12,
                    vdd_leak: float = SUB_VTH_EVAL_VDD,
                    pfet_width_um: float = PFET_WIDTH_RATIO,
                    flavours: dict[str, float] | None = None,
                    solver: str = "batch") -> dict[str, VthFlavour]:
    """Solve the LVT/RVT/HVT menu at one node and gate length.

    Parameters
    ----------
    node:
        Node inputs (T_ox, parasitic scale).
    l_poly_nm:
        The gate length shared by all flavours (one lithography, three
        implant recipes — the foundry reality).
    base_ioff_a_per_um:
        RVT leakage target; LVT/HVT scale it by :data:`FLAVOURS`.
    vdd_leak:
        Bias at which the leakage targets are enforced.
    solver:
        ``"batch"`` (default) routes each doping solve through the
        vectorised engine; ``"sequential"`` is the scalar oracle.

    >>> from repro.scaling.roadmap import node_by_name
    >>> menu = derive_flavours(node_by_name("45nm"), 47.0)
    >>> menu["lvt"].vth_mv() < menu["rvt"].vth_mv() < menu["hvt"].vth_mv()
    True
    """
    validate_solver(solver)
    if base_ioff_a_per_um <= 0.0:
        raise ParameterError("base leakage target must be positive")
    menu = flavours or FLAVOURS
    for name, multiplier in menu.items():
        if multiplier <= 0.0:
            raise ParameterError(f"flavour {name!r} multiplier must be > 0")
    pairs: dict[str, tuple[MOSFET, MOSFET]] = {}
    if solver == "batch":
        # One root-solve covers the whole flavour menu: the batched
        # engine supports per-candidate leakage targets, so all
        # flavour x polarity x halo-ratio points stack together.
        from .batch import optimize_doping_groups, reset_warm_starts
        from .subvth import HALO_RATIO_GRID, SS_TIE_TOLERANCE
        reset_warm_starts()
        groups = []
        for name, multiplier in menu.items():
            target = base_ioff_a_per_um * multiplier
            groups.append((l_poly_nm, Polarity.NFET, 1.0, target, vdd_leak))
            groups.append((l_poly_nm, Polarity.PFET, pfet_width_um,
                           target, vdd_leak))
        winners = optimize_doping_groups(node, groups, HALO_RATIO_GRID,
                                         SS_TIE_TOLERANCE)
        for i, name in enumerate(menu):
            pairs[name] = (winners[2 * i], winners[2 * i + 1])
    else:
        for name, multiplier in menu.items():
            target = base_ioff_a_per_um * multiplier
            n_dev = optimize_doping_for_length(
                node, l_poly_nm, ioff_target=target, polarity=Polarity.NFET,
                width_um=1.0, vdd_leak=vdd_leak, solver=solver,
            )
            p_dev = optimize_doping_for_length(
                node, l_poly_nm, ioff_target=target, polarity=Polarity.PFET,
                width_um=pfet_width_um, vdd_leak=vdd_leak, solver=solver,
            )
            pairs[name] = (n_dev, p_dev)
    result: dict[str, VthFlavour] = {}
    for name, (n_dev, p_dev) in pairs.items():
        design = DeviceDesign(node=node, nfet=n_dev, pfet=p_dev,
                              strategy=f"multi-vth/{name}",
                              vdd=vdd_leak)
        result[name] = VthFlavour(
            name=name, design=design,
            ioff_target_a_per_um=base_ioff_a_per_um * menu[name])
    return result


def drive_spread(menu: dict[str, VthFlavour], vdd: float) -> float:
    """LVT-to-HVT on-current ratio at supply ``vdd``.

    In pure subthreshold conduction a 100x leakage window translates to
    the same 100x drive window (both slide along one exponential), so
    this should sit near ``lvt_ioff/hvt_ioff`` at low V_dd and compress
    as the supply approaches V_th.
    """
    if "lvt" not in menu or "hvt" not in menu:
        raise ParameterError("menu needs both 'lvt' and 'hvt' flavours")
    return (menu["lvt"].drive_a_per_um(vdd)
            / menu["hvt"].drive_a_per_um(vdd))
