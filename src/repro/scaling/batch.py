"""Batched design-space engine: vectorised doping root-solves.

The scalar scaling flows (:mod:`repro.scaling.supervth`,
:mod:`repro.scaling.subvth`) call ``brentq`` once per (length,
halo-ratio, polarity) candidate, constructing a full
:class:`repro.device.mosfet.MOSFET` per residual evaluation.  This
module replaces those loops with a gathered bracketing solve in
``log10(doping)`` over the whole candidate stack at once — delegated to
the shared root-solve core (:func:`repro.numerics.bisect_illinois`),
which evaluates the residual only on the still-active lanes — on top of
the parameter-axis device evaluation in :mod:`repro.device.batch`.
Scalar MOSFETs are constructed only at the converged roots (the designs
the caller keeps anyway), so the selection rules and returned objects
are shared with the sequential paths.

Warm starts: converged roots are cached per (flow, node, polarity,
halo-ratio, length-bucket, target, calibration) in an LRU keyed bracket
cache.  A cached root shrinks the next solve's bracket to
``root +/- WARM_MARGIN_LOG10``; brackets are sign-verified before use
and fall back to the full doping bounds when stale, so warm starts can
only cost performance, never correctness.  The cache is scoped to one
flow invocation — every top-level flow entry calls
:func:`reset_warm_starts` — so flow results never depend on what ran
earlier in the process (see that function's docstring).

When the on-disk cache is enabled (:func:`repro.cache.cache_dir`), the
solver additionally spills each cold-converged final bracket to disk
under an exact per-candidate key and replays it on the next process's
cold invocation.  A replayed bracket is already below ``xtol``, so the
lane retires before its first sweep with exactly the midpoint a cold
solve would produce — byte-determinism survives the shortcut.  The
disk layer reports ``scaling.bracket_warm_hits`` /
``scaling.bracket_cold_misses``.

The residual ``log(I_off(N)/target)`` is monotone *decreasing* in
``log10(N)`` (more doping -> higher V_th -> less leakage), which gives
the feasibility tests: a candidate is solvable iff the residual is
``>= 0`` at the lower doping bound and ``<= 0`` at the upper one.

Perf counters: ``scaling.doping_batch_solves`` / ``..._points`` count
batched solves and stacked candidate points (deterministic — grid sizes
only), ``scaling.doping_bisection_sweeps`` counts bisection passes
(warm-start dependent), and the bracket cache reports
``cache.bracket.hits`` / ``cache.bracket.misses``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .. import perf
from ..cache import LRUMemo, load_brackets, store_brackets
from ..circuit.batch import SOLVER_MODES, validate_solver
from ..numerics import WarmStarts, bisect_illinois
from ..device import geometry as geometry_mod
from ..device import subthreshold as subthreshold_mod
from ..device import threshold as threshold_mod
from ..device.batch import ParameterStack
from ..device.mosfet import (
    MOSFET,
    Polarity,
    nfet as build_nfet,
    pfet as build_pfet,
)
from ..errors import OptimizationError
from .roadmap import NodeSpec
from .supervth import LONG_CHANNEL_MULTIPLE, N_HALO_BOUNDS, N_SUB_BOUNDS

__all__ = [
    "SOLVER_MODES",
    "validate_solver",
    "DopingSolveRequest",
    "DopingSolveResult",
    "solve_log_doping",
    "solve_substrate_stack",
    "optimize_doping_stack",
    "super_vth_substrate",
    "super_vth_halo",
    "optimize_super_vth_stack",
    "bracket_memo",
    "reset_warm_starts",
]

#: Bisection tolerance in log10(doping) — tight enough that batched and
#: sequential (brentq, xtol=1e-12) roots agree to ~1e-12 relative,
#: comfortably inside the 1e-9 equivalence budget.
XTOL_LOG10: float = 1e-12

#: Half-width [decades] of a warm-start bracket around a cached root.
WARM_MARGIN_LOG10: float = 0.3

#: Gate lengths within one bucket share warm-start brackets [nm]; the
#: sub-V_th refinement grid lands in the buckets its sweep populated.
LENGTH_BUCKET_NM: float = 4.0

#: Warm-start bracket cache (cache.bracket.* hit/miss counters).
bracket_memo = LRUMemo("bracket", maxsize=4096)  # repro: noqa[RPR008] reset_warm_starts() drops it at every flow entry


def reset_warm_starts() -> None:
    """Drop the warm-start bracket state.  Called on flow entry.

    Warm-started and cold solves agree only to the bracketing
    tolerance (~1e-12 in log10), not bitwise, so every top-level flow
    invocation starts cold: its results are then a pure function of
    the flow inputs, independent of whatever ran earlier in the
    process.  ``repro report`` relies on this — its byte-deterministic
    docs must not depend on how experiments are partitioned across
    ``--jobs`` workers.  The cache still accelerates the repeated
    solves *within* one flow invocation (the length sweep feeding its
    refinement grid, jobs sharing a length bucket).
    """
    bracket_memo.clear()


@dataclass(frozen=True)
class DopingSolveRequest:
    """One point of a batched doping root-solve.

    For substrate solves the unknown is ``N_sub`` with
    ``N_p,halo = halo_ratio * N_sub``; for halo solves the unknown is
    ``N_p,halo`` at a fixed ``N_sub`` (see :func:`super_vth_halo`).
    """

    node: NodeSpec
    l_poly_nm: float
    halo_ratio: float
    polarity: Polarity
    width_um: float
    ioff_target: float
    vdd_leak: float


@dataclass(frozen=True)
class DopingSolveResult:
    """Outcome of one masked-bisection doping solve.

    ``root_log10`` is meaningful only where ``feasible``.  ``r_lo`` /
    ``r_hi`` are the residuals at the full doping bounds; points whose
    sign-verified warm-start bracket already straddled the root report
    ``+inf`` / ``-inf`` there (the residual is monotone decreasing, so
    a straddling inner bracket proves the full bounds straddle too).
    """

    root_log10: np.ndarray
    feasible: np.ndarray
    r_lo: np.ndarray
    r_hi: np.ndarray


def _bracket_key(flow: str, req: DopingSolveRequest,
                 extra: float | None = None):
    """Warm-start cache key: flow + candidate identity + calibration.

    Lengths are bucketed (:data:`LENGTH_BUCKET_NM`) so nearby lengths —
    the sweep grid vs its refinement grid, Fig. 7/8 curves — share
    brackets.  The calibration module globals are part of the key for
    the same reason they are part of the device-construction memo key.
    """
    return (
        flow, req.node.name, req.node.l_poly_nm, req.node.t_ox_nm,
        req.polarity.value, round(req.halo_ratio, 9),
        int(round(req.l_poly_nm / LENGTH_BUCKET_NM)),
        req.ioff_target, req.vdd_leak, extra,
        geometry_mod.OVERLAP_FRACTION, threshold_mod.LT_CALIBRATION,
        subthreshold_mod.SCE_PREFACTOR_DEFAULT,
    )


def _disk_key(flow: str, req: DopingSolveRequest, extra_exact,
              lo_bound: float, hi_bound: float, xtol: float) -> str:
    """Exact on-disk bracket key (:func:`repro.cache.store_brackets`).

    The in-process memo key buckets lengths and rounds ratios so nearby
    candidates can *share* approximate brackets; a disk bracket is
    replayed verbatim, so its key appends every exact value the
    residual depends on (``extra_exact`` carries the halo flow's exact
    N_sub).  ``repr`` of the tuple is deterministic: floats serialise
    via shortest round-trip repr.
    """
    return repr(_bracket_key(flow, req) + (
        req.l_poly_nm, req.width_um, req.halo_ratio, extra_exact,
        lo_bound, hi_bound, xtol,
    ))


#: Pure-bisection sweeps before the Illinois polish kicks in.  The
#: leakage residual spans tens of log units across the full doping
#: bounds (exponential tails), where false position is badly skewed;
#: a few halvings first make the bracket near-linear.
_BISECTION_WARMUP_SWEEPS: int = 8
#: Hard cap on total sweeps (bisection alone would need ~45 to reach
#: xtol over the full bounds; Illinois converges far sooner).
_MAX_SWEEPS: int = 80


def solve_log_doping(residual: Callable[[np.ndarray, np.ndarray], np.ndarray],
                     keys: Sequence, lo_bound: float, hi_bound: float,
                     xtol: float = XTOL_LOG10,
                     disk_keys: Sequence[str | None] | None = None
                     ) -> DopingSolveResult:
    """Gathered bracketing solve for log10-doping roots over a stack.

    ``residual(log_n, idx)`` maps gathered log10 dopings (plus their
    lane indices, for slicing per-point parameters) to the log-leakage
    residuals of the live points and must be monotone decreasing per
    point.  ``keys`` (one per point; ``None`` opts out) index the
    warm-start bracket cache; ``disk_keys`` (exact string keys) opt
    points into the on-disk bracket spill when the disk cache is
    enabled.

    The iteration is :func:`repro.numerics.bisect_illinois` on the
    negated (monotone-increasing) residual — IEEE negation is exact, so
    the iterate sequence matches the retired in-module loop bitwise: a
    few pure-bisection sweeps shrink every bracket into the near-linear
    regime, then the safeguarded Illinois polish finishes superlinearly.

    Warm-start priority per point: an in-process memo root (bracketed
    to ``+/- WARM_MARGIN_LOG10``) wins over a disk-spilled bracket, so
    results never depend on whether the disk layer is populated — a
    replayed disk bracket is already below ``xtol`` and retires with
    exactly the cold solve's midpoint.
    """
    n = len(keys)
    lo_full = np.full(n, float(lo_bound))
    hi_full = np.full(n, float(hi_bound))
    perf.bump("scaling.doping_batch_solves")
    perf.bump("scaling.doping_batch_points", n)

    disk_table = load_brackets() if disk_keys is not None else None

    wlo = lo_full.copy()
    whi = hi_full.copy()
    warm = np.zeros(n, dtype=bool)
    from_disk = np.zeros(n, dtype=bool)
    for i, key in enumerate(keys):
        root = None if key is None else bracket_memo.get(key)
        if root is not None:
            wl = max(lo_full[i], root - WARM_MARGIN_LOG10)
            wh = min(hi_full[i], root + WARM_MARGIN_LOG10)
            if wl < wh:
                wlo[i], whi[i] = wl, wh
                warm[i] = True
            continue
        if disk_table is None or disk_keys[i] is None:
            continue
        entry = disk_table.get(disk_keys[i])
        if entry is None:
            continue
        dlo, dhi = entry
        if lo_bound <= dlo <= dhi <= hi_bound and (dhi - dlo) <= xtol:
            wlo[i], whi[i] = dlo, dhi
            warm[i] = True
            from_disk[i] = True

    def increasing(log_n: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return -residual(log_n, idx)

    result = bisect_illinois(
        increasing, lo_full, hi_full, xtol=xtol,
        warm_starts=WarmStarts(lo=wlo, hi=whi, mask=warm),
        warmup_sweeps=_BISECTION_WARMUP_SWEEPS, max_sweeps=_MAX_SWEEPS,
        sweep_counter="scaling.doping_bisection_sweeps",
    )

    root = result.root
    feasible = result.feasible
    for i, key in enumerate(keys):
        if key is not None and feasible[i]:
            bracket_memo.put(key, float(root[i]))

    if disk_table is not None:
        cold = ~result.warm_used
        perf.bump("scaling.bracket_warm_hits",
                  int(np.count_nonzero(from_disk & result.warm_used)))
        perf.bump("scaling.bracket_cold_misses",
                  int(np.count_nonzero(cold)))
        # Spill only fully cold, converged lanes: their final bracket
        # is below xtol, so replaying it is byte-deterministic.
        spill = {
            disk_keys[i]: (float(result.lo[i]), float(result.hi[i]))
            for i in range(n)
            if (disk_keys[i] is not None and cold[i] and feasible[i]
                and (result.hi[i] - result.lo[i]) <= xtol)
        }
        store_brackets(spill)

    return DopingSolveResult(root_log10=root, feasible=feasible,
                             r_lo=-result.r_lo, r_hi=-result.r_hi)


def _stack_for(reqs: Sequence[DopingSolveRequest]) -> ParameterStack:
    return ParameterStack(
        l_poly_nm=np.array([r.l_poly_nm for r in reqs]),
        t_ox_nm=np.array([r.node.t_ox_nm for r in reqs]),
        is_nfet=np.array([r.polarity is Polarity.NFET for r in reqs]),
        width_um=np.array([r.width_um for r in reqs]),
        reference_nm=np.array([r.node.l_poly_nm for r in reqs]),
    )


def solve_substrate_stack(reqs: Sequence[DopingSolveRequest],
                          flow: str = "n_sub") -> DopingSolveResult:
    """Batched N_sub solve with ``N_p,halo = halo_ratio * N_sub``."""
    stack = _stack_for(reqs)
    ratios = np.array([r.halo_ratio for r in reqs])
    targets = np.array([r.ioff_target for r in reqs])
    vdds = np.array([r.vdd_leak for r in reqs])

    def residual(log_n: np.ndarray, idx: np.ndarray) -> np.ndarray:
        n_sub = 10.0 ** log_n
        metrics = stack.take(idx).metrics(n_sub, ratios[idx] * n_sub)
        return np.log(metrics.i_off_per_um(vdds[idx]) / targets[idx])

    keys = [_bracket_key(flow, r) for r in reqs]
    lo, hi = (math.log10(b) for b in N_SUB_BOUNDS)
    disk_keys = [_disk_key(flow, r, None, lo, hi, XTOL_LOG10) for r in reqs]
    return solve_log_doping(residual, keys, lo, hi, disk_keys=disk_keys)


def _build_device(req: DopingSolveRequest, n_sub: float,
                  n_p_halo: float) -> MOSFET:
    build = build_nfet if req.polarity is Polarity.NFET else build_pfet
    return build(
        l_poly_nm=req.l_poly_nm,
        t_ox_nm=req.node.t_ox_nm,
        n_sub_cm3=n_sub,
        n_p_halo_cm3=n_p_halo,
        width_um=req.width_um,
        reference_nm=req.node.l_poly_nm,
    )


# -- sub-V_th: minimum-S_S doping over (length x polarity x ratio) ----------

def optimize_doping_groups(node: NodeSpec,
                           groups: Sequence[tuple[float, Polarity, float,
                                                  float, float]],
                           ratios: Sequence[float],
                           ss_tie_tolerance: float) -> list[MOSFET]:
    """Minimum-S_S doping for many candidate groups of one node.

    Each group is ``(l_poly_nm, polarity, width_um, ioff_target,
    vdd_leak)`` and expands into one candidate per halo ratio.  One
    masked root-solve covers the whole ``groups x ratios`` stack, one
    more vectorised metrics pass evaluates S_S at every feasible root,
    and the scalar selection rule (minimum S_S, near ties broken toward
    lower N_sub) picks each group's winner — only the winners are
    materialised as scalar devices.  Raises
    :class:`~repro.errors.OptimizationError` for the first group with
    no feasible candidate, in the sequential flow's iteration order.
    """
    reqs = [
        DopingSolveRequest(node=node, l_poly_nm=float(l_poly),
                           halo_ratio=float(ratio), polarity=pol,
                           width_um=width, ioff_target=target,
                           vdd_leak=vdd)
        for l_poly, pol, width, target, vdd in groups
        for ratio in ratios
    ]
    result = solve_substrate_stack(reqs)
    n_sub = 10.0 ** result.root_log10
    # S_S for every candidate in one vectorised pass (infeasible points
    # evaluate at a bound; their values are never consulted).
    stack = _stack_for(reqs)
    halo = np.array([r.halo_ratio for r in reqs]) * n_sub
    ss_all = stack.metrics(n_sub, halo).ss_v_per_dec

    winners: list[MOSFET] = []
    for g, (l_poly, _pol, _width, target, _vdd) in enumerate(groups):
        span = range(g * len(ratios), (g + 1) * len(ratios))
        feasible = [i for i in span if result.feasible[i]]
        if not feasible:
            raise OptimizationError(
                f"{node.name}: no doping meets I_off = "
                f"{target:.3g} A/um at L_poly = {float(l_poly):.1f} nm"
            )
        ss_best = min(ss_all[i] for i in feasible)
        near = [i for i in feasible
                if ss_all[i] <= ss_best * (1.0 + ss_tie_tolerance)]
        win = min(near, key=lambda i: n_sub[i])
        winners.append(_build_device(
            reqs[win], float(n_sub[win]),
            reqs[win].halo_ratio * float(n_sub[win])))
    return winners


def optimize_doping_stack(node: NodeSpec, lengths_nm: Sequence[float],
                          jobs: Sequence[tuple[Polarity, float]],
                          ratios: Sequence[float], ioff_target: float,
                          vdd_leak: float, ss_tie_tolerance: float
                          ) -> list[list[MOSFET]]:
    """Minimum-S_S doping for every (length, polarity) of one node.

    Convenience wrapper over :func:`optimize_doping_groups` for a
    shared leakage target: returns ``devices[i][j]`` for length ``i``
    and job ``j`` (a ``(polarity, width_um)`` pair).
    """
    groups = [(float(l_poly), pol, width, ioff_target, vdd_leak)
              for l_poly in lengths_nm
              for pol, width in jobs]
    flat = optimize_doping_groups(node, groups, ratios, ss_tie_tolerance)
    n_jobs = len(jobs)
    return [flat[i * n_jobs:(i + 1) * n_jobs]
            for i in range(len(list(lengths_nm)))]


# -- super-V_th: the two-step Fig. 1(c) doping selection --------------------

def _long_channel_request(node: NodeSpec, polarity: Polarity,
                          width_um: float) -> DopingSolveRequest:
    return DopingSolveRequest(
        node=node, l_poly_nm=LONG_CHANNEL_MULTIPLE * node.l_poly_nm,
        halo_ratio=0.0, polarity=polarity, width_um=width_um,
        ioff_target=node.ioff_target_a_per_um, vdd_leak=node.vdd_nominal,
    )


def _raise_substrate_error(req: DopingSolveRequest, below: bool) -> None:
    if below:
        raise OptimizationError(
            f"{req.node.name}: long-channel leakage below target even "
            "at minimum doping — budget unreachable from above"
        )
    raise OptimizationError(
        f"{req.node.name}: cannot meet leakage budget "
        f"{req.ioff_target:.3g} A/um with N_sub <= {N_SUB_BOUNDS[1]:.3g}"
    )


def super_vth_substrate(node: NodeSpec, polarity: Polarity,
                        width_um: float) -> float:
    """Batched step 1: N_sub from the long-channel leakage condition."""
    reset_warm_starts()
    req = _long_channel_request(node, polarity, width_um)
    result = solve_substrate_stack([req], flow="supervth_n_sub")
    if not result.feasible[0]:
        _raise_substrate_error(req, bool(result.r_lo[0] < 0.0))
    return 10.0 ** float(result.root_log10[0])


def _solve_halo_stack(reqs: Sequence[DopingSolveRequest],
                      n_subs: Sequence[float]) -> DopingSolveResult:
    stack = _stack_for(reqs)
    n_sub = np.asarray(n_subs, dtype=float)
    targets = np.array([r.ioff_target for r in reqs])
    vdds = np.array([r.vdd_leak for r in reqs])

    def residual(log_n: np.ndarray, idx: np.ndarray) -> np.ndarray:
        metrics = stack.take(idx).metrics(n_sub[idx], 10.0 ** log_n)
        return np.log(metrics.i_off_per_um(vdds[idx]) / targets[idx])

    keys = [_bracket_key("supervth_halo", r,
                         extra=round(math.log10(ns), 6))
            for r, ns in zip(reqs, n_sub)]
    lo, hi = (math.log10(b) for b in N_HALO_BOUNDS)
    disk_keys = [_disk_key("supervth_halo", r, float(ns), lo, hi, XTOL_LOG10)
                 for r, ns in zip(reqs, n_sub)]
    return solve_log_doping(residual, keys, lo, hi, disk_keys=disk_keys)


def super_vth_halo(node: NodeSpec, polarity: Polarity, width_um: float,
                   n_sub: float) -> float:
    """Batched step 2: N_p,halo from the short-channel condition."""
    reset_warm_starts()
    req = DopingSolveRequest(
        node=node, l_poly_nm=node.l_poly_nm, halo_ratio=0.0,
        polarity=polarity, width_um=width_um,
        ioff_target=node.ioff_target_a_per_um, vdd_leak=node.vdd_nominal,
    )
    result = _solve_halo_stack([req], [n_sub])
    if result.feasible[0]:
        return 10.0 ** float(result.root_log10[0])
    if result.r_lo[0] <= 0.0:
        # The short device already meets the budget: no halo needed.
        return N_HALO_BOUNDS[0]
    raise OptimizationError(
        f"{node.name}: halo cannot rescue the short-channel "
        "leakage — L_poly too short for this T_ox"
    )


def optimize_super_vth_stack(jobs: Sequence[tuple[NodeSpec, Polarity, float]]
                             ) -> list[MOSFET]:
    """Run the full Fig. 1(c) loop for many (node, polarity, width) jobs.

    Both root-solve steps are batched across all jobs.  Errors are
    raised for the job the sequential flow would fail first: job ``i``
    runs substrate-then-halo entirely before job ``i+1``, so an earlier
    job's halo failure outranks a later job's substrate failure.
    """
    reset_warm_starts()
    sub_reqs = [_long_channel_request(node, pol, width)
                for node, pol, width in jobs]
    sub_result = solve_substrate_stack(sub_reqs, flow="supervth_n_sub")
    n_sub = 10.0 ** sub_result.root_log10
    bad_sub = next((i for i in range(len(jobs))
                    if not sub_result.feasible[i]), None)

    halo_count = len(jobs) if bad_sub is None else bad_sub
    halo_reqs = [
        DopingSolveRequest(
            node=node, l_poly_nm=node.l_poly_nm, halo_ratio=0.0,
            polarity=pol, width_um=width,
            ioff_target=node.ioff_target_a_per_um,
            vdd_leak=node.vdd_nominal,
        )
        for node, pol, width in jobs[:halo_count]
    ]
    halo_result = (_solve_halo_stack(halo_reqs, n_sub[:halo_count])
                   if halo_reqs else None)
    for i in range(halo_count):
        if (not halo_result.feasible[i]) and halo_result.r_lo[i] > 0.0:
            raise OptimizationError(
                f"{jobs[i][0].name}: halo cannot rescue the short-channel "
                "leakage — L_poly too short for this T_ox"
            )
    if bad_sub is not None:
        _raise_substrate_error(sub_reqs[bad_sub],
                               bool(sub_result.r_lo[bad_sub] < 0.0))

    devices: list[MOSFET] = []
    for i, req in enumerate(halo_reqs):
        n_p_halo = (10.0 ** float(halo_result.root_log10[i])
                    if halo_result.feasible[i] else N_HALO_BOUNDS[0])
        devices.append(_build_device(req, float(n_sub[i]), n_p_halo))
    return devices
