"""Compact model cards: PTM-style parameter summaries of a design.

The paper's ref [13] (the Predictive Technology Model) distributes
technology nodes as human-readable model cards.  This module extracts
the same style of card from an optimised design — the handful of
parameters a circuit designer actually consumes — and renders whole
families as text, so a user can archive or diff technology options
without touching the physics layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import format_sig, render_table
from ..device.mosfet import MOSFET
from ..errors import ParameterError
from .strategy import DeviceDesign, DeviceFamily


@dataclass(frozen=True)
class ModelCard:
    """Designer-facing parameters of one device.

    All voltages in volts, currents in A/µm, capacitances in F/µm of
    width — the conventional card units.
    """

    label: str
    polarity: str
    l_poly_nm: float
    l_eff_nm: float
    t_ox_nm: float
    vth_lin_v: float
    vth_sat_v: float
    dibl_mv_per_v: float
    ss_mv_per_dec: float
    ioff_a_per_um: float
    ion_a_per_um: float
    c_gate_f_per_um: float
    vdd_v: float

    def as_dict(self) -> dict[str, float | str]:
        """Flat dict form (for JSON export or table assembly)."""
        return {
            "label": self.label,
            "polarity": self.polarity,
            "l_poly_nm": self.l_poly_nm,
            "l_eff_nm": self.l_eff_nm,
            "t_ox_nm": self.t_ox_nm,
            "vth_lin_v": self.vth_lin_v,
            "vth_sat_v": self.vth_sat_v,
            "dibl_mv_per_v": self.dibl_mv_per_v,
            "ss_mv_per_dec": self.ss_mv_per_dec,
            "ioff_a_per_um": self.ioff_a_per_um,
            "ion_a_per_um": self.ion_a_per_um,
            "c_gate_f_per_um": self.c_gate_f_per_um,
            "vdd_v": self.vdd_v,
        }

    def render(self) -> str:
        """Multi-line card text (PTM-style)."""
        rows = [
            ("polarity", self.polarity),
            ("L_poly", f"{self.l_poly_nm:.1f} nm"),
            ("L_eff", f"{self.l_eff_nm:.1f} nm"),
            ("T_ox", f"{self.t_ox_nm:.2f} nm"),
            ("V_th,lin", f"{1000 * self.vth_lin_v:.0f} mV"),
            ("V_th,sat", f"{1000 * self.vth_sat_v:.0f} mV"),
            ("DIBL", f"{self.dibl_mv_per_v:.0f} mV/V"),
            ("S_S", f"{self.ss_mv_per_dec:.1f} mV/dec"),
            ("I_off", f"{format_sig(self.ioff_a_per_um * 1e12)} pA/um"),
            ("I_on", f"{format_sig(self.ion_a_per_um * 1e6)} uA/um"),
            ("C_gate", f"{format_sig(self.c_gate_f_per_um * 1e15)} fF/um"),
            ("V_dd", f"{self.vdd_v:.2f} V"),
        ]
        return render_table(("parameter", "value"), rows,
                            title=f"* model card: {self.label}")


def extract_card(device: MOSFET, vdd: float, label: str = "") -> ModelCard:
    """Extract a model card from one device at supply ``vdd``.

    >>> from repro.device import nfet
    >>> card = extract_card(nfet(65, 2.1, 1.2e18, 1.5e18), 1.2, "n90")
    >>> 60.0 < card.ss_mv_per_dec < 110.0
    True
    """
    if vdd <= 0.0:
        raise ParameterError("vdd must be positive")
    vds_lin = 0.05
    width_um = device.geometry.width_um
    return ModelCard(
        label=label or f"{device.polarity.value}",
        polarity=device.polarity.value,
        l_poly_nm=device.geometry.l_poly_nm,
        l_eff_nm=device.geometry.l_eff_nm,
        t_ox_nm=device.stack.thickness_cm * 1e7,
        vth_lin_v=device.vth(vds_lin),
        vth_sat_v=device.vth(vdd),
        dibl_mv_per_v=device.threshold.dibl_mv_per_v(vdd, vds_lin),
        ss_mv_per_dec=device.ss_mv_per_dec,
        ioff_a_per_um=device.i_off_per_um(vdd),
        ion_a_per_um=device.i_on_per_um(vdd),
        c_gate_f_per_um=device.capacitance.c_gate / width_um,
        vdd_v=vdd,
    )


def design_cards(design: DeviceDesign) -> tuple[ModelCard, ModelCard]:
    """(NFET, PFET) cards for one design, at the design's supply."""
    label = f"{design.strategy}/{design.node.name}"
    return (
        extract_card(design.nfet, design.vdd, f"{label}/nfet"),
        extract_card(design.pfet, design.vdd, f"{label}/pfet"),
    )


def family_card_table(family: DeviceFamily) -> str:
    """One-row-per-node summary table of a family's NFET cards."""
    rows = []
    for design in family.designs:
        card = extract_card(design.nfet, design.vdd,
                            f"{family.strategy}/{design.node.name}")
        rows.append((
            design.node.name,
            f"{card.l_poly_nm:.0f}",
            f"{card.t_ox_nm:.2f}",
            f"{1000 * card.vth_sat_v:.0f}",
            f"{card.dibl_mv_per_v:.0f}",
            f"{card.ss_mv_per_dec:.1f}",
            format_sig(card.ioff_a_per_um * 1e12),
            format_sig(card.ion_a_per_um * 1e6),
        ))
    return render_table(
        ("node", "L_poly nm", "T_ox nm", "Vth,sat mV", "DIBL mV/V",
         "S_S mV/dec", "Ioff pA/um", "Ion uA/um"),
        rows,
        title=f"* family cards: {family.strategy} (NFET)",
    )
