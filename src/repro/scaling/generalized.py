"""Generalized scaling theory (the paper's Table 1).

Baccarani's generalized scaling [8]: physical dimensions shrink by
``1/alpha`` while the peak channel field is *allowed to grow* by
``epsilon`` per generation, giving

=====================  ==================
parameter              scaling factor
=====================  ==================
physical dimensions    1/alpha
channel doping N_ch    epsilon * alpha
voltage V_dd           epsilon / alpha
area                   1/alpha^2
delay                  1/alpha
power                  epsilon^2/alpha^2
=====================  ==================

Dennard constant-field scaling [7] is the special case
``epsilon = 1``.  These rules are the yardstick the paper compares real
(slower-T_ox) scaling against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError


@dataclass(frozen=True)
class GeneralizedScaling:
    """One generation of generalized scaling.

    Parameters
    ----------
    alpha:
        Dimension scaling factor (> 1 shrinks; the classic value per
        generation is 1/0.7 ~ 1.43).
    epsilon:
        Field growth factor (>= 1; 1 recovers constant-field scaling).
    """

    alpha: float
    epsilon: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ParameterError("alpha must be positive")
        if self.epsilon <= 0.0:
            raise ParameterError("epsilon must be positive")

    # -- per-parameter factors (multiply a value by these to scale it) ----

    @property
    def dimension_factor(self) -> float:
        """Physical dimensions (L_poly, T_ox, W, wires): ``1/alpha``."""
        return 1.0 / self.alpha

    @property
    def doping_factor(self) -> float:
        """Channel doping N_ch: ``epsilon * alpha``."""
        return self.epsilon * self.alpha

    @property
    def voltage_factor(self) -> float:
        """Supply/threshold voltages: ``epsilon / alpha``."""
        return self.epsilon / self.alpha

    @property
    def area_factor(self) -> float:
        """Circuit area: ``1/alpha^2``."""
        return 1.0 / self.alpha ** 2

    @property
    def delay_factor(self) -> float:
        """Gate delay: ``1/alpha``."""
        return 1.0 / self.alpha

    @property
    def power_factor(self) -> float:
        """Power: ``epsilon^2 / alpha^2``."""
        return (self.epsilon / self.alpha) ** 2

    @property
    def field_factor(self) -> float:
        """Peak channel field: ``epsilon`` (consistency check)."""
        return self.voltage_factor / self.dimension_factor

    def table(self) -> dict[str, float]:
        """The Table 1 rules as a name -> factor mapping."""
        return {
            "physical_dimensions": self.dimension_factor,
            "channel_doping": self.doping_factor,
            "vdd": self.voltage_factor,
            "area": self.area_factor,
            "delay": self.delay_factor,
            "power": self.power_factor,
        }

    def apply(self, generations: int = 1) -> "GeneralizedScaling":
        """Compose this rule over multiple generations."""
        if generations < 1:
            raise ParameterError("generations must be >= 1")
        return GeneralizedScaling(alpha=self.alpha ** generations,
                                  epsilon=self.epsilon ** generations)


#: Dennard constant-field scaling at the classic 0.7x shrink.
CONSTANT_FIELD = GeneralizedScaling(alpha=1.0 / 0.7, epsilon=1.0)
