"""Serialization: devices, families and experiment results as JSON.

A downstream user of the library wants to persist an optimised device
family (the Table 2/3 outputs are the product of a few seconds of
optimisation) and reload it without re-running the flows, and to dump
experiment results for external plotting.  Everything round-trips
through plain dicts so the JSON layer stays trivial.
"""

from .serialize import (
    device_to_dict,
    device_from_dict,
    design_to_dict,
    design_from_dict,
    family_to_dict,
    family_from_dict,
    comparison_to_dict,
    comparison_from_dict,
    result_to_dict,
    result_from_dict,
    save_json,
    load_json,
)

__all__ = [
    "device_to_dict",
    "device_from_dict",
    "design_to_dict",
    "design_from_dict",
    "family_to_dict",
    "family_from_dict",
    "comparison_to_dict",
    "comparison_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_json",
    "load_json",
]
