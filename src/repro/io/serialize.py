"""Dict/JSON codecs for the library's core objects.

The schema is versioned (``schema`` field) and intentionally flat:
every physical quantity appears once, in its canonical unit, so the
files are greppable and diffable in code review.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from ..analysis.report import Comparison, ExperimentResult
from ..device.doping import DopingProfile, HaloImplant
from ..device.geometry import DeviceGeometry
from ..device.mosfet import MOSFET, Polarity
from ..errors import ParameterError
from ..materials.oxide import GateStack
from ..scaling.roadmap import NodeSpec
from ..scaling.strategy import DeviceDesign, DeviceFamily

SCHEMA_VERSION = 1


# -- device -------------------------------------------------------------------

def device_to_dict(device: MOSFET) -> dict[str, Any]:
    """Serialise a MOSFET to a plain dict."""
    g = device.geometry
    p = device.profile
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": "mosfet",
        "polarity": device.polarity.value,
        "temperature_k": device.temperature_k,
        "vth_offset_v": device.vth_offset_v,
        "geometry": {
            "l_poly_cm": g.l_poly_cm,
            "width_cm": g.width_cm,
            "junction_depth_cm": g.junction_depth_cm,
            "overlap_cm": g.overlap_cm,
            "extension_cm": g.extension_cm,
            "gate_height_cm": g.gate_height_cm,
        },
        "stack": {
            "thickness_cm": device.stack.thickness_cm,
            "rel_permittivity": device.stack.rel_permittivity,
            "name": device.stack.name,
        },
        "profile": {
            "n_sub_cm3": p.n_sub_cm3,
            "halo": None,
        },
    }
    if p.halo is not None:
        payload["profile"]["halo"] = {
            "peak_cm3": p.halo.peak_cm3,
            "sigma_x_cm": p.halo.sigma_x_cm,
            "sigma_y_cm": p.halo.sigma_y_cm,
            "depth_cm": p.halo.depth_cm,
        }
    return payload


def device_from_dict(payload: dict[str, Any]) -> MOSFET:
    """Rebuild a MOSFET from :func:`device_to_dict` output."""
    _check(payload, "mosfet")
    geometry = DeviceGeometry(**payload["geometry"])
    stack = GateStack(**payload["stack"])
    halo_payload = payload["profile"].get("halo")
    halo = None if halo_payload is None else HaloImplant(**halo_payload)
    profile = DopingProfile(n_sub_cm3=payload["profile"]["n_sub_cm3"],
                            halo=halo)
    return MOSFET(
        polarity=Polarity(payload["polarity"]),
        geometry=geometry,
        profile=profile,
        stack=stack,
        temperature_k=payload["temperature_k"],
        vth_offset_v=payload.get("vth_offset_v", 0.0),
    )


# -- designs and families ----------------------------------------------------------

def design_to_dict(design: DeviceDesign) -> dict[str, Any]:
    """Serialise one node's optimised design."""
    node = design.node
    return {
        "schema": SCHEMA_VERSION,
        "kind": "design",
        "strategy": design.strategy,
        "vdd": design.vdd,
        "node": {
            "name": node.name,
            "node_nm": node.node_nm,
            "l_poly_nm": node.l_poly_nm,
            "t_ox_nm": node.t_ox_nm,
            "vdd_nominal": node.vdd_nominal,
            "ioff_target_a_per_um": node.ioff_target_a_per_um,
            "generation": node.generation,
        },
        "nfet": device_to_dict(design.nfet),
        "pfet": device_to_dict(design.pfet),
    }


def design_from_dict(payload: dict[str, Any]) -> DeviceDesign:
    """Rebuild a design from :func:`design_to_dict` output."""
    _check(payload, "design")
    node = NodeSpec(**payload["node"])
    return DeviceDesign(
        node=node,
        nfet=device_from_dict(payload["nfet"]),
        pfet=device_from_dict(payload["pfet"]),
        strategy=payload["strategy"],
        vdd=payload["vdd"],
    )


def family_to_dict(family: DeviceFamily) -> dict[str, Any]:
    """Serialise a whole strategy family."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "family",
        "strategy": family.strategy,
        "designs": [design_to_dict(d) for d in family.designs],
    }


def family_from_dict(payload: dict[str, Any]) -> DeviceFamily:
    """Rebuild a family from :func:`family_to_dict` output."""
    _check(payload, "family")
    designs = tuple(design_from_dict(d) for d in payload["designs"])
    return DeviceFamily(strategy=payload["strategy"], designs=designs)


# -- experiment results -----------------------------------------------------------

def comparison_to_dict(comparison: Comparison) -> dict[str, Any]:
    """Serialise one paper-vs-measured comparison record.

    Values are coerced to plain Python scalars: experiments routinely
    set them from numpy reductions, and ``np.bool_`` is not JSON
    serialisable.
    """
    return {
        "claim": comparison.claim,
        "paper_value": float(comparison.paper_value),
        "measured_value": float(comparison.measured_value),
        "unit": comparison.unit,
        "holds": bool(comparison.holds),
        "note": comparison.note,
    }


def comparison_from_dict(payload: dict[str, Any]) -> Comparison:
    """Rebuild a comparison from :func:`comparison_to_dict` output."""
    return Comparison(
        claim=payload["claim"],
        paper_value=payload["paper_value"],
        measured_value=payload["measured_value"],
        unit=payload.get("unit", ""),
        holds=payload.get("holds", True),
        note=payload.get("note", ""),
    )


def result_to_dict(result: ExperimentResult) -> dict[str, Any]:
    """Serialise an experiment result (round-trips via result_from_dict)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "experiment_result",
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "series": [
            {
                "label": s.label,
                "x_label": s.x_label,
                "y_label": s.y_label,
                "x": s.x.tolist(),
                "y": s.y.tolist(),
            }
            for s in result.series
        ],
        "comparisons": [comparison_to_dict(c) for c in result.comparisons],
    }


def result_from_dict(payload: dict[str, Any]) -> ExperimentResult:
    """Rebuild an experiment result from :func:`result_to_dict` output."""
    _check(payload, "experiment_result")
    from ..analysis.series import Series
    series = tuple(
        Series(label=s["label"], x=s["x"], y=s["y"],
               x_label=s["x_label"], y_label=s["y_label"])
        for s in payload["series"]
    )
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        series=series,
        headers=tuple(payload["headers"]),
        rows=tuple(tuple(row) for row in payload["rows"]),
        comparisons=tuple(comparison_from_dict(c)
                          for c in payload["comparisons"]),
    )


# -- files ------------------------------------------------------------------------

def save_json(payload: dict[str, Any], path: str | pathlib.Path) -> None:
    """Write a serialised object to a JSON file."""
    text = json.dumps(payload, indent=2, sort_keys=True,
                      allow_nan=True)
    pathlib.Path(path).write_text(text)


def load_json(path: str | pathlib.Path) -> dict[str, Any]:
    """Read a serialised object back from a JSON file."""
    return json.loads(pathlib.Path(path).read_text())


def _check(payload: dict[str, Any], kind: str) -> None:
    if payload.get("kind") != kind:
        raise ParameterError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}"
        )
    if payload.get("schema") != SCHEMA_VERSION:
        raise ParameterError(
            f"unsupported schema version {payload.get('schema')!r}"
        )
