"""Legacy setup shim.

The execution environment ships setuptools 65 without the ``wheel``
package, so PEP 517 editable installs fail with "invalid command
'bdist_wheel'".  This shim lets ``pip install -e . --no-use-pep517``
work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
