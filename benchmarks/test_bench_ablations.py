"""Benches: the four design-choice ablations DESIGN.md calls out."""

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_bench_ablation_tox(benchmark):
    """T_ox scaling rate is the root cause of slope degradation."""
    result = run_once(benchmark, run_experiment, "ablation_tox")
    assert result.all_hold()
    series = result.get_series("S_S at 32nm vs T_ox rate")
    assert np.all(np.diff(series.y) < 0.0)


def test_bench_ablation_halo(benchmark):
    """Halo rescues short-channel leakage; the split doesn't move S_S."""
    result = run_once(benchmark, run_experiment, "ablation_halo")
    assert result.all_hold()


def test_bench_ablation_leakage(benchmark):
    """The +25%/gen leakage budget trades V_th for drive."""
    result = run_once(benchmark, run_experiment, "ablation_leakage")
    assert result.all_hold()


def test_bench_ablation_analytic(benchmark):
    """Calibrated Eq. 2(b) agrees with the numerical Poisson route."""
    result = run_once(benchmark, run_experiment, "ablation_analytic")
    assert result.all_hold()
