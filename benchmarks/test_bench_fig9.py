"""Bench: Fig. 9 — L_poly and S_S trajectories under both strategies.

Shape (paper): sub-V_th gates longer and slower-scaling; sub-V_th S_S
flat near 80 mV/dec while super-V_th S_S degrades every generation.
"""

import numpy as np
from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig9(benchmark):
    result = run_once(benchmark, run_experiment, "fig9")
    assert result.all_hold()
    l_sub = result.get_series("L_poly sub-vth")
    l_sup = result.get_series("L_poly super-vth")
    ss_sub = result.get_series("S_S sub-vth")
    ss_sup = result.get_series("S_S super-vth")
    assert np.all(l_sub.y[1:] > l_sup.y[1:])
    assert (ss_sub.y.max() - ss_sub.y.min()) < 5.0
    assert np.all(np.diff(ss_sup.y) > 0.0)
