"""Bench: Fig. 2 — S_S and I_on/I_off degradation under super-V_th scaling.

Shape (paper): S_S degrades ~11% (direction + acceleration asserted),
I_on/I_off at 250 mV drops ~60% (>= 45% asserted).
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig2(benchmark):
    result = run_once(benchmark, run_experiment, "fig2")
    assert result.all_hold()
    ss = result.get_series("S_S (super-vth)")
    ratio = result.get_series("Ion/Ioff @250mV (super-vth)")
    # Who wins / by what factor: slope worsens, ratio collapses.
    assert ss.total_change() > 0.05
    assert ratio.total_change() < -0.45
