"""Bench: Table 2 — super-V_th device family.

Shape assertions (paper): the leakage budget binds at every node,
V_th,sat climbs monotonically (paper: 403 -> 461 mV) and the intrinsic
delay still improves at nominal V_dd.
"""

from conftest import run_once

from repro.experiments import run_experiment
from repro.scaling.supervth import build_super_vth_family


def test_bench_table2(benchmark):
    result = run_once(benchmark, run_experiment, "table2")
    assert result.all_hold()
    assert len(result.rows) == 4


def test_bench_supervth_optimizer(benchmark):
    """Time the raw Fig. 1(c) optimisation flow (uncached)."""
    family = run_once(benchmark, build_super_vth_family)
    ss = [d.nfet.ss_mv_per_dec for d in family.designs]
    assert all(b > a for a, b in zip(ss, ss[1:]))
