"""Bench: Fig. 10 — SNM under both strategies at 250 mV.

Shape (paper): sub-V_th SNM ~19% better at 32nm (>= 10% asserted), at
least as good everywhere, and nearly flat across nodes.
"""

from conftest import run_once

from repro.experiments import run_experiment


def test_bench_fig10(benchmark):
    result = run_once(benchmark, run_experiment, "fig10")
    assert result.all_hold()
    sub = result.get_series("SNM sub-vth @250mV")
    sup = result.get_series("SNM super-vth @250mV")
    advantage = sub.y[-1] / sup.y[-1] - 1.0
    assert advantage > 0.10
